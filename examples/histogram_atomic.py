#!/usr/bin/env python
"""Histogram with `#pragma acc atomic update` (extension).

Reductions (§3 of the paper) combine into ONE scalar; a histogram combines
into MANY bins with data-dependent collisions — the case the paper's
related-work section contrasts (Komoda et al.'s array reductions).  The
`atomic` directive makes the colliding `hist[bin] += 1` updates combine on
the device.  This example shows three variants:

1. explicit parallel loop + atomic  → correct,
2. the same loop WITHOUT atomic     → deterministic garbage (races),
3. a `kernels` region + atomic      → the auto-parallelizer accepts the
   colliding writes *because* they are atomic; drop the directive and it
   refuses to parallelize (and stays correct, sequentially).

Run:  python examples/histogram_atomic.py
"""

import numpy as np

from repro import acc

WITH_ATOMIC = """
int data[n];
int hist[nb];
#pragma acc parallel copyin(data) copy(hist)
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) {
  #pragma acc atomic update
  hist[data[i] % nb] += 1;
}
"""


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.integers(0, 1 << 16, size=1 << 16).astype(np.int32)
    nb = 16
    expect = np.bincount(data % nb, minlength=nb)
    geom = dict(num_gangs=16, num_workers=2, vector_length=64)

    ok = acc.compile(WITH_ATOMIC, **geom)
    r1 = ok.run(data=data, hist=np.zeros(nb, np.int32))
    print("with atomic   :", r1.outputs["hist"][:8], "... correct:",
          np.array_equal(r1.outputs["hist"], expect),
          f"({r1.kernel_ms:.3f} ms)")

    racy = acc.compile(WITH_ATOMIC.replace(
        "  #pragma acc atomic update\n", ""), **geom)
    r2 = racy.run(data=data, hist=np.zeros(nb, np.int32))
    lost = int(expect.sum() - r2.outputs["hist"].sum())
    print("without atomic:", r2.outputs["hist"][:8], f"... LOST {lost:,} "
          f"updates to write races")

    kernels = acc.compile("""
    int data[n];
    int hist[nb];
    #pragma acc kernels copyin(data) copy(hist)
    {
      for (i = 0; i < n; i++) {
        #pragma acc atomic update
        hist[data[i] % nb] += 1;
      }
    }
    """, **geom)
    r3 = kernels.run(data=data, hist=np.zeros(nb, np.int32))
    print("kernels+atomic:", r3.outputs["hist"][:8], "... correct:",
          np.array_equal(r3.outputs["hist"], expect),
          "(auto-parallelized)")


if __name__ == "__main__":
    main()
