#!/usr/bin/env python
"""2-D heat equation with a max-reduction convergence test (Fig. 12(a)).

A hot top edge diffuses into a cold plate; each Jacobi sweep is followed by
a ``max``-reduction of the temperature change.  The run compares the three
compiler profiles: OpenUH converges fastest, the PGI-like baseline converges
slower, and the CAPS-like baseline never converges (its reported error is a
running maximum — the data-clause defect the paper observed).

Run:  python examples/heat_equation.py
"""

from repro.apps.heat2d import solve_heat


def ascii_plate(t, width: int = 32) -> str:
    """Render the temperature field as ASCII art."""
    shades = " .:-=+*#%@"
    step = max(1, t.shape[0] // 16)
    rows = []
    for r in t[::step, ::step]:
        line = "".join(shades[min(int(v / 100.0 * (len(shades) - 1)),
                                  len(shades) - 1)] for v in r)
        rows.append("  " + line)
    return "\n".join(rows)


def main() -> None:
    n, tol = 32, 0.25
    print(f"Relaxing a {n}x{n} plate to max|dT| < {tol} ...\n")
    for compiler in ("openuh", "vendor-b", "vendor-a"):
        r = solve_heat(n=n, tol=tol, max_iters=120, compiler=compiler,
                       num_gangs=48, vector_length=64)
        if r.converged:
            print(f"{compiler:<10} converged in {r.iterations:3d} iterations"
                  f"  (modeled {r.kernel_ms:8.2f} ms kernels)")
        else:
            print(f"{compiler:<10} DID NOT CONVERGE in {r.iterations} "
                  f"iterations (final error {r.final_error:.3f} — "
                  "the paper's missing CAPS bar)" if compiler == "vendor-a"
                  else f"{compiler:<10} did not converge")
        if compiler == "openuh":
            errs = r.errors
            trace = " -> ".join(f"{e:.2f}" for e in
                                errs[:3] + errs[len(errs) // 2:len(errs) // 2 + 1]
                                + errs[-2:])
            print(f"           error trace: {trace}")
            print("\n  Final temperature field:")
            print(ascii_plate(r.temperature))
            print()


if __name__ == "__main__":
    main()
