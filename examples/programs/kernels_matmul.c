/* Matrix multiplication with ZERO loop annotations: the kernels construct
 * hands scheduling to the compiler (§2.1).  Auto-parallelization assigns
 * gang/worker/vector and recognizes the dot-product accumulation as a
 * vector '+' reduction. */
float A[n2];
float B[n2];
float C[n2];
#pragma acc kernels copyin(A, B) copyout(C)
{
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      float c = 0.0f;
      for (k = 0; k < n; k++)
        c += A[i*n+k] * B[k*n+j];
      C[i*n+j] = c;
    }
  }
}
