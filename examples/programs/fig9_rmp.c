/* The paper's Fig. 9: one reduction clause on the worker loop; the span
 * across worker AND vector is detected automatically by OpenUH (§3.2.1). */
float input[NK][NJ][NI];
float temp[NK];
#pragma acc parallel copyin(input) copyout(temp)
{
  #pragma acc loop gang
  for (k = 0; k < NK; k++) {
    int j_sum = k;
    #pragma acc loop worker reduction(+:j_sum)
    for (j = 0; j < NJ; j++) {
      #pragma acc loop vector
      for (i = 0; i < NI; i++)
        j_sum += input[k][j][i];
    }
    temp[k] = j_sum;
  }
}
