/* Numerically-stable softmax: the cascaded reduce->map->reduce->map
 * chain the cascade-fusion pass targets (max for stability, subtract-exp
 * map, sum of exponentials, divide map).  With the optimized pipeline
 * the two finish kernels fold into their consumer stages. */
float x[n];
float y[n];
float m = -3.0e38f;
float s = 0.0f;
#pragma acc parallel copyin(x) copyout(y)
{
#pragma acc loop gang worker vector reduction(max:m)
for (i = 0; i < n; i++)
    if (x[i] > m) m = x[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++)
    y[i] = expf(x[i] - m);
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++)
    s = s + y[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++)
    y[i] = y[i] / s;
}
