/* Sum of a vector: the simplest gang-worker-vector reduction (Fig. 10). */
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
