#!/usr/bin/env python
"""OpenMP 4.0 target offload through the same reduction machinery (§6).

The paper's conclusion: the OpenACC reduction methodology "can also be
applied to other programming models such as OpenMP 4.0 ... it just needs
to ignore the worker."  This example compiles an OpenMP fragment with
``repro.acc.openmp.compile_omp`` — teams map to gangs, threads to vector
lanes — and shows the translated directives plus a verified run.

Run:  python examples/openmp_offload.py
"""

import numpy as np

from repro.acc.openmp import compile_omp, translate_omp_source

OMP_SRC = """
double a[n];
double mean_abs = 0.0;
#pragma omp target teams distribute parallel for \\
    map(to: a) reduction(+:mean_abs) num_teams(64) thread_limit(128)
for (i = 0; i < n; i++)
    mean_abs += fabs(a[i]);
"""


def main() -> None:
    print("OpenMP source:")
    print(OMP_SRC)
    print("Translated to OpenACC:")
    for line in translate_omp_source(OMP_SRC).splitlines():
        if "#pragma" in line:
            print(" ", line.strip())
    print()

    prog = compile_omp(OMP_SRC)
    print(f"Launch geometry: {prog.geometry.num_gangs} teams x "
          f"{prog.geometry.num_workers} worker (ignored) x "
          f"{prog.geometry.vector_length} threads")

    rng = np.random.default_rng(6)
    a = rng.standard_normal(1 << 18)
    res = prog.run(a=a)
    total = float(res.scalars["mean_abs"])
    print(f"\nsum |a_i|  device = {total:.4f}   numpy = "
          f"{np.abs(a).sum():.4f}")
    print(f"modeled time: {res.modeled_ms:.3f} ms "
          f"({res.kernel_ms:.3f} ms kernels)")


if __name__ == "__main__":
    main()
