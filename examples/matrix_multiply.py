#!/usr/bin/env python
"""Matrix multiplication with the k loop as a vector reduction (Fig. 12(b)).

The inner dot-product loop has a loop-carried dependence, but it is a sum
reduction — so it parallelizes across vector threads (§4).  This example
runs the same program under all three compiler profiles: the PGI-like
baseline computes a wrong product (its defective '+' fast path — the
missing bar in the paper's figure), and the CAPS-like baseline is slower
because it pays a barrier per log-step iteration on every one of the n²
small reductions.

Run:  python examples/matrix_multiply.py
"""

import numpy as np

from repro.apps.matmul import matmul


def main() -> None:
    n = 32
    rng = np.random.default_rng(7)
    A = rng.random((n, n)).astype(np.float32)
    B = rng.random((n, n)).astype(np.float32)
    print(f"C = A @ B for {n}x{n} matrices "
          "(i->gang, j->worker, k->vector reduction)\n")

    baseline = None
    for compiler in ("openuh", "vendor-a", "vendor-b"):
        r = matmul(A, B, compiler=compiler, num_gangs=32, num_workers=4,
                   vector_length=32)
        if not r.correct:
            print(f"{compiler:<10} WRONG RESULT "
                  "(the paper's missing PGI bar)")
            continue
        note = ""
        if baseline is None:
            baseline = r.kernel_ms
        else:
            note = f"  ({r.kernel_ms / baseline:.2f}x vs openuh)"
        print(f"{compiler:<10} correct, modeled {r.kernel_ms:8.3f} ms"
              f"{note}")

    print("\nSpot check (first row, first 4 columns):")
    r = matmul(A, B, num_gangs=32, num_workers=4, vector_length=32)
    print("  device:", np.round(r.C[0, :4], 4))
    print("  numpy :", np.round((A @ B)[0, :4], 4))


if __name__ == "__main__":
    main()
