#!/usr/bin/env python
"""Monte Carlo π with a gang·vector reduction (Fig. 12(c)).

Points are pre-generated on the host (the paper's compilers could not call
``rand()`` in device code) and transferred; the kernel counts the points
inside the unit circle with a ``+`` reduction guarded by an ``if``.  More
samples → tighter estimate and longer (transfer-dominated) runs, which is
exactly the paper's 1/2/4 GB sweep.

Run:  python examples/monte_carlo_pi.py
"""

import numpy as np

from repro.apps.montecarlo_pi import estimate_pi


def main() -> None:
    print(f"{'samples':>10} {'pi estimate':>12} {'abs error':>10} "
          f"{'kernel ms':>10} {'total ms':>10}")
    for exp in (14, 16, 18, 20):
        n = 1 << exp
        r = estimate_pi(n, seed=2014)
        print(f"{n:>10,} {r.pi:>12.6f} {abs(r.pi - np.pi):>10.6f} "
              f"{r.kernel_ms:>10.3f} {r.total_ms:>10.3f}")
    print("\n(the paper sweeps 1-4 GB of samples: transfer time dominates,"
          "\n which is why Fig. 12(c) scales linearly with the data size)")


if __name__ == "__main__":
    main()
