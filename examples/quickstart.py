#!/usr/bin/env python
"""Quickstart: compile and run an OpenACC reduction on the simulated GPU.

The source below is the paper's simplest shape (Fig. 10): one loop
distributed over all three levels of parallelism — gang, worker, vector —
with a ``+`` reduction.  The compiler lowers it to a window-sliding CUDA
kernel plus a finish kernel (§3.2.2), runs it on the SIMT simulator, and
reports modeled Kepler-class timing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import acc

SOURCE = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


def main() -> None:
    print("Compiling with the OpenUH profile "
          "(192 gangs x 8 workers x 128 vector)...")
    prog = acc.compile(SOURCE, compiler="openuh")

    n = 1 << 20
    a = np.arange(n, dtype=np.float32) % 97

    print(f"Running over {n:,} elements...")
    result = prog.run(a=a)

    got = result.scalars["total"]
    expect = int(a.astype(np.int64).sum())
    print(f"  device total = {got}")
    print(f"  numpy  total = {expect}")
    assert got == expect, "mismatch!"

    print(f"\nModeled time: {result.modeled_ms:.3f} ms total "
          f"({result.kernel_ms:.3f} ms kernels, "
          f"{result.transfer_ms:.3f} ms PCIe)")
    print("\nPer-step ledger:")
    for label, us in result.ledger.entries:
        print(f"  {label:<35} {us / 1000.0:9.3f} ms")

    print("\nGenerated kernels (pseudo-CUDA):")
    print(prog.dump_kernels())


if __name__ == "__main__":
    main()
