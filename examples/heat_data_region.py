#!/usr/bin/env python
"""Heat equation with a device data region (`#pragma acc data` semantics).

The naive OpenACC version (examples/heat_equation.py, matching the paper's
era) re-transfers the temperature grids across PCIe on every launch.  A
surrounding data region keeps them device-resident; only the scalar
convergence error crosses per iteration.  This example runs both and
reports the modeled transfer savings.

Run:  python examples/heat_data_region.py
"""

import numpy as np

from repro import acc
from repro.apps.heat2d import ERROR_SRC, UPDATE_SRC, initial_grid, solve_heat


#: device-side grid copy (temp1 <- temp2), so the Jacobi ping-pong never
#: touches the host
COPY_SRC = """
float temp1[nj][ni];
float temp2[nj][ni];
#pragma acc parallel copyin(temp2) copyout(temp1)
{
  #pragma acc loop gang
  for (j = 0; j < nj; j++) {
    #pragma acc loop vector
    for (i = 0; i < ni; i++)
      temp1[j][i] = temp2[j][i];
  }
}
"""


def solve_with_data_region(n, tol, max_iters):
    geom = dict(num_gangs=max(4, n - 2), num_workers=1, vector_length=64)
    update = acc.compile(UPDATE_SRC, **geom)
    errprog = acc.compile(ERROR_SRC, **geom)
    devcopy = acc.compile(COPY_SRC, **geom)
    t = initial_grid(n)
    kernel_ms = total_ms = 0.0
    iters = 0
    converged = False
    with acc.DataRegion(copy={"temp1": t, "temp2": t.copy()}) as region:
        for it in range(1, max_iters + 1):
            upd = update.run(data_region=region)  # temp2 <- stencil(temp1)
            err = errprog.run(data_region=region)  # error = max|temp1 - temp2|
            cpy = devcopy.run(data_region=region)  # temp1 <- temp2, device-side
            kernel_ms += upd.kernel_ms + err.kernel_ms + cpy.kernel_ms
            total_ms += upd.modeled_ms + err.modeled_ms + cpy.modeled_ms
            iters = it
            if float(err.scalars["error"]) < tol:
                converged = True
                break
    total_ms += region.transfer_ms
    return converged, iters, kernel_ms, total_ms


def main() -> None:
    n, tol, iters = 32, 0.25, 150
    naive = solve_heat(n=n, tol=tol, max_iters=iters)
    conv, its, kms, tms = solve_with_data_region(n, tol, iters)

    print(f"{n}x{n} grid, tolerance {tol}:")
    print(f"  naive per-launch transfers : {naive.iterations:3d} iters, "
          f"{naive.kernel_ms:7.2f} ms kernels, {naive.total_ms:8.2f} ms total")
    print(f"  with data region           : {its:3d} iters, "
          f"{kms:7.2f} ms kernels, {tms:8.2f} ms total")
    assert conv and naive.converged
    assert abs(its - naive.iterations) <= 1
    print(f"\n  -> same convergence; note how much of the naive total was "
          f"PCIe ({naive.total_ms - naive.kernel_ms:.2f} ms)")


if __name__ == "__main__":
    main()
