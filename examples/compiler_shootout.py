#!/usr/bin/env python
"""Mini Table 2: the reduction testsuite across the three compiler profiles.

A fast, scaled-down rendition of the paper's headline result — only the
OpenUH implementation passes every reduction case; the two commercial-like
baselines fail exactly the cells Table 2 reports (wrong results from their
modeled defects, compile errors from their declared limitations).

Run:  python examples/compiler_shootout.py          (about a minute)
      python -m repro.bench.table2                  (full-size version)
"""

from repro.testsuite import run_testsuite


def main() -> None:
    print("Running the reduction testsuite "
          "(7 positions x {+,*} x int, scaled sizes)...\n")
    rep = run_testsuite(ops=("+", "*"), ctypes=("int",), size=1024,
                        num_gangs=8, num_workers=4, vector_length=32)
    print(rep.to_table())
    print()
    print("Legend: cells are modeled kernel ms; F = wrong result produced")
    print("by an executed (defective) code path; CE = declared compile")
    print("error.  Compare with the paper's Table 2: only OpenUH passes")
    print("every case.")


if __name__ == "__main__":
    main()
