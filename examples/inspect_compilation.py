#!/usr/bin/env python
"""Walk the compiler pipeline stage by stage for one of the paper's figures.

Shows, for the Fig. 9 program (reduction across worker & vector in
different loops), every intermediate artifact:

  1. the OpenACC directives as parsed,
  2. the reduction-span inference (the "OpenUH is smarter" analysis:
     a single clause on the worker loop, span auto-detected to
     worker & vector),
  3. the generated kernels as pseudo-CUDA,
  4. an execution's event counters and modeled-cost breakdown.

Run:  python examples/inspect_compilation.py
"""

import numpy as np

from repro import acc
from repro.frontend.cparser import parse_region
from repro.frontend.lexer import tokenize
from repro.gpu.costmodel import CostModel
from repro.gpu.device import K20C
from repro.ir.analysis import analyze_region
from repro.ir.builder import build_region

FIG9 = """
float input[NK][NJ][NI];
float temp[NK];
#pragma acc parallel copyin(input) copyout(temp)
{
  #pragma acc loop gang
  for (k = 0; k < NK; k++) {
    int j_sum = k;
    #pragma acc loop worker reduction(+:j_sum)
    for (j = 0; j < NJ; j++) {
      #pragma acc loop vector
      for (i = 0; i < NI; i++)
        j_sum += input[k][j][i];
    }
    temp[k] = j_sum;
  }
}
"""


def main() -> None:
    print("=" * 70)
    print("Stage 0 — source (the paper's Fig. 9)")
    print("=" * 70)
    print(FIG9)

    print("=" * 70)
    print("Stage 1 — lexer: pragma tokens")
    print("=" * 70)
    for tok in tokenize(FIG9):
        if tok.kind == "PRAGMA":
            print(f"  line {tok.line}: #{tok.text}")

    print()
    print("=" * 70)
    print("Stage 2 — IR + reduction-span analysis")
    print("=" * 70)
    region = build_region(parse_region(FIG9))
    print("  arrays :", ", ".join(f"{a.name}({a.transfer})"
                                  for a in region.arrays))
    print("  scalars:", ", ".join(s.name for s in region.scalars))
    plan = analyze_region(region, num_workers=8, vector_length=128)
    for info in plan.all_reductions:
        print(f"  reduction {info.var!r}: operator {info.op.token!r}, "
              f"clause on loop {info.clause_loop_id}, "
              f"inferred span = {' & '.join(info.span)}")
    print("  (the clause is only on the worker loop; the vector span was")
    print("   detected automatically — §3.2.1's usability point)")

    print()
    print("=" * 70)
    print("Stage 3 — generated kernels")
    print("=" * 70)
    prog = acc.compile(FIG9, num_gangs=4, num_workers=4, vector_length=32)
    print(prog.dump_kernels())

    print()
    print("=" * 70)
    print("Stage 4 — execution counters and modeled cost")
    print("=" * 70)
    rng = np.random.default_rng(0)
    inp = rng.integers(0, 5, size=(3, 8, 64)).astype(np.float32)
    res = prog.run(input=inp, temp=np.zeros(3, np.float32))
    print("  result :", res.outputs["temp"])
    print("  expect :", np.array([k + inp[k].sum() for k in range(3)],
                                 dtype=np.float32))
    for name, st in res.kernel_stats.items():
        tb = CostModel(K20C).kernel_time(st)
        print(f"\n  {name}:")
        print(f"    {st.summary()}")
        print(f"    compute {tb.compute_us:.2f} us | global "
              f"{tb.global_us:.2f} us | shared {tb.shared_us:.2f} us | "
              f"sync {tb.sync_us:.2f} us | {tb.concurrency} blocks resident")


if __name__ == "__main__":
    main()
