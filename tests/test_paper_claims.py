"""The paper's headline claims, each as an executable assertion.

Every test quotes the claim (abridged) and checks it end-to-end on this
reproduction.  This module is the capstone: if it passes, the system
reproduces what the paper says — at model scale, per EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro import acc
from repro.testsuite import make_case, run_case, run_testsuite
from repro.testsuite.cases import ALL_CTYPES, ALL_OPS, POSITIONS

SMALL = dict(num_gangs=6, num_workers=4, vector_length=32)


class TestClaim1_AllCases:
    """§1: "Our algorithms cover all possible cases of reduction operations
    in three levels of parallelism, all reduction operator types and
    operand data types." """

    def test_full_grid_passes_under_openuh(self):
        rep = run_testsuite(compilers=("openuh",), positions=POSITIONS,
                            ops=ALL_OPS, ctypes=ALL_CTYPES, size=160,
                            **SMALL)
        assert rep.total("openuh") == 7 * (6 * 4 + 3 * 2)  # 210 cases
        failures = [r.case.label for r in rep.results if not r.passed]
        assert not failures, failures


class TestClaim2_Table2:
    """§4: "only OpenUH compiler passed all of the reduction tests";
    the baselines fail the exact cells of Table 2."""

    def test_pass_counts_match_paper(self):
        rep = run_testsuite(size=256, **SMALL)  # full {+,*} x 3-dtype grid
        assert rep.pass_count("openuh") == 42
        assert rep.pass_count("vendor-b") == 28  # PGI column: 14 F/CE cells
        assert rep.pass_count("vendor-a") == 33  # CAPS column: 9 F cells


class TestClaim3_SmartDetection:
    """§6: "Unlike one of the commercial compilers that needed to add the
    reduction clause in multiple-level parallelism, OpenUH could detect
    the position where the reduction has to occur intelligently and the
    user is only required to add the reduction clause once." """

    def test_single_clause_suffices_for_openuh_not_vendor_a(self):
        case = make_case("worker vector", "+", "int", size=256)
        assert case.source.count("reduction(") == 1  # one clause, Fig. 9
        assert run_case(case, "openuh", **SMALL).passed
        assert not run_case(case, "vendor-a", **SMALL).passed


class TestClaim4_ThreadCountIndependence:
    """§2.2: "Our implementation is designed in a way that it is
    independent of the number of threads used in each loop level." """

    @pytest.mark.parametrize("geom", [
        dict(num_gangs=1, num_workers=1, vector_length=32),
        dict(num_gangs=13, num_workers=5, vector_length=96),
        dict(num_gangs=2, num_workers=8, vector_length=128),
    ])
    def test_any_geometry_same_answer(self, geom):
        case = make_case("gang worker vector", "+", "long", size=777)
        assert run_case(case, "openuh", **geom).passed


class TestClaim5_NonPowerOfTwo:
    """§3.3: "We remove such a restriction in OpenUH" — iteration spaces
    and thread sizes need not be powers of two; non-warp-multiple vector
    sizes stay correct but degrade."""

    def test_odd_everything_is_correct(self):
        case = make_case("vector", "+", "int", size=999)
        assert run_case(case, "openuh", num_gangs=3, num_workers=3,
                        vector_length=33).passed

    def test_non_warp_multiple_costs_more(self):
        case = make_case("vector", "+", "int", size=2048)
        aligned = run_case(case, "openuh", num_gangs=4, num_workers=4,
                           vector_length=96)
        odd = run_case(case, "openuh", num_gangs=4, num_workers=4,
                       vector_length=100)
        assert aligned.passed and odd.passed
        assert odd.modeled_ms > aligned.modeled_ms


class TestClaim6_InitialValues:
    """§3.1.1: "the initial value of the variable that needs to be reduced
    may have a different value for the private copy" — the incoming value
    is folded exactly once, per enclosing iteration."""

    def test_per_iteration_initial_values(self):
        src = """
        float a[NK][NI];
        float out[NK];
        #pragma acc parallel copyin(a) copyout(out)
        {
          #pragma acc loop gang
          for (k = 0; k < NK; k++) {
            float s = k * 100.0f;
            #pragma acc loop vector reduction(+:s)
            for (i = 0; i < NI; i++)
              s += a[k][i];
            out[k] = s;
          }
        }
        """
        prog = acc.compile(src, **SMALL)
        a = np.ones((4, 50), np.float32)
        res = prog.run(a=a, out=np.zeros(4, np.float32))
        np.testing.assert_allclose(res.outputs["out"],
                                   [k * 100.0 + 50 for k in range(4)])


class TestClaim7_Applications:
    """§4: heat converges under OpenUH and never under the CAPS-like
    baseline; matmul's PGI-like product is wrong; Monte Carlo π matches
    the CPU count exactly."""

    def test_heat(self):
        from repro.apps.heat2d import solve_heat
        assert solve_heat(n=16, tol=0.5, max_iters=60).converged
        assert not solve_heat(n=16, tol=0.5, max_iters=60,
                              compiler="vendor-a").converged

    def test_matmul(self):
        from repro.apps.matmul import matmul
        rng = np.random.default_rng(0)
        A = rng.random((12, 12)).astype(np.float32)
        B = rng.random((12, 12)).astype(np.float32)
        geom = dict(num_gangs=4, num_workers=2, vector_length=32)
        assert matmul(A, B, **geom).correct
        assert not matmul(A, B, compiler="vendor-b", **geom).correct

    def test_pi(self):
        from repro.apps.montecarlo_pi import estimate_pi
        r = estimate_pi(1 << 14, seed=1, num_gangs=8, vector_length=64)
        assert abs(r.pi - np.pi) < 0.05


class TestClaim8_SharedMemoryEconomy:
    """§3.1.2/§3.3: the chosen worker strategy "requires less threads and
    less shared memory"; mixed-dtype reductions share one region sized by
    the largest type."""

    def test_first_row_uses_less_shared_than_duplicated(self):
        case = make_case("worker", "+", "float", size=256)
        src = case.source
        a = acc.compile(src, **SMALL, worker_strategy="first_row")
        b = acc.compile(src, **SMALL, worker_strategy="duplicated")
        assert a.lowered.main_kernel.shared_bytes \
            < b.lowered.main_kernel.shared_bytes

    def test_mixed_dtype_overlay(self):
        src = """
        float a[NK][NI];
        float o1[NK];
        double o2[NK];
        #pragma acc parallel copyin(a) copyout(o1, o2)
        {
          #pragma acc loop gang
          for (k = 0; k < NK; k++) {
            int s1 = 0;
            double s2 = 0.0;
            #pragma acc loop vector reduction(+:s1,s2)
            for (i = 0; i < NI; i++) {
              s1 += a[k][i];
              s2 += a[k][i];
            }
            o1[k] = s1;
            o2[k] = s2;
          }
        }
        """
        prog = acc.compile(src, **SMALL)
        main = prog.lowered.main_kernel
        per_dtype = {s.dtype: s.nbytes for s in main.shared}
        assert main.shared_bytes == max(per_dtype.values())  # not the sum
