"""Exception-hierarchy tests: every layer raises catchable ReproErrors."""

import numpy as np
import pytest

from repro import acc
from repro.errors import (
    AnalysisError, BarrierDivergenceError, CompileError,
    DegradedExecutionError, DirectiveError, KernelLaunchError,
    LoweringError, OutOfBoundsError, ParseError, ReproError, ResourceError,
    RuntimeDataError, SilentCorruptionError, SimulationError,
    TransferFaultError, TransientFaultError, UnsupportedReductionError,
    WatchdogTimeoutError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        CompileError, ParseError, DirectiveError, AnalysisError,
        UnsupportedReductionError, LoweringError, SimulationError,
        BarrierDivergenceError, OutOfBoundsError, ResourceError,
        RuntimeDataError, TransientFaultError, KernelLaunchError,
        TransferFaultError, WatchdogTimeoutError, SilentCorruptionError,
        DegradedExecutionError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize("exc", [
        ParseError, DirectiveError, AnalysisError,
        UnsupportedReductionError, LoweringError,
    ])
    def test_compile_time_family(self, exc):
        assert issubclass(exc, CompileError)

    def test_parse_error_location(self):
        e = ParseError("bad token", line=3, col=7)
        assert "line 3" in str(e) and "col 7" in str(e)
        assert (e.line, e.col) == (3, 7)


class TestOneCatchSiteSuffices:
    """A driver that catches CompileError handles every front/mid-end
    failure; catching ReproError handles everything."""

    @pytest.mark.parametrize("src", [
        "int x = ;",                                 # syntax
        "#pragma acc parallel async(1)\n{ x = 1; }",  # directive
        # semantic: reduction variable never defined
        """
        float a[n];
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(+:ghost)
        for (i = 0; i < n; i++)
            a[i] = a[i];
        """,
    ])
    def test_compile_errors(self, src):
        with pytest.raises(CompileError):
            acc.compile(src)

    def test_runtime_errors(self):
        prog = acc.compile("""
        float a[n];
        #pragma acc parallel copy(a)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            a[i] = a[i];
        """, num_gangs=2, num_workers=1, vector_length=32)
        with pytest.raises(ReproError):
            prog.run()  # missing array

    def test_launch_config_errors_are_compile_errors(self):
        with pytest.raises(CompileError, match="threads per block"):
            acc.compile("""
            float a[n];
            #pragma acc parallel copy(a)
            #pragma acc loop gang
            for (i = 0; i < n; i++)
                a[i] = a[i];
            """, num_workers=16, vector_length=128)

    def test_device_oob_is_simulation_error(self):
        prog = acc.compile("""
        float a[n];
        float b[m];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            b[i] = a[i];
        """, num_gangs=2, num_workers=1, vector_length=32)
        with pytest.raises(SimulationError):
            prog.run(a=np.ones(8, np.float32), b=np.ones(4, np.float32))


class TestRobustnessTaxonomy:
    """The fault/watchdog additions slot into the existing hierarchy so
    established catch sites keep working."""

    @pytest.mark.parametrize("exc", [KernelLaunchError, TransferFaultError])
    def test_transient_family(self, exc):
        # retryable faults share one base the retry loop catches
        assert issubclass(exc, TransientFaultError)
        assert not issubclass(exc, SimulationError)

    def test_watchdog_is_a_simulation_error(self):
        # pre-existing `except SimulationError` handlers see hangs too
        assert issubclass(WatchdogTimeoutError, SimulationError)
        e = WatchdogTimeoutError("hung", kernel="k", steps=501, budget=500)
        assert (e.kernel, e.steps, e.budget) == ("k", 501, 500)

    def test_degraded_execution_carries_context(self):
        cause = SimulationError("boom")
        e = DegradedExecutionError("fell back", strategy="atomic",
                                   cause=cause)
        assert e.strategy == "atomic" and e.cause is cause

    def test_silent_corruption_not_transient(self):
        # wrong-but-no-exception results must not be blindly retried:
        # a deterministic corruption would recur forever
        assert not issubclass(SilentCorruptionError, TransientFaultError)

    def test_one_catch_site_covers_fault_layer(self):
        for exc in (TransientFaultError("x"), WatchdogTimeoutError("x"),
                    SilentCorruptionError("x"),
                    DegradedExecutionError("x")):
            try:
                raise exc
            except ReproError:
                pass
