"""Executor watchdog: hanging kernels become typed errors, not hangs."""

import numpy as np
import pytest

from repro.errors import SimulationError, WatchdogTimeoutError
from repro.faults import FaultPlan
from repro.gpu import GlobalMemory, K20C
from repro.gpu import kernelir as K
from repro.gpu.executor import DEFAULT_WATCHDOG_BUDGET, CompiledKernel


def _infinite_loop_kernel():
    # handwritten bug: the loop counter is never incremented, so the
    # exit condition can never fire — on real hardware this hangs the GPU
    return K.Kernel("spin", (
        K.Assign("i", K.const_int(0)),
        K.While(K.Bin("<", K.Reg("i"), K.const_int(10)), (
            K.Assign("x", K.Bin("+", K.Reg("i"), K.const_int(1))),
        )),
    ))


class TestWatchdog:
    def test_infinite_loop_trips_watchdog(self):
        ck = CompiledKernel(_infinite_loop_kernel(), K20C)
        with pytest.raises(WatchdogTimeoutError) as ei:
            ck.run(GlobalMemory(K20C), 1, (8, 1), watchdog_budget=500)
        assert ei.value.kernel == "spin"
        assert ei.value.steps > ei.value.budget == 500
        # the watchdog is a SimulationError: existing catch sites work
        assert isinstance(ei.value, SimulationError)

    def test_budget_zero_disables(self):
        # a terminating loop must finish even with the watchdog disabled
        kern = K.Kernel("ok", (
            K.Assign("i", K.const_int(0)),
            K.While(K.Bin("<", K.Reg("i"), K.const_int(10)), (
                K.Assign("i", K.Bin("+", K.Reg("i"), K.const_int(1))),
            )),
        ))
        ck = CompiledKernel(kern, K20C)
        stats = ck.run(GlobalMemory(K20C), 1, (8, 1), watchdog_budget=0)
        assert stats is not None

    def test_default_budget_not_hit_by_legit_kernels(self):
        kern = K.Kernel("ok", (
            K.Assign("i", K.const_int(0)),
            K.While(K.Bin("<", K.Reg("i"), K.const_int(100)), (
                K.Assign("i", K.Bin("+", K.Reg("i"), K.const_int(1))),
            )),
        ))
        stats = CompiledKernel(kern, K20C).run(GlobalMemory(K20C), 2, (8, 1))
        assert stats is not None
        assert DEFAULT_WATCHDOG_BUDGET >= 1_000_000


class TestStuckWarpMode:
    SRC = """
    float a[n];
    float total = 0.0;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang worker vector reduction(+:total)
    for (i = 0; i < n; i++)
        total += a[i];
    """

    def test_stuck_warp_is_detected_not_silent(self):
        """Stuck-warp mode makes loop exits never fire; either the
        watchdog or a bounds check must convert the spin into a typed
        SimulationError — it must never return a result."""
        from repro import acc

        prog = acc.compile(self.SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = np.ones(128, dtype=np.float32)
        inj = FaultPlan(seed=0, p_stuck_warp=1.0).injector()
        with pytest.raises(SimulationError):
            prog.run(faults=inj, watchdog_budget=2000, max_attempts=1, a=a)
        assert any(r.kind == "stuck-warp" for r in inj.records)
