"""The determinism contract: same seed ⇒ same fault sites, same campaign."""

import numpy as np

from repro import acc
from repro.faults import FaultPlan, run_campaign

VECSUM = """
float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


def _run_with(seed):
    prog = acc.compile(VECSUM, num_gangs=4, num_workers=2,
                       vector_length=32)
    a = np.arange(256, dtype=np.float32)
    inj = FaultPlan(seed=seed, p_gload_flip=0.05,
                    max_faults=None).injector()
    res = prog.run(faults=inj, runs=3, degrade=True, a=a)
    return inj, res


class TestInjectorDeterminism:
    def test_same_seed_identical_fault_sites(self):
        inj1, res1 = _run_with(seed=13)
        inj2, res2 = _run_with(seed=13)
        assert [r.to_dict() for r in inj1.records] == \
            [r.to_dict() for r in inj2.records]
        assert res1.strategy == res2.strategy
        assert res1.scalars["total"].tobytes() == \
            res2.scalars["total"].tobytes()

    def test_different_seed_different_sites(self):
        # not guaranteed in principle, but with many draws the chance of a
        # collision across seeds is negligible; a failure here means the
        # seed is being ignored
        inj1, _ = _run_with(seed=1)
        inj2, _ = _run_with(seed=2)
        assert [r.to_dict() for r in inj1.records] != \
            [r.to_dict() for r in inj2.records]


class TestCampaignDeterminism:
    def test_same_seed_identical_campaign_table(self):
        kw = dict(seed=4, trials=12, num_gangs=4, num_workers=2,
                  vector_length=32, size=128)
        c1 = run_campaign(VECSUM, **kw)
        c2 = run_campaign(VECSUM, **kw)
        assert c1.to_dict() == c2.to_dict()
        assert c1.table() == c2.table()

    def test_trial_seeds_are_unique_and_seed_dependent(self):
        kw = dict(trials=12, num_gangs=4, num_workers=2,
                  vector_length=32, size=128)
        c1 = run_campaign(VECSUM, seed=0, **kw)
        c2 = run_campaign(VECSUM, seed=1, **kw)
        s1 = [t.plan_seed for t in c1.trials]
        s2 = [t.plan_seed for t in c2.trials]
        assert len(set(s1)) == len(s1)
        assert set(s1).isdisjoint(s2)
