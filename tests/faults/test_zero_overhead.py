"""The zero-overhead pin: ``Program.run()`` with every robustness knob at
its default must be bit-identical — results *and* modeled cost — to the
plain execution path, mirroring the profiler's pure-observer guarantee."""

import numpy as np

from repro import acc

SRC = """
float a[n];
double total = 0.0;
int hits = 0;
#pragma acc parallel copy(a)
#pragma acc loop gang worker vector reduction(+:total) reduction(+:hits)
for (i = 0; i < n; i++) {
    total += a[i];
    if (a[i] > 4.0f) hits += 1;
}
"""


def _inputs():
    rng = np.random.default_rng(7)
    return {"a": (rng.random(192) * 8).astype(np.float32)}


class TestZeroOverhead:
    def test_default_run_takes_the_plain_path_bit_identical(self):
        prog = acc.compile(SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        via_run = prog.run(**_inputs())
        plain = prog._execute(trace=False, data_region=None, profiler=None,
                              kwargs=_inputs())

        assert via_run.strategy == "primary"
        assert via_run.attempts == 1 and not via_run.degradations
        for name, v in plain.scalars.items():
            got = via_run.scalars[name]
            assert got == v and got.dtype == v.dtype
            assert np.asarray(got).tobytes() == np.asarray(v).tobytes()
        for name, arr in plain.outputs.items():
            assert via_run.outputs[name].tobytes() == arr.tobytes()
        # modeled cost identical entry by entry: no hidden ledger items
        assert via_run.ledger.entries == plain.ledger.entries
        assert set(via_run.kernel_stats) == set(plain.kernel_stats)

    def test_default_watchdog_does_not_change_stats(self):
        """The watchdog counts loop steps on existing control flow; it must
        not add events, transactions, or modeled time."""
        prog = acc.compile(SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        base = prog.run(**_inputs())
        budgeted = prog.run(watchdog_budget=10_000_000, **_inputs())
        disabled = prog.run(watchdog_budget=0, **_inputs())
        for other in (budgeted, disabled):
            assert other.ledger.entries == base.ledger.entries
            assert other.scalars["total"].tobytes() == \
                base.scalars["total"].tobytes()

    def test_run_repeatable(self):
        prog = acc.compile(SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        r1 = prog.run(**_inputs())
        r2 = prog.run(**_inputs())
        assert r1.scalars["total"].tobytes() == r2.scalars["total"].tobytes()
        assert r1.ledger.entries == r2.ledger.entries
