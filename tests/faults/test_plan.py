"""FaultPlan: immutable, validated, JSON-round-trippable configuration."""

import dataclasses

import pytest

from repro.faults import FAULT_KINDS, FaultInjector, FaultPlan


class TestConstruction:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan()
        assert not plan.any_enabled
        assert plan.max_faults == 1

    def test_frozen(self):
        plan = FaultPlan()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 7

    @pytest.mark.parametrize("field", [
        "p_gload_flip", "p_sload_flip", "p_transfer_corrupt",
        "p_transfer_fail", "p_launch_fail", "p_stuck_warp",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_validated(self, field, bad):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: bad})

    def test_single_enables_exactly_one_kind(self):
        for label, field, prob in FAULT_KINDS:
            plan = FaultPlan.single(label, seed=42)
            assert plan.seed == 42
            assert getattr(plan, field) == prob
            others = [f for _, f, _ in FAULT_KINDS if f != field]
            assert all(getattr(plan, f) == 0.0 for f in others)

    def test_single_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.single("cosmic-ray", seed=0)


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=99, p_gload_flip=0.25, p_launch_fail=1.0,
                         max_faults=None)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"seed": 0, "p_cosmic_ray": 0.5})

    def test_to_dict_is_plain_data(self):
        d = FaultPlan.single("transfer-fail", seed=3).to_dict()
        assert d["seed"] == 3 and d["p_transfer_fail"] == 0.5
        assert all(isinstance(k, str) for k in d)


class TestActivation:
    def test_injector_is_fresh_each_call(self):
        plan = FaultPlan.single("launch-fail", seed=0)
        a, b = plan.injector(), plan.injector()
        assert isinstance(a, FaultInjector) and a is not b
        assert a.records == [] and b.records == []

    def test_max_faults_caps_arming(self):
        inj = FaultPlan(p_launch_fail=1.0, max_faults=1).injector()
        assert inj.armed
        with pytest.raises(Exception):
            inj.on_launch("k")
        assert not inj.armed
        inj.on_launch("k")  # disarmed: must not raise again
        assert len(inj.records) == 1
