"""Hardened execution: retry, redundant voting, graceful degradation."""

import numpy as np
import pytest

from repro import acc
from repro.acc.compiler import FALLBACK_CHAIN
from repro.errors import (
    DegradedExecutionError, KernelLaunchError, SilentCorruptionError,
    SimulationError,
)
from repro.faults import FaultPlan
from repro.obs import Profiler

VECSUM = """
float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


def _compile(**kw):
    kw.setdefault("num_gangs", 4)
    kw.setdefault("num_workers", 2)
    kw.setdefault("vector_length", 32)
    return acc.compile(VECSUM, **kw)


@pytest.fixture
def a128():
    return np.arange(128, dtype=np.float32)


class TestRetry:
    def test_transient_launch_fault_corrected_by_retry(self, a128):
        # p=1 with max_faults=1: the first launch fails deterministically,
        # the injector disarms, and the retry succeeds
        inj = FaultPlan(seed=0, p_launch_fail=1.0, max_faults=1).injector()
        prof = Profiler()
        res = _compile().run(faults=inj, profiler=prof, a=a128)
        assert res.attempts == 2
        assert res.scalars["total"] == a128.sum()
        assert res.strategy == "primary" and not res.degradations
        backoffs = [us for label, us in res.ledger.entries
                    if label == "retry:backoff"]
        assert backoffs == [100.0]
        counters = prof.metrics.to_dict()["counters"]
        assert counters["faults.retries"] == 1.0
        assert counters["faults.transient_detected"] == 1.0

    def test_retries_exhausted_raises_transient(self, a128):
        inj = FaultPlan(p_launch_fail=1.0, max_faults=None).injector()
        with pytest.raises(KernelLaunchError):
            _compile().run(faults=inj, max_attempts=3, a=a128)
        assert len(inj.records) == 3

    def test_backoff_is_capped_exponential(self, a128):
        inj = FaultPlan(p_launch_fail=1.0, max_faults=3).injector()
        res = _compile().run(faults=inj, max_attempts=5, backoff_us=100.0,
                             backoff_cap_us=250.0, a=a128)
        assert res.attempts == 4
        backoffs = [us for label, us in res.ledger.entries
                    if label == "retry:backoff"]
        assert backoffs == [100.0, 200.0, 250.0]


class TestDegradation:
    def test_primary_failure_degrades_to_fallback(self, a128, monkeypatch):
        """A SimulationError in the primary lowering must not surface when
        degrade=True: the fallback chain serves the correct answer and the
        degradation is visible on the result and in obs metrics."""
        prog = _compile()
        main = prog._compiled[prog.lowered.main_kernel.name]
        monkeypatch.setattr(
            main, "run",
            lambda *a, **k: (_ for _ in ()).throw(
                SimulationError("injected lowering defect")))
        prof = Profiler()
        res = prog.run(degrade=True, profiler=prof, a=a128)
        assert res.strategy == "shared-tree"
        assert res.degraded
        assert len(res.degradations) == 1
        d = res.degradations[0]
        assert isinstance(d, DegradedExecutionError)
        assert d.strategy == "primary"
        assert isinstance(d.cause, SimulationError)
        assert res.scalars["total"] == a128.sum()
        counters = prof.metrics.to_dict()["counters"]
        assert counters["faults.degraded"] == 1.0
        assert counters["faults.served_by.shared-tree"] == 1.0
        assert counters["faults.strategy_failures"] == 1.0

    def test_chain_ends_at_host_sequential(self, a128, monkeypatch):
        # break *every* simulated lowering: only the host interpreter left
        import repro.gpu.executor as ex

        monkeypatch.setattr(
            ex.CompiledKernel, "run",
            lambda *a, **k: (_ for _ in ()).throw(
                SimulationError("device broken")))
        res = _compile().run(degrade=True, a=a128)
        assert res.strategy == "host-sequential"
        assert res.scalars["total"] == a128.sum()
        assert [d.strategy for d in res.degradations] == \
            ["primary"] + [name for name, _ in FALLBACK_CHAIN[:-1]]

    def test_without_degrade_error_surfaces(self, a128, monkeypatch):
        prog = _compile()
        main = prog.lowered.main_kernel.name
        monkeypatch.setattr(
            prog._compiled[main], "run",
            lambda *a, **k: (_ for _ in ()).throw(
                SimulationError("injected lowering defect")))
        with pytest.raises(SimulationError, match="lowering defect"):
            prog.run(runs=1, degrade=False, validate=lambda r: True, a=a128)

    def test_validate_rejection_degrades(self, a128):
        calls = []

        def validator(res):
            calls.append(res.scalars["total"])
            return len(calls) > 1  # reject the primary, accept the fallback

        res = _compile().run(degrade=True, validate=validator, a=a128)
        assert res.strategy == "shared-tree"
        assert len(calls) == 2
        assert res.scalars["total"] == a128.sum()
        assert any("validation" in str(d) for d in res.degradations)


class TestVoting:
    def test_h2d_corruption_outvoted(self, a128):
        # one corrupted replica out of three: majority serves the truth
        inj = FaultPlan(seed=1, p_transfer_corrupt=1.0,
                        max_faults=1).injector()
        prof = Profiler()
        res = _compile().run(faults=inj, runs=3, profiler=prof, a=a128)
        assert res.scalars["total"] == a128.sum()
        assert any("vote" in str(d) for d in res.degradations)
        counters = prof.metrics.to_dict()["counters"]
        assert counters["faults.vote_corrected"] == 1.0
        assert counters["faults.silent_corruption_detected"] == 1.0

    def test_unanimous_vote_is_clean(self, a128):
        res = _compile().run(runs=3, a=a128)
        assert res.scalars["total"] == a128.sum()
        assert not res.degradations and res.strategy == "primary"

    def test_no_majority_raises_silent_corruption(self, a128, monkeypatch):
        import repro.acc.compiler as C

        fingerprints = iter([b"a", b"b", b"c"])
        monkeypatch.setattr(C, "_fingerprint",
                            lambda res: next(fingerprints))
        with pytest.raises(SilentCorruptionError, match="majority"):
            _compile().run(runs=3, degrade=False, a=a128)


class TestInterruptsNeverRetried:
    """A ^C (or interpreter shutdown) mid-run must stop the run at once —
    it is not a transient fault to retry, not a strategy failure to walk
    the fallback chain past, and never a vote to re-run."""

    def _interrupting(self, monkeypatch, exc_type):
        from repro.acc.compiler import Program

        calls = {"n": 0}
        real = Program._execute

        def boom(self, **kw):
            calls["n"] += 1
            raise exc_type()

        monkeypatch.setattr(Program, "_execute", boom)
        assert real is not Program._execute
        return calls

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_interrupt_consumes_exactly_one_attempt(self, a128,
                                                    monkeypatch, exc_type):
        calls = self._interrupting(monkeypatch, exc_type)
        prog = _compile()
        with pytest.raises(exc_type):
            # every hardening layer armed: retries, voting, degradation
            prog.run(max_attempts=5, runs=3, degrade=True, a=a128)
        assert calls["n"] == 1

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_interrupt_skips_retry_backoff(self, a128, monkeypatch,
                                           exc_type):
        # the retry loop alone (no voting/degradation) must re-raise
        # without consuming attempts or charging modeled backoff
        calls = self._interrupting(monkeypatch, exc_type)
        inj = FaultPlan(seed=0, p_launch_fail=0.0).injector()
        prog = _compile()
        with pytest.raises(exc_type):
            prog.run(faults=inj, max_attempts=4, a=a128)
        assert calls["n"] == 1


class TestWatchdogDegradeBatched:
    """Watchdog + ``degrade=True`` on the batched executor: a stuck warp
    becomes a typed SimulationError, the degradation chain walks past the
    hung strategy, and the served bits equal the unfaulted reference."""

    SRC_INT = """
    int a[n];
    int s = 0;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang worker vector reduction(+:s)
    for (i = 0; i < n; i++)
        s += a[i];
    """

    def _compile_int(self):
        return acc.compile(self.SRC_INT, num_gangs=4, num_workers=2,
                           vector_length=32)

    def test_stuck_warp_degrades_to_reference_bits(self):
        a = np.arange(256, dtype=np.int32)
        ref = self._compile_int().run(a=a)  # unfaulted baseline
        assert ref.strategy == "primary"

        inj = FaultPlan(seed=3, p_stuck_warp=1.0, max_faults=1).injector()
        res = self._compile_int().run(
            faults=inj, executor_mode="batched", watchdog_budget=2000,
            max_attempts=1, degrade=True, a=a)
        # the hang was detected (not absorbed silently)...
        assert any(r.kind == "stuck-warp" for r in inj.records)
        # ...the chain walked past the stuck strategy...
        assert res.degradations
        assert all(isinstance(d.cause, SimulationError)
                   for d in res.degradations if d.cause is not None)
        assert res.strategy != "primary"
        # ...and the degraded answer is bit-identical to the reference
        # (integer reduction: no reassociation grey zone)
        assert res.scalars["s"].tobytes() == ref.scalars["s"].tobytes()

    def test_batched_and_reference_degrade_to_same_bits(self):
        a = np.arange(256, dtype=np.int32)
        results = {}
        for mode in ("batched", "reference"):
            inj = FaultPlan(seed=3, p_stuck_warp=1.0,
                            max_faults=1).injector()
            res = self._compile_int().run(
                faults=inj, executor_mode=mode, watchdog_budget=2000,
                max_attempts=1, degrade=True, a=a)
            results[mode] = res.scalars["s"]
        assert results["batched"].tobytes() == \
            results["reference"].tobytes()
