"""Campaign classification: with detection on, nothing escapes."""

import json

import numpy as np
import pytest

from repro.faults import (
    CATEGORIES, FaultPlan, run_campaign, synthesize_inputs,
)
from repro.faults.campaign import _classify, _matches

VECSUM = """
float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(VECSUM, seed=0, trials=18, num_gangs=4,
                        num_workers=2, vector_length=32, size=128)


class TestCampaign:
    def test_nothing_escapes_with_detection_on(self, campaign):
        assert campaign.escaped == 0

    def test_every_trial_classified(self, campaign):
        assert sum(campaign.counts.values()) == 18
        assert all(t.category in CATEGORIES for t in campaign.trials)

    def test_all_kinds_exercised(self, campaign):
        kinds = {t.kind for t in campaign.trials}
        assert kinds == {"gload-flip", "sload-flip", "transfer-corrupt",
                         "transfer-fail", "launch-fail", "stuck-warp"}

    def test_hardening_engages(self, campaign):
        # the high-probability kinds guarantee corrective activity
        c = campaign.counts
        assert c["corrected-by-retry"] > 0
        assert c["degraded"] > 0

    def test_detection_off_measures_escapes(self):
        bare = run_campaign(VECSUM, seed=0, trials=18, num_gangs=4,
                            num_workers=2, vector_length=32, size=128,
                            detect=False)
        c = bare.counts
        # without retries/voting/degradation, faults surface as typed
        # errors or escape outright — nothing is corrected
        assert c["corrected-by-retry"] == 0 and c["degraded"] == 0
        assert c["detected"] + c["escaped"] > 0

    def test_to_dict_json_serializable(self, campaign):
        doc = json.loads(json.dumps(campaign.to_dict()))
        assert doc["counts"]["escaped"] == 0
        assert len(doc["trials"]) == 18

    def test_table_mentions_every_category(self, campaign):
        table = campaign.table()
        for cat in CATEGORIES:
            assert cat in table


class TestCascadeCampaign:
    """The campaign must also hold for a fused-cascade kernel."""

    CASCADE = """
float x[n];
float m = -3.0e38f;
float s = 0.0f;
#pragma acc parallel copyin(x)
{
#pragma acc loop gang worker vector reduction(max:m)
for (i = 0; i < n; i++) if (x[i] > m) m = x[i];
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + (x[i] - m);
}
"""

    # the full optimized pipeline routes this max through the atomic
    # style (no finish kernel left to cascade), so the campaign pins
    # the cascade-fusion pipeline to guarantee a fused kernel is in it
    PIPE = "cascade-fusion"

    @pytest.fixture(scope="class")
    def cascade_campaign(self):
        return run_campaign(self.CASCADE, seed=0, trials=12, num_gangs=4,
                            num_workers=2, vector_length=32, size=128,
                            pipeline=self.PIPE)

    def test_program_actually_fuses(self):
        from repro import acc

        prog = acc.compile(self.CASCADE, num_gangs=4, num_workers=2,
                           vector_length=32, pipeline=self.PIPE)
        assert any(g.cascade_fused for g in prog.lowered.gang_reductions)

    def test_nothing_escapes_the_fused_cascade(self, cascade_campaign):
        assert cascade_campaign.escaped == 0
        assert sum(cascade_campaign.counts.values()) == 12


class TestClassifier:
    class _Res:
        def __init__(self, scalars, strategy="primary", attempts=1,
                     degradations=()):
            self.scalars = scalars
            self.outputs = {}
            self.strategy = strategy
            self.attempts = attempts
            self.degradations = list(degradations)

    def _ref(self):
        return self._Res({"total": np.float32(10.0)})

    def test_no_records_is_clean(self):
        inj = FaultPlan().injector()
        assert _classify(self._ref(), self._ref(), inj) == "clean"

    def _fired(self):
        inj = FaultPlan(p_launch_fail=1.0).injector()
        try:
            inj.on_launch("k")
        except Exception:
            pass
        return inj

    def test_wrong_result_escapes(self):
        res = self._Res({"total": np.float32(11.0)})
        assert _classify(res, self._ref(), self._fired()) == "escaped"

    def test_degraded_beats_retry(self):
        res = self._Res({"total": np.float32(10.0)}, strategy="atomic",
                        attempts=2)
        assert _classify(res, self._ref(), self._fired()) == "degraded"

    def test_retry_classified(self):
        res = self._Res({"total": np.float32(10.0)}, attempts=2)
        assert _classify(res, self._ref(), self._fired()) == \
            "corrected-by-retry"

    def test_correct_untouched_result_is_masked(self):
        assert _classify(self._ref(), self._ref(), self._fired()) == "masked"

    def test_float_match_tolerates_reassociation(self):
        ref = self._Res({"total": np.float32(10.0)})
        near = self._Res({"total": np.float32(10.0) + np.float32(1e-6)})
        assert _matches(near, ref)
        far = self._Res({"total": np.float32(10.5)})
        assert not _matches(far, ref)


class TestInputSynthesis:
    def test_binds_extents_and_fills_missing(self):
        from repro import acc

        prog = acc.compile(VECSUM, num_gangs=4, num_workers=2,
                           vector_length=32)
        kwargs = {}
        synthesize_inputs(prog, kwargs, size=64)
        assert kwargs["a"].shape == (64,)
        assert kwargs["a"].dtype == np.float32

    def test_existing_arrays_kept(self):
        from repro import acc

        prog = acc.compile(VECSUM, num_gangs=4, num_workers=2,
                           vector_length=32)
        mine = np.ones(32, dtype=np.float32)
        kwargs = {"a": mine}
        synthesize_inputs(prog, kwargs, size=64)
        assert kwargs["a"] is mine
