"""FaultInjector site behavior: what each hook corrupts, and determinism."""

import numpy as np
import pytest

from repro.errors import (
    KernelLaunchError, TransferFaultError, TransientFaultError,
)
from repro.faults import FaultPlan


def _flip_once(seed):
    """Drive on_gload with p=1 until it corrupts one lane."""
    inj = FaultPlan(seed=seed, p_gload_flip=1.0).injector()
    out = np.arange(8, dtype=np.float32)
    inj.on_gload("a", out, np.ones(8, dtype=bool))
    return inj, out


class TestBitFlips:
    def test_gload_flip_corrupts_exactly_one_lane(self):
        inj, out = _flip_once(seed=5)
        clean = np.arange(8, dtype=np.float32)
        assert len(inj.records) == 1
        rec = inj.records[0]
        assert rec.site == "gload:a" and rec.kind == "bitflip"
        diff = np.flatnonzero(out.view(np.uint32) != clean.view(np.uint32))
        assert diff.tolist() == [rec.detail["lane"]]
        # exactly one bit differs in that lane
        xor = int(out.view(np.uint32)[diff[0]]
                  ^ clean.view(np.uint32)[diff[0]])
        assert xor == 1 << rec.detail["bit"]

    def test_same_seed_same_flip(self):
        inj1, out1 = _flip_once(seed=11)
        inj2, out2 = _flip_once(seed=11)
        assert inj1.records[0].to_dict() == inj2.records[0].to_dict()
        np.testing.assert_array_equal(out1, out2)

    def test_only_active_lanes_flipped(self):
        mask = np.zeros(8, dtype=bool)
        mask[3] = True
        for seed in range(10):
            inj = FaultPlan(seed=seed, p_sload_flip=1.0).injector()
            out = np.zeros(8, dtype=np.float32)
            inj.on_sload("s", out, mask)
            assert inj.records[0].detail["lane"] == 3

    def test_all_lanes_inactive_no_flip(self):
        inj = FaultPlan(p_gload_flip=1.0).injector()
        out = np.zeros(4, dtype=np.float32)
        inj.on_gload("a", out, np.zeros(4, dtype=bool))
        assert inj.records == [] and not out.any()


class TestTransfers:
    def test_corrupt_never_mutates_callers_array(self):
        inj = FaultPlan(seed=2, p_transfer_corrupt=1.0).injector()
        host = np.arange(16, dtype=np.float64)
        landed = inj.on_transfer("h2d:a", host, "h2d")
        np.testing.assert_array_equal(host, np.arange(16, dtype=np.float64))
        assert landed is not host
        rec = inj.records[0]
        diff = np.flatnonzero(landed.view(np.uint64) != host.view(np.uint64))
        assert diff.tolist() == [rec.detail["elem"]]

    def test_fail_raises_transient(self):
        inj = FaultPlan(p_transfer_fail=1.0).injector()
        with pytest.raises(TransferFaultError, match="h2d"):
            inj.on_transfer("h2d:a", np.zeros(4), "h2d")
        assert isinstance(TransferFaultError("x"), TransientFaultError)

    def test_disabled_passes_through_unchanged(self):
        inj = FaultPlan().injector()
        host = np.arange(4, dtype=np.int32)
        assert inj.on_transfer("d2h:a", host, "d2h") is host
        assert inj.records == []


class TestLaunchSites:
    def test_launch_fail_is_transient(self):
        inj = FaultPlan(p_launch_fail=1.0).injector()
        with pytest.raises(KernelLaunchError, match="kern"):
            inj.on_launch("kern")
        assert inj.sites == ("launch:kern",)

    def test_stuck_query(self):
        inj = FaultPlan(p_stuck_warp=1.0).injector()
        assert inj.on_stuck_query("kern") is True
        assert inj.records[0].kind == "stuck-warp"
        assert inj.on_stuck_query("kern") is False  # disarmed (max_faults=1)


class TestSiteIndependence:
    def test_disabled_sites_consume_no_rng_draws(self):
        """Enabling one fault kind must not shift another kind's sites:
        a site with probability 0 draws nothing from the RNG stream."""
        plan = FaultPlan(seed=123, p_launch_fail=0.5, max_faults=None)
        direct = plan.injector()
        direct_outcomes = []
        for _ in range(20):
            try:
                direct.on_launch("k")
                direct_outcomes.append(False)
            except KernelLaunchError:
                direct_outcomes.append(True)

        noisy = plan.injector()
        noisy_outcomes = []
        for _ in range(20):
            # interleave disabled-site queries: must not perturb anything
            noisy.on_gload("a", np.zeros(4, np.float32),
                           np.ones(4, dtype=bool))
            noisy.on_transfer("h2d:a", np.zeros(4), "h2d")
            try:
                noisy.on_launch("k")
                noisy_outcomes.append(False)
            except KernelLaunchError:
                noisy_outcomes.append(True)
        assert direct_outcomes == noisy_outcomes
        assert any(direct_outcomes) and not all(direct_outcomes)
