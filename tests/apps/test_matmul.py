"""Matrix-multiplication application tests (Fig. 12(b) behaviour)."""

import numpy as np
import pytest

from repro.apps.matmul import matmul

FAST = dict(num_gangs=8, num_workers=2, vector_length=32)


def mats(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, n)).astype(np.float32),
            rng.random((n, n)).astype(np.float32))


class TestCorrectness:
    @pytest.mark.parametrize("n", [4, 8, 16, 24])
    def test_matches_numpy(self, n):
        A, B = mats(n, seed=n)
        r = matmul(A, B, **FAST)
        assert r.correct
        np.testing.assert_allclose(
            r.C, (A.astype(np.float64) @ B.astype(np.float64)), rtol=1e-4)

    def test_identity(self):
        A, _ = mats(8)
        r = matmul(A, np.eye(8, dtype=np.float32), **FAST)
        np.testing.assert_allclose(r.C, A, rtol=1e-5)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            matmul(np.zeros((4, 5), np.float32), np.zeros((4, 5), np.float32))

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            matmul(np.zeros((4, 4), np.float32), np.zeros((8, 8), np.float32))

    def test_size_independent_of_geometry(self):
        A, B = mats(12, seed=3)
        a = matmul(A, B, num_gangs=4, num_workers=4, vector_length=16)
        b = matmul(A, B, num_gangs=16, num_workers=1, vector_length=64)
        np.testing.assert_allclose(a.C, b.C, rtol=1e-5)


class TestCompilerBehaviour:
    """Fig. 12(b): PGI fails vector '+'; OpenUH beats CAPS >2x."""

    def test_vendor_b_produces_wrong_product(self):
        A, B = mats(16, seed=1)
        r = matmul(A, B, compiler="vendor-b", **FAST)
        assert not r.correct

    def test_vendor_a_correct_but_slower(self):
        A, B = mats(16, seed=2)
        ours = matmul(A, B, **FAST)
        theirs = matmul(A, B, compiler="vendor-a", **FAST)
        assert theirs.correct
        # per-element reductions: vendor-a's barrier-per-step costs
        assert theirs.kernel_ms > ours.kernel_ms
