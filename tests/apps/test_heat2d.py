"""Heat-equation application tests (Fig. 12(a) behaviour)."""

import numpy as np
import pytest

from repro.apps.heat2d import initial_grid, reference_solver, solve_heat

FAST = dict(num_gangs=16, vector_length=32)


class TestCorrectness:
    def test_matches_reference_solver(self):
        r = solve_heat(n=20, tol=0.5, max_iters=60, **FAST)
        ref_t, ref_err, ref_conv = reference_solver(20, tol=0.5,
                                                    max_iters=60)
        assert r.converged == ref_conv
        assert r.iterations == len(ref_err)
        np.testing.assert_allclose(r.temperature, ref_t, atol=1e-4)

    def test_error_sequence_matches_reference(self):
        r = solve_heat(n=16, tol=0.8, max_iters=40, **FAST)
        _, ref_err, _ = reference_solver(16, tol=0.8, max_iters=40)
        np.testing.assert_allclose(r.errors, ref_err, rtol=1e-5)

    def test_errors_decrease(self):
        r = solve_heat(n=16, tol=0.01, max_iters=30, **FAST)
        # Jacobi max-delta decays monotonically for this setup
        assert all(b <= a + 1e-6 for a, b in zip(r.errors, r.errors[1:]))

    def test_boundary_preserved(self):
        r = solve_heat(n=16, tol=0.5, max_iters=30, boundary_temp=50.0,
                       **FAST)
        assert (r.temperature[0, :] == 50.0).all()
        assert (r.temperature[-1, :] == 0.0).all()

    def test_initial_grid(self):
        g = initial_grid(8, 42.0)
        assert g.shape == (8, 8) and g.dtype == np.float32
        assert (g[0] == 42.0).all() and (g[1:] == 0.0).all()

    def test_hits_iteration_cap_with_tight_tolerance(self):
        r = solve_heat(n=16, tol=1e-9, max_iters=5, **FAST)
        assert not r.converged and r.iterations == 5


class TestCompilerBehaviour:
    """The paper's Fig. 12(a): CAPS never converges; PGI is slower."""

    def test_vendor_a_never_converges(self):
        r = solve_heat(n=16, tol=0.5, max_iters=40, compiler="vendor-a",
                       **FAST)
        assert not r.converged
        # its reported error is a running max: non-decreasing
        assert all(b >= a - 1e-6 for a, b in zip(r.errors, r.errors[1:]))

    def test_vendor_b_converges_but_slower(self):
        args = dict(n=16, tol=0.5, max_iters=60, **FAST)
        ours = solve_heat(**args)
        theirs = solve_heat(compiler="vendor-b", **args)
        assert theirs.converged
        assert theirs.iterations == ours.iterations
        assert theirs.kernel_ms > ours.kernel_ms

    def test_openuh_faster_accumulates_over_iterations(self):
        # "the performance of the reduction implementation will accumulate
        # in an iterative algorithm" (§4)
        short = solve_heat(n=16, tol=1e-9, max_iters=3, **FAST)
        long = solve_heat(n=16, tol=1e-9, max_iters=12, **FAST)
        assert long.kernel_ms > 3 * short.kernel_ms
