"""Softmax application tests (the cascaded-reduction flagship)."""

import numpy as np
import pytest

from repro.apps.softmax import softmax, softmax_result

FAST = dict(num_gangs=4, num_workers=2, vector_length=32)


def reference(x):
    e = np.exp(x.astype(np.float64) - x.max())
    return e / e.sum()


class TestCorrectness:
    def test_matches_reference(self):
        x = np.random.default_rng(0).standard_normal(512) \
            .astype(np.float32)
        np.testing.assert_allclose(softmax(x, **FAST), reference(x),
                                   rtol=1e-5)

    def test_sums_to_one(self):
        x = np.linspace(-4, 4, 300).astype(np.float32)
        assert abs(float(softmax(x, **FAST).sum()) - 1.0) < 1e-5

    def test_large_magnitudes_stay_finite(self):
        # the max-subtraction is what the leading reduction is *for*
        x = np.array([1000.0, 1001.0, 999.0], np.float32)
        y = softmax(x, **FAST)
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y, reference(x), rtol=1e-5)

    @pytest.mark.parametrize("mode", ["reference", "batched", "trace"])
    def test_executor_modes_bit_identical(self, mode):
        x = np.random.default_rng(1).standard_normal(256) \
            .astype(np.float32)
        base = softmax_result(x, executor_mode="reference", **FAST)
        got = softmax_result(x, executor_mode=mode, **FAST)
        assert got.y.tobytes() == base.y.tobytes()


class TestCascade:
    def test_fusion_reduces_kernel_count(self):
        # pipeline pinned explicitly so the pin also holds under the
        # CI REPRO_PASSES=minimal leg
        x = np.random.default_rng(2).standard_normal(256) \
            .astype(np.float32)
        fused = softmax_result(x, pipeline="optimized", **FAST)
        never = softmax_result(x, pipeline="optimized",
                               cascade_fusion="never", **FAST)
        assert fused.num_kernels < never.num_kernels
        assert fused.y.tobytes() == never.y.tobytes()
        assert fused.kernel_ms < never.kernel_ms

    def test_telemetry_fields_populated(self):
        x = np.ones(64, np.float32)
        r = softmax_result(x, **FAST)
        assert r.max_value == 1.0
        assert r.denom == pytest.approx(64.0)
        assert len(r.kernel_names) == r.num_kernels
        assert r.total_ms > 0
