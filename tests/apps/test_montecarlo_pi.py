"""Monte Carlo π application tests (Fig. 12(c) behaviour)."""

import numpy as np
import pytest

from repro.apps.montecarlo_pi import estimate_pi

FAST = dict(num_gangs=16, vector_length=64)


class TestCorrectness:
    def test_count_matches_cpu_exactly(self):
        n, seed = 1 << 14, 7
        r = estimate_pi(n, seed=seed, **FAST)
        rng = np.random.default_rng(seed)
        x = (rng.random(n, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)
        y = (rng.random(n, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)
        expect = int((x * x + y * y < 1.0).sum())
        assert r.inside == expect

    def test_estimate_near_pi(self):
        r = estimate_pi(1 << 16, **FAST)
        assert abs(r.pi - np.pi) < 0.02

    def test_more_samples_usually_better(self):
        # not guaranteed per-seed, but with these seeds it holds — and the
        # point of the paper's sweep is that the estimate tightens
        small = estimate_pi(1 << 12, seed=5, **FAST)
        big = estimate_pi(1 << 17, seed=5, **FAST)
        assert big.error < small.error

    def test_deterministic(self):
        a = estimate_pi(1 << 13, seed=9, **FAST)
        b = estimate_pi(1 << 13, seed=9, **FAST)
        assert a.inside == b.inside and a.pi == b.pi

    def test_transfer_dominates_total(self):
        # the paper transfers the pre-generated samples (GBs on the real
        # machine); the modeled total must include that PCIe time
        r = estimate_pi(1 << 16, **FAST)
        assert r.total_ms > r.kernel_ms


class TestCompilerBehaviour:
    """Fig. 12(c): OpenUH slightly ahead of CAPS, well ahead of PGI."""

    def test_all_three_compilers_agree_on_count(self):
        rs = {c: estimate_pi(1 << 13, seed=3, compiler=c, **FAST)
              for c in ("openuh", "vendor-a", "vendor-b")}
        counts = {r.inside for r in rs.values()}
        assert len(counts) == 1

    def test_vendor_b_slowest(self):
        rs = {c: estimate_pi(1 << 15, seed=3, compiler=c, **FAST)
              for c in ("openuh", "vendor-b")}
        assert rs["vendor-b"].kernel_ms > rs["openuh"].kernel_ms
