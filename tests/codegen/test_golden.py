"""Golden-dump tests: the generated code is an executable spec of Fig. 3/5.

Temp-register ids are normalized (they come from global counters), so these
compare the exact *shape* of the emitted CUDA-like code.
"""

import re
import textwrap

import pytest

from repro import acc


def normalized_main_dump(src, **geom):
    # golden dumps pin the raw paper-shape lowering (no kernel-IR passes)
    geom.setdefault("pipeline", "minimal")
    prog = acc.compile(src, **geom)
    text = prog.dump_kernels().split("\n\n")[0]
    return re.sub(r"_(ls|ld|act|tmp|vres|wres|fres|sres|shfl|init)"
                  r"([A-Za-z_]*)\d+", r"_\1\2N", text)


class TestSameLineGolden:
    def test_fig10_vecsum_kernel(self):
        src = """
        float a[n];
        long total = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(+:total)
        for (i = 0; i < n; i++)
            total += a[i];
        """
        expected = textwrap.dedent("""\
        __global__ void acc_region_main(total, n) // buffers: _redp_total, a
          // lowered with window scheduling, row vector layout
        {
          total = $total;
          n = $n;
          total = 0L;
          // loop i: distributed over gang/worker/vector (window sliding, stride 64)
          i = (0 + (((((blockIdx.x * 1) + threadIdx.y) * 32) + threadIdx.x) * 1));
          while ((i < n)) {
            _ldN = a[i];  // global
            total = (long)((float)total + _ldN);
            i = (i + (64 * 1));
          }
          // gang-involved reduction of total (span gang&vector&worker): partials to global buffer, second kernel finishes
          _redp_total[((blockIdx.x * 32) + tid)] = total;  // global
        }""")
        got = normalized_main_dump(src, num_gangs=2, num_workers=1,
                                   vector_length=32)
        assert got == expected


class TestStructuralInvariants:
    """Shape facts that must survive refactoring (looser than full golden)."""

    FIG4A = """
    float input[NK][NJ][NI];
    float temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copyout(temp)
    {
      #pragma acc loop gang
      for(k=0; k<NK; k++){
        #pragma acc loop worker
        for(j=0; j<NJ; j++){
          int i_sum = j;
          #pragma acc loop vector reduction(+:i_sum)
          for(i=0; i<NI; i++)
            i_sum += input[k][j][i];
          temp[k][j][0] = i_sum;
        }
      }
    }
    """

    def lines(self, **geom):
        return normalized_main_dump(self.FIG4A, **geom).splitlines()

    def test_fig5a_shape(self):
        text = "\n".join(self.lines(num_gangs=2, num_workers=4,
                                    vector_length=32))
        # the Fig. 5(a) skeleton, in order:
        order = [
            "k = (0 + (blockIdx.x * 1));",          # gang offset
            "while-any (",                           # lock-step worker loop
            "i_sum = 0;",                            # identity seed
            "while (",                               # masked vector loop
            "_sred_int[((threadIdx.y * 32) + threadIdx.x)] = i_sum;",
            "__syncthreads();",                      # leading barrier
            "if ((threadIdx.x < 16))",               # first log-step
            "if ((threadIdx.x < 1))",                # last log-step
            "i_sum = (_initN_i_sum + i_sum);"
            if False else "i_sum = (_init_i_sum + i_sum);",
            "temp[",                                 # guarded store
        ]
        pos = -1
        for frag in order:
            new = text.find(frag, pos + 1)
            assert new > pos, f"fragment out of order or missing: {frag!r}"
            pos = new

    def test_warp_elision_in_dump(self):
        # with a 32-lane row, only the leading barrier plus the one before
        # the broadcast load are emitted (all log-step barriers elided)
        text = "\n".join(self.lines(num_gangs=2, num_workers=2,
                                    vector_length=32))
        start = text.find("= i_sum;  // shared")
        end = text.find("i_sum = (_init_i_sum + i_sum);")
        assert 0 <= start < end
        seg = text[start:end]
        assert seg.count("__syncthreads()") == 2  # leading + pre-broadcast

    def test_transposed_layout_changes_indexing(self):
        prog = acc.compile(self.FIG4A, num_gangs=2, num_workers=4,
                           vector_length=32, vector_layout="transposed",
                           pipeline="minimal")
        text = prog.dump_kernels()
        assert "_sred_int[((threadIdx.x * 4) + threadIdx.y)]" in text
