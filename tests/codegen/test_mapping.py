"""Parallelism-mapping tests (§2.2: gang→blockIdx.x, worker→threadIdx.y,
vector→threadIdx.x)."""

import pytest

from repro.codegen.mapping import LaunchGeometry, distribution
from repro.gpu import kernelir as K


GEOM = LaunchGeometry(num_gangs=4, num_workers=8, vector_length=128)


def names(e):
    """Flatten an expression tree to the specials it references."""
    if isinstance(e, K.Special):
        return {e.kind}
    out = set()
    for f in ("a", "b"):
        if hasattr(e, f):
            out |= names(getattr(e, f))
    return out


class TestGeometry:
    def test_paper_configuration(self):
        g = LaunchGeometry(192, 8, 128)
        assert g.threads_per_block == 1024
        assert g.total_threads == 196608

    def test_size_of(self):
        assert GEOM.size_of("gang") == 4
        assert GEOM.size_of("worker") == 8
        assert GEOM.size_of("vector") == 128


class TestDistribution:
    def test_single_levels(self):
        assert names(distribution(("gang",), GEOM).position) == {"bx"}
        assert names(distribution(("worker",), GEOM).position) == {"ty"}
        assert names(distribution(("vector",), GEOM).position) == {"tx"}

    def test_totals(self):
        assert distribution(("gang",), GEOM).total == 4
        assert distribution(("worker", "vector"), GEOM).total == 1024
        assert distribution(("gang", "worker", "vector"), GEOM).total == 4096

    def test_gang_vector_skips_worker_dim(self):
        d = distribution(("gang", "vector"), GEOM)
        assert names(d.position) == {"bx", "tx"}
        assert d.total == 4 * 128

    def test_composition_order_outer_to_inner(self):
        # (gang, worker): pos = bx * num_workers + ty
        d = distribution(("gang", "worker"), GEOM)
        assert isinstance(d.position, K.Bin) and d.position.op == "+"
        assert isinstance(d.position.b, K.Special)
        assert d.position.b.kind == "ty"

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            distribution((), GEOM)
