"""Log-step reduction generator tests (paper Fig. 7, §3.1, §3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.codegen.reduction.logstep import logstep_reduce, prev_pow2
from repro.codegen.reduction.operators import get_operator
from repro.gpu import kernelir as K
from repro.gpu.device import K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu.memory import GlobalMemory


def run_block_reduce(values, op_token, dtype, bdx, *, elide=True,
                     return_stats=False):
    """One block of (bdx, 1): lane i stores values[i], reduce, lane 0 writes."""
    n = len(values)
    assert n == bdx
    red = get_operator(op_token)
    ls = logstep_reduce("sbuf", n, red, dtype, lane=K.Special("tx"),
                        elide_warp_sync=elide)
    body = (
        K.GLoad("v", "in", K.Special("tx")),
        K.SStore("sbuf", K.Special("tx"), K.Reg("v")),
        *ls.stmts,
        K.If(K.Bin("==", K.Special("tx"), K.const_int(0)), (
            K.SLoad("r", "sbuf", ls.result_index),
            K.GStore("out", K.const_int(0), K.Reg("r")),
        )),
    )
    kern = K.Kernel("blockreduce", body, buffers=("in", "out"),
                    shared=(K.SharedArraySpec("sbuf", dtype, n),))
    g = GlobalMemory(K20C)
    g.alloc("in", n, dtype, init=np.asarray(values, dtype=dtype.np))
    g.alloc("out", 1, dtype)
    stats = CompiledKernel(kern, K20C).run(g, 1, (bdx, 1))
    result = g["out"].data[0]
    if return_stats:
        return result, ls, stats
    return result


class TestPrevPow2:
    @pytest.mark.parametrize("n,expect", [
        (1, 1), (2, 2), (3, 2), (4, 4), (5, 4), (96, 64), (128, 128),
        (1000, 512), (1024, 1024),
    ])
    def test_values(self, n, expect):
        assert prev_pow2(n) == expect

    def test_rejects_zero(self):
        with pytest.raises(LoweringError):
            prev_pow2(0)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 32, 64, 128, 256, 1024])
    def test_sum_power_of_two(self, n):
        vals = np.arange(n, dtype=np.int32)
        assert run_block_reduce(vals, "+", DType.INT, n) == vals.sum()

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 33, 96, 100, 1000])
    def test_sum_non_power_of_two(self, n):
        # §3.3: the 96-thread example is the paper's own walkthrough
        vals = np.arange(n, dtype=np.int32) + 1
        assert run_block_reduce(vals, "+", DType.INT, n) == vals.sum()

    @pytest.mark.parametrize("op", ["+", "*", "max", "min", "&", "|", "^",
                                    "&&", "||"])
    def test_all_operators_int(self, op):
        rng = np.random.default_rng(42)
        vals = rng.integers(1, 5, size=96).astype(np.int32)
        got = run_block_reduce(vals, op, DType.INT, 96)
        expect = get_operator(op).np_reduce(vals, DType.INT)
        assert got == expect

    @pytest.mark.parametrize("dtype", [DType.FLOAT, DType.DOUBLE])
    def test_float_sum(self, dtype):
        rng = np.random.default_rng(7)
        vals = rng.random(128).astype(dtype.np)
        got = run_block_reduce(vals, "+", dtype, 128)
        # tree order differs from sequential order: tolerance needed
        np.testing.assert_allclose(got, vals.sum(dtype=np.float64),
                                   rtol=1e-5)

    def test_float_max_exact(self):
        rng = np.random.default_rng(3)
        vals = rng.standard_normal(100).astype(np.float32)
        got = run_block_reduce(vals, "max", DType.FLOAT, 100)
        assert got == vals.max()

    def test_no_elision_same_result(self):
        vals = np.arange(96, dtype=np.int32)
        a = run_block_reduce(vals, "+", DType.INT, 96, elide=True)
        b = run_block_reduce(vals, "+", DType.INT, 96, elide=False)
        assert a == b == vals.sum()

    def test_single_element(self):
        assert run_block_reduce(np.array([17], np.int32), "+", DType.INT, 1) == 17


class TestSyncCounts:
    """Ablation A4: warp-aware elision removes the last-6-iteration barriers."""

    def test_128_lane_elided_barrier_count(self):
        _, ls, stats = run_block_reduce(np.ones(128, np.int32), "+",
                                        DType.INT, 128, return_stats=True)
        # steps: 64,32,16,8,4,2,1; syncs: leading + after s=64
        assert ls.steps == 7
        assert ls.syncs == 2
        assert stats.barriers == 2

    def test_128_lane_full_barrier_count(self):
        _, ls, stats = run_block_reduce(np.ones(128, np.int32), "+",
                                        DType.INT, 128, elide=False,
                                        return_stats=True)
        # leading + after every step except the last
        assert ls.syncs == 7
        assert stats.barriers == 7

    def test_1024_lane_elided(self):
        _, ls, _ = run_block_reduce(np.ones(1024, np.int32), "+",
                                    DType.INT, 1024, return_stats=True)
        assert ls.steps == 10
        # after 512,256,128,64 (>32) + leading
        assert ls.syncs == 5

    def test_paper_96_thread_walkthrough(self):
        # §3.3: 96 -> fold 32 onto head -> 64 -> log-step
        _, ls, _ = run_block_reduce(np.ones(96, np.int32), "+",
                                    DType.INT, 96, return_stats=True)
        assert ls.steps == 1 + 6  # pre-fold + steps 32,16,8,4,2,1

    def test_warp_sized_reduce_needs_only_leading_sync(self):
        _, ls, _ = run_block_reduce(np.ones(32, np.int32), "+",
                                    DType.INT, 32, return_stats=True)
        assert ls.syncs == 1


class TestRowLayouts:
    """Row layout Fig. 6(c) vs transposed Fig. 6(b): same result, different
    bank behaviour."""

    def _multi_row(self, bdx, bdy, transposed):
        dtype = DType.INT
        red = get_operator("+")
        rng = np.random.default_rng(5)
        data = rng.integers(0, 100, size=(bdy, bdx)).astype(np.int32)
        if transposed:
            # partials stored at [tx*bdy + ty]; row ty reduces over stride bdy
            store_idx = K.Bin("+", K.Bin("*", K.Special("tx"),
                                         K.const_int(bdy)), K.Special("ty"))
            ls = logstep_reduce("sbuf", bdx, red, dtype, lane=K.Special("tx"),
                                base=K.Special("ty"), stride=bdy,
                                elide_warp_sync=False)
        else:
            store_idx = K.Bin("+", K.Bin("*", K.Special("ty"),
                                         K.const_int(bdx)), K.Special("tx"))
            ls = logstep_reduce("sbuf", bdx, red, dtype, lane=K.Special("tx"),
                                base=K.Bin("*", K.Special("ty"),
                                           K.const_int(bdx)), stride=1)
        body = (
            K.GLoad("v", "in", K.Special("tid")),
            K.SStore("sbuf", store_idx, K.Reg("v")),
            *ls.stmts,
            K.Sync(),
            K.If(K.Bin("==", K.Special("tx"), K.const_int(0)), (
                K.SLoad("r", "sbuf", ls.result_index),
                K.GStore("out", K.Special("ty"), K.Reg("r")),
            )),
        )
        kern = K.Kernel("rowreduce", body, buffers=("in", "out"),
                        shared=(K.SharedArraySpec("sbuf", dtype, bdx * bdy),))
        g = GlobalMemory(K20C)
        g.alloc("in", bdx * bdy, dtype, init=data.reshape(-1))
        g.alloc("out", bdy, dtype)
        stats = CompiledKernel(kern, K20C).run(g, 1, (bdx, bdy))
        return g["out"].data.copy(), data.sum(axis=1), stats

    def test_row_layout_each_row_reduces(self):
        got, expect, _ = self._multi_row(32, 4, transposed=False)
        np.testing.assert_array_equal(got, expect)

    def test_transposed_layout_each_row_reduces(self):
        got, expect, _ = self._multi_row(32, 4, transposed=True)
        np.testing.assert_array_equal(got, expect)

    def test_transposed_layout_has_more_bank_conflicts(self):
        _, _, row = self._multi_row(32, 8, transposed=False)
        _, _, tr = self._multi_row(32, 8, transposed=True)
        assert tr.bank_conflict_extra > row.bank_conflict_extra


class TestPropertyBased:
    @given(
        n=st.integers(min_value=1, max_value=256),
        op=st.sampled_from(["+", "*", "max", "min", "&", "|", "^"]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_for_any_size(self, n, op, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(-4, 5, size=n).astype(np.int32)
        got = run_block_reduce(vals, op, DType.INT, n,
                               elide=(n % 32 == 0 or n <= 32))
        expect = get_operator(op).np_reduce(vals, DType.INT)
        assert got == expect
