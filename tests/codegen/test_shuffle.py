"""Warp-shuffle reduction strategy tests (extension, ablation A9)."""

import numpy as np
import pytest

from repro import acc
from repro.gpu import kernelir as K

VEC = """
float input[NK][NJ][NI];
float temp[NK][NJ][NI];
#pragma acc parallel copyin(input) copyout(temp)
{
  #pragma acc loop gang
  for(k=0; k<NK; k++){
    #pragma acc loop worker
    for(j=0; j<NJ; j++){
      int i_sum = j;
      #pragma acc loop vector reduction(+:i_sum)
      for(i=0; i<NI; i++)
        i_sum += input[k][j][i];
      temp[k][j][0] = i_sum;
    }
  }
}
"""


def walk(stmts):
    for s in stmts:
        yield s
        for f in ("body", "then", "orelse"):
            if hasattr(s, f):
                yield from walk(getattr(s, f))


def run_vec(strat, vl=64, nw=4):
    prog = acc.compile(VEC, num_gangs=3, num_workers=nw, vector_length=vl,
                       vector_strategy=strat)
    rng = np.random.default_rng(1)
    inp = rng.integers(0, 6, size=(2, 5, 200)).astype(np.float32)
    res = prog.run(input=inp, temp=np.zeros_like(inp))
    expect = np.zeros_like(inp)
    for k in range(2):
        for j in range(5):
            expect[k, j, 0] = j + inp[k, j].sum()
    np.testing.assert_allclose(res.outputs["temp"], expect)
    return prog, res


class TestCorrectness:
    @pytest.mark.parametrize("vl", [16, 32, 64, 128])
    def test_matches_logstep_results(self, vl):
        run_vec("shuffle", vl=vl)

    def test_emits_shfl_instructions(self):
        prog, _ = run_vec("shuffle")
        assert any(isinstance(s, K.ShflDown)
                   for s in walk(prog.lowered.main_kernel.body))

    def test_logstep_emits_none(self):
        prog, _ = run_vec("logstep")
        assert not any(isinstance(s, K.ShflDown)
                       for s in walk(prog.lowered.main_kernel.body))

    def test_non_pow2_width_falls_back_to_logstep(self):
        prog = acc.compile(VEC, num_gangs=2, num_workers=2,
                           vector_length=96, vector_strategy="shuffle")
        assert not any(isinstance(s, K.ShflDown)
                       for s in walk(prog.lowered.main_kernel.body))
        rng = np.random.default_rng(2)
        inp = rng.integers(0, 6, size=(2, 3, 150)).astype(np.float32)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        assert res.outputs["temp"][0, 0, 0] == 0 + inp[0, 0].sum()


class TestCostShape:
    def test_fewer_barriers_and_shared_accesses(self):
        _, log = run_vec("logstep", vl=128)
        _, shf = run_vec("shuffle", vl=128)
        main = "acc_region_main"
        assert shf.kernel_stats[main].barriers \
            < log.kernel_stats[main].barriers
        assert shf.kernel_stats[main].shared_accesses \
            < log.kernel_stats[main].shared_accesses

    def test_single_warp_block_needs_minimal_shared(self):
        _, shf = run_vec("shuffle", vl=32, nw=1)
        main = "acc_region_main"
        # only the per-row broadcast slot remains
        assert shf.kernel_stats[main].shared_bytes <= 32


class TestFlatBlockShuffle:
    def test_worker_vector_span_uses_shuffle(self):
        src = """
        float input[NK][NJ][NI];
        float out[NK];
        #pragma acc parallel copyin(input) copyout(out)
        {
          #pragma acc loop gang
          for(k=0; k<NK; k++){
            int s = k;
            #pragma acc loop worker reduction(+:s)
            for(j=0; j<NJ; j++){
              #pragma acc loop vector
              for(i=0; i<NI; i++)
                s += input[k][j][i];
            }
            out[k] = s;
          }
        }
        """
        prog = acc.compile(src, num_gangs=2, num_workers=4,
                           vector_length=32, vector_strategy="shuffle")
        assert any(isinstance(s, K.ShflDown)
                   for s in walk(prog.lowered.main_kernel.body))
        rng = np.random.default_rng(3)
        inp = rng.integers(0, 5, size=(3, 6, 80)).astype(np.float32)
        res = prog.run(input=inp, out=np.zeros(3, np.float32))
        expect = np.array([k + inp[k].sum() for k in range(3)], np.float32)
        np.testing.assert_allclose(res.outputs["out"], expect)
