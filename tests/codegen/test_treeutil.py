"""Direct unit tests for the shared reduction tree arithmetic
(:mod:`repro.codegen.reduction.treeutil`)."""

import pytest

from repro.codegen.reduction.operators import get_operator
from repro.codegen.reduction.treeutil import (
    cross_warp_handoff, is_pow2, prev_pow2, shuffle_deltas,
)
from repro.dtypes import DType
from repro.errors import LoweringError
from repro.gpu import kernelir as K


class TestPow2:
    def test_is_pow2(self):
        assert all(is_pow2(1 << i) for i in range(12))
        assert not any(is_pow2(n) for n in (0, -1, -4, 3, 6, 12, 96, 100))

    def test_prev_pow2(self):
        assert prev_pow2(1) == 1
        assert prev_pow2(2) == 2
        assert prev_pow2(3) == 2
        assert prev_pow2(100) == 64
        assert prev_pow2(1024) == 1024

    def test_prev_pow2_rejects_empty(self):
        with pytest.raises(LoweringError):
            prev_pow2(0)

    def test_prev_pow2_consistency(self):
        for n in range(1, 300):
            p = prev_pow2(n)
            assert is_pow2(p) and p <= n < 2 * p


class TestShuffleDeltas:
    def test_full_warp(self):
        assert shuffle_deltas(32) == [16, 8, 4, 2, 1]

    def test_narrow_width(self):
        assert shuffle_deltas(8) == [4, 2, 1]
        assert shuffle_deltas(2) == [1]

    def test_wider_than_warp_caps_at_warp(self):
        assert shuffle_deltas(128) == [16, 8, 4, 2, 1]
        assert shuffle_deltas(64, warp_size=16) == [8, 4, 2, 1]

    def test_deltas_cover_every_lane_once(self):
        # summing the deltas reconstructs width-1: each lane folds in
        # exactly once
        for w in (2, 4, 8, 16, 32):
            assert sum(shuffle_deltas(w)) == w - 1


class TestCrossWarpHandoff:
    OP = get_operator("+")

    def _stmts(self, nw, row=None):
        return cross_warp_handoff(
            "_s", "acc", "res", self.OP, DType.FLOAT,
            lane=K.Special("tid"), nw=nw, row=row,
            warp_tree=lambda width: (K.Assign("acc", K.Reg("acc")),))

    def test_single_warp_publishes_directly(self):
        stmts = self._stmts(nw=1)
        # leader store, one barrier, broadcast load — no second tree
        kinds = [type(s).__name__ for s in stmts]
        assert kinds == ["If", "Sync", "SLoad"]

    def test_multi_warp_stages_and_reshuffles(self):
        stmts = self._stmts(nw=4)
        kinds = [type(s).__name__ for s in stmts]
        assert kinds == ["If", "Sync", "Assign", "If", "Assign", "If",
                         "Sync", "SLoad"]
        # the staging guard selects warp leaders (lane % 32 == 0)
        guard = stmts[0].cond
        assert isinstance(guard, K.Bin) and guard.op == "=="

    def test_row_scoping_offsets_indices(self):
        flat = self._stmts(nw=4, row=None)
        rowed = self._stmts(nw=4, row=K.Special("ty"))
        assert flat != rowed
        # the rowed variant's final broadcast reads at row*nw, the flat
        # one at index 0
        assert isinstance(rowed[-1], K.SLoad)
        assert isinstance(rowed[-1].index, K.Bin)
        assert isinstance(flat[-1].index, K.Const)
