"""Reduction-operator tests: identities, combines, reference reductions."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import AnalysisError
from repro.codegen.reduction.operators import OPERATORS, get_operator

ALL_DTYPES = [DType.INT, DType.LONG, DType.FLOAT, DType.DOUBLE]
INT_DTYPES = [DType.INT, DType.LONG]
ANYTYPE_OPS = ["+", "*", "max", "min", "&&", "||"]
INT_ONLY_OPS = ["&", "|", "^"]


class TestRegistry:
    def test_all_nine_openacc_operators_present(self):
        assert set(OPERATORS) == {"+", "*", "max", "min", "&", "|", "^",
                                  "&&", "||"}

    def test_unknown_operator_raises(self):
        with pytest.raises(AnalysisError):
            get_operator("-")


class TestIdentities:
    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_sum_identity(self, dtype):
        assert get_operator("+").identity(dtype) == 0

    @pytest.mark.parametrize("dtype", ALL_DTYPES)
    def test_prod_identity(self, dtype):
        assert get_operator("*").identity(dtype) == 1

    def test_max_identity_int(self):
        assert get_operator("max").identity(DType.INT) == np.iinfo(np.int32).min

    def test_max_identity_float(self):
        assert get_operator("max").identity(DType.FLOAT) == -np.inf

    def test_min_identity_long(self):
        assert get_operator("min").identity(DType.LONG) == np.iinfo(np.int64).max

    def test_band_identity_is_all_ones(self):
        assert get_operator("&").identity(DType.INT) == -1

    def test_logical_identities(self):
        assert get_operator("&&").identity(DType.INT) == 1
        assert get_operator("||").identity(DType.INT) == 0

    @pytest.mark.parametrize("op", INT_ONLY_OPS)
    def test_bitwise_rejects_float(self, op):
        with pytest.raises(AnalysisError):
            get_operator(op).identity(DType.FLOAT)

    @pytest.mark.parametrize("op,dtype",
                             [(o, d) for o in ANYTYPE_OPS for d in ALL_DTYPES])
    def test_identity_is_neutral(self, op, dtype):
        red = get_operator(op)
        ident = red.identity(dtype)
        for v in (0, 1, 5):
            assert red.np_combine(ident, v, dtype) == red.np_combine(
                v, ident, dtype) == dtype.np.type(
                    red.np_reduce(np.array([v]), dtype))


class TestReferenceReduce:
    def test_sum_matches_numpy(self):
        x = np.arange(100, dtype=np.int32)
        assert get_operator("+").np_reduce(x, DType.INT) == x.sum()

    def test_prod_wraps_like_c_int(self):
        x = np.full(40, 3, dtype=np.int32)  # 3^40 overflows int32
        got = get_operator("*").np_reduce(x, DType.INT)
        expect = np.int32(1)
        with np.errstate(over="ignore"):
            for _ in range(40):
                expect = np.int32(expect * 3)
        assert got == expect

    def test_max_min(self):
        x = np.array([3.5, -7.0, 2.0], dtype=np.float64)
        assert get_operator("max").np_reduce(x, DType.DOUBLE) == 3.5
        assert get_operator("min").np_reduce(x, DType.DOUBLE) == -7.0

    def test_bitwise(self):
        x = np.array([0b1100, 0b1010], dtype=np.int32)
        assert get_operator("&").np_reduce(x, DType.INT) == 0b1000
        assert get_operator("|").np_reduce(x, DType.INT) == 0b1110
        assert get_operator("^").np_reduce(x, DType.INT) == 0b0110

    def test_logical(self):
        land, lor = get_operator("&&"), get_operator("||")
        assert land.np_reduce(np.array([1, 2, 3]), DType.INT) == 1
        assert land.np_reduce(np.array([1, 0, 3]), DType.INT) == 0
        assert lor.np_reduce(np.array([0, 0, 0]), DType.INT) == 0
        assert lor.np_reduce(np.array([0, 7, 0]), DType.INT) == 1

    def test_empty_reduce_is_identity(self):
        for tok in ANYTYPE_OPS:
            red = get_operator(tok)
            assert red.np_reduce(np.array([], dtype=np.int32), DType.INT) \
                == red.identity(DType.INT)


class TestCombineIR:
    """The kernel-IR combine expressions execute to the same results."""

    @pytest.mark.parametrize("op,a,b,expect", [
        ("+", 3, 4, 7),
        ("*", 3, 4, 12),
        ("max", 3, 4, 4),
        ("min", 3, 4, 3),
        ("&", 0b110, 0b011, 0b010),
        ("|", 0b110, 0b011, 0b111),
        ("^", 0b110, 0b011, 0b101),
        ("&&", 2, 0, 0),
        ("&&", 2, 5, 1),
        ("||", 0, 0, 0),
        ("||", 0, 9, 1),
    ])
    def test_combine_int(self, op, a, b, expect):
        from repro.gpu.device import K20C
        from repro.gpu.executor import CompiledKernel
        from repro.gpu import kernelir as K
        from repro.gpu.memory import GlobalMemory

        red = get_operator(op)
        g = GlobalMemory(K20C)
        g.alloc("out", 1, DType.INT)
        kern = K.Kernel("comb", (
            K.GStore("out", K.const_int(0),
                     red.combine(K.Const(a, DType.INT),
                                 K.Const(b, DType.INT), DType.INT)),
        ), buffers=("out",))
        CompiledKernel(kern, K20C).run(g, 1, (1, 1))
        assert g["out"].data[0] == expect

    def test_float_max_uses_fmax(self):
        from repro.gpu import kernelir as K
        expr = get_operator("max").combine(K.Reg("a"), K.Reg("b"), DType.FLOAT)
        assert isinstance(expr, K.Call) and expr.fn == "fmax"

    def test_int_max_uses_integer_max(self):
        from repro.gpu import kernelir as K
        expr = get_operator("max").combine(K.Reg("a"), K.Reg("b"), DType.INT)
        assert isinstance(expr, K.Call) and expr.fn == "max"
