"""Lowering-structure tests: the generated kernels have the paper's shape."""

import numpy as np
import pytest

from repro import acc
from repro.errors import LoweringError
from repro.gpu import kernelir as K
from repro.gpu.kernelir import dump

# paper-shape golden pins: structural tests inspect the raw lowering,
# so compile with the pass pipeline that adds no kernel-IR rewrites
GEOM = dict(num_gangs=4, num_workers=4, vector_length=32,
            pipeline="minimal")

FIG3 = """
float input[NK][NJ][NI];
float temp[NK][NJ][NI];
#pragma acc parallel copyin(input) copyout(temp)
{
  #pragma acc loop gang
  for (k = 0; k < NK; k++) {
    #pragma acc loop worker
    for (j = 0; j < NJ; j++) {
      #pragma acc loop vector
      for (i = 0; i < NI; i++)
        temp[k][j][i] = input[k][j][i];
    }
  }
}
"""


def walk(stmts):
    for s in stmts:
        yield s
        for f in ("body", "then", "orelse"):
            if hasattr(s, f):
                yield from walk(getattr(s, f))


class TestFig3WindowSliding:
    """The triple nest lowers to exactly the paper's Fig. 3 skeleton."""

    def test_three_nested_whiles_with_strides(self):
        prog = acc.compile(FIG3, **GEOM)
        text = dump(prog.lowered.main_kernel)
        # gang: k = blockIdx.x + start; stride gridDim size (4)
        assert "blockIdx.x" in text
        assert "(4 *" in text  # gang stride
        assert "threadIdx.y" in text and "(4 *" in text  # worker stride
        assert "threadIdx.x" in text and "(32 *" in text  # vector stride

    def test_no_barriers_without_reductions(self):
        prog = acc.compile(FIG3, **GEOM)
        assert not any(isinstance(s, K.Sync)
                       for s in walk(prog.lowered.main_kernel.body))

    def test_single_kernel_no_scratch(self):
        prog = acc.compile(FIG3, **GEOM)
        assert len(prog.lowered.kernels) == 1
        assert prog.lowered.scratch == []

    def test_blocking_variant_emits_chunk_arithmetic(self):
        prog = acc.compile(FIG3, **GEOM, scheduling="blocking")
        text = dump(prog.lowered.main_kernel)
        assert "blocking" in text
        assert "_chunk" in text


class TestStoreGuards:
    """Fig. 5: statements at outer levels store through lane-0 guards."""

    SRC = """
    float a[NK];
    float out[NK];
    #pragma acc parallel copyin(a) copyout(out)
    {
      #pragma acc loop gang
      for (k = 0; k < NK; k++)
        out[k] = a[k] * 2.0f;
    }
    """

    def test_gang_level_store_guarded_to_lane0(self):
        prog = acc.compile(self.SRC, **GEOM)
        text = dump(prog.lowered.main_kernel)
        assert "(threadIdx.x == 0)" in text
        assert "(threadIdx.y == 0)" in text

    def test_no_guard_when_block_is_one_thread(self):
        prog = acc.compile(self.SRC, pipeline="minimal", num_gangs=4, num_workers=1,
                           vector_length=1)
        text = dump(prog.lowered.main_kernel)
        assert "threadIdx.x == 0" not in text

    def test_guarded_store_writes_once_value(self):
        prog = acc.compile(self.SRC, **GEOM)
        a = np.arange(6, dtype=np.float32)
        res = prog.run(a=a, out=np.zeros_like(a))
        np.testing.assert_allclose(res.outputs["out"], a * 2)


class TestReductionStructure:
    VEC = """
    float a[NK][NI];
    float out[NK];
    #pragma acc parallel copyin(a) copyout(out)
    {
      #pragma acc loop gang
      for (k = 0; k < NK; k++) {
        float s = 0.0f;
        #pragma acc loop vector reduction(+:s)
        for (i = 0; i < NI; i++)
          s += a[k][i];
        out[k] = s;
      }
    }
    """

    def test_vector_reduction_stages_in_shared(self):
        prog = acc.compile(self.VEC, **GEOM)
        main = prog.lowered.main_kernel
        assert any(sp.name.startswith("_sred") for sp in main.shared)
        assert any(isinstance(s, K.SStore)
                   for s in walk(main.body))
        assert any(isinstance(s, K.Sync) for s in walk(main.body))

    def test_gang_loop_with_inner_barrier_is_lockstep(self):
        prog = acc.compile(self.VEC, **GEOM)
        kinds = [type(s).__name__ for s in prog.lowered.main_kernel.body]
        assert "UniformWhile" in kinds

    def test_init_value_folded(self):
        # s starts at 0 here, but the fold must still reference _init_s
        prog = acc.compile(self.VEC, **GEOM)
        text = dump(prog.lowered.main_kernel)
        assert "_init_s" in text

    def test_gang_reduction_emits_partial_store_and_finish(self):
        src = """
        float a[NK];
        double s = 0.0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(+:s)
        for (k = 0; k < NK; k++)
            s += a[k];
        """
        prog = acc.compile(src, **GEOM)
        assert len(prog.lowered.gang_reductions) == 1
        g = prog.lowered.gang_reductions[0]
        assert g.partial_buf == "_redp_s"
        sizes = {sb.name: sb.size for sb in prog.lowered.scratch}
        assert sizes["_redp_s"] == 4  # one partial per gang
        assert sizes["_redr_s"] == 1
        assert g.finish_kernel is not None
        assert "finish" in g.finish_kernel.name

    def test_atomic_style_has_no_finish_kernel(self):
        src = """
        float a[n];
        long s = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(+:s)
        for (i = 0; i < n; i++)
            s += a[i];
        """
        prog = acc.compile(src, **GEOM, gang_partial_style="atomic")
        g = prog.lowered.gang_reductions[0]
        assert g.finish_kernel is None
        assert any(isinstance(s, K.AtomicUpdate)
                   for s in walk(prog.lowered.main_kernel.body))
        a = np.arange(100, dtype=np.float32)
        assert prog.run(a=a).scalars["s"] == a.sum()

    def test_logical_ops_fall_back_to_buffer_scheme(self):
        src = """
        int a[n];
        int all_true = 1;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(&&:all_true)
        for (i = 0; i < n; i++)
            all_true = all_true && a[i];
        """
        prog = acc.compile(src, **GEOM, gang_partial_style="atomic")
        assert prog.lowered.gang_reductions[0].finish_kernel is not None

    def test_zero_init_kernel_when_requested(self):
        src = """
        float a[NK];
        double s = 0.0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(+:s)
        for (k = 0; k < NK; k++)
            s += a[k];
        """
        prog = acc.compile(src, **GEOM, zero_init_partials=True)
        g = prog.lowered.gang_reductions[0]
        assert g.init_kernel is not None
        assert len(prog.lowered.kernels) == 3  # init + main + finish
        a = np.arange(6, dtype=np.float32)
        res = prog.run(a=a)
        assert res.scalars["s"] == a.sum()
        assert any(lbl.startswith("kernel:acc_reduction_init")
                   for lbl, _ in res.ledger.entries)

    def test_strength_reduction_off_adds_instructions(self):
        a = np.ones(4096, dtype=np.float32)
        src = """
        float a[n];
        long s = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(+:s)
        for (i = 0; i < n; i++)
            s += a[i];
        """
        lean = acc.compile(src, **GEOM, scheduling="blocking")
        fat = acc.compile(src, **GEOM, scheduling="blocking",
                          strength_reduction=False)
        r1 = lean.run(a=a)
        r2 = fat.run(a=a)
        assert r1.scalars["s"] == r2.scalars["s"] == 4096
        assert r2.kernel_stats["acc_region_main"].warp_inst_slots > \
            r1.kernel_stats["acc_region_main"].warp_inst_slots


class TestCollapseErrors:
    def test_collapse_requires_perfect_nesting(self):
        src = """
        float a[NK][NJ];
        #pragma acc parallel copy(a)
        #pragma acc loop gang collapse(2)
        for (k = 0; k < NK; k++) {
          a[k][0] = 0.0f;
          for (j = 0; j < NJ; j++)
            a[k][j] = a[k][j];
        }
        """
        with pytest.raises(LoweringError, match="perfectly"):
            acc.compile(src, **GEOM)

    def test_collapsed_inner_annotations_rejected(self):
        src = """
        float a[NK][NJ];
        #pragma acc parallel copy(a)
        {
          #pragma acc loop gang collapse(2)
          for (k = 0; k < NK; k++) {
            #pragma acc loop vector
            for (j = 0; j < NJ; j++)
              a[k][j] = a[k][j];
          }
        }
        """
        with pytest.raises(Exception):
            acc.compile(src, **GEOM)
