"""Failure-injection tests: break things on purpose, watch the right layer
object.  The value of a simulator over real hardware is that violations are
*detected*, not silently absorbed."""

import numpy as np
import pytest

from repro import acc
from repro.dtypes import DType
from repro.errors import (
    BarrierDivergenceError, OutOfBoundsError, SimulationError,
)
from repro.gpu import GlobalMemory, K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu import kernelir as K


class TestBrokenKernels:
    def test_handwritten_divergent_barrier_detected(self):
        # a lowering that forgot the uniform-loop transform: barrier inside
        # a per-thread loop whose trip count differs across threads
        kern = K.Kernel("bad", (
            K.Assign("i", K.Special("tx")),
            K.While(K.Bin("<", K.Reg("i"), K.const_int(3)), (
                K.Sync(),
                K.Assign("i", K.Bin("+", K.Reg("i"), K.const_int(1))),
            )),
        ))
        with pytest.raises(BarrierDivergenceError):
            CompiledKernel(kern, K20C).run(GlobalMemory(K20C), 1, (8, 1))

    def test_unknown_intrinsic_rejected_at_closure_compile(self):
        kern = K.Kernel("bad", (
            K.Assign("x", K.Call("erf", (K.const_int(1),))),
        ))
        with pytest.raises(SimulationError, match="erf"):
            CompiledKernel(kern, K20C)

    def test_unknown_binop_rejected(self):
        kern = K.Kernel("bad", (
            K.Assign("x", K.Bin("**", K.const_int(2), K.const_int(3))),
        ))
        with pytest.raises(SimulationError, match=r"\*\*"):
            CompiledKernel(kern, K20C)

    def test_scatter_past_end_of_scratch_detected(self):
        kern = K.Kernel("bad", (
            K.GStore("buf", K.Special("tid"), K.const_int(1)),
        ), buffers=("buf",))
        g = GlobalMemory(K20C)
        g.alloc("buf", 16, DType.INT)  # 32 threads, 16 slots
        with pytest.raises(OutOfBoundsError):
            CompiledKernel(kern, K20C).run(g, 1, (32, 1))


class TestPoisonedData:
    SRC_MAX = """
    double a[n];
    double m = 0.0;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang vector reduction(max:m)
    for (i = 0; i < n; i++)
        m = fmax(m, a[i]);
    """

    def test_nan_ignored_by_fmax_like_c(self):
        prog = acc.compile(self.SRC_MAX, num_gangs=2, num_workers=1,
                           vector_length=32)
        a = np.array([1.0, np.nan, 5.0, np.nan, 2.0])
        res = prog.run(a=a)
        assert res.scalars["m"] == 5.0  # C fmax ignores NaN operands

    def test_infinities_propagate(self):
        prog = acc.compile(self.SRC_MAX, num_gangs=2, num_workers=1,
                           vector_length=32)
        a = np.array([1.0, np.inf, 2.0])
        assert np.isinf(prog.run(a=a).scalars["m"])

    def test_float_overflow_saturates_to_inf(self):
        src = """
        float a[n];
        float p = 1.0f;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(*:p)
        for (i = 0; i < n; i++)
            p *= a[i];
        """
        prog = acc.compile(src, num_gangs=2, num_workers=1,
                           vector_length=32)
        a = np.full(64, 1e30, np.float32)
        assert np.isinf(prog.run(a=a).scalars["p"])

    def test_int_overflow_wraps_deterministically(self):
        src = """
        int a[n];
        int s = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:s)
        for (i = 0; i < n; i++)
            s += a[i];
        """
        prog = acc.compile(src, num_gangs=2, num_workers=1,
                           vector_length=32)
        a = np.full(4, 2**30, np.int32)
        got = prog.run(a=a).scalars["s"]
        assert got == np.int32(4 * 2**30 - 2**32)  # wrapped, like C


class TestDefectFlagsAreMechanistic:
    """The modeled vendor defects must be *executed*, not declared."""

    def test_layout_bug_produces_specific_wrong_numbers(self):
        # the Fig. 4(a) shape: per-worker rows hold *different* partials,
        # so the transposed-store/row-reduce mismatch mixes them up
        from repro.testsuite.cases import make_case
        case = make_case("vector", "+", "int", size=256)
        inputs = case.make_inputs(np.random.default_rng(5))
        geom = dict(num_gangs=2, num_workers=4, vector_length=32)

        good = acc.compile(case.source, **geom).run(**inputs)
        bad = acc.compile(case.source, **geom,
                          bug_sum_layout_mismatch=True).run(**inputs)
        (kind, name, expect) = case.expected(inputs)[0]
        np.testing.assert_array_equal(good.outputs[name], expect)
        assert not np.array_equal(bad.outputs[name], expect)
        # deterministic: the same wrong numbers every run
        again = acc.compile(case.source, **geom,
                            bug_sum_layout_mismatch=True).run(**inputs)
        np.testing.assert_array_equal(bad.outputs[name],
                                      again.outputs[name])

    def test_bug_is_harmless_when_bdy_is_one(self):
        # the defect's trigger condition, verified from the other side
        src = """
        float a[n];
        long s = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:s)
        for (i = 0; i < n; i++)
            s += a[i];
        """
        prog = acc.compile(src, num_gangs=2, num_workers=1,
                           vector_length=32, bug_sum_layout_mismatch=True)
        a = np.ones(100, np.float32)
        assert prog.run(a=a).scalars["s"] == 100
