"""Compiler-driver CLI tests (``python -m repro``)."""

import numpy as np
import pytest

from repro.__main__ import main, _parse_array_spec

VECSUM = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


@pytest.fixture
def vecsum_file(tmp_path):
    p = tmp_path / "vecsum.c"
    p.write_text(VECSUM)
    return str(p)


class TestArraySpecs:
    def test_synthesized_kinds(self):
        name, arr = _parse_array_spec("a=arange:8:float")
        assert name == "a" and arr.dtype == np.float32
        np.testing.assert_array_equal(arr, np.arange(8))
        _, z = _parse_array_spec("z=zeros:2x3:double")
        assert z.shape == (2, 3) and (z == 0).all()
        _, o = _parse_array_spec("o=ones:4:int")
        assert o.dtype == np.int32 and (o == 1).all()

    def test_npy_file(self, tmp_path):
        f = tmp_path / "data.npy"
        np.save(f, np.arange(5))
        name, arr = _parse_array_spec(f"x={f}")
        assert name == "x" and arr.sum() == 10

    def test_bad_specs(self):
        with pytest.raises(SystemExit):
            _parse_array_spec("missing-equals")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=whatever:8:float")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=zeros:8")


class TestCompileCommand:
    def test_dump_everything(self, vecsum_file, capsys):
        rc = main(["compile", vecsum_file, "--dump-ir", "--dump-plan",
                   "--dump-kernels", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "region kind=parallel" in out
        assert "reduction plan" in out
        assert "span gang & worker & vector" in out
        assert "__global__" in out
        assert "4x2x32" in out

    def test_compile_error_reported(self, tmp_path, capsys):
        p = tmp_path / "bad.c"
        p.write_text("int x = ;")
        rc = main(["compile", str(p)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestRunCommand:
    def test_run_with_synthesized_data(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--array", "a=arange:100:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar total = 4950" in out
        assert "modeled:" in out

    def test_run_under_baseline_profile(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--compiler", "vendor-b",
                   "--array", "a=ones:64:float", "--num-gangs", "2",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        assert "scalar total = 64" in capsys.readouterr().out

    def test_save_outputs(self, tmp_path, capsys, monkeypatch):
        src = tmp_path / "copy.c"
        src.write_text("""
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang vector
        for (i = 0; i < n; i++)
            b[i] = a[i] * 2.0f;
        """)
        monkeypatch.chdir(tmp_path)
        rc = main(["run", str(src), "--array", "a=arange:16:float",
                   "--array", "b=zeros:16:float", "--save",
                   "--num-gangs", "2", "--num-workers", "1",
                   "--vector-length", "32"])
        assert rc == 0
        saved = np.load(tmp_path / "b.npy")
        np.testing.assert_allclose(saved, np.arange(16) * 2)


class TestBenchPassthrough:
    def test_table2_quick(self, capsys):
        rc = main(["table2", "--quick", "--ops", "+", "--ctypes", "int"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out
