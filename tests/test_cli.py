"""Compiler-driver CLI tests (``python -m repro``)."""

import numpy as np
import pytest

from repro.__main__ import main, _parse_array_spec

VECSUM = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


@pytest.fixture
def vecsum_file(tmp_path):
    p = tmp_path / "vecsum.c"
    p.write_text(VECSUM)
    return str(p)


class TestArraySpecs:
    def test_synthesized_kinds(self):
        name, arr = _parse_array_spec("a=arange:8:float")
        assert name == "a" and arr.dtype == np.float32
        np.testing.assert_array_equal(arr, np.arange(8))
        _, z = _parse_array_spec("z=zeros:2x3:double")
        assert z.shape == (2, 3) and (z == 0).all()
        _, o = _parse_array_spec("o=ones:4:int")
        assert o.dtype == np.int32 and (o == 1).all()

    def test_npy_file(self, tmp_path):
        f = tmp_path / "data.npy"
        np.save(f, np.arange(5))
        name, arr = _parse_array_spec(f"x={f}")
        assert name == "x" and arr.sum() == 10

    def test_bad_specs(self):
        with pytest.raises(SystemExit):
            _parse_array_spec("missing-equals")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=whatever:8:float")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=zeros:8")


class TestCompileCommand:
    def test_dump_everything(self, vecsum_file, capsys):
        rc = main(["compile", vecsum_file, "--dump-ir", "--dump-plan",
                   "--dump-kernels", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "region kind=parallel" in out
        assert "reduction plan" in out
        assert "span gang & worker & vector" in out
        assert "__global__" in out
        assert "4x2x32" in out

    def test_compile_error_reported(self, tmp_path, capsys):
        p = tmp_path / "bad.c"
        p.write_text("int x = ;")
        rc = main(["compile", str(p)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_pass_table_and_autotune_decisions(self, vecsum_file, capsys,
                                               monkeypatch):
        monkeypatch.delenv("REPRO_PASSES", raising=False)
        rc = main(["explain", vecsum_file, "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline 'optimized'" in out
        # every optimized-pipeline pass shows up with its kind
        for name in ("parse", "build-ir", "analyze", "autotune", "lower",
                     "fuse-finish", "fold-constants", "eliminate-barriers",
                     "stamp-sids"):
            assert name in out
        # the integer '+' reduction is exact, so the autotuner runs and
        # its per-variable choice is visible (acceptance criterion)
        assert "autotune decisions:" in out
        assert "total.gang_partial_style" in out
        assert "modeled:" in out

    def test_minimal_pipeline_reports_no_decisions(self, vecsum_file,
                                                   capsys):
        rc = main(["explain", vecsum_file, "--pipeline", "minimal",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline 'minimal'" in out
        assert "autotune: no decisions" in out

    def test_ir_flag_prints_per_pass_diffs(self, vecsum_file, capsys):
        # pin the pipeline so a REPRO_PASSES=minimal environment (the
        # second CI job) still gets the rewrite diffs this asserts on
        rc = main(["explain", vecsum_file, "--ir", "--pipeline",
                   "optimized", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== pass build-ir" in out
        assert "== pass lower" in out
        assert "region kind=parallel" in out
        # rewrites render as unified diffs
        assert "--- acc_region_main before" in out


class TestRunCommand:
    def test_run_with_synthesized_data(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--array", "a=arange:100:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar total = 4950" in out
        assert "modeled:" in out

    def test_run_under_baseline_profile(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--compiler", "vendor-b",
                   "--array", "a=ones:64:float", "--num-gangs", "2",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        assert "scalar total = 64" in capsys.readouterr().out

    def test_save_outputs(self, tmp_path, capsys, monkeypatch):
        src = tmp_path / "copy.c"
        src.write_text("""
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang vector
        for (i = 0; i < n; i++)
            b[i] = a[i] * 2.0f;
        """)
        monkeypatch.chdir(tmp_path)
        rc = main(["run", str(src), "--array", "a=arange:16:float",
                   "--array", "b=zeros:16:float", "--save",
                   "--num-gangs", "2", "--num-workers", "1",
                   "--vector-length", "32"])
        assert rc == 0
        saved = np.load(tmp_path / "b.npy")
        np.testing.assert_allclose(saved, np.arange(16) * 2)


class TestProfileCommand:
    """Smoke coverage for ``python -m repro profile`` (the CI gate the
    observability layer hangs off)."""

    def test_profile_vecsum_text_report(self, capsys):
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        # per-kernel report: time breakdown, counters, derived metrics
        assert "Profile report" in out
        assert "acc_region_main" in out
        assert "gtx" in out and "barr" in out  # global transactions, barriers
        assert "coal" in out and "div" in out  # coalescing, divergence
        assert "occ" in out
        assert "TOTAL" in out  # timing-ledger section
        assert "profiler.kernel_launches" in out

    def test_profile_json_stdout_is_schema_valid(self, capsys):
        import json

        rc = main(["profile", "examples/programs/vecsum.c", "--json", "-",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # stdout is the profile document alone
        assert doc["traceEvents"], "non-empty trace"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert doc["kernels"], "non-empty kernel records"
        for k in doc["kernels"]:
            assert "counters" in k and "timing_us" in k and "derived" in k
        assert doc["metrics"]["counters"]["profiler.kernel_launches"] >= 1

    def test_profile_json_file_and_repeated_runs(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "profile.json"
        # pin the paper-shape two-kernel plan: the optimized pipeline
        # retunes this reduction to a single atomic-handoff kernel
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--json", str(out_path), "--runs", "2",
                   "--pipeline", "minimal",
                   "--num-gangs", "2", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        # two runs of main + finish accumulate into one session
        assert len(doc["kernels"]) == 4
        assert doc["metrics"]["counters"]["profiler.kernel_launches"] == 4

    def test_profile_pipeline_flag_changes_kernel_count(self, tmp_path,
                                                        capsys):
        """The optimized pipeline's autotuner folds this long-+ reduction
        into one atomic-handoff kernel; the flag must reach the compile."""
        import json

        out_path = tmp_path / "profile.json"
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--json", str(out_path), "--pipeline", "optimized",
                   "--num-gangs", "2", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["kernels"]) == 1
        assert doc["kernels"][0]["strategy"]["pipeline"] == "optimized"
        assert "autotune" in doc["kernels"][0]["strategy"]

    def test_run_profile_flag(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--array", "a=arange:100:float",
                   "--profile", "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar total = 4950" in out
        assert "Profile report" in out


class TestBenchPassthrough:
    def test_table2_quick(self, capsys):
        rc = main(["table2", "--quick", "--ops", "+", "--ctypes", "int"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_table2_profile_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "profile.json"
        rc = main(["table2", "--quick", "--ops", "+", "--ctypes", "int",
                   "--profile-out", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["bench"]["bench"] == "table2"
        assert doc["kernels"]
        assert doc["metrics"]["counters"]["testsuite.cases"] > 0


class TestFaultcheckCommand:
    def test_campaign_reports_zero_escaped(self, vecsum_file, capsys):
        rc = main(["faultcheck", vecsum_file, "--seed", "0",
                   "--campaign", "12", "--size", "128",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fault campaign: 12 trials" in out
        assert "detection ON" in out
        assert "escaped                   0" in out

    def test_campaign_is_repeatable(self, vecsum_file, capsys):
        argv = ["faultcheck", vecsum_file, "--campaign", "12",
                "--size", "128", "--num-gangs", "4", "--num-workers", "2",
                "--vector-length", "32"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_json_document(self, vecsum_file, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        rc = main(["faultcheck", vecsum_file, "--campaign", "6",
                   "--size", "128", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32",
                   "--json", str(out_path)])
        assert rc == 0
        import json
        doc = json.loads(out_path.read_text())
        assert doc["counts"]["escaped"] == 0
        assert len(doc["trials"]) == 6


class TestErrorHandling:
    """Operational robustness of the driver itself: failures become a
    typed one-line message and a non-zero exit, never a traceback."""

    def test_missing_file_exit_code(self, capsys):
        rc = main(["faultcheck", "/no/such/file.c", "--campaign", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: FileNotFoundError:")

    def test_compile_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;")
        rc = main(["run", str(bad)])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ParseError:")

    def test_missing_input_exit_code(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file])  # no --array for 'a'
        assert rc == 1
        assert "error: RuntimeDataError:" in capsys.readouterr().err

    def test_debug_reraises(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;")
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            main(["--debug", "run", str(bad)])
        with pytest.raises(FileNotFoundError):
            main(["faultcheck", "/no/such/file.c", "--debug"])

    def test_success_still_exit_zero(self, vecsum_file):
        rc = main(["run", vecsum_file, "--array", "a=arange:64:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
