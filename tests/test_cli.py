"""Compiler-driver CLI tests (``python -m repro``)."""

import numpy as np
import pytest

from repro.__main__ import main, _parse_array_spec

VECSUM = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""


@pytest.fixture
def vecsum_file(tmp_path):
    p = tmp_path / "vecsum.c"
    p.write_text(VECSUM)
    return str(p)


class TestArraySpecs:
    def test_synthesized_kinds(self):
        name, arr = _parse_array_spec("a=arange:8:float")
        assert name == "a" and arr.dtype == np.float32
        np.testing.assert_array_equal(arr, np.arange(8))
        _, z = _parse_array_spec("z=zeros:2x3:double")
        assert z.shape == (2, 3) and (z == 0).all()
        _, o = _parse_array_spec("o=ones:4:int")
        assert o.dtype == np.int32 and (o == 1).all()

    def test_npy_file(self, tmp_path):
        f = tmp_path / "data.npy"
        np.save(f, np.arange(5))
        name, arr = _parse_array_spec(f"x={f}")
        assert name == "x" and arr.sum() == 10

    def test_bad_specs(self):
        with pytest.raises(SystemExit):
            _parse_array_spec("missing-equals")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=whatever:8:float")
        with pytest.raises(SystemExit):
            _parse_array_spec("a=zeros:8")


class TestCompileCommand:
    def test_dump_everything(self, vecsum_file, capsys):
        rc = main(["compile", vecsum_file, "--dump-ir", "--dump-plan",
                   "--dump-kernels", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "region kind=parallel" in out
        assert "reduction plan" in out
        assert "span gang & worker & vector" in out
        assert "__global__" in out
        assert "4x2x32" in out

    def test_compile_error_reported(self, tmp_path, capsys):
        p = tmp_path / "bad.c"
        p.write_text("int x = ;")
        rc = main(["compile", str(p)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_pass_table_and_autotune_decisions(self, vecsum_file, capsys,
                                               monkeypatch):
        monkeypatch.delenv("REPRO_PASSES", raising=False)
        rc = main(["explain", vecsum_file, "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline 'optimized'" in out
        # every optimized-pipeline pass shows up with its kind
        for name in ("parse", "build-ir", "analyze", "autotune", "lower",
                     "fuse-finish", "fold-constants", "eliminate-barriers",
                     "stamp-sids"):
            assert name in out
        # the integer '+' reduction is exact, so the autotuner runs and
        # its per-variable choice is visible (acceptance criterion)
        assert "autotune decisions:" in out
        assert "total.gang_partial_style" in out
        assert "modeled:" in out

    def test_minimal_pipeline_reports_no_decisions(self, vecsum_file,
                                                   capsys):
        rc = main(["explain", vecsum_file, "--pipeline", "minimal",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline 'minimal'" in out
        assert "autotune: no decisions" in out

    def test_ir_flag_prints_per_pass_diffs(self, vecsum_file, capsys):
        # pin the pipeline so a REPRO_PASSES=minimal environment (the
        # second CI job) still gets the rewrite diffs this asserts on
        rc = main(["explain", vecsum_file, "--ir", "--pipeline",
                   "optimized", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== pass build-ir" in out
        assert "== pass lower" in out
        assert "region kind=parallel" in out
        # rewrites render as unified diffs
        assert "--- acc_region_main before" in out


class TestRunCommand:
    def test_run_with_synthesized_data(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--array", "a=arange:100:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar total = 4950" in out
        assert "modeled:" in out

    def test_run_under_baseline_profile(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--compiler", "vendor-b",
                   "--array", "a=ones:64:float", "--num-gangs", "2",
                   "--num-workers", "2", "--vector-length", "32"])
        assert rc == 0
        assert "scalar total = 64" in capsys.readouterr().out

    def test_save_outputs(self, tmp_path, capsys, monkeypatch):
        src = tmp_path / "copy.c"
        src.write_text("""
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang vector
        for (i = 0; i < n; i++)
            b[i] = a[i] * 2.0f;
        """)
        monkeypatch.chdir(tmp_path)
        rc = main(["run", str(src), "--array", "a=arange:16:float",
                   "--array", "b=zeros:16:float", "--save",
                   "--num-gangs", "2", "--num-workers", "1",
                   "--vector-length", "32"])
        assert rc == 0
        saved = np.load(tmp_path / "b.npy")
        np.testing.assert_allclose(saved, np.arange(16) * 2)


class TestProfileCommand:
    """Smoke coverage for ``python -m repro profile`` (the CI gate the
    observability layer hangs off)."""

    def test_profile_vecsum_text_report(self, capsys):
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        # per-kernel report: time breakdown, counters, derived metrics
        assert "Profile report" in out
        assert "acc_region_main" in out
        assert "gtx" in out and "barr" in out  # global transactions, barriers
        assert "coal" in out and "div" in out  # coalescing, divergence
        assert "occ" in out
        assert "TOTAL" in out  # timing-ledger section
        assert "profiler.kernel_launches" in out

    def test_profile_json_stdout_is_schema_valid(self, capsys):
        import json

        rc = main(["profile", "examples/programs/vecsum.c", "--json", "-",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # stdout is the profile document alone
        assert doc["traceEvents"], "non-empty trace"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert doc["kernels"], "non-empty kernel records"
        for k in doc["kernels"]:
            assert "counters" in k and "timing_us" in k and "derived" in k
        assert doc["metrics"]["counters"]["profiler.kernel_launches"] >= 1

    def test_profile_json_file_and_repeated_runs(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "profile.json"
        # pin the paper-shape two-kernel plan: the optimized pipeline
        # retunes this reduction to a single atomic-handoff kernel
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--json", str(out_path), "--runs", "2",
                   "--pipeline", "minimal",
                   "--num-gangs", "2", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        # two runs of main + finish accumulate into one session
        assert len(doc["kernels"]) == 4
        assert doc["metrics"]["counters"]["profiler.kernel_launches"] == 4

    def test_profile_pipeline_flag_changes_kernel_count(self, tmp_path,
                                                        capsys):
        """The optimized pipeline's autotuner folds this long-+ reduction
        into one atomic-handoff kernel; the flag must reach the compile."""
        import json

        out_path = tmp_path / "profile.json"
        rc = main(["profile", "examples/programs/vecsum.c",
                   "--json", str(out_path), "--pipeline", "optimized",
                   "--num-gangs", "2", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["kernels"]) == 1
        assert doc["kernels"][0]["strategy"]["pipeline"] == "optimized"
        assert "autotune" in doc["kernels"][0]["strategy"]

    def test_run_profile_flag(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file, "--array", "a=arange:100:float",
                   "--profile", "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scalar total = 4950" in out
        assert "Profile report" in out


class TestBenchPassthrough:
    def test_table2_quick(self, capsys):
        rc = main(["table2", "--quick", "--ops", "+", "--ctypes", "int"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_table2_profile_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "profile.json"
        rc = main(["table2", "--quick", "--ops", "+", "--ctypes", "int",
                   "--profile-out", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["bench"]["bench"] == "table2"
        assert doc["kernels"]
        assert doc["metrics"]["counters"]["testsuite.cases"] > 0


class TestFaultcheckCommand:
    def test_campaign_reports_zero_escaped(self, vecsum_file, capsys):
        rc = main(["faultcheck", vecsum_file, "--seed", "0",
                   "--campaign", "12", "--size", "128",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fault campaign: 12 trials" in out
        assert "detection ON" in out
        assert "escaped                   0" in out

    def test_campaign_is_repeatable(self, vecsum_file, capsys):
        argv = ["faultcheck", vecsum_file, "--campaign", "12",
                "--size", "128", "--num-gangs", "4", "--num-workers", "2",
                "--vector-length", "32"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_json_document(self, vecsum_file, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        rc = main(["faultcheck", vecsum_file, "--campaign", "6",
                   "--size", "128", "--num-gangs", "4",
                   "--num-workers", "2", "--vector-length", "32",
                   "--json", str(out_path)])
        assert rc == 0
        import json
        doc = json.loads(out_path.read_text())
        assert doc["counts"]["escaped"] == 0
        assert len(doc["trials"]) == 6


class TestErrorHandling:
    """Operational robustness of the driver itself: failures become a
    typed one-line message and a non-zero exit, never a traceback."""

    def test_missing_file_exit_code(self, capsys):
        rc = main(["faultcheck", "/no/such/file.c", "--campaign", "2"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: FileNotFoundError:")

    def test_compile_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;")
        rc = main(["run", str(bad)])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ParseError:")

    def test_missing_input_exit_code(self, vecsum_file, capsys):
        rc = main(["run", vecsum_file])  # no --array for 'a'
        assert rc == 1
        assert "error: RuntimeDataError:" in capsys.readouterr().err

    def test_debug_reraises(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;")
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            main(["--debug", "run", str(bad)])
        with pytest.raises(FileNotFoundError):
            main(["faultcheck", "/no/such/file.c", "--debug"])

    def test_success_still_exit_zero(self, vecsum_file):
        rc = main(["run", vecsum_file, "--array", "a=arange:64:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32"])
        assert rc == 0


class TestObsCommand:
    """The perf observatory + timeline CLI (``python -m repro obs``)."""

    def test_record_quick_then_compare_ok(self, tmp_path, capsys):
        ledger = str(tmp_path / "hist.jsonl")
        rc = main(["obs", "record", "--ledger", ledger, "--quick",
                   "--reps", "1"])
        assert rc == 0
        rc = main(["obs", "record", "--ledger", ledger, "--quick",
                   "--reps", "1"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["obs", "compare", "--ledger", ledger,
                   "--metric", "modeled"])
        out = capsys.readouterr()
        assert rc == 0
        assert "no regressions" in out.err

    def test_perturbed_record_fails_compare(self, tmp_path, capsys):
        ledger = str(tmp_path / "hist.jsonl")
        assert main(["obs", "record", "--ledger", ledger, "--quick",
                     "--reps", "1"]) == 0
        assert main(["obs", "record", "--ledger", ledger, "--quick",
                     "--reps", "1", "--perturb",
                     "reduction_64gang:1.2"]) == 0
        capsys.readouterr()
        rc = main(["obs", "compare", "--ledger", ledger,
                   "--metric", "modeled"])
        out = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in out.out
        assert "reduction_64gang" in out.out
        # the unperturbed configs stay inside the band
        assert "table2_quick" not in [
            ln.split()[1] for ln in out.out.splitlines()
            if "REGRESSION" in ln]

    def test_import_baseline_seeds_ledger(self, tmp_path, capsys):
        ledger = str(tmp_path / "hist.jsonl")
        rc = main(["obs", "record", "--ledger", ledger,
                   "--import-baseline", "BENCH_table2.json"])
        assert rc == 0
        from repro.bench.history import load_ledger
        entries = load_ledger(ledger)
        assert entries and all(e.source == "baseline-import"
                               for e in entries)

    def test_report_markdown_and_html(self, tmp_path, capsys):
        ledger = str(tmp_path / "hist.jsonl")
        assert main(["obs", "record", "--ledger", ledger, "--quick",
                     "--reps", "1"]) == 0
        capsys.readouterr()
        assert main(["obs", "report", "--ledger", ledger]) == 0
        md = capsys.readouterr().out
        assert "| config |" in md
        out_html = str(tmp_path / "dash.html")
        assert main(["obs", "report", "--ledger", ledger,
                     "--format", "html", "--out", out_html]) == 0
        text = open(out_html).read()
        assert text.startswith("<!doctype html>") and "<svg" in text

    def test_record_timeline_and_events_filter(self, tmp_path, capsys):
        ledger = str(tmp_path / "hist.jsonl")
        tl_path = str(tmp_path / "tl.jsonl")
        assert main(["obs", "record", "--ledger", ledger, "--quick",
                     "--reps", "1", "--timeline", tl_path]) == 0
        capsys.readouterr()
        assert main(["obs", "events", tl_path, "--category", "bench"]) == 0
        out = capsys.readouterr()
        assert "history:reduction_64gang" in out.out
        assert "event(s)" in out.err

    def test_run_timeline_export(self, vecsum_file, tmp_path, capsys):
        tl_path = str(tmp_path / "run.jsonl")
        rc = main(["run", vecsum_file, "--array", "a=arange:64:float",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32", "--timeline", tl_path])
        assert rc == 0
        from repro.obs import timeline as _tl
        header, events = _tl.read_jsonl(tl_path)
        assert header["header"] == "repro.obs.timeline"
        assert any(e["category"] == "gpu" and e["kind"] == "span"
                   for e in events)
        # the CLI scope uninstalls the bus on exit
        from repro.obs import timeline
        assert timeline.current() is None


class TestProfileErrorFlush:
    """A kernel failure mid-run must not lose the partial trace."""

    def test_partial_profile_written_on_fault(self, tmp_path, capsys):
        # stuck-warp faults surface as a typed watchdog error mid-run;
        # with --json set the partial document must still be written
        src = tmp_path / "vecsum.c"
        src.write_text(VECSUM)
        out_path = tmp_path / "profile.json"
        rc = main(["profile", str(src), "--size", "128",
                   "--num-gangs", "4", "--num-workers", "2",
                   "--vector-length", "32", "--json", str(out_path)])
        assert rc == 0
        import json
        doc = json.loads(out_path.read_text())
        assert "truncated" not in doc  # clean run: no truncation stamp

        import repro.acc.compiler as compiler_mod
        orig = compiler_mod.Program._execute_bound

        def boom(self, *a, **kw):
            from repro.errors import KernelLaunchError
            raise KernelLaunchError("injected mid-run failure")

        compiler_mod.Program._execute_bound = boom
        try:
            rc = main(["profile", str(src), "--size", "128",
                       "--num-gangs", "4", "--num-workers", "2",
                       "--vector-length", "32", "--json", str(out_path)])
        finally:
            compiler_mod.Program._execute_bound = orig
        assert rc == 1
        doc = json.loads(out_path.read_text())
        assert doc["truncated"] is True
        assert doc["truncated_by"]["error"] == "KernelLaunchError"
        # the compile phases captured before the failure survive
        assert any(ev.get("cat") == "compile"
                   for ev in doc["traceEvents"])
