"""OpenACC directive parser tests."""

import pytest

from repro.errors import DirectiveError
from repro.frontend.pragmas import (
    AccLoopInfo, AccRegionInfo, parse_pragma,
)


class TestRegionDirectives:
    def test_bare_parallel(self):
        info = parse_pragma("acc parallel")
        assert isinstance(info, AccRegionInfo)
        assert info.kind == "parallel"
        assert info.data == ()

    def test_kernels(self):
        assert parse_pragma("acc kernels").kind == "kernels"

    def test_data_clauses(self):
        info = parse_pragma("acc parallel copyin(input) copyout(temp) "
                            "create(scratch) copy(both)")
        got = {(d.kind, d.name) for d in info.data}
        assert got == {("copyin", "input"), ("copyout", "temp"),
                       ("create", "scratch"), ("copy", "both")}

    def test_multiple_names_per_clause(self):
        info = parse_pragma("acc parallel copyin(a, b, c)")
        assert [d.name for d in info.data] == ["a", "b", "c"]

    def test_subarray_ranges_parsed(self):
        info = parse_pragma("acc parallel copyin(x[0:n])")
        assert info.data[0].name == "x"
        assert info.data[0].ranges == (("0", "n"),)

    def test_launch_config(self):
        info = parse_pragma("acc parallel num_gangs(192) num_workers(8) "
                            "vector_length(128)")
        assert (info.num_gangs, info.num_workers, info.vector_length) == \
            (192, 8, 128)

    def test_prefixed_data_clauses(self):
        info = parse_pragma("acc parallel pcopyin(a)")
        assert info.data[0].kind == "copyin"

    def test_present_not_mangled(self):
        info = parse_pragma("acc parallel present(a)")
        assert info.data[0].kind == "present"

    def test_reduction_on_parallel_rejected(self):
        with pytest.raises(DirectiveError, match="loop directive"):
            parse_pragma("acc parallel reduction(+:sum)")

    def test_unknown_clause(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc parallel async(1)")

    def test_unknown_directive(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc update host(x)")

    def test_non_acc_pragma_returns_none(self):
        assert parse_pragma("omp parallel for") is None

    def test_combined_parallel_loop(self):
        info = parse_pragma("acc parallel loop gang vector "
                            "reduction(max:error) copyin(a)")
        assert isinstance(info, AccRegionInfo)
        assert info.combined_loop is not None
        assert info.combined_loop.levels == ("gang", "vector")
        assert info.combined_loop.reductions == (("max", "error"),)
        assert info.data[0].name == "a"


class TestLoopDirectives:
    def test_levels(self):
        info = parse_pragma("acc loop gang")
        assert isinstance(info, AccLoopInfo)
        assert info.levels == ("gang",)
        assert info.is_parallel

    def test_multi_level_same_line(self):
        # the paper's "same line gang worker vector" case (Fig. 10)
        info = parse_pragma("acc loop gang worker vector reduction(+:sum)")
        assert info.levels == ("gang", "worker", "vector")
        assert info.reductions == (("+", "sum"),)

    def test_level_order_enforced(self):
        with pytest.raises(DirectiveError, match="ordered"):
            parse_pragma("acc loop vector gang")

    def test_duplicate_level_rejected(self):
        with pytest.raises(DirectiveError, match="duplicate"):
            parse_pragma("acc loop gang gang")

    def test_seq(self):
        info = parse_pragma("acc loop seq")
        assert info.seq and not info.is_parallel

    def test_seq_with_level_rejected(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc loop seq vector")

    @pytest.mark.parametrize("op", ["+", "*", "max", "min", "&", "|", "^",
                                    "&&", "||"])
    def test_all_reduction_operators(self, op):
        info = parse_pragma(f"acc loop vector reduction({op}:x)")
        assert info.reductions == ((op, "x"),)

    def test_reduction_multiple_vars(self):
        info = parse_pragma("acc loop vector reduction(+:a,b)")
        assert info.reductions == (("+", "a"), ("+", "b"))

    def test_multiple_reduction_clauses(self):
        # §3.3: same clause list, different data types / operators
        info = parse_pragma("acc loop vector reduction(+:a) reduction(max:b)")
        assert info.reductions == (("+", "a"), ("max", "b"))

    def test_bad_reduction_operator(self):
        with pytest.raises(DirectiveError, match="operator"):
            parse_pragma("acc loop vector reduction(-:x)")

    def test_collapse(self):
        assert parse_pragma("acc loop gang collapse(2)").collapse == 2

    def test_collapse_requires_positive(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc loop gang collapse(0)")

    def test_private(self):
        info = parse_pragma("acc loop gang private(x, y)")
        assert info.private == ("x", "y")

    def test_independent(self):
        assert parse_pragma("acc loop independent").independent

    def test_unknown_loop_clause(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc loop tile(2)")
