"""Property-based frontend tests.

Random expression trees are printed to C, parsed back, compiled through
the full pipeline, and evaluated both on the simulated device and by
direct Python evaluation — precedence, associativity and conversion rules
must agree everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import acc
from repro.frontend.cparser import parse_region, parse_statements
from repro.frontend import ast_nodes as A

# -- random integer expressions over variables a, b, c ----------------------

_BINOPS = ["+", "-", "*", "&", "|", "^", "<<"]


def exprs(depth):
    leaf = st.one_of(
        st.integers(0, 7).map(lambda v: str(v)),
        st.sampled_from(["va", "vb", "vc"]),
    )
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_BINOPS), sub, sub).map(
            lambda t: f"{t[1]} {t[0]} {t[2]}"),
        st.tuples(st.sampled_from(_BINOPS), sub, sub).map(
            lambda t: f"({t[1]} {t[0]} {t[2]})"),
        sub.map(lambda s: f"-({s})"),
        sub.map(lambda s: f"~({s})"),
    )


def py_eval(src, va, vb, vc):
    """Evaluate with C/int32 semantics via numpy."""
    env = {"va": np.int32(va), "vb": np.int32(vb), "vc": np.int32(vc)}
    # python's operators match C for + - * & | ^ << on int32 numpy scalars
    with np.errstate(over="ignore"):
        return np.int32(eval(src, {"__builtins__": {}}, env))  # noqa: S307


class TestExpressionSemantics:
    @given(src=exprs(3), va=st.integers(0, 7), vb=st.integers(0, 7),
           vc=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_parsed_precedence_matches_python(self, src, va, vb, vc):
        # shifts by huge amounts are UB in C; cap the rhs structurally
        if "<<" in src:
            return  # handled separately below with safe operands
        program = f"""
        int out[n];
        #pragma acc parallel copyout(out)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            out[i] = {src};
        """
        prog = acc.compile(program, num_gangs=1, num_workers=1,
                           vector_length=1)
        kwargs = {name: val for name, val in
                  (("va", va), ("vb", vb), ("vc", vc)) if name in src}
        res = prog.run(out=np.zeros(1, np.int32), **kwargs)
        assert res.outputs["out"][0] == py_eval(src, va, vb, vc)

    @given(va=st.integers(0, 7), vb=st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_shift_expression(self, va, vb):
        program = """
        int out[n];
        #pragma acc parallel copyout(out)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            out[i] = (va << vb) + 1;
        """
        prog = acc.compile(program, num_gangs=1, num_workers=1,
                           vector_length=1)
        res = prog.run(out=np.zeros(1, np.int32), va=va, vb=vb)
        assert res.outputs["out"][0] == (va << vb) + 1


class TestParserRobustness:
    @given(st.text(
        alphabet="abcxyz0123456789+-*/%<>=!&|^~?:()[]{};, \n\t.",
        max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_only_raises_parse_errors(self, junk):
        from repro.errors import CompileError
        try:
            parse_region(junk)
        except CompileError:
            pass  # expected: clean rejection

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_integer_literals_roundtrip(self, v):
        (stmt,) = parse_statements(f"x = {v};")
        assert isinstance(stmt.value, A.CIntLit) and stmt.value.value == v

    def test_deeply_nested_parentheses(self):
        depth = 40
        src = "x = " + "(" * depth + "1" + ")" * depth + ";"
        (stmt,) = parse_statements(src)
        assert stmt.value == A.CIntLit(1)

    def test_deeply_nested_loops(self):
        inner = "x += 1;"
        for d in range(10):
            inner = f"for (i{d} = 0; i{d} < 2; i{d}++) {{ {inner} }}"
        (loop,) = parse_statements(inner)
        assert isinstance(loop, A.CFor)


class TestFrontendEdgeCases:
    def test_comment_between_pragma_and_loop(self):
        region = parse_region("""
        float a[n];
        #pragma acc parallel copy(a)
        {
          #pragma acc loop gang
          /* the gang loop */
          for (i = 0; i < n; i++)
            a[i] = a[i];
        }
        """)
        assert region.body[0].pragma.levels == ("gang",)

    def test_else_if_chain(self):
        (s,) = parse_statements("""
        if (x < 1) y = 1;
        else if (x < 2) y = 2;
        else y = 3;
        """)
        assert isinstance(s.orelse[0], A.CIf)

    def test_hex_literals_in_expressions(self):
        (s,) = parse_statements("x = 0xFF & mask;")
        assert s.value.left == A.CIntLit(255)

    def test_unary_plus_dropped(self):
        (s,) = parse_statements("x = +y;")
        assert s.value == A.CIdent("y")

    def test_chained_else_binding(self):
        # else binds to the nearest if
        (s,) = parse_statements(
            "if (a < 1) if (b < 1) x = 1; else x = 2;")
        assert s.orelse == ()
        assert len(s.then) == 1 and s.then[0].orelse != ()

    def test_empty_statement_tolerated(self):
        stmts = parse_statements("; x = 1; ;")
        assert any(isinstance(s, A.CAssign) for s in stmts)

    def test_float_exponent_forms(self):
        (s,) = parse_statements("x = 1e3 + 2.5e-2;")
        assert isinstance(s.value.left, A.CFloatLit)
        assert s.value.left.value == 1000.0

    def test_long_pragma_continuation_chain(self):
        src = ("#pragma acc parallel \\\n copyin(a) \\\n copyout(b) \\\n"
               " num_gangs(4)\n{ \n#pragma acc loop gang\n"
               "for (i=0;i<n;i++) b[i]=a[i]; }")
        src = "float a[n];\nfloat b[n];\n" + src
        region = parse_region(src)
        assert region.info.num_gangs == 4
