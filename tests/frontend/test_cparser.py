"""C-subset parser tests, including the paper's figure programs verbatim."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.cparser import parse_region, parse_statements


class TestExpressions:
    def expr(self, src):
        (stmt,) = parse_statements(f"x = {src};")
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert isinstance(e, A.CBinary) and e.op == "+"
        assert isinstance(e.right, A.CBinary) and e.right.op == "*"

    def test_parentheses(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*" and e.left.op == "+"

    def test_relational_vs_logical(self):
        e = self.expr("a < b && c < d")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == "<"

    def test_bitwise_precedence_chain(self):
        e = self.expr("a | b ^ c & d")
        assert e.op == "|" and e.right.op == "^" and e.right.right.op == "&"

    def test_unary(self):
        e = self.expr("-a * !b")
        assert e.op == "*"
        assert isinstance(e.left, A.CUnary) and e.left.op == "-"
        assert isinstance(e.right, A.CUnary) and e.right.op == "!"

    def test_cast(self):
        e = self.expr("(double)a / n")
        assert e.op == "/"
        assert isinstance(e.left, A.CCast) and e.left.ctype == "double"

    def test_ternary(self):
        e = self.expr("a < b ? a : b")
        assert isinstance(e, A.CCond)

    def test_multidim_index(self):
        e = self.expr("input[k][j][i]")
        assert isinstance(e, A.CIndex)
        assert isinstance(e.base, A.CIndex)
        assert isinstance(e.base.base, A.CIndex)
        assert e.base.base.base == A.CIdent("input")

    def test_flat_index_expression(self):
        e = self.expr("A[i*n+k]")
        assert isinstance(e, A.CIndex) and isinstance(e.index, A.CBinary)

    def test_call(self):
        e = self.expr("fmax(error, fabs(a - b))")
        assert isinstance(e, A.CCall) and e.name == "fmax"
        assert isinstance(e.args[1], A.CCall)

    def test_float_literals(self):
        assert self.expr("1.0").is_double
        assert not self.expr("1.0f").is_double


class TestStatements:
    def test_decl_scalar(self):
        (d,) = parse_statements("int i_sum = j;")
        assert d == A.CDecl("int", "i_sum", (), A.CIdent("j"), line=1)

    def test_decl_array(self):
        (d,) = parse_statements("float temp[NK][NJ][NI];")
        assert d.name == "temp" and len(d.dims) == 3

    def test_unsigned_int_folds_to_int(self):
        (d,) = parse_statements("unsigned int x;")
        assert d.ctype == "int"

    def test_compound_assign(self):
        (s,) = parse_statements("sum += a[i];")
        assert s.op == "+" and isinstance(s.target, A.CIdent)

    def test_increment_statement(self):
        (s,) = parse_statements("i++;")
        assert s.op == "+" and s.value == A.CIntLit(1)

    def test_if_else(self):
        (s,) = parse_statements("if (x < 1.0) m += 1; else m -= 1;")
        assert isinstance(s, A.CIf) and len(s.then) == 1 and len(s.orelse) == 1

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("5 = x;")


class TestForLoops:
    def test_canonical_form(self):
        (f,) = parse_statements("for (i = 0; i < n; i++) x += 1;")
        assert (f.var, f.start, f.step) == ("i", A.CIntLit(0), A.CIntLit(1))
        assert f.end == A.CIdent("n")

    def test_le_condition_becomes_exclusive(self):
        (f,) = parse_statements("for (i = 0; i <= n; i++) x += 1;")
        assert f.end == A.CBinary("+", A.CIdent("n"), A.CIntLit(1))

    def test_decl_in_init(self):
        (f,) = parse_statements("for (int i = 0; i < 4; ++i) x += 1;")
        assert f.decl_type == "int"

    def test_step(self):
        (f,) = parse_statements("for (i = 1; i < n; i += 2) x += 1;")
        assert f.step == A.CIntLit(2)

    def test_descending_rejected(self):
        with pytest.raises(ParseError, match="ascending"):
            parse_statements("for (i = n; i > 0; i--) x += 1;")

    def test_wrong_var_in_condition(self):
        with pytest.raises(ParseError, match="loop variable"):
            parse_statements("for (i = 0; j < n; i++) x += 1;")

    def test_nested(self):
        (f,) = parse_statements(
            "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) x += 1; }")
        assert isinstance(f.body[0], A.CFor)


class TestRegions:
    def test_fig4a_reduction_in_vector(self):
        # Paper Fig. 4(a), verbatim shape
        src = """
        #pragma acc parallel copyin(input) copyout(temp)
        {
          #pragma acc loop gang
          for(k=0; k<NK; k++){
            #pragma acc loop worker
            for(j=0; j<NJ; j++){
              int i_sum = j;
              #pragma acc loop vector reduction(+:i_sum)
              for(i=0; i<NI; i++)
                i_sum += input[k][j][i];
              temp[k][j][0] = i_sum;
            }
          }
        }
        """
        region = parse_region(src)
        assert region.info.kind == "parallel"
        gang_loop = region.body[0]
        assert isinstance(gang_loop, A.CFor)
        assert gang_loop.pragma.levels == ("gang",)
        worker_loop = gang_loop.body[0]
        assert worker_loop.pragma.levels == ("worker",)
        decl, vec_loop, store = worker_loop.body
        assert isinstance(decl, A.CDecl) and decl.name == "i_sum"
        assert vec_loop.pragma.reductions == (("+", "i_sum"),)
        assert isinstance(store, A.CAssign)

    def test_preamble_declarations(self):
        src = """
        sum = 0;
        #pragma acc parallel copyin(input)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++)
            sum += input[k];
        }
        """
        region = parse_region(src)
        assert len(region.preamble) == 1
        assert region.body[0].pragma.reductions == (("+", "sum"),)

    def test_region_without_braces(self):
        src = """
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:m)
        for(i=0; i<n; i++)
          m += a[i];
        """
        region = parse_region(src)
        assert region.body[0].pragma.levels == ("gang", "vector")

    def test_combined_parallel_loop_attaches_to_for(self):
        src = """
        #pragma acc parallel loop gang vector reduction(+:m) copyin(a)
        for(i=0; i<n; i++)
          m += a[i];
        """
        region = parse_region(src)
        f = region.body[0]
        assert f.pragma is not None
        assert f.pragma.levels == ("gang", "vector")

    def test_missing_region_rejected(self):
        with pytest.raises(ParseError, match="region"):
            parse_region("x = 1;")

    def test_loop_pragma_without_for_rejected(self):
        with pytest.raises(ParseError, match="for loop"):
            parse_region("""
            #pragma acc parallel
            {
              #pragma acc loop gang
              x = 1;
            }
            """)

    def test_nested_region_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse_region("""
            #pragma acc parallel
            {
              #pragma acc parallel
              { x = 1; }
            }
            """)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="after the compute region"):
            parse_region("""
            #pragma acc parallel
            { x = 1; }
            y = 2;
            """)

    def test_fig13c_monte_carlo(self):
        # Paper Fig. 13(c) shape: if statement guarding the reduction
        src = """
        #pragma acc parallel copyin(x, y)
        {
          #pragma acc loop gang vector reduction(+:m)
          for(i = 0; i < n; i++){
            if(x[i]*x[i] + y[i]*y[i] < 1.0)
              m += 1;
          }
        }
        """
        region = parse_region(src)
        loop = region.body[0]
        assert isinstance(loop.body[0], A.CIf)
