"""Lexer tests."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "EOF"]


class TestBasics:
    def test_identifiers_and_ints(self):
        assert kinds("foo bar42 7") == [("ID", "foo"), ("ID", "bar42"),
                                        ("INT", "7")]

    def test_floats(self):
        toks = kinds("1.5 2.0f .5 1e3")
        assert [k for k, _ in toks] == ["FLOAT"] * 4

    def test_hex(self):
        assert kinds("0xFF")[0] == ("INT", "0xFF")

    def test_multichar_operators_longest_match(self):
        assert [t for _, t in kinds("a<<=b")] == ["a", "<<=", "b"]
        assert [t for _, t in kinds("a<=b")] == ["a", "<=", "b"]
        assert [t for _, t in kinds("i++")] == ["i", "++"]
        assert [t for _, t in kinds("a&&b||c")] == ["a", "&&", "b", "||", "c"]

    def test_punctuation(self):
        assert [t for _, t in kinds("a[i] = f(x);")] == \
            ["a", "[", "i", "]", "=", "f", "(", "x", ")", ";"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "ID"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ID", "a"), ("ID", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ID", "a"), ("ID", "b")]

    def test_block_comment_preserves_lines(self):
        toks = tokenize("/* one\ntwo */ b")
        b = [t for t in toks if t.text == "b"][0]
        assert b.line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("a /* never closed")


class TestPragmas:
    def test_pragma_token(self):
        toks = tokenize("#pragma acc loop gang\nfor")
        assert toks[0].kind == "PRAGMA"
        assert toks[0].text == "acc loop gang"

    def test_pragma_continuation(self):
        src = "#pragma acc parallel \\\n  copyin(input) \\\n  copyout(temp)\nx"
        toks = tokenize(src)
        assert toks[0].kind == "PRAGMA"
        assert "copyin(input)" in toks[0].text
        assert "copyout(temp)" in toks[0].text
        assert toks[1].text == "x"

    def test_non_pragma_preprocessor_ignored(self):
        toks = tokenize("#include <stdio.h>\n#define N 5\nx")
        assert toks[0].kind == "ID" and toks[0].text == "x"

    def test_indented_pragma(self):
        toks = tokenize("   #pragma acc loop vector\nfor")
        assert toks[0].kind == "PRAGMA"
