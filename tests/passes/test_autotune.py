"""Cost-model autotune pass: exactness gating, pinned-option respect,
and the visibility of its decisions."""

import numpy as np

from repro import acc

INT_GANG = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

FLOAT_GANG = INT_GANG.replace("long total = 0;", "float total = 0.0;")

MAX_GANG = """
float a[n];
float best = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(max:best)
for (i = 0; i < n; i++)
    best = fmaxf(best, a[i]);
"""

GEOM = dict(num_gangs=8, num_workers=2, vector_length=32)


class TestExactnessGate:
    def test_integer_reduction_is_tuned(self):
        prog = acc.compile(INT_GANG, **GEOM)
        rec = prog.autotune["total"]
        assert "skipped" not in rec
        assert "gang_partial_style" in rec
        dec = rec["gang_partial_style"]
        assert dec["choice"] in ("buffer", "atomic")
        assert set(dec["estimates_us"]) == {"buffer", "atomic"}
        assert all(us > 0 for us in dec["estimates_us"].values())

    def test_float_sum_is_skipped(self):
        prog = acc.compile(FLOAT_GANG, **GEOM)
        rec = prog.autotune["total"]
        assert "skipped" in rec and "inexact" in rec["skipped"]
        # profile defaults untouched: the finish kernel is still fused
        # away by fuse-finish, but the handoff stays 'buffer'
        assert prog.lowered.options.gang_partial_style == "buffer"
        assert "autotune" not in prog.strategy

    def test_float_max_is_exact_and_tuned(self):
        prog = acc.compile(MAX_GANG, **GEOM)
        rec = prog.autotune["best"]
        assert "skipped" not in rec
        assert "gang_partial_style" in rec

    def test_tuned_results_match_minimal_bitwise(self):
        a = (np.arange(4096) % 97).astype(np.float32)
        r0 = acc.compile(INT_GANG, **GEOM, pipeline="minimal").run(a=a)
        r1 = acc.compile(INT_GANG, **GEOM).run(a=a)
        assert np.asarray(r0.scalars["total"]).tobytes() == \
            np.asarray(r1.scalars["total"]).tobytes()


class TestPinnedOptions:
    def test_explicit_override_is_never_retuned(self):
        prog = acc.compile(INT_GANG, **GEOM, gang_partial_style="buffer")
        rec = prog.autotune.get("total", {})
        assert "gang_partial_style" not in rec
        # the pinned style really is in effect
        assert prog.lowered.options.gang_partial_style == "buffer"

    def test_vector_strategy_pin_respected(self):
        prog = acc.compile(INT_GANG, **GEOM, vector_strategy="logstep")
        rec = prog.autotune.get("total", {})
        assert "vector_strategy" not in rec

    def test_unpinned_fields_still_tuned(self):
        prog = acc.compile(INT_GANG, **GEOM, vector_strategy="logstep")
        assert "gang_partial_style" in prog.autotune.get("total", {})


class TestVisibility:
    def test_strategy_carries_overriding_choices(self):
        prog = acc.compile(INT_GANG, **GEOM)
        tuned = prog.strategy.get("autotune", {})
        overrides = {fld: dec["choice"]
                     for fld, dec in prog.autotune["total"].items()
                     if dec["choice"] != dec["default"]}
        if overrides:
            assert tuned["total"] == overrides
        else:
            assert "total" not in tuned

    def test_minimal_pipeline_records_nothing(self):
        prog = acc.compile(INT_GANG, **GEOM, pipeline="minimal")
        assert prog.autotune == {}
        assert "autotune" not in prog.strategy

    def test_decisions_in_profiler_record(self):
        from repro.obs import Profiler

        prof = Profiler()
        prog = acc.compile(INT_GANG, **GEOM, profiler=prof)
        prog.run(a=np.ones(1024, dtype=np.float32), profiler=prof)
        rec = prof.kernels_named("acc_region_main")[0]
        assert rec.strategy["pipeline"] == "optimized"
        if "autotune" in prog.strategy:
            assert rec.strategy["autotune"] == prog.strategy["autotune"]
