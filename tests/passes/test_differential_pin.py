"""The pass pipeline's bit-identity contract (acceptance pin).

The full testsuite grid — every Table 2 reduction position x operator x
dtype — must produce bitwise-identical results under the ``minimal``
pipeline (the paper-shape lowering, no optimization passes) and the
default ``optimized`` pipeline, on all three executors (reference,
batched, trace — the trace mode transparently demotes ineligible
kernels, so requesting it is always safe).  The kernel-IR passes
(fusion, barrier elimination, folding) are transformations that preserve
the combination tree exactly, and the autotuner only retunes reductions
whose combine is grouping-invariant — so any bitwise divergence here is
a bug in a pass, not an accepted rounding difference.
"""

import numpy as np
import pytest

from repro import acc
from repro.testsuite.cases import generate_cases

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

CASES = generate_cases(size=256)


def _bits(res):
    return {name: np.asarray(val).tobytes()
            for name, val in res.scalars.items()}


@pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
def test_minimal_and_optimized_pipelines_bit_identical(case):
    rng = np.random.default_rng(3)
    inputs = case.make_inputs(rng)
    progs = {pipe: acc.compile(case.source, **GEOM, pipeline=pipe)
             for pipe in ("minimal", "optimized")}
    results = {(pipe, mode): prog.run(executor_mode=mode, **inputs)
               for pipe, prog in progs.items()
               for mode in ("reference", "batched", "trace")}

    baseline = _bits(results[("minimal", "reference")])
    for key, res in results.items():
        assert _bits(res) == baseline, \
            f"pipeline/executor {key} diverged bitwise from " \
            "minimal/reference"

    # and the shared answer verifies against the host oracle
    res = results[("optimized", "batched")]
    for kind, name, expect in case.expected(inputs):
        got = res.scalars[name] if kind == "scalar" else res.outputs[name]
        np.testing.assert_allclose(
            np.asarray(got, dtype=np.float64),
            np.asarray(expect, dtype=np.float64), rtol=1e-5)


#: cascaded-reduction workloads for the cascade-fusion on/off pin:
#: (label, source) — each has at least one reduce→consume stage handoff
_SOFTMAX_SRC = """
float x[n];
float y[n];
float m = -3.0e38f;
float s = 0.0f;
#pragma acc parallel copyin(x) copyout(y)
{
#pragma acc loop gang worker vector reduction(max:m)
for (i = 0; i < n; i++) if (x[i] > m) m = x[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) y[i] = expf(x[i] - m);
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + y[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) y[i] = y[i] / s;
}
"""

_MEANDEV_SRC = """
float x[n];
float s = 0.0f;
float d = 0.0f;
#pragma acc parallel copyin(x)
{
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + x[i];
#pragma acc loop gang worker vector reduction(max:d)
for (i = 0; i < n; i++) if (x[i] - s > d) d = x[i] - s;
}
"""

CASCADES = [("softmax", _SOFTMAX_SRC), ("mean-dev", _MEANDEV_SRC)]


@pytest.mark.parametrize("label,src", CASCADES,
                         ids=[c[0] for c in CASCADES])
def test_cascade_fusion_on_off_bit_identical(label, src):
    """The cascade-fusion acceptance pin: fused, pinned-unfused, and
    minimal builds of each cascaded workload agree bitwise on every
    scalar and output array, in all three executor modes."""
    rng = np.random.default_rng(17)
    x = rng.standard_normal(256).astype(np.float32)
    progs = {
        "fused": acc.compile(src, **GEOM, pipeline="optimized"),
        "never": acc.compile(src, **GEOM, pipeline="optimized",
                             cascade_fusion="never"),
        "minimal": acc.compile(src, **GEOM, pipeline="minimal"),
    }
    extra = {"y": np.zeros_like(x)} if "float y[n]" in src else {}
    baseline = None
    for pipe, prog in progs.items():
        for mode in ("reference", "batched", "trace"):
            res = prog.run(x=x, executor_mode=mode, **extra)
            bits = {name: np.asarray(val).tobytes()
                    for name, val in res.scalars.items()}
            bits.update({name: arr.tobytes()
                         for name, arr in res.outputs.items()})
            if baseline is None:
                baseline = bits
            assert bits == baseline, \
                f"{label}: {pipe}/{mode} diverged bitwise"
