"""The pass pipeline's bit-identity contract (acceptance pin).

The full testsuite grid — every Table 2 reduction position x operator x
dtype — must produce bitwise-identical results under the ``minimal``
pipeline (the paper-shape lowering, no optimization passes) and the
default ``optimized`` pipeline, on all three executors (reference,
batched, trace — the trace mode transparently demotes ineligible
kernels, so requesting it is always safe).  The kernel-IR passes
(fusion, barrier elimination, folding) are transformations that preserve
the combination tree exactly, and the autotuner only retunes reductions
whose combine is grouping-invariant — so any bitwise divergence here is
a bug in a pass, not an accepted rounding difference.
"""

import numpy as np
import pytest

from repro import acc
from repro.testsuite.cases import generate_cases

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

CASES = generate_cases(size=256)


def _bits(res):
    return {name: np.asarray(val).tobytes()
            for name, val in res.scalars.items()}


@pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
def test_minimal_and_optimized_pipelines_bit_identical(case):
    rng = np.random.default_rng(3)
    inputs = case.make_inputs(rng)
    progs = {pipe: acc.compile(case.source, **GEOM, pipeline=pipe)
             for pipe in ("minimal", "optimized")}
    results = {(pipe, mode): prog.run(executor_mode=mode, **inputs)
               for pipe, prog in progs.items()
               for mode in ("reference", "batched", "trace")}

    baseline = _bits(results[("minimal", "reference")])
    for key, res in results.items():
        assert _bits(res) == baseline, \
            f"pipeline/executor {key} diverged bitwise from " \
            "minimal/reference"

    # and the shared answer verifies against the host oracle
    res = results[("optimized", "batched")]
    for kind, name, expect in case.expected(inputs):
        got = res.scalars[name] if kind == "scalar" else res.outputs[name]
        np.testing.assert_allclose(
            np.asarray(got, dtype=np.float64),
            np.asarray(expect, dtype=np.float64), rtol=1e-5)
