"""Golden-dump coverage around the optimization passes: the pass
manager's captured before/after listings (rendered through
:mod:`repro.ir.pprint` and :func:`repro.gpu.kernelir.dump`), sid-mapped
dumps of post-optimization kernels, and the annotated listings the
attribution layer renders — which must show the *post*-optimization IR.
"""

import numpy as np

from repro import acc
from repro.gpu.kernelir import dump_with_sids, walk_stmts

SRC = """
float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

GEOM = dict(num_gangs=8, num_workers=2, vector_length=32)


def _records(pipeline):
    prog = acc.compile(SRC, **GEOM, pipeline=pipeline, capture_ir=True)
    return prog, {r.name: r for r in prog.pass_records}


class TestCapturedListings:
    def test_frontend_listings_use_pprint(self):
        _, recs = _records("optimized")
        region = recs["build-ir"].after["region"]
        assert "region kind=parallel" in region
        assert "reduction(+:total)" in region
        plan = recs["analyze"].after["plan"]
        assert "reduction plan" in plan
        assert "span gang & worker & vector" in plan

    def test_fuse_finish_removes_a_listing(self):
        _, recs = _records("optimized")
        rec = recs["fuse-finish"]
        assert "acc_reduction_finish_total" in rec.before
        assert "acc_reduction_finish_total" not in rec.after
        # the epilogue lands in the main kernel's dump
        assert "_sfin_" not in rec.before["acc_region_main"]
        assert "_sfin_" in rec.after["acc_region_main"]

    def test_eliminate_barriers_golden_delta(self):
        geom = dict(num_gangs=8, num_workers=1, vector_length=32)
        prog = acc.compile(SRC, **geom, pipeline="optimized",
                           capture_ir=True)
        rec = {r.name: r for r in prog.pass_records}["eliminate-barriers"]
        before = rec.before["acc_region_main"]
        after = rec.after["acc_region_main"]
        assert before.count("__syncthreads") > 0
        assert after.count("__syncthreads") == 0
        # only barriers were removed: every other line survives verbatim
        kept = [ln for ln in before.splitlines()
                if "__syncthreads" not in ln]
        assert kept == after.splitlines()

    def test_minimal_pipeline_listings_are_stable_after_lower(self):
        _, recs = _records("minimal")
        assert recs["lower"].changed
        assert not recs["stamp-sids"].changed  # sids don't alter the dump


class TestDumpWithSids:
    def _main(self, pipeline):
        prog = acc.compile(SRC, **GEOM, pipeline=pipeline)
        return prog.lowered.main_kernel

    def test_sids_dense_and_mapped_post_optimization(self):
        for pipeline in ("minimal", "optimized"):
            kernel = self._main(pipeline)
            sids = [s.sid for s, _ in walk_stmts(kernel.body)]
            assert sids == list(range(len(sids)))
            lines, sid_lines = dump_with_sids(kernel)
            assert set(sid_lines) == set(sids)
            assert all(0 <= ix < len(lines) for ix in sid_lines.values())

    def test_fused_kernel_dump_is_the_longer_one(self):
        lines_min, _ = dump_with_sids(self._main("minimal"))
        lines_opt, _ = dump_with_sids(self._main("optimized"))
        assert len(lines_opt) > len(lines_min)
        assert any("_sfin_" in ln for ln in lines_opt)
        assert not any("_sfin_" in ln for ln in lines_min)


class TestAnnotateShowsPostOptimizationIR:
    def test_attributed_listing_contains_fused_epilogue(self):
        from repro.obs import Profiler, annotate_record

        prof = Profiler()
        prog = acc.compile(SRC, **GEOM, pipeline="optimized", profiler=prof)
        assert len(prog.lowered.kernels) == 1  # finish kernel fused away
        prog.run(a=np.ones(2048, dtype=np.float32), profiler=prof,
                 attribution=True)
        rec = prof.kernels_named("acc_region_main")[0]
        text = annotate_record(rec)
        # the annotated listing renders the post-optimization kernel:
        # the fused epilogue's staging array appears, and every row of
        # the attribution table points at a real line of that listing
        assert "_sfin_" in text
        st = rec.stats
        assert st.attribution is not None and st.attribution.rows
        lines, sid_lines = dump_with_sids(rec.kernel)
        assert all(sid in sid_lines for sid in st.attribution.rows)
