"""Unit tests for the kernel-IR optimization passes: barrier elimination,
constant folding / dead-code removal, and finish-kernel fusion."""

import numpy as np
import pytest

from repro import acc
from repro.gpu import kernelir as K
from repro.passes.kernelopt import (
    eliminate_barriers, fold_kernel, fuse_finish_kernels,
)


def _kernel(body, name="k", buffers=("buf",), shared=()):
    return K.Kernel(name, tuple(body), buffers=tuple(buffers),
                    shared=tuple(shared))


def _syncs(kernel):
    return sum(1 for s, _ in K.walk_stmts(kernel.body)
               if isinstance(s, K.Sync))


GLOAD = K.GLoad("x", "buf", K.Special("tid"))
GSTORE = K.GStore("buf", K.Special("tid"), K.Reg("x"))


class TestEliminateBarriers:
    def test_back_to_back_barriers_collapse(self):
        k = _kernel([GLOAD, K.Sync(), K.Sync(), GSTORE])
        out, removed = eliminate_barriers(k, ntid=64)
        assert removed == 1
        assert _syncs(out) == 1

    def test_needed_barrier_survives(self):
        k = _kernel([GSTORE, K.Sync(), GLOAD, GSTORE])
        out, removed = eliminate_barriers(k, ntid=64)
        assert removed == 0
        assert _syncs(out) == 1

    def test_trailing_barrier_dropped(self):
        k = _kernel([GLOAD, GSTORE, K.Sync()])
        out, removed = eliminate_barriers(k, ntid=64)
        assert removed == 1
        assert _syncs(out) == 0

    def test_single_warp_block_drops_everything(self):
        k = _kernel([GSTORE, K.Sync(), GLOAD, K.Sync(),
                     K.If(K.Bin("<", K.Special("tid"), K.const_int(4)),
                          (K.Sync(), GSTORE))])
        out, removed = eliminate_barriers(k, ntid=32)
        assert removed == 3
        assert _syncs(out) == 0

    def test_nested_blocks_stay_conservative(self):
        # the If touches memory, so the barrier after it must stay;
        # barriers inside the If guard its own accesses and stay too
        k = _kernel([K.If(K.Bin("<", K.Special("tid"), K.const_int(4)),
                          (GSTORE, K.Sync(), GLOAD)),
                     K.Sync(), GLOAD, GSTORE])
        out, removed = eliminate_barriers(k, ntid=64)
        assert removed == 0
        assert _syncs(out) == 2


class TestFoldConstants:
    def _fold_assign(self, expr):
        # route the expression through a kernel whose result is stored,
        # so DCE cannot remove the assignment under test
        k = _kernel([K.Assign("r", expr),
                     K.GStore("buf", K.const_int(0), K.Reg("r"))])
        out, _ = fold_kernel(k)
        return out.body[0].value

    def test_const_plus_const(self):
        e = self._fold_assign(K.Bin("+", K.const_int(3), K.const_int(4)))
        assert isinstance(e, K.Const) and int(e.value) == 7

    def test_mul_identity_on_int_expr(self):
        e = self._fold_assign(
            K.Bin("*", K.Special("tid"), K.const_int(1)))
        assert e == K.Special("tid")

    def test_add_zero_on_int_expr(self):
        e = self._fold_assign(
            K.Bin("+", K.const_int(0),
                  K.Bin("*", K.Special("bx"), K.const_int(1))))
        assert e == K.Special("bx")

    def test_float_identity_not_folded(self):
        # x + 0 with float-typed x flips -0.0 to +0.0 in C promotion;
        # registers have no tracked dtype, so the fold must not happen
        e = self._fold_assign(K.Bin("+", K.Reg("facc"), K.const_int(0)))
        assert isinstance(e, K.Bin)

    def test_dead_overwrite_removed(self):
        k = _kernel([K.Assign("t", K.Reg("$t")),
                     K.Assign("t", K.const_int(0)),
                     K.GStore("buf", K.const_int(0), K.Reg("t"))])
        out, changes = fold_kernel(k)
        assert changes >= 1
        assigns = [s for s in out.body if isinstance(s, K.Assign)]
        assert len(assigns) == 1
        assert assigns[0].value == K.const_int(0)

    def test_dead_temp_removed_but_loads_kept(self):
        # 'unused' is never read -> its Assign goes; the GLoad result is
        # also never read, but loads carry counter side effects and stay
        k = _kernel([K.Assign("unused", K.const_int(7)),
                     K.GLoad("ld", "buf", K.Special("tid")),
                     GSTORE])
        out, _ = fold_kernel(k)
        kinds = [type(s).__name__ for s in out.body]
        assert kinds == ["GLoad", "GStore"]


SRC_FLOAT_GANG = """
float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

GEOM = dict(num_gangs=8, num_workers=2, vector_length=32)


class TestFuseFinish:
    def test_fusion_removes_finish_kernel(self):
        base = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="minimal")
        fused = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="fuse-finish")
        assert len(base.lowered.kernels) == 2
        assert len(fused.lowered.kernels) == 1
        assert fused.lowered.gang_reductions[0].finish_kernel is None
        # the epilogue publishes through the result buffer from the
        # last block only
        assert "_sfin_" in fused.dump_kernels()

    @pytest.mark.parametrize("mode", ["reference", "batched"])
    def test_fusion_is_bit_identical(self, mode):
        a = ((np.arange(4096) % 31) / 7).astype(np.float32)
        base = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="minimal")
        fused = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="fuse-finish")
        r0 = base.run(a=a, executor_mode=mode)
        r1 = fused.run(a=a, executor_mode=mode)
        assert np.asarray(r0.scalars["total"]).tobytes() == \
            np.asarray(r1.scalars["total"]).tobytes()

    def test_fusion_reduces_modeled_time(self):
        a = np.ones(4096, dtype=np.float32)
        base = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="minimal")
        fused = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="fuse-finish")
        assert fused.run(a=a).kernel_ms < base.run(a=a).kernel_ms

    def test_fuse_skips_when_shared_would_overflow(self):
        prog = acc.compile(SRC_FLOAT_GANG, **GEOM, pipeline="minimal")
        tiny = prog.device.with_overrides(shared_mem_per_block=64)
        lowered, fused = fuse_finish_kernels(prog.lowered, tiny)
        assert fused == []
        assert lowered.gang_reductions[0].finish_kernel is not None


class TestBarrierEliminationEndToEnd:
    def test_warp_sized_blocks_lose_all_barriers(self):
        geom = dict(num_gangs=8, num_workers=1, vector_length=32)
        base = acc.compile(SRC_FLOAT_GANG, **geom, pipeline="minimal")
        opt = acc.compile(SRC_FLOAT_GANG, **geom,
                          pipeline="eliminate-barriers")
        assert _syncs(opt.lowered.main_kernel) == 0
        a = ((np.arange(2048) % 13) / 3).astype(np.float32)
        r0, r1 = base.run(a=a), opt.run(a=a)
        assert np.asarray(r0.scalars["total"]).tobytes() == \
            np.asarray(r1.scalars["total"]).tobytes()
        assert r1.kernel_stats["acc_region_main"].barriers == 0
