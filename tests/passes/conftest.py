import pytest


@pytest.fixture(autouse=True)
def _isolate_pipeline_env(monkeypatch):
    """These tests pin pipeline selection explicitly; a ``REPRO_PASSES``
    override from the environment (e.g. the minimal-pipeline CI job)
    must not leak into them."""
    monkeypatch.delenv("REPRO_PASSES", raising=False)
