"""Cascade-fusion pass tests: fusion wins, bit-identity, skip decisions."""

import dataclasses

import numpy as np
import pytest

from repro import acc
from repro.apps.softmax import SOFTMAX_SRC, softmax_result
from repro.errors import IRVerificationError
from repro.obs import timeline
from repro.passes.cascade import verify_cascade
from repro.gpu import kernelir as K

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

#: max → consume cascade with no autotuner in the pipeline, so the
#: producer keeps its finish kernel and fusion is decidable by the test
CASCADE_SRC = """
float x[n];
float m = -3.0e38f;
float s = 0.0f;
#pragma acc parallel copyin(x)
{
#pragma acc loop gang worker vector reduction(max:m)
for (i = 0; i < n; i++) if (x[i] > m) m = x[i];
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + (x[i] - m);
}
"""

#: minimal + cascade-fusion only: isolates the pass under test
FUSE_PIPE = "cascade-fusion"


def _x(n=256, seed=3):
    return np.random.default_rng(seed).standard_normal(n) \
        .astype(np.float32)


def _run_bits(prog, x, mode="batched", **kw):
    res = prog.run(x=x, executor_mode=mode, **kw)
    return {name: np.asarray(val).tobytes()
            for name, val in res.scalars.items()}


def _decisions(tl, prefix):
    return [e for e in tl.events("passes")
            if e.kind == "decision" and e.name.startswith(prefix)]


class TestFusion:
    def test_fused_cascade_drops_the_finish_kernel(self):
        fused = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                            cascade_fusion="always")
        plain = acc.compile(CASCADE_SRC, **GEOM, pipeline="minimal")
        fused_names = [k.name for k in fused.lowered.kernels]
        plain_names = [k.name for k in plain.lowered.kernels]
        assert "acc_reduction_finish_m" in plain_names
        assert "acc_reduction_finish_m" not in fused_names
        assert len(fused_names) == len(plain_names) - 1
        (spec,) = [g for g in fused.lowered.gang_reductions
                   if g.var == "m"]
        assert spec.cascade_fused and spec.finish_kernel is None
        stage1 = fused.lowered.stage_kernel(1)
        assert "cascade-fused finish of m" in stage1.note

    @pytest.mark.parametrize("mode", ["reference", "batched", "trace"])
    def test_fused_bit_identical_to_minimal(self, mode):
        x = _x()
        fused = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                            cascade_fusion="always")
        plain = acc.compile(CASCADE_SRC, **GEOM, pipeline="minimal")
        assert _run_bits(fused, x, mode) == \
            _run_bits(plain, x, "reference")

    def test_softmax_compiles_to_fewer_kernels_and_matches(self):
        x = _x(512)
        fused = softmax_result(x, **GEOM)
        never = softmax_result(x, cascade_fusion="never", **GEOM)
        assert fused.num_kernels < never.num_kernels
        assert fused.y.tobytes() == never.y.tobytes()
        expect = np.exp(x - x.max())
        np.testing.assert_allclose(fused.y, expect / expect.sum(),
                                   rtol=1e-5)

    def test_softmax_differential_pin(self):
        # the acceptance sweep: fused vs unfused vs minimal, all three
        # executors, one set of bits
        x = _x(256, seed=11)
        progs = {
            "fused": acc.compile(SOFTMAX_SRC, **GEOM),
            "never": acc.compile(SOFTMAX_SRC, **GEOM,
                                 cascade_fusion="never"),
            "minimal": acc.compile(SOFTMAX_SRC, **GEOM,
                                   pipeline="minimal"),
        }
        kw = dict(y=np.zeros_like(x), m=np.float32(-np.inf),
                  s=np.float32(0.0))
        baseline = None
        for name, prog in progs.items():
            for mode in ("reference", "batched", "trace"):
                res = prog.run(x=x, executor_mode=mode, **kw)
                bits = (res.outputs["y"].tobytes(),
                        np.asarray(res.scalars["s"]).tobytes(),
                        np.asarray(res.scalars["m"]).tobytes())
                if baseline is None:
                    baseline = bits
                assert bits == baseline, f"{name}/{mode} diverged"

    def test_cost_model_decision_lands_in_autotune_records(self):
        prog = acc.compile(SOFTMAX_SRC, **GEOM)
        rec = prog.autotune.get("s", {}).get("cascade_fusion")
        assert rec is not None
        assert rec["choice"] == "fused"
        assert rec["reason"] == "cost-model"
        assert rec["fused_us"] < rec["unfused_us"]

    def test_pinned_choice_is_never_overridden(self):
        # cascade_fusion="never" with the full optimized pipeline (cost
        # model would say "fuse") must stay unfused
        prog = acc.compile(SOFTMAX_SRC, **GEOM, cascade_fusion="never")
        assert all(not g.cascade_fused
                   for g in prog.lowered.gang_reductions)
        rec = prog.autotune.get("s", {}).get("cascade_fusion")
        assert rec == {"choice": "unfused", "reason": "pinned-never"}


class TestDecisions:
    def test_fusion_decision_on_timeline(self):
        with timeline.enabled() as tl:
            acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                        cascade_fusion="always")
            evs = _decisions(tl, "cascade-fusion:m")
        assert len(evs) == 1
        assert evs[0].attrs["fused"] is True
        assert evs[0].attrs["reason"] == "pinned-always"

    def test_no_consumer_stage_skips(self):
        # s lives in the last stage: nothing downstream consumes it
        with timeline.enabled() as tl:
            prog = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                               cascade_fusion="always")
            evs = _decisions(tl, "cascade-fusion:s")
        assert len(evs) == 1
        assert evs[0].attrs["fused"] is False
        assert evs[0].attrs["reason"] == "no-consumer-stage"
        (spec,) = [g for g in prog.lowered.gang_reductions
                   if g.var == "s"]
        assert not spec.cascade_fused

    def test_shared_overflow_skips_with_budget_attrs(self):
        # a finish block too large for shared memory: the replay
        # prologue cannot be housed, so the cascade stays unfused
        with timeline.enabled() as tl:
            prog = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                               cascade_fusion="always",
                               finish_block_size=16384)
            evs = _decisions(tl, "cascade-fusion:m")
        assert len(evs) == 1
        assert evs[0].attrs["reason"] == "shared-overflow"
        assert evs[0].attrs["needed_bytes"] > evs[0].attrs["budget_bytes"]
        assert all(not g.cascade_fused
                   for g in prog.lowered.gang_reductions)

    def test_fuse_finish_shared_overflow_decision(self):
        # the PR-5 fuse-finish pass must announce its shared-overflow
        # skip the same way (regression: it used to skip silently)
        src = """
float a[n];
float total = 0.0f;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++) total += a[i];
"""
        with timeline.enabled() as tl:
            acc.compile(src, **GEOM, pipeline="fuse-finish",
                        finish_block_size=16384)
            evs = _decisions(tl, "fuse-finish:total")
        assert len(evs) == 1
        assert evs[0].attrs["fused"] is False
        assert evs[0].attrs["reason"] == "shared-overflow"
        assert evs[0].attrs["needed_bytes"] > evs[0].attrs["budget_bytes"]

    def test_argmax_pair_skips_cascade(self):
        src = """
float x[n];
float m = -3.0e38f;
int mi = 0;
float s = 0.0f;
#pragma acc parallel copyin(x)
{
#pragma acc loop gang worker vector reduction(argmax:m,mi)
for (i = 0; i < n; i++) if (x[i] > m) { m = x[i]; mi = i; }
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + (x[i] - m);
}
"""
        with timeline.enabled() as tl:
            prog = acc.compile(src, **GEOM, pipeline=FUSE_PIPE,
                               cascade_fusion="always")
            evs = _decisions(tl, "cascade-fusion:m")
        assert len(evs) == 1
        assert evs[0].attrs["fused"] is False
        assert evs[0].attrs["reason"] == "pair-reduction"
        x = _x()
        res = prog.run(x=x, executor_mode="batched")
        assert float(res.scalars["m"]) == x.max()
        assert int(res.scalars["mi"]) == int(np.argmax(x))


class TestVerifier:
    def _fused(self):
        prog = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                           cascade_fusion="always")
        (spec,) = [g for g in prog.lowered.gang_reductions
                   if g.var == "m"]
        return prog.lowered.stage_kernel(1), spec

    def test_fused_kernel_passes(self):
        kern, spec = self._fused()
        verify_cascade(kern, spec, 0)  # does not raise

    def test_missing_broadcast_load_rejected(self):
        kern, spec = self._fused()
        body = tuple(s for s in kern.body
                     if not (isinstance(s, K.SLoad)
                             and s.dst == "_cf0_tot"))
        broken = dataclasses.replace(kern, body=body)
        with pytest.raises(IRVerificationError, match="broadcast load"):
            verify_cascade(broken, spec, 0)

    def test_wrong_fold_order_rejected(self):
        kern, spec = self._fused()

        def flip(s):
            if isinstance(s, K.Assign) and s.dst == spec.var \
                    and isinstance(s.value, K.Call):
                args = s.value.args
                if len(args) == 2 and isinstance(args[0], K.Reg) \
                        and args[0].name == spec.var:
                    return dataclasses.replace(
                        s, value=dataclasses.replace(
                            s.value, args=(args[1], args[0])))
            return s
        broken = dataclasses.replace(kern,
                                     body=tuple(flip(s)
                                                for s in kern.body))
        with pytest.raises(IRVerificationError, match="operand order"):
            verify_cascade(broken, spec, 0)

    def test_duplicate_result_store_rejected(self):
        kern, spec = self._fused()
        store = next(s for s, _ in K.walk_stmts(kern.body)
                     if isinstance(s, K.GStore)
                     and s.buf == spec.result_buf)
        broken = dataclasses.replace(kern, body=kern.body + (store,))
        with pytest.raises(IRVerificationError, match="stores"):
            verify_cascade(broken, spec, 0)


class TestEdgeCases:
    """Satellite edge grid: NaN, signed zero, integer wrap — all modes."""

    @pytest.mark.parametrize("mode", ["reference", "batched", "trace"])
    def test_nan_propagates_identically_through_fused_cascade(self, mode):
        x = _x(256, seed=5)
        x[17] = np.nan
        x[200] = np.nan
        fused = acc.compile(CASCADE_SRC, **GEOM, pipeline=FUSE_PIPE,
                            cascade_fusion="always")
        plain = acc.compile(CASCADE_SRC, **GEOM, pipeline="minimal")
        fb = _run_bits(fused, x, mode)
        pb = _run_bits(plain, x, "reference")
        assert fb == pb
        # the strict max compare never selects NaN; the sum then
        # propagates it — s must be NaN bit-for-bit in both builds
        assert np.isnan(np.frombuffer(fb["s"], np.float32)[0])
        assert not np.isnan(np.frombuffer(fb["m"], np.float32)[0])

    @pytest.mark.parametrize("mode", ["reference", "batched", "trace"])
    def test_argmin_signed_zero_tie_breaks_to_first_index(self, mode):
        src = """
float x[n];
float m = 3.0e38f;
int mi = 0;
#pragma acc parallel copyin(x)
#pragma acc loop gang worker vector reduction(argmin:m,mi)
for (i = 0; i < n; i++) if (x[i] < m) { m = x[i]; mi = i; }
"""
        x = np.full(96, 7.0, np.float32)
        x[10] = np.float32(0.0)
        x[40] = np.float32(-0.0)
        x[70] = np.float32(0.0)
        prog = acc.compile(src, **GEOM)
        res = prog.run(x=x, mi=np.int32(np.iinfo(np.int32).max),
                       executor_mode=mode)
        # -0.0 == 0.0 under the strict compare, so the tie breaks to
        # the smallest index and keeps that element's sign bit
        assert int(res.scalars["mi"]) == 10
        assert np.asarray(res.scalars["m"]).tobytes() == \
            np.float32(0.0).tobytes()

    @pytest.mark.parametrize("mode", ["reference", "batched", "trace"])
    def test_int_overflow_wraps_identically_when_fused(self, mode):
        src = """
int x[n];
int s = 0;
int t = 0;
#pragma acc parallel copyin(x)
{
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + x[i];
#pragma acc loop gang worker vector reduction(+:t)
for (i = 0; i < n; i++) t = t + (x[i] ^ s);
}
"""
        rng = np.random.default_rng(9)
        x = rng.integers(np.iinfo(np.int32).min // 2,
                         np.iinfo(np.int32).max // 2,
                         size=256).astype(np.int32)
        fused = acc.compile(src, **GEOM, pipeline=FUSE_PIPE,
                            cascade_fusion="always")
        plain = acc.compile(src, **GEOM, pipeline="minimal")
        fb = _run_bits(fused, x, mode)
        assert fb == _run_bits(plain, x, "reference")
        with np.errstate(over="ignore"):
            s = x.sum(dtype=np.int32)
            t = (x ^ s).sum(dtype=np.int32)
        assert fb["s"] == s.tobytes()
        assert fb["t"] == t.tobytes()
