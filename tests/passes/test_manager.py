"""Pass-manager tests: pipeline resolution, per-pass records, and the
pipeline's visibility in the compiled program."""

import pytest

from repro import acc
from repro.passes import (
    OPTIONAL_PASSES, PIPELINES, PassManager, PipelineSpec, resolve_pipeline,
)
from repro.acc.profiles import OPENUH, VENDOR_A, VENDOR_B

VECSUM = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)


class TestResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PASSES", "optimized")
        assert resolve_pipeline("minimal", OPENUH).name == "minimal"

    def test_env_beats_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PASSES", "minimal")
        assert resolve_pipeline(None, OPENUH).name == "minimal"

    def test_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PASSES", raising=False)
        assert resolve_pipeline(None, OPENUH).name == "optimized"
        assert resolve_pipeline(None, VENDOR_A).name == "minimal"
        assert resolve_pipeline(None, VENDOR_B).name == "minimal"

    def test_comma_list_builds_custom_spec(self):
        spec = resolve_pipeline("fuse-finish,eliminate-barriers")
        assert spec.name == "custom:fuse-finish+eliminate-barriers"
        assert "fuse-finish" in spec.passes
        assert "eliminate-barriers" in spec.passes
        assert "autotune" not in spec.passes
        # canonical order preserved regardless of list order
        assert spec.passes == resolve_pipeline(
            "eliminate-barriers,fuse-finish").passes

    def test_empty_custom_list_is_minimal_shaped(self):
        spec = resolve_pipeline("")
        assert spec.name == "custom:none"
        assert spec.passes == PIPELINES["minimal"].passes

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            resolve_pipeline("turbo")
        with pytest.raises(ValueError, match="unknown pipeline"):
            resolve_pipeline("fuse-finish,frobnicate")

    def test_spec_passthrough(self):
        spec = PIPELINES["minimal"]
        assert resolve_pipeline(spec) is spec

    def test_optional_passes_are_a_subset_of_optimized(self):
        assert set(OPTIONAL_PASSES) < set(PIPELINES["optimized"].passes)
        assert not set(OPTIONAL_PASSES) & set(PIPELINES["minimal"].passes)


class TestManager:
    def test_unregistered_pass_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            PassManager(PipelineSpec("bad", ("parse", "no-such-pass")))

    def test_records_one_per_pass(self):
        prog = acc.compile(VECSUM, **GEOM)
        assert [r.name for r in prog.pass_records] == \
            list(PIPELINES["optimized"].passes)
        assert all(r.wall_ms >= 0 for r in prog.pass_records)
        # without capture_ir no listings are retained
        assert all(r.before is None and r.after is None
                   for r in prog.pass_records)

    def test_capture_ir_listings(self):
        prog = acc.compile(VECSUM, **GEOM, capture_ir=True)
        recs = {r.name: r for r in prog.pass_records}
        assert recs["build-ir"].changed
        assert "region" in recs["build-ir"].after
        assert recs["lower"].changed
        assert any(name.startswith("acc_region")
                   for name in recs["lower"].after)
        # resolve-geometry only computes numbers; the listing is stable
        assert not recs["resolve-geometry"].changed

    def test_options_key_fingerprints_pipeline(self):
        assert PIPELINES["minimal"].options_key() != \
            PIPELINES["optimized"].options_key()


class TestProgramVisibility:
    def test_strategy_records_pipeline(self):
        prog = acc.compile(VECSUM, **GEOM, pipeline="minimal")
        assert prog.pipeline == "minimal"
        assert prog.strategy["pipeline"] == "minimal"

    def test_vendor_profiles_pin_minimal(self, monkeypatch):
        monkeypatch.delenv("REPRO_PASSES", raising=False)
        for compiler in ("vendor-a", "vendor-b"):
            prog = acc.compile(VECSUM, compiler=compiler, **GEOM)
            assert prog.pipeline == "minimal"

    def test_env_reaches_compile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PASSES", "minimal")
        assert acc.compile(VECSUM, **GEOM).pipeline == "minimal"
        # explicit argument still wins over the environment
        assert acc.compile(VECSUM, **GEOM,
                           pipeline="optimized").pipeline == "optimized"
