"""Scheduler policy: admission, deadlines, retries, hedging, priorities.

Control-flow tests swap in a scripted ``_thread_body`` (keyed by request
id / device) so device behaviour — slow, failing, healthy — is exact and
fast; one end-to-end test keeps the real compile+run path honest.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionShedError, DeadlineExceededError, SimulationError,
)
from repro.serve import ComputeRequest, DevicePool, Scheduler, ServeConfig

SRC = """
int a[n];
int s = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang vector reduction(+:s)
for (i = 0; i < n; i++)
    s += a[i];
"""


def _payload(dev, scalars=None):
    return {"scalars": scalars or {"s": 1}, "outputs": {},
            "strategy": "primary", "attempts": 1, "degradations": 0,
            "cache": "memo", "compile_us": 1.0, "run_us": 1.0}


def _req(rid, **kw):
    kw.setdefault("arrays", {"a": np.arange(16, dtype=np.int32)})
    return ComputeRequest(id=rid, source=SRC, **kw)


def _run(coro):
    return asyncio.run(coro)


def scripted(sched, script):
    """Replace the thread body with ``script(req, dev) -> payload``."""
    sched._thread_body = script


class TestEndToEnd:
    def test_real_compile_and_run(self):
        async def go():
            pool = DevicePool(2)
            async with Scheduler(pool, ServeConfig()) as sched:
                a = np.arange(64, dtype=np.int32)
                res = await sched.submit(_req("r1", arrays={"a": a}))
                assert res.ok, res.message
                assert res.scalars["s"] == a.sum()
                assert res.device in ("dev0", "dev1")
                assert res.tries == 1 and not res.hedged
                assert res.cache == "uncacheable"  # no CompileCache wired
                assert res.latency_us > 0
                return sched.report()

        report = _run(go())
        assert report["by_status"] == {"ok": 1}
        assert report["metrics"]["counters"]["serve.requests.ok"] == 1


class TestAdmission:
    def test_full_queue_sheds_with_typed_error(self):
        async def go():
            pool = DevicePool(1)
            cfg = ServeConfig(queue_depth=1, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                scripted(sched, lambda req, dev: (time.sleep(0.4),
                                                  _payload(dev))[1])
                t1 = sched.submit_nowait(_req("r1"))
                await asyncio.sleep(0.05)   # r1 holds the device
                t2 = sched.submit_nowait(_req("r2"))
                await asyncio.sleep(0.05)   # r2 fills the p1 queue
                t3 = sched.submit_nowait(_req("r3"))
                return await asyncio.gather(t1, t2, t3)

        r1, r2, r3 = _run(go())
        assert r1.ok and r2.ok
        assert r3.status == "shed"
        assert r3.error == AdmissionShedError.__name__
        assert "queue full" in r3.message

    def test_queues_are_per_priority_class(self):
        async def go():
            pool = DevicePool(1)
            cfg = ServeConfig(queue_depth=1, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                scripted(sched, lambda req, dev: (time.sleep(0.3),
                                                  _payload(dev))[1])
                t1 = sched.submit_nowait(_req("r1"))
                await asyncio.sleep(0.05)
                t2 = sched.submit_nowait(_req("r2", priority=1))
                await asyncio.sleep(0.05)
                # a different class is not shed by p1's full queue
                t3 = sched.submit_nowait(_req("r3", priority=0))
                return await asyncio.gather(t1, t2, t3)

        r1, r2, r3 = _run(go())
        assert [r.status for r in (r1, r2, r3)] == ["ok"] * 3


class TestDeadlines:
    def test_expiry_waiting_in_queue(self):
        async def go():
            pool = DevicePool(1)
            async with Scheduler(pool, ServeConfig(
                    poll_interval_s=0.01)) as sched:
                scripted(sched, lambda req, dev: (time.sleep(0.5),
                                                  _payload(dev))[1])
                t1 = sched.submit_nowait(_req("r1"))
                await asyncio.sleep(0.05)
                t2 = sched.submit_nowait(_req("r2", deadline_s=0.1))
                return await asyncio.gather(t1, t2)

        r1, r2 = _run(go())
        assert r1.ok
        assert r2.status == "expired"
        assert r2.error == DeadlineExceededError.__name__
        assert r2.tries == 0 and r2.devices_tried == []

    def test_expiry_mid_execution_abandons_and_charges_device(self):
        async def go():
            pool = DevicePool(1)
            async with Scheduler(pool, ServeConfig(
                    poll_interval_s=0.01)) as sched:
                def body(req, dev):
                    time.sleep(0.4 if req.id == "slow" else 0.0)
                    return _payload(dev)
                scripted(sched, body)
                res = await sched.submit(_req("slow", deadline_s=0.1))
                assert res.status == "expired"
                assert res.error == DeadlineExceededError.__name__
                assert res.tries == 1 and res.devices_tried == ["dev0"]
                assert pool.devices[0].timeouts == 1
                # the abandoned launch drains; the device is reusable
                res2 = await sched.submit(_req("after", deadline_s=5.0))
                assert res2.ok
                # the late completion of the abandoned dispatch must not
                # double-count device health
                assert pool.devices[0].timeouts == 1

        _run(go())


class TestRetries:
    def test_typed_failure_retries_on_a_different_device(self):
        async def go():
            pool = DevicePool(2)
            async with Scheduler(pool, ServeConfig()) as sched:
                def body(req, dev):
                    if dev.name == "dev0":
                        raise SimulationError("injected dev0 failure")
                    return _payload(dev)
                scripted(sched, body)
                return await sched.submit(_req("r1")), pool

        res, pool = _run(go())
        assert res.ok
        assert res.tries == 2
        assert res.devices_tried == ["dev0", "dev1"]
        assert res.device == "dev1"
        assert pool.devices[0].errors == 1
        assert pool.devices[1].served == 1

    def test_retries_exhausted_is_a_typed_error_verdict(self):
        async def go():
            pool = DevicePool(2)
            cfg = ServeConfig(max_tries=2)
            async with Scheduler(pool, cfg) as sched:
                def body(req, dev):
                    raise SimulationError(f"always fails on {dev.name}")
                scripted(sched, body)
                return await sched.submit(_req("r1"))

        res = _run(go())
        assert res.status == "error"
        assert res.error == SimulationError.__name__
        assert "2 device(s)" in res.message
        assert res.tries == 2
        assert set(res.devices_tried) == {"dev0", "dev1"}

    def test_unexpected_exception_is_not_retried(self):
        async def go():
            pool = DevicePool(2)
            async with Scheduler(pool, ServeConfig()) as sched:
                calls = []

                def body(req, dev):
                    calls.append(dev.name)
                    raise RuntimeError("a bug, not a device fault")
                scripted(sched, body)
                with pytest.raises(RuntimeError):
                    await sched.submit(_req("r1"))
                return calls

        calls = _run(go())
        assert calls == ["dev0"]  # surfaced immediately, no retry

    def test_interrupt_propagates_and_skips_breaker(self):
        async def go():
            pool = DevicePool(1)
            async with Scheduler(pool, ServeConfig()) as sched:
                def body(req, dev):
                    raise KeyboardInterrupt
                scripted(sched, body)
                with pytest.raises(KeyboardInterrupt):
                    await sched.submit(_req("r1"))
                return pool

        pool = _run(go())
        dev = pool.devices[0]
        assert dev.errors == 0
        assert dev.breaker.failure_rate == 0.0  # not a health signal


class TestHedging:
    def test_slow_primary_gets_hedged_and_fast_hedge_wins(self):
        async def go():
            pool = DevicePool(2)
            cfg = ServeConfig(hedge_after_s=0.05, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                def body(req, dev):
                    time.sleep(0.5 if dev.name == "dev0" else 0.0)
                    return _payload(dev)
                scripted(sched, body)
                res = await sched.submit(_req("r1"))
                return res, sched.metrics.to_dict()

        res, metrics = _run(go())
        assert res.ok
        assert res.hedged
        assert res.device == "dev1"       # the hedge won
        assert set(res.devices_tried) == {"dev0", "dev1"}
        assert metrics["counters"]["serve.hedges"] == 1

    def test_no_hedge_when_no_idle_device(self):
        async def go():
            pool = DevicePool(1)
            cfg = ServeConfig(hedge_after_s=0.02, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                scripted(sched, lambda req, dev: (time.sleep(0.15),
                                                  _payload(dev))[1])
                return await sched.submit(_req("r1"))

        res = _run(go())
        assert res.ok and not res.hedged


class TestPriorities:
    def test_freed_device_goes_to_the_most_urgent_waiter(self):
        async def go():
            pool = DevicePool(1)
            order = []

            async with Scheduler(pool, ServeConfig(
                    poll_interval_s=0.01)) as sched:
                def body(req, dev):
                    order.append(req.id)
                    time.sleep(0.1)
                    return _payload(dev)
                scripted(sched, body)
                t0 = sched.submit_nowait(_req("first"))
                await asyncio.sleep(0.03)  # "first" holds the device
                tl = sched.submit_nowait(_req("batch", priority=5))
                await asyncio.sleep(0.01)  # "batch" queued first...
                th = sched.submit_nowait(_req("urgent", priority=0))
                await asyncio.gather(t0, tl, th)
            return order

        order = _run(go())
        assert order == ["first", "urgent", "batch"]


class TestBreakerIntegration:
    def test_tripped_device_is_skipped_on_first_try(self):
        async def go():
            pool = DevicePool(
                2, breaker_kwargs=dict(window=4, failure_threshold=0.5,
                                       min_samples=2, quarantine_s=60.0))
            async with Scheduler(pool, ServeConfig()) as sched:
                def body(req, dev):
                    if dev.name == "dev0":
                        raise SimulationError("dev0 is sick")
                    return _payload(dev)
                scripted(sched, body)
                r1 = await sched.submit(_req("r1"))
                r2 = await sched.submit(_req("r2"))
                # dev0 has 2/2 failures -> breaker open
                r3 = await sched.submit(_req("r3"))
                return (r1, r2, r3), pool

        (r1, r2, r3), pool = _run(go())
        assert r1.ok and r2.ok and r1.tries == r2.tries == 2
        assert pool.devices[0].breaker.state == "open"
        assert r3.ok and r3.tries == 1          # straight to dev1
        assert r3.devices_tried == ["dev1"]

    def test_all_devices_quarantined_waits_then_types_the_refusal(self):
        async def go():
            pool = DevicePool(
                1, breaker_kwargs=dict(window=4, failure_threshold=0.5,
                                       min_samples=2, quarantine_s=60.0))
            async with Scheduler(pool, ServeConfig(
                    poll_interval_s=0.01)) as sched:
                def body(req, dev):
                    raise SimulationError("sick")
                scripted(sched, body)
                # each request fails once on dev0, then waits (the retry
                # excludes the only device) until its deadline; two
                # failures reach min_samples and trip the breaker
                await sched.submit(_req("r1", deadline_s=0.1))
                await sched.submit(_req("r2", deadline_s=0.1))
                assert pool.devices[0].breaker.state == "open"
                return await sched.submit(_req("r3", deadline_s=0.1))

        res = _run(go())
        assert res.status == "error"
        assert res.error == "CircuitOpenError"
        assert "quarantined" in res.message


class TestReporting:
    def test_report_aggregates_all_verdicts(self):
        async def go():
            pool = DevicePool(2)
            async with Scheduler(pool, ServeConfig()) as sched:
                def body(req, dev):
                    if req.id == "bad":
                        raise SimulationError("nope")
                    return _payload(dev)
                scripted(sched, body)
                await sched.submit(_req("a"))
                await sched.submit(_req("b"))
                cfg = sched.config
                cfg.max_tries = 1
                await sched.submit(_req("bad"))
                return sched.report()

        report = _run(go())
        assert report["requests"] == 3
        assert report["by_status"] == {"error": 1, "ok": 2}
        assert report["latency"]["count"] == 3
        assert report["latency"]["ok_p50_us"] > 0
        counters = report["metrics"]["counters"]
        assert counters["serve.requests.ok"] == 2
        assert counters["serve.requests.error"] == 1
        assert len(report["devices"]) == 2
