"""Circuit-breaker state machine under an injectable fake clock."""

import pytest

from repro.serve.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make(clock, **kw):
    kw.setdefault("window", 8)
    kw.setdefault("failure_threshold", 0.5)
    kw.setdefault("min_samples", 4)
    kw.setdefault("quarantine_s", 1.0)
    kw.setdefault("max_quarantine_s", 4.0)
    kw.setdefault("probation_probes", 2)
    return CircuitBreaker(clock=clock, **kw)


class TestClosed:
    def test_starts_closed_and_allows(self):
        b = make(FakeClock())
        assert b.state == "closed"
        assert b.allow()

    def test_failures_below_min_samples_never_trip(self):
        b = make(FakeClock(), min_samples=4)
        for _ in range(3):
            b.record_failure()
        assert b.state == "closed"  # 100% failure rate, too few samples

    def test_trips_at_threshold_with_min_samples(self):
        b = make(FakeClock())
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"  # 2/3 failing: below min_samples
        b.record_success()
        assert b.state == "closed"  # 2/4 = exactly threshold... no:
        # 2/4 = 0.5 >= threshold — but the trip check runs on *failure*
        # recording only, so the success above cannot trip it
        b.record_failure()
        assert b.state == "open"  # 3/5 >= 0.5 with >= 4 samples

    def test_rolling_window_forgets_old_failures(self):
        b = make(FakeClock(), window=4, min_samples=4)
        b.record_failure()
        b.record_failure()
        for _ in range(4):
            b.record_success()  # pushes both failures out of the window
        assert b.state == "closed"
        assert b.failure_rate == 0.0


class TestQuarantine:
    def _tripped(self, clock):
        b = make(clock)
        for _ in range(4):
            b.record_failure()
        assert b.state == "open"
        return b

    def test_open_refuses_until_quarantine_elapses(self):
        clock = FakeClock()
        b = self._tripped(clock)
        assert not b.allow()
        assert not b.probe_ready()
        clock.advance(0.99)
        assert not b.allow()
        clock.advance(0.02)
        assert b.probe_ready()
        assert b.allow()  # -> half_open, probe admitted
        assert b.state == "half_open"

    def test_probe_ready_has_no_side_effects(self):
        clock = FakeClock()
        b = self._tripped(clock)
        clock.advance(1.1)
        for _ in range(10):
            assert b.probe_ready()
        assert b.state == "open"  # still open: no allow() consumed

    def test_probation_probes_are_bounded(self):
        clock = FakeClock()
        b = self._tripped(clock)
        clock.advance(1.1)
        assert b.allow()
        assert b.allow()
        assert not b.allow()  # probation_probes=2 in flight

    def test_probation_success_readmits_and_resets(self):
        clock = FakeClock()
        b = self._tripped(clock)
        clock.advance(1.1)
        assert b.allow()
        b.record_success()
        assert b.state == "half_open"  # one probe is not enough
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.readmissions == 1
        assert b.failure_rate == 0.0  # window wiped on re-admission
        assert b.snapshot()["quarantine_s"] == 1.0  # backoff reset

    def test_probe_failure_retrips_with_doubled_quarantine(self):
        clock = FakeClock()
        b = self._tripped(clock)
        clock.advance(1.1)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.trips == 2
        # second quarantine is doubled: 2s now
        clock.advance(1.5)
        assert not b.allow()
        clock.advance(0.6)
        assert b.allow()

    def test_quarantine_backoff_caps(self):
        clock = FakeClock()
        b = self._tripped(clock)
        for _ in range(5):  # keep failing probes: 1 -> 2 -> 4 -> 4 ...
            clock.advance(100.0)
            assert b.allow()
            b.record_failure()
        assert b.snapshot()["quarantine_s"] == 4.0

    def test_late_failure_while_open_is_ignored(self):
        clock = FakeClock()
        b = self._tripped(clock)
        trips = b.trips
        b.record_failure()  # a request admitted pre-trip finishing late
        assert b.trips == trips
        assert b.state == "open"


class TestTransitions:
    def test_on_transition_sees_every_edge(self):
        clock = FakeClock()
        seen = []
        b = make(clock,
                 on_transition=lambda o, n, r: seen.append((o, n, r)))
        for _ in range(4):
            b.record_failure()
        clock.advance(1.1)
        b.allow()
        b.record_success()
        b.allow()
        b.record_success()
        assert [(o, n) for o, n, _ in seen] == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed")]
        assert seen[0][2].startswith("error-rate")
        assert seen[2][2] == "probation-passed"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=1.5)
