"""Request tracing through the scheduler: span trees must survive the
messy control flow — hedges whose losers finish late, dispatches
abandoned by mid-execution deadline expiry — and tail sampling must
prune without orphaning."""

import asyncio
import time

import numpy as np
import pytest

from repro.obs import timeline, trace
from repro.serve import ComputeRequest, DevicePool, Scheduler, ServeConfig

SRC = """
int a[n];
int s = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang vector reduction(+:s)
for (i = 0; i < n; i++)
    s += a[i];
"""


@pytest.fixture(autouse=True)
def _clean_slate():
    timeline.uninstall()
    timeline.uninstall_tracer()
    yield
    timeline.uninstall()
    timeline.uninstall_tracer()


def _payload(dev):
    return {"scalars": {"s": 1}, "outputs": {}, "strategy": "primary",
            "attempts": 1, "degradations": 0, "cache": "memo",
            "compile_us": 1.0, "run_us": 1.0}


def _req(rid, **kw):
    kw.setdefault("arrays", {"a": np.arange(16, dtype=np.int32)})
    return ComputeRequest(id=rid, source=SRC, **kw)


def scripted(sched, script):
    sched._thread_body = script


class TestHedgedRequestTrace:
    def test_loser_spans_join_the_same_trace_marked_abandoned(self):
        async def go():
            pool = DevicePool(2)
            cfg = ServeConfig(hedge_after_s=0.05, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                def body(req, dev):
                    time.sleep(0.3 if dev.name == "dev0" else 0.0)
                    return _payload(dev)
                scripted(sched, body)
                res = await sched.submit(_req("r1"))
                # let the abandoned primary drain and emit its span
                await asyncio.sleep(0.4)
                return res

        with timeline.enabled() as tl, trace.tracing():
            res = asyncio.run(go())
        assert res.ok and res.hedged and res.device == "dev1"

        trees = trace.assemble(tl.events())
        assert "r1" in trees
        tree = trees["r1"]
        # the hedge loser reattaches to the SAME trace: one rooted
        # tree, no second root, no orphans
        assert len(tree.roots) == 1, [r.name for r in tree.roots]
        assert not tree.orphans, [o.name for o in tree.orphans]
        root = tree.root
        assert root.name == "request:r1"
        assert root.attrs["status"] == "ok"
        dispatches = {c.name: c for c in root.children
                      if c.name.startswith("dispatch:")}
        assert set(dispatches) == {"dispatch:dev0", "dispatch:dev1"}
        assert dispatches["dispatch:dev0"].attrs.get("abandoned") is True
        assert "abandoned" not in dispatches["dispatch:dev1"].attrs
        # the winner's work hangs under the winning dispatch
        assert any(c.name.startswith("dispatch:")
                   for c in root.children)
        # the hedge decision is attached inside the trace
        decision_names = {ev["name"] for ev in root.events}
        assert "hedge" in decision_names
        assert "complete" in decision_names

    def test_hedge_overlap_keeps_critical_path_consistent(self):
        async def go():
            pool = DevicePool(2)
            cfg = ServeConfig(hedge_after_s=0.05, poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                def body(req, dev):
                    time.sleep(0.3 if dev.name == "dev0" else 0.1)
                    return _payload(dev)
                scripted(sched, body)
                res = await sched.submit(_req("r1"))
                await asyncio.sleep(0.4)
                return res

        with timeline.enabled() as tl, trace.tracing():
            asyncio.run(go())
        tree = trace.assemble(tl.events())["r1"]
        path = trace.critical_path(tree)
        assert path[0]["name"] == "request:r1"
        # overlapping hedged dispatches: the root's self time comes from
        # the interval union, so it cannot go negative or exceed total
        assert 0.0 <= path[0]["self_us"] <= path[0]["dur_us"]


class TestDeadlineExpiryTrace:
    def test_mid_execution_expiry_forms_a_complete_tree(self):
        async def go():
            pool = DevicePool(1)
            async with Scheduler(pool, ServeConfig(
                    poll_interval_s=0.01)) as sched:
                def body(req, dev):
                    time.sleep(0.3 if req.id == "slow" else 0.0)
                    return _payload(dev)
                scripted(sched, body)
                res = await sched.submit(_req("slow", deadline_s=0.1))
                # the doomed launch drains after the verdict; its span
                # must still land in the same trace
                await asyncio.sleep(0.4)
                return res

        with timeline.enabled() as tl, trace.tracing():
            res = asyncio.run(go())
        assert res.status == "expired"

        tree = trace.assemble(tl.events())["slow"]
        assert len(tree.roots) == 1 and not tree.orphans
        root = tree.root
        assert root.attrs["status"] == "expired"
        dispatches = [c for c in root.children
                      if c.name.startswith("dispatch:")]
        assert dispatches, "the doomed dispatch span must be present"
        assert dispatches[0].attrs.get("abandoned") is True
        decision_names = {ev["name"] for ev in root.events}
        assert "expired" in decision_names

    def test_expired_trace_is_status_kept_by_the_sampler(self):
        async def go():
            pool = DevicePool(1)
            cfg = ServeConfig(poll_interval_s=0.01,
                              trace_sampling=dict(keep_slowest=0,
                                                  sample_every=0))
            async with Scheduler(pool, cfg) as sched:
                def body(req, dev):
                    time.sleep(0.3 if req.id == "slow" else 0.0)
                    return _payload(dev)
                scripted(sched, body)
                ok = await sched.submit(_req("fast"))
                exp = await sched.submit(_req("slow", deadline_s=0.1))
                await asyncio.sleep(0.4)
                return ok, exp, sched.report()

        with timeline.enabled() as tl, trace.tracing():
            ok, exp, report = asyncio.run(go())
        assert ok.ok and exp.status == "expired"
        trees = trace.assemble(tl.events())
        # with slowest-k and nth sampling off, only the expired trace
        # survives: the ok trace was pruned without leaving orphans
        assert "slow" in trees and "fast" not in trees
        assert report["traces"]["kept"] == 1
        assert report["traces"]["pruned"] == 1


class TestSampledServeTraces:
    def test_every_kept_request_forms_one_rooted_tree(self):
        async def go():
            pool = DevicePool(2)
            cfg = ServeConfig(poll_interval_s=0.01)
            async with Scheduler(pool, cfg) as sched:
                # realistic (>10ms) bodies: the 1% reconciliation bound
                # is about decomposition, not sub-ms wrapper overhead
                scripted(sched, lambda req, dev: (time.sleep(0.02),
                                                  _payload(dev))[1])
                tasks = [sched.submit_nowait(_req(f"r{i}"))
                         for i in range(6)]
                return await asyncio.gather(*tasks)

        with timeline.enabled() as tl, trace.tracing():
            results = asyncio.run(go())
        assert all(r.ok for r in results)
        trees = trace.assemble(tl.events())
        verdict = trace.verify_request_traces(trees)
        assert verdict["ok"], verdict["problems"]
        assert verdict["requests"] == 6
        assert verdict["slowest"]["latency_err"] <= 0.01
