"""Scaled-down chaos soak: the full gate must pass inside the test suite.

One soak run (60 mixed requests over 4 devices, chaos armed mid-load on
device 1) is shared by every assertion via a module-scoped fixture — the
expensive part runs once, the gate's individual clauses are then checked
separately so a regression names the clause it broke.
"""

import pytest

from repro.serve import SoakConfig, run_soak


@pytest.fixture(scope="module")
def soak(tmp_path_factory):
    cfg = SoakConfig(n_requests=60, seed=1, stagger_s=0.002)
    cache_dir = tmp_path_factory.mktemp("soak-cache")
    return run_soak(cache_dir, cfg), cfg


class TestSoakGate:
    def test_gate_passes(self, soak):
        report, _ = soak
        assert report["gate"]["passed"], report["gate"]["checks"]

    def test_zero_escaped_corruptions(self, soak):
        report, _ = soak
        assert report["verify"]["escaped_count"] == 0
        assert report["reference_escapes"] == []

    def test_every_failure_is_typed(self, soak):
        report, _ = soak
        assert report["verify"]["untyped_failures"] == []

    def test_chaos_actually_fired_on_the_victim(self, soak):
        report, cfg = soak
        victims = [report["devices"][i] for i in cfg.chaos_devices]
        assert sum(d["faults_injected"] for d in victims) > 0

    def test_victim_breaker_tripped_and_readmitted(self, soak):
        report, cfg = soak
        victims = [report["devices"][i] for i in cfg.chaos_devices]
        assert sum(d["breaker"]["trips"] for d in victims) >= 1
        assert sum(d["breaker"]["readmissions"] for d in victims) >= 1

    def test_victim_serves_again_after_healing(self, soak):
        report, cfg = soak
        victim = report["devices"][cfg.chaos_devices[0]]
        assert victim["served"] > 0

    def test_progress_under_chaos(self, soak):
        report, _ = soak
        assert report["by_status"].get("ok", 0) >= 0.5 * 60

    def test_compile_cache_was_exercised(self, soak):
        report, _ = soak
        stats = report["compile_cache"]
        # few distinct programs, many requests: the cache must collapse
        # the compiles (memory hits after first materialization)
        assert stats["stores"] >= 1
        assert stats["hits"] >= 1
        assert stats["corrupt"] == 0
