"""Persistent compile cache: keying, durability, corruption recovery."""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro import acc
from repro.gpu.device import K20C
from repro.serve.cache import CompileCache, device_fingerprint

SRC = """
int a[n];
int s = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang vector reduction(+:s)
for (i = 0; i < n; i++)
    s += a[i];
"""

SRC2 = SRC.replace("s += a[i];", "s += a[i] * 2;")

GEOM = dict(num_gangs=2, num_workers=2, vector_length=32)


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path / "cc")


def _key(cache, source=SRC, **kw):
    kw = {**GEOM, **kw}
    return cache.key_for(source, **kw)


class TestKeying:
    def test_key_is_stable(self, cache):
        assert _key(cache) == _key(cache)

    def test_source_changes_key(self, cache):
        assert _key(cache) != _key(cache, source=SRC2)

    def test_geometry_changes_key(self, cache):
        assert _key(cache) != _key(cache, num_gangs=4)

    def test_pipeline_changes_key(self, cache):
        # explicit on both sides: under REPRO_PASSES=minimal the default
        # resolves to "minimal", and the two keys must still differ
        assert (_key(cache, pipeline="minimal")
                != _key(cache, pipeline="optimized"))

    def test_compiler_profile_changes_key(self, cache):
        assert _key(cache) != _key(cache, compiler="vendor-a")

    def test_options_change_key(self, cache):
        assert _key(cache) != _key(cache, options={"scheduling": "blocked"})

    def test_device_cost_model_changes_key(self, cache):
        # a cost-model constant changes modeled behaviour => new key
        slow = K20C.with_overrides(kernel_launch_us=999.0)
        assert _key(cache) != _key(cache, device=slow)

    def test_device_name_does_not_change_key(self, cache):
        # pool devices are clones distinguished only by label
        clone = K20C.with_overrides(name="K20C #3")
        assert _key(cache) == _key(cache, device=clone)
        assert "name=" not in device_fingerprint(K20C)


class TestRoundTrip:
    def test_miss_compile_store_then_hit(self, cache):
        prog, status = cache.compile(SRC, **GEOM)
        assert status == "miss"
        prog2, status2 = cache.compile(SRC, **GEOM)
        assert status2 == "hit"
        a = np.arange(64, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == prog2.run(a=a).scalars["s"] \
            == a.sum()
        assert cache.stats()["stores"] == 1

    def test_disk_hit_after_memory_drop(self, cache):
        cache.compile(SRC, **GEOM)
        cache.drop_memory()
        prog, status = cache.compile(SRC, **GEOM)
        assert status == "hit"
        assert cache.stats()["disk_hits"] == 1
        a = np.arange(32, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == a.sum()

    def test_reconstructed_program_fresh_per_get(self, cache):
        cache.compile(SRC, **GEOM)
        key = _key(cache)
        p1 = cache.get(key, K20C)
        p2 = cache.get(key, K20C)
        assert p1 is not p2  # compiled-kernel state must not be shared

    def test_uncacheable_custom_profile(self, cache):
        from repro.acc.profiles import get_profile

        prog, status = cache.compile(SRC, compiler=get_profile("openuh"),
                                     **GEOM)
        assert status == "uncacheable"
        assert cache.stats()["stores"] == 0
        a = np.arange(16, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == a.sum()


class TestCorruptionRecovery:
    def _entry_path(self, cache):
        paths = list(cache.objects.glob("*/*.rcc"))
        assert len(paths) == 1
        return paths[0]

    def _poisoned(self, cache, mutate):
        cache.compile(SRC, **GEOM)
        path = self._entry_path(cache)
        blob = path.read_bytes()
        path.write_bytes(mutate(blob))
        cache.drop_memory()
        return path

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:len(b) // 2],                      # truncated payload
        lambda b: b"GARBAGE!" + b[8:],                  # bad magic
        lambda b: b.replace(b"\n", b" ", 1),            # headerless blob
        lambda b: b[:-10] + bytes(10),                  # flipped tail bytes
        lambda b: b"",                                  # empty file
    ])
    def test_defect_quarantined_and_recompiled(self, cache, mutate):
        path = self._poisoned(cache, mutate)
        prog, status = cache.compile(SRC, **GEOM)
        assert status == "miss"          # defect -> miss -> recompile
        assert cache.stats()["corrupt"] == 1
        assert path.exists()             # re-stored after recompile
        a = np.arange(64, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == a.sum()

    def test_wrong_payload_version_is_a_miss(self, cache):
        import hashlib

        def mutate(blob):
            nl = blob.index(b"\n")
            doc = pickle.loads(blob[nl + 1:])
            doc["v"] = 999
            payload = pickle.dumps(doc)
            header = b" ".join((
                b"REPROCC1",
                hashlib.sha256(payload).hexdigest().encode(),
                str(len(payload)).encode())) + b"\n"
            return header + payload

        self._poisoned(cache, mutate)
        _, status = cache.compile(SRC, **GEOM)
        assert status == "miss"
        assert cache.stats()["corrupt"] == 1

    def test_checksum_catches_silent_bitflip(self, cache):
        def flip(blob):
            i = len(blob) - 5
            return blob[:i] + bytes([blob[i] ^ 0x40]) + blob[i + 1:]

        self._poisoned(cache, flip)
        _, status = cache.compile(SRC, **GEOM)
        assert status == "miss"

    def test_quarantine_removes_corrupt_bytes_before_recompile(self, cache):
        # the corrupt entry leaves its canonical name at *detection*
        # time, not at recompile time — a concurrent process probing the
        # key in between must see a clean miss, never the corrupt bytes
        path = self._poisoned(cache, lambda b: b[: len(b) // 2])
        assert cache.get(cache.key_for(SRC, **GEOM), K20C) is None
        assert not path.exists()
        assert not list(path.parent.glob("*.qtn"))  # no quarantine litter

    def test_quarantine_preserves_a_concurrent_repair(self, cache):
        # the race the rename discipline exists for: reader A has
        # corrupt bytes in hand; before A quarantines, process B
        # recompiles and atomically replaces the entry with a healthy
        # one.  A's (now stale) quarantine must not delete B's repair.
        cache.compile(SRC, **GEOM)
        path = self._entry_path(cache)
        healthy = path.read_bytes()
        path.write_bytes(healthy[: len(healthy) // 2])  # A reads this...
        path.write_bytes(healthy)                       # ...B repairs it
        cache._quarantine(path)                         # A acts late
        assert path.exists()
        cache.drop_memory()
        _, status = cache.compile(SRC, **GEOM)
        assert status == "hit"  # the repair survived A's quarantine
        assert not list(path.parent.glob("*.qtn"))


class TestConcurrency:
    def test_two_processes_race_same_key(self, tmp_path):
        """Two processes compile the same program, then *write the same
        key at the same moment* (barrier-synchronized).  The atomic
        tmp+rename protocol means whichever replace lands last sticks,
        and the surviving entry always verifies whole."""
        import os
        import repro

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        root = tmp_path / "cc"
        go = tmp_path / "go"
        script = f"""
import os, sys, time
sys.path.insert(0, {str(src_root)!r})
import numpy as np
from repro.serve.cache import CompileCache
cache = CompileCache({str(root)!r})
from repro import acc
prog = acc.compile({SRC!r}, num_gangs=2, num_workers=2, vector_length=32)
key = cache.key_for({SRC!r}, num_gangs=2, num_workers=2, vector_length=32)
# barrier: both processes finish compiling, then store simultaneously
while not os.path.exists({str(go)!r}):
    time.sleep(0.005)
for _ in range(20):
    cache.put(key, prog)
print("stored")
"""
        procs = [subprocess.Popen([sys.executable, "-c", script],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
                 for _ in range(2)]
        import time
        time.sleep(1.0)  # let both reach the barrier
        go.write_text("go")
        for p in procs:
            out, err = p.communicate(timeout=180)
            assert p.returncode == 0, err.decode()
            assert out.decode().strip() == "stored"
        # the surviving entry is whole and verifiable by a third reader
        reader = CompileCache(root)
        prog, status = reader.compile(SRC, **GEOM)
        assert status == "hit"
        assert reader.stats()["corrupt"] == 0
        a = np.arange(64, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == a.sum()
        assert not list(reader.objects.glob("**/*.tmp"))

    def test_two_processes_corrupt_quarantine_repair_race(self, tmp_path):
        """Two processes hammer one key with corrupt->detect->repair
        cycles.  The quarantine discipline under test: a detected-corrupt
        entry leaves its canonical name atomically (no process can read
        the same corrupt bytes after another detected them and moved on
        to recompiling), and a quarantine racing a repair never deletes
        the repair.  Neither process may ever crash on garbage, and the
        key must end servable."""
        import os
        import time

        import repro

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        root = tmp_path / "cc"
        go = tmp_path / "go"
        seed = CompileCache(root)
        key = seed.key_for(SRC, **GEOM)
        seed.compile(SRC, **GEOM)
        script = f"""
import os, sys, time
sys.path.insert(0, {str(src_root)!r})
from repro.serve.cache import CompileCache
from repro.gpu.device import K20C
from repro import acc
cache = CompileCache({str(root)!r})
prog = acc.compile({SRC!r}, num_gangs=2, num_workers=2, vector_length=32)
key = {key!r}
path = cache._path(key)
while not os.path.exists({str(go)!r}):
    time.sleep(0.005)
for i in range(25):
    try:
        path.write_bytes(b"REPROCC1 junk 3\\nxxx")  # vandalize
    except OSError:
        pass
    cache.drop_memory()
    got = cache.get(key, K20C)   # never raises: None (miss) or valid
    if got is None:
        cache.put(key, prog)     # repair
print("done", cache.corrupt)
"""
        procs = [subprocess.Popen([sys.executable, "-c", script],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
                 for _ in range(2)]
        time.sleep(1.0)
        go.write_text("go")
        detected = 0
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err.decode()
            word, n = out.decode().split()
            assert word == "done"
            detected += int(n)
        assert detected > 0  # the corruption path actually exercised
        # end state: the canonical name is either absent or healthy, a
        # recompile round-trips, and no quarantine/tmp litter remains
        reader = CompileCache(root)
        prog, status = reader.compile(SRC, **GEOM)
        assert status in ("hit", "miss")
        a = np.arange(64, dtype=np.int32)
        assert prog.run(a=a).scalars["s"] == a.sum()
        assert not list(reader.objects.glob("**/*.qtn"))
        assert not list(reader.objects.glob("**/*.tmp"))

    def test_no_tmp_litter_after_stores(self, cache):
        cache.compile(SRC, **GEOM)
        cache.compile(SRC2, **GEOM)
        assert not list(cache.objects.glob("**/*.tmp"))


class TestPruneAndClear:
    def test_max_entries_prunes_oldest(self, tmp_path):
        import os
        import time

        cache = CompileCache(tmp_path / "cc", max_entries=2)
        sources = [SRC.replace("s += a[i];", f"s += a[i] + {k};")
                   for k in range(3)]
        for i, src in enumerate(sources):
            cache.compile(src, **GEOM)
            # entry mtimes must be distinguishable for LRU-by-mtime
            path = cache._path(_key(cache, source=src))
            t = time.time() + i
            os.utime(path, (t, t))
        assert cache.stats()["entries"] == 2
        assert cache.stats()["evictions"] == 1
        # the oldest entry is the evicted one
        assert cache.get(_key(cache, source=sources[0]), K20C) is None

    def test_clear_drops_everything(self, cache):
        cache.compile(SRC, **GEOM)
        cache.clear()
        st = cache.stats()
        assert st["entries"] == 0 and st["stores"] == 0
        _, status = cache.compile(SRC, **GEOM)
        assert status == "miss"
