"""Differential property tests: random programs, simulator vs host oracle.

Hypothesis generates random-but-valid OpenACC reduction programs (nest
shapes, level assignments, reduction operators/positions, launch
geometries, strategy options) and checks that the full device pipeline
(parse → IR → analysis → lowering → SIMT simulation → host fold) produces
bit-identical integer results to the sequential host interpreter —
regardless of thread counts, layouts, scheduling, or elision choices.

These are the property-based guarantees behind the paper's claim that the
algorithms "cover all possible cases ... independent of the number of
threads used in each loop level".
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import acc
from repro.frontend.cparser import parse_region
from repro.ir.builder import build_region
from repro.ir.interp import run_host
from repro.testsuite.cases import POSITIONS, make_case

GEOMETRIES = [
    dict(num_gangs=1, num_workers=1, vector_length=32),
    dict(num_gangs=3, num_workers=2, vector_length=32),
    dict(num_gangs=5, num_workers=4, vector_length=64),
    dict(num_gangs=2, num_workers=8, vector_length=96),  # non-pow2 vector
    dict(num_gangs=7, num_workers=3, vector_length=33),  # not warp multiple
]

STRATEGIES = [
    dict(),
    dict(vector_layout="transposed"),
    dict(worker_strategy="duplicated"),
    dict(elide_warp_sync=False),
    dict(scheduling="blocking"),
    dict(block_rmp_style="level_by_level"),
    dict(gang_rmp_style="level_by_level"),
    dict(reduction_memory="global"),
    dict(gang_partial_style="atomic"),
    dict(zero_init_partials=True),
    dict(vector_strategy="shuffle"),
    dict(vector_strategy="shuffle", gang_partial_style="atomic"),
]


def check_case(position, op, ctype, size, geom, overrides, seed):
    case = make_case(position, op, ctype, size=size)
    region = build_region(parse_region(case.source))
    inputs = case.make_inputs(np.random.default_rng(seed))
    ref = run_host(region, **inputs)
    prog = acc.compile(case.source, **geom, **overrides)
    res = prog.run(**inputs)
    for kind, name, _ in case.expected(inputs):
        if kind == "scalar":
            got, want = res.scalars[name], ref.scalars[name]
            if ctype in ("float", "double"):
                np.testing.assert_allclose(got, want, rtol=1e-4)
            else:
                assert got == want, (position, op, ctype, geom, overrides)
        else:
            got, want = res.outputs[name], ref.arrays[name]
            if ctype in ("float", "double"):
                np.testing.assert_allclose(got, want, rtol=1e-4)
            else:
                np.testing.assert_array_equal(got, want)


class TestGeometryIndependence:
    """Same program + same data, any launch geometry → same answer."""

    @given(
        position=st.sampled_from(POSITIONS),
        op=st.sampled_from(["+", "*", "max", "min", "&", "|", "^"]),
        geom=st.sampled_from(GEOMETRIES),
        size=st.integers(8, 600),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_int_results_bit_exact(self, position, op, geom, size, seed):
        check_case(position, op, "int", size, geom, {}, seed)

    @given(
        position=st.sampled_from(POSITIONS),
        geom=st.sampled_from(GEOMETRIES),
        size=st.integers(8, 400),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_double_sums_close(self, position, geom, size, seed):
        check_case(position, "+", "double", size, geom, {}, seed)


class TestStrategyIndependence:
    """Every lowering strategy is a pure performance choice: results match
    the sequential oracle for each of them."""

    @given(
        position=st.sampled_from(POSITIONS),
        op=st.sampled_from(["+", "*", "max"]),
        overrides=st.sampled_from(STRATEGIES),
        size=st.integers(8, 500),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_strategies_agree_with_oracle(self, position, op, overrides,
                                          size, seed):
        geom = dict(num_gangs=3, num_workers=4, vector_length=32)
        check_case(position, op, "int", size, geom, overrides, seed)

    @given(
        size=st.integers(1, 200),
        seed=st.integers(0, 2**31 - 1),
        vl=st.sampled_from([32, 64, 96, 128]),
    )
    @settings(max_examples=20, deadline=None)
    def test_tiny_iteration_spaces(self, size, seed, vl):
        # fewer iterations than threads: identities must pad correctly
        check_case("same line gang worker vector", "+", "int", size,
                   dict(num_gangs=4, num_workers=2, vector_length=vl),
                   {}, seed)


class TestKernelsAutoParallelization:
    """kernels-construct scheduling must also match the oracle — the
    auto-parallelizer may only parallelize what is safe."""

    @given(
        op=st.sampled_from(["+", "*", "max"]),
        geom=st.sampled_from(GEOMETRIES),
        size=st.integers(8, 400),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_unannotated_reduction_matches_oracle(self, op, geom, size,
                                                  seed):
        from repro.frontend.cparser import parse_region
        from repro.ir.builder import build_region
        from repro.ir.interp import run_host
        from repro.testsuite.cases import _accum, _gen_data
        from repro.dtypes import DType

        stmt = _accum(op, "s", "a[i]", DType.INT)
        src = f"""
        int a[n];
        int s = 1;
        #pragma acc kernels copyin(a)
        {{
          for (i = 0; i < n; i++)
            {stmt}
        }}
        """
        rng = np.random.default_rng(seed)
        a = _gen_data(op, (size,), DType.INT, rng)
        ref = run_host(build_region(parse_region(src)), a=a)
        prog = acc.compile(src, **geom)
        res = prog.run(a=a)
        assert res.scalars["s"] == ref.scalars["s"]


class TestLogicalOperators:
    @given(
        op=st.sampled_from(["&&", "||"]),
        position=st.sampled_from(["gang", "vector",
                                  "same line gang worker vector"]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_logical_reductions(self, op, position, seed):
        check_case(position, op, "int", 200,
                   dict(num_gangs=2, num_workers=2, vector_length=32),
                   {}, seed)
