"""Compiler-profile tests: registry, strategy bundles, defect models."""

import pytest

from repro.dtypes import DType
from repro.acc.profiles import (
    OPENUH, PROFILES, VENDOR_A, VENDOR_B, get_profile,
)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_profile("openuh") is OPENUH
        assert get_profile("vendor-a") is VENDOR_A
        assert get_profile("vendor-b") is VENDOR_B

    def test_aliases(self):
        assert get_profile("caps-like") is VENDOR_A
        assert get_profile("pgi-like") is VENDOR_B

    def test_passthrough(self):
        assert get_profile(OPENUH) is OPENUH

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown compiler profile"):
            get_profile("gcc")

    def test_all_profiles_documented(self):
        for p in (OPENUH, VENDOR_A, VENDOR_B):
            assert len(p.description) > 40


class TestOpenUH:
    def test_strategy_bundle_matches_paper(self):
        lo = OPENUH.lowering
        assert lo.scheduling == "window"
        assert lo.vector_layout == "row"
        assert lo.worker_strategy == "first_row"
        assert lo.elide_warp_sync
        assert lo.strength_reduction
        assert not lo.zero_init_partials
        assert not lo.bug_sum_layout_mismatch

    def test_infers_span_for_every_operator(self):
        for op in ("+", "*", "max", "min", "&", "|", "^", "&&", "||"):
            assert OPENUH.infers_span(op)

    def test_no_unsupported_shapes(self):
        assert OPENUH.unsupported(("gang", "worker", "vector"), False,
                                  "+", DType.INT) is None

    def test_no_stale_cache(self):
        assert not OPENUH.stale_scalar_cache


class TestVendorA:
    def test_plus_path_skips_span_inference(self):
        assert not VENDOR_A.infers_span("+")
        assert VENDOR_A.infers_span("*")
        assert VENDOR_A.infers_span("max")

    def test_stale_cache_defect(self):
        assert VENDOR_A.stale_scalar_cache

    def test_no_compile_errors(self):
        # CAPS has F cells in Table 2 but no CE cells
        for op in ("+", "*"):
            for dt in (DType.INT, DType.FLOAT, DType.DOUBLE):
                assert VENDOR_A.unsupported(
                    ("gang", "worker", "vector"), False, op, dt) is None


class TestVendorB:
    def test_declared_ce_cells_match_table2(self):
        gwv = ("gang", "worker", "vector")
        # '+' on gang-worker-vector (different loops): CE for all dtypes
        for dt in (DType.INT, DType.FLOAT, DType.DOUBLE):
            assert VENDOR_B.unsupported(gwv, False, "+", dt) is not None
        # '*' : int passes, float/double CE
        assert VENDOR_B.unsupported(gwv, False, "*", DType.INT) is None
        assert VENDOR_B.unsupported(gwv, False, "*", DType.FLOAT) is not None
        assert VENDOR_B.unsupported(gwv, False, "*", DType.DOUBLE) is not None

    def test_same_line_not_ce(self):
        gwv = ("gang", "worker", "vector")
        assert VENDOR_B.unsupported(gwv, True, "+", DType.INT) is None

    def test_strategy_bundle(self):
        lo = VENDOR_B.lowering
        assert lo.scheduling == "blocking"
        assert lo.bug_sum_layout_mismatch
        assert not lo.strength_reduction
        assert lo.zero_init_partials
        assert lo.gang_rmp_style == "level_by_level"
