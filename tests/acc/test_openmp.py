"""OpenMP-front tests (the paper's §6: two-level OpenMP, worker ignored)."""

import numpy as np
import pytest

from repro.errors import DirectiveError
from repro.acc.openmp import (
    compile_omp, translate_omp_pragma, translate_omp_source,
)


class TestPragmaTranslation:
    def test_combined_offload_loop(self):
        acc = translate_omp_pragma(
            "omp target teams distribute parallel for "
            "reduction(+:sum) map(to: a)")
        assert acc.startswith("acc parallel loop gang vector")
        assert "reduction(+:sum)" in acc
        assert "copyin(a)" in acc

    def test_teams_distribute_only_is_gang(self):
        acc = translate_omp_pragma("omp target teams distribute")
        assert "loop gang" in acc and "vector" not in acc

    def test_inner_parallel_for_is_vector_loop(self):
        acc = translate_omp_pragma("omp parallel for reduction(max:m)")
        assert acc.startswith("acc loop vector")
        assert "reduction(max:m)" in acc

    def test_simd_maps_to_vector(self):
        acc = translate_omp_pragma("omp simd reduction(+:s)")
        assert "vector" in acc

    @pytest.mark.parametrize("omp,acckind", [
        ("map(to: a, b)", "copyin(a, b)"),
        ("map(from: c)", "copyout(c)"),
        ("map(tofrom: d)", "copy(d)"),
        ("map(alloc: t)", "create(t)"),
    ])
    def test_map_kinds(self, omp, acckind):
        acc = translate_omp_pragma(f"omp target teams distribute {omp}")
        assert acckind in acc

    def test_num_teams_and_thread_limit(self):
        acc = translate_omp_pragma(
            "omp target teams distribute parallel for "
            "num_teams(64) thread_limit(128)")
        assert "num_gangs(64)" in acc
        assert "vector_length(128)" in acc

    def test_non_omp_pragma_passes_through(self):
        assert translate_omp_pragma("acc loop gang") is None

    def test_unsupported_construct_rejected(self):
        with pytest.raises(DirectiveError):
            translate_omp_pragma("omp sections")

    def test_unsupported_clause_rejected(self):
        with pytest.raises(DirectiveError):
            translate_omp_pragma("omp target teams distribute depend(in:x)")

    def test_harmless_clauses_dropped(self):
        acc = translate_omp_pragma(
            "omp parallel for schedule(static) shared(a)")
        assert "schedule" not in acc and "shared" not in acc


class TestSourceTranslation:
    def test_translates_pragma_lines_only(self):
        src = ("float a[n];\n"
               "#pragma omp target teams distribute parallel for "
               "map(to: a) reduction(+:s)\n"
               "for (i = 0; i < n; i++)\n"
               "    s += a[i];\n")
        out = translate_omp_source(src)
        assert "#pragma acc parallel loop gang vector" in out
        assert "float a[n];" in out
        assert "omp" not in out

    def test_continuation_lines_merged(self):
        src = ("#pragma omp target teams distribute \\\n"
               "    parallel for map(to: a)\n"
               "for (i = 0; i < n; i++) a[i] = a[i];\n")
        out = translate_omp_source(src)
        assert "parallel loop gang vector" in out


class TestCompileAndRun:
    OMP_SUM = """
    float a[n];
    long s = 0;
    #pragma omp target teams distribute parallel for \\
        map(to: a) reduction(+:s)
    for (i = 0; i < n; i++)
        s += a[i];
    """

    def test_end_to_end_sum(self):
        prog = compile_omp(self.OMP_SUM, num_gangs=4, vector_length=32)
        a = np.arange(1000, dtype=np.float32)
        res = prog.run(a=a)
        assert res.scalars["s"] == a.sum()

    def test_worker_level_pinned_to_one(self):
        prog = compile_omp(self.OMP_SUM, num_gangs=4, vector_length=32)
        assert prog.geometry.num_workers == 1

    def test_two_level_nest(self):
        src = """
        float a[NK][NI];
        float out[NK];
        #pragma omp target map(to: a) map(from: out)
        {
          #pragma omp teams distribute
          for (k = 0; k < NK; k++) {
            float s = 0.0f;
            #pragma omp parallel for reduction(+:s)
            for (i = 0; i < NI; i++)
              s += a[k][i];
            out[k] = s;
          }
        }
        """
        prog = compile_omp(src, num_gangs=4, vector_length=32)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=(3, 100)).astype(np.float32)
        res = prog.run(a=a, out=np.zeros(3, np.float32))
        np.testing.assert_allclose(res.outputs["out"], a.sum(axis=1))

    def test_max_reduction(self):
        src = """
        double a[n];
        double m = 0.0;
        #pragma omp target teams distribute parallel for \\
            map(to: a) reduction(max:m)
        for (i = 0; i < n; i++)
            m = fmax(m, a[i]);
        """
        prog = compile_omp(src, num_gangs=2, vector_length=32)
        a = np.random.default_rng(1).random(500)
        res = prog.run(a=a)
        assert res.scalars["m"] == a.max()
