"""``#pragma acc atomic update`` tests (extension; colliding updates)."""

import numpy as np
import pytest

from repro import acc
from repro.errors import AnalysisError, CompileError, DirectiveError
from repro.frontend.pragmas import AccAtomicInfo, parse_pragma

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

HIST = """
int data[n];
int hist[nb];
#pragma acc parallel copyin(data) copy(hist)
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) {
  #pragma acc atomic update
  hist[data[i] % nb] += 1;
}
"""


def histogram(n=3000, nb=8, seed=0, src=HIST, **overrides):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 64, size=n).astype(np.int32)
    prog = acc.compile(src, **GEOM, **overrides)
    res = prog.run(data=data, hist=np.zeros(nb, np.int32))
    return res.outputs["hist"], np.bincount(data % nb, minlength=nb)


class TestDirectiveParsing:
    def test_atomic_parsed(self):
        info = parse_pragma("acc atomic update")
        assert isinstance(info, AccAtomicInfo)

    def test_bare_atomic_defaults_to_update(self):
        assert isinstance(parse_pragma("acc atomic"), AccAtomicInfo)

    def test_unsupported_atomic_kind(self):
        with pytest.raises(DirectiveError):
            parse_pragma("acc atomic capture")

    def test_must_precede_update_statement(self):
        with pytest.raises(CompileError, match="update statement"):
            acc.compile("""
            int hist[nb];
            #pragma acc parallel copy(hist)
            {
              #pragma acc atomic update
              for (i = 0; i < nb; i++)
                hist[i] = 0;
            }
            """, **GEOM)


class TestSemantics:
    def test_histogram_correct(self):
        got, expect = histogram()
        np.testing.assert_array_equal(got, expect)

    def test_without_atomic_updates_collide(self):
        src = HIST.replace("  #pragma acc atomic update\n", "")
        got, expect = histogram(src=src)
        assert not np.array_equal(got, expect)  # last-writer-wins races

    @pytest.mark.parametrize("op,combine", [
        ("|", np.bitwise_or), ("&", np.bitwise_and), ("^", np.bitwise_xor),
    ])
    def test_bitwise_atomics(self, op, combine):
        src = HIST.replace("hist[data[i] % nb] += 1;",
                           f"hist[data[i] % nb] {op}= data[i];")
        rng = np.random.default_rng(3)
        data = rng.integers(0, 64, size=500).astype(np.int32)
        prog = acc.compile(src, **GEOM)
        start = np.full(8, -1 if op == "&" else 0, np.int32)
        res = prog.run(data=data, hist=start.copy())
        expect = start.copy()
        for v in data:
            expect[v % 8] = combine(expect[v % 8], v)
        np.testing.assert_array_equal(res.outputs["hist"], expect)

    def test_geometry_independent(self):
        a, expect = histogram(seed=9)
        b, _ = histogram(seed=9)
        np.testing.assert_array_equal(a, expect)
        np.testing.assert_array_equal(a, b)

    def test_matches_host_oracle(self):
        from repro.frontend.cparser import parse_region
        from repro.ir.builder import build_region
        from repro.ir.interp import run_host
        rng = np.random.default_rng(4)
        data = rng.integers(0, 64, size=800).astype(np.int32)
        ref = run_host(build_region(parse_region(HIST)), data=data,
                       hist=np.zeros(8, np.int32))
        got, _ = histogram(seed=4, n=800)
        np.testing.assert_array_equal(got, ref.arrays["hist"])


class TestValidation:
    def test_scalar_target_rejected(self):
        with pytest.raises(AnalysisError, match="array elements"):
            acc.compile("""
            int a[n];
            int s = 0;
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for (i = 0; i < n; i++) {
              #pragma acc atomic update
              s += a[i];
            }
            """, **GEOM)

    def test_plain_assignment_rejected(self):
        with pytest.raises(AnalysisError, match="compound"):
            acc.compile("""
            int hist[nb];
            #pragma acc parallel copy(hist)
            #pragma acc loop gang
            for (i = 0; i < nb; i++) {
              #pragma acc atomic update
              hist[i] = 1;
            }
            """, **GEOM)


class TestAutoParInteraction:
    def test_kernels_region_parallelizes_atomic_histogram(self):
        src = """
        int data[n];
        int hist[nb];
        #pragma acc kernels copyin(data) copy(hist)
        {
          for (i = 0; i < n; i++) {
            #pragma acc atomic update
            hist[data[i] % nb] += 1;
          }
        }
        """
        prog = acc.compile(src, **GEOM)
        text = prog.dump_kernels()
        assert "blockIdx.x" in text  # auto-parallelized despite collisions
        rng = np.random.default_rng(1)
        data = rng.integers(0, 64, size=1000).astype(np.int32)
        res = prog.run(data=data, hist=np.zeros(8, np.int32))
        np.testing.assert_array_equal(res.outputs["hist"],
                                      np.bincount(data % 8, minlength=8))

    def test_without_atomic_kernels_stays_sequential(self):
        src = """
        int data[n];
        int hist[nb];
        #pragma acc kernels copyin(data) copy(hist)
        {
          for (i = 0; i < n; i++)
            hist[data[i] % nb] += 1;
        }
        """
        prog = acc.compile(src, **GEOM)
        # the write index does not use the loop variable injectively:
        # the dependence test must refuse to parallelize — and the
        # sequential fallback is then *correct*
        rng = np.random.default_rng(2)
        data = rng.integers(0, 64, size=500).astype(np.int32)
        res = prog.run(data=data, hist=np.zeros(8, np.int32))
        np.testing.assert_array_equal(res.outputs["hist"],
                                      np.bincount(data % 8, minlength=8))
