"""Data-environment tests: binding, transfers, OpenACC clause semantics."""

import numpy as np
import pytest

from repro import acc
from repro.errors import RuntimeDataError
from repro.frontend.cparser import parse_region
from repro.gpu.device import K20C
from repro.ir.builder import build_region
from repro.acc.runtime import DataEnv

SRC = """
float a[NK][NI];
float out[NK][NI];
double s = 1.5;
#pragma acc parallel copyin(a) copyout(out)
{
  #pragma acc loop gang
  for (k = 0; k < NK; k++) {
    #pragma acc loop vector
    for (i = 0; i < NI; i++)
      out[k][i] = a[k][i];
  }
}
"""


def env_for(src=SRC):
    region = build_region(parse_region(src))
    return DataEnv(region=region, device=K20C), region


class TestBinding:
    def test_shape_binds_extents(self):
        env, _ = env_for()
        a = np.zeros((3, 5), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a)})
        assert env.scalars["NK"] == 3
        assert env.scalars["NI"] == 5

    def test_preamble_init_used_when_not_passed(self):
        env, _ = env_for()
        a = np.zeros((2, 2), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a)})
        assert env.scalars["s"] == 1.5

    def test_explicit_scalar_overrides_init(self):
        env, _ = env_for()
        a = np.zeros((2, 2), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a), "s": 4.0})
        assert env.scalars["s"] == 4.0

    def test_conflicting_shapes_rejected(self):
        env, _ = env_for()
        with pytest.raises(RuntimeDataError, match="extent"):
            env.bind({"a": np.zeros((3, 5), np.float32),
                      "out": np.zeros((4, 5), np.float32)})

    def test_scalar_contradicting_shape_rejected(self):
        env, _ = env_for()
        with pytest.raises(RuntimeDataError, match="contradicts"):
            env.bind({"a": np.zeros((3, 5), np.float32),
                      "out": np.zeros((3, 5), np.float32), "NK": 7})

    def test_wrong_rank_rejected(self):
        env, _ = env_for()
        with pytest.raises(RuntimeDataError, match="dimension"):
            env.bind({"a": np.zeros(6, np.float32),
                      "out": np.zeros((2, 3), np.float32)})

    def test_consistent_scalar_matching_shape_ok(self):
        env, _ = env_for()
        env.bind({"a": np.zeros((3, 5), np.float32),
                  "out": np.zeros((3, 5), np.float32), "NK": 3})
        assert env.scalars["NK"] == 3


class TestTransfers:
    def test_copyin_charged_copyout_charged(self):
        env, _ = env_for()
        a = np.ones((4, 8), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a)})
        env.enter()
        out = env.exit_outputs()
        labels = [label for label, _ in env.ledger.entries]
        assert "h2d:a" in labels
        assert "d2h:out" in labels
        assert "h2d:out" not in labels  # copyout: no entry transfer
        assert "d2h:a" not in labels  # copyin: no exit transfer
        assert "a" not in out and "out" in out

    def test_copyin_contents_reach_device(self):
        env, _ = env_for()
        a = np.arange(8, dtype=np.float32).reshape(2, 4)
        env.bind({"a": a, "out": np.zeros_like(a)})
        env.enter()
        np.testing.assert_array_equal(env.gmem["a"].data,
                                      np.arange(8, dtype=np.float32))

    def test_copyout_buffer_starts_zeroed(self):
        env, _ = env_for()
        a = np.ones((2, 2), np.float32)
        env.bind({"a": a, "out": np.full((2, 2), 9.0, np.float32)})
        env.enter()
        assert (env.gmem["out"].data == 0).all()

    def test_present_is_free_of_transfer_cost(self):
        src = SRC.replace("copyin(a)", "present(a)")
        env, _ = env_for(src)
        a = np.ones((2, 2), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a)})
        env.enter()
        labels = [label for label, _ in env.ledger.entries]
        assert "h2d:a" not in labels
        # but the data is resident (modeled as already-uploaded)
        assert (env.gmem["a"].data == 1).all()

    def test_create_no_transfers_either_way(self):
        src = SRC.replace("copyin(a)", "create(a)")
        env, _ = env_for(src)
        a = np.ones((2, 2), np.float32)
        env.bind({"a": a, "out": np.zeros_like(a)})
        env.enter()
        out = env.exit_outputs()
        assert (env.gmem["a"].data == 0).all()  # not copied in
        assert "a" not in out

    def test_transfer_time_scales_with_bytes(self):
        env, _ = env_for()
        small = np.ones((2, 2), np.float32)
        env.bind({"a": small, "out": np.zeros_like(small)})
        env.enter()
        t_small = env.ledger.total_us

        env2, _ = env_for()
        big = np.ones((64, 64), np.float32)
        env2.bind({"a": big, "out": np.zeros_like(big)})
        env2.enter()
        assert env2.ledger.total_us > t_small


class TestStaleScalarDefect:
    """The vendor-a data-clause defect at Program level."""

    SRC = """
    float a[n];
    float m = 0.0f;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang vector reduction(max:m)
    for (i = 0; i < n; i++)
        m = fmax(m, a[i]);
    """

    def test_openuh_respects_host_reset(self):
        prog = acc.compile(self.SRC, num_gangs=2, num_workers=1,
                           vector_length=32)
        hi = np.full(64, 9.0, np.float32)
        lo = np.full(64, 2.0, np.float32)
        assert prog.run(a=hi).scalars["m"] == 9.0
        assert prog.run(a=lo).scalars["m"] == 2.0  # fresh each run

    def test_vendor_a_carries_stale_maximum(self):
        prog = acc.compile(self.SRC, compiler="vendor-a", num_gangs=2,
                           num_workers=1, vector_length=32)
        hi = np.full(64, 9.0, np.float32)
        lo = np.full(64, 2.0, np.float32)
        assert prog.run(a=hi).scalars["m"] == 9.0
        # host re-zeroes m, but the device-resident value wins: still 9
        assert prog.run(a=lo).scalars["m"] == 9.0

    def test_fresh_program_has_no_stale_state(self):
        prog = acc.compile(self.SRC, compiler="vendor-a", num_gangs=2,
                           num_workers=1, vector_length=32)
        lo = np.full(64, 2.0, np.float32)
        assert prog.run(a=lo).scalars["m"] == 2.0
