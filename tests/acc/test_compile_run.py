"""End-to-end compile-and-run tests for every reduction position (§3).

These execute the paper's Fig. 4/9/10 program shapes through the full
pipeline (parse → IR → analysis → lowering → simulator) and check results
against CPU references.  Geometry is kept small so the simulator stays fast;
separate tests vary the geometry to prove thread-count independence.
"""

import numpy as np
import pytest

from repro import acc

GEOM = dict(num_gangs=4, num_workers=4, vector_length=32)

NK, NJ, NI = 3, 5, 40


def triple_data(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 7, size=(NK, NJ, NI)).astype(np.float32)


class TestVectorReduction:
    """Fig. 4(a): reduction only in vector."""

    SRC = """
    float input[NK][NJ][NI];
    float temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copyout(temp)
    {
      #pragma acc loop gang
      for(k=0; k<NK; k++){
        #pragma acc loop worker
        for(j=0; j<NJ; j++){
          int i_sum = j;
          #pragma acc loop vector reduction(+:i_sum)
          for(i=0; i<NI; i++)
            i_sum += input[k][j][i];
          temp[k][j][0] = i_sum;
        }
      }
    }
    """

    def expected(self, inp):
        out = np.zeros_like(inp)
        for k in range(NK):
            for j in range(NJ):
                out[k][j][0] = j + int(inp[k][j].sum())
        return out

    def test_matches_cpu(self):
        inp = triple_data()
        prog = acc.compile(self.SRC, **GEOM)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))

    @pytest.mark.parametrize("geom", [
        dict(num_gangs=1, num_workers=1, vector_length=16),
        dict(num_gangs=2, num_workers=8, vector_length=64),
        dict(num_gangs=7, num_workers=3, vector_length=33),  # non-pow2
    ])
    def test_geometry_independent(self, geom):
        inp = triple_data(1)
        prog = acc.compile(self.SRC, **geom)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))

    def test_transposed_layout_same_result(self):
        inp = triple_data(2)
        prog = acc.compile(self.SRC, **GEOM, vector_layout="transposed")
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))


class TestWorkerReduction:
    """Fig. 4(b): reduction only in worker."""

    SRC = """
    float input[NK][NJ][NI];
    float temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copy(temp)
    {
      #pragma acc loop gang
      for(k=0; k<NK; k++){
        int j_sum = k;
        #pragma acc loop worker reduction(+:j_sum)
        for(j=0; j<NJ; j++){
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            temp[k][j][i] = input[k][j][i];
          j_sum += temp[k][j][0];
        }
        temp[k][0][0] = j_sum;
      }
    }
    """

    def expected(self, inp):
        out = inp.copy()
        for k in range(NK):
            out[k][0][0] = k + inp[k, :, 0].sum()
        return out

    def test_matches_cpu(self):
        inp = triple_data(3)
        prog = acc.compile(self.SRC, **GEOM)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))

    def test_duplicated_worker_strategy_same_result(self):
        inp = triple_data(4)
        prog = acc.compile(self.SRC, **GEOM, worker_strategy="duplicated")
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))

    def test_more_workers_than_iterations(self):
        # NJ=5 < 8 workers: inactive workers must contribute identities
        inp = triple_data(5)
        prog = acc.compile(self.SRC, num_gangs=2, num_workers=8,
                           vector_length=32)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))


class TestGangReduction:
    """Fig. 4(c): reduction only in gang — two-kernel scheme."""

    SRC = """
    float input[NK][NJ][NI];
    float temp[NK][NJ][NI];
    double sum = 3.0;
    #pragma acc parallel copyin(input) create(temp)
    {
      #pragma acc loop gang reduction(+:sum)
      for(k=0; k<NK; k++){
        #pragma acc loop worker
        for(j=0; j<NJ; j++){
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            temp[k][j][i] = input[k][j][i];
        }
        sum += temp[k][0][0];
      }
    }
    """

    def test_matches_cpu(self):
        inp = triple_data(6)
        prog = acc.compile(self.SRC, **GEOM)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        expect = 3.0 + inp[:, 0, 0].sum(dtype=np.float64)
        assert res.scalars["sum"] == pytest.approx(expect)

    def test_two_kernels_launched(self):
        # the separate finish kernel is a minimal-pipeline shape (the
        # optimized pipeline fuses it into the main kernel)
        prog = acc.compile(self.SRC, **GEOM, pipeline="minimal")
        assert len(prog.lowered.kernels) == 2
        assert "finish" in prog.lowered.kernels[1].name

    def test_more_gangs_than_iterations(self):
        inp = triple_data(7)
        prog = acc.compile(self.SRC, num_gangs=16, num_workers=2,
                           vector_length=32)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        expect = 3.0 + inp[:, 0, 0].sum(dtype=np.float64)
        assert res.scalars["sum"] == pytest.approx(expect)


class TestRMPDifferentLoops:
    """Fig. 9: same variable reduced across worker & vector."""

    SRC = """
    float input[NK][NJ][NI];
    float temp[NK];
    #pragma acc parallel copyin(input) copyout(temp)
    {
      #pragma acc loop gang
      for(k=0; k<NK; k++){
        int j_sum = k;
        #pragma acc loop worker reduction(+:j_sum)
        for(j=0; j<NJ; j++){
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            j_sum += input[k][j][i];
        }
        temp[k] = j_sum;
      }
    }
    """

    def expected(self, inp):
        return np.array([k + int(inp[k].sum()) for k in range(NK)],
                        dtype=np.float32)

    def test_openuh_auto_detects_span(self):
        inp = triple_data(8)
        prog = acc.compile(self.SRC, **GEOM)
        res = prog.run(input=inp, temp=np.zeros(NK, np.float32))
        np.testing.assert_allclose(res.outputs["temp"], self.expected(inp))

    def test_gang_worker_span(self):
        src = """
        float input[NK][NJ][NI];
        float temp[NK][NJ][NI];
        long sum = 5;
        #pragma acc parallel copyin(input) create(temp)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop worker
            for(j=0; j<NJ; j++){
              #pragma acc loop vector
              for(i=0; i<NI; i++)
                temp[k][j][i] = input[k][j][i];
              sum += temp[k][j][0];
            }
          }
        }
        """
        inp = triple_data(9)
        prog = acc.compile(src, **GEOM)
        res = prog.run(input=inp, temp=np.zeros_like(inp))
        assert res.scalars["sum"] == 5 + int(inp[:, :, 0].sum())

    def test_gang_worker_vector_span(self):
        src = """
        float input[NK][NJ][NI];
        long sum = 0;
        #pragma acc parallel copyin(input)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop worker
            for(j=0; j<NJ; j++){
              #pragma acc loop vector
              for(i=0; i<NI; i++)
                sum += input[k][j][i];
            }
          }
        }
        """
        inp = triple_data(10)
        prog = acc.compile(src, **GEOM)
        res = prog.run(input=inp)
        assert res.scalars["sum"] == int(inp.sum())

    def test_level_by_level_rmp_same_result_more_syncs(self):
        inp = triple_data(11)
        direct = acc.compile(self.SRC, **GEOM)
        lbl = acc.compile(self.SRC, **GEOM, block_rmp_style="level_by_level")
        rd = direct.run(input=inp, temp=np.zeros(NK, np.float32))
        rl = lbl.run(input=inp, temp=np.zeros(NK, np.float32))
        np.testing.assert_allclose(rd.outputs["temp"], rl.outputs["temp"])
        main = "acc_region_main"
        assert rl.kernel_stats[main].barriers > rd.kernel_stats[main].barriers


class TestSameLineRMP:
    """Fig. 10: gang worker vector on a single loop."""

    SRC = """
    float a[n];
    long sum = 2;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang worker vector reduction(+:sum)
    for(i=0; i<n; i++)
      sum += a[i];
    """

    def test_matches_cpu(self):
        a = np.arange(10000, dtype=np.float32)
        prog = acc.compile(self.SRC, **GEOM)
        res = prog.run(a=a)
        assert res.scalars["sum"] == 2 + int(a.sum())

    def test_same_line_gang_vector_pads_worker_dim(self):
        # Monte-Carlo-π shape with num_workers > 1: the worker dimension
        # executes redundantly and must not inflate the result
        src = """
        float a[n];
        long sum = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:sum)
        for(i=0; i<n; i++)
          sum += a[i];
        """
        a = np.ones(4096, dtype=np.float32)
        prog = acc.compile(src, num_gangs=4, num_workers=4, vector_length=32)
        res = prog.run(a=a)
        assert res.scalars["sum"] == 4096

    def test_iteration_count_smaller_than_thread_count(self):
        a = np.ones(17, dtype=np.float32)
        prog = acc.compile(self.SRC, num_gangs=8, num_workers=8,
                           vector_length=64)
        res = prog.run(a=a)
        assert res.scalars["sum"] == 2 + 17


class TestOperatorsAndDtypes:
    """All nine operators across the four dtypes, same-line gwv shape."""

    @pytest.mark.parametrize("op,ctype,npdt", [
        ("+", "int", np.int32), ("+", "long", np.int64),
        ("+", "float", np.float32), ("+", "double", np.float64),
        ("*", "int", np.int32), ("*", "double", np.float64),
        ("max", "int", np.int32), ("max", "float", np.float32),
        ("min", "long", np.int64), ("min", "double", np.float64),
        ("&", "int", np.int32), ("|", "int", np.int32),
        ("^", "long", np.int64), ("&&", "int", np.int32),
        ("||", "int", np.int32),
    ])
    def test_operator(self, op, ctype, npdt):
        from repro.codegen.reduction.operators import get_operator
        from repro.dtypes import from_numpy
        src = f"""
        {ctype} a[n];
        {ctype} acc_v = 1;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction({op}:acc_v)
        for(i=0; i<n; i++)
          acc_v {'+' if op in ('&&', '||') else ''}= {{}};
        """
        # build the accumulation statement per operator
        if op in ("&&", "||"):
            stmt = f"acc_v = acc_v {op} a[i];"
        elif op in ("max", "min"):
            fn = ("fmax" if npdt in (np.float32, np.float64) else op) \
                if op == "max" else \
                ("fmin" if npdt in (np.float32, np.float64) else op)
            stmt = f"acc_v = {fn}(acc_v, a[i]);"
        else:
            stmt = f"acc_v {op}= a[i];"
        src = f"""
        {ctype} a[n];
        {ctype} acc_v = 1;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction({op}:acc_v)
        for(i=0; i<n; i++)
          {stmt}
        """
        rng = np.random.default_rng(13)
        a = rng.integers(1, 4, size=257).astype(npdt)
        prog = acc.compile(src, num_gangs=3, num_workers=2, vector_length=32)
        res = prog.run(a=a)
        red = get_operator(op)
        dt = from_numpy(np.dtype(npdt))
        expect = red.np_combine(npdt(1), red.np_reduce(a, dt), dt)
        got = res.scalars["acc_v"]
        if npdt in (np.float32, np.float64):
            np.testing.assert_allclose(got, expect, rtol=1e-5)
        else:
            assert got == expect

    def test_mixed_dtype_reductions_share_shared_memory(self):
        # §3.3: int and double reductions in one clause share one region
        # sized by the widest dtype, not the sum of both buffers
        src = """
        float a[NK][NI];
        float out1[NK];
        double out2[NK];
        #pragma acc parallel copyin(a) copyout(out1, out2)
        {
          #pragma acc loop gang
          for(k=0; k<NK; k++){
            int s1 = 0;
            double s2 = 0.0;
            #pragma acc loop worker reduction(+:s1,s2)
            for(j=0; j<NI; j++){
              s1 += a[k][j];
              s2 += a[k][j];
            }
            out1[k] = s1;
            out2[k] = s2;
          }
        }
        """
        a = np.ones((3, 50), dtype=np.float32)
        prog = acc.compile(src, **GEOM)
        res = prog.run(a=a, out1=np.zeros(3, np.float32),
                       out2=np.zeros(3, np.float64))
        np.testing.assert_allclose(res.outputs["out1"], [50.0] * 3)
        np.testing.assert_allclose(res.outputs["out2"], [50.0] * 3)
        main = prog.lowered.main_kernel
        sizes = {s.dtype: s.nbytes for s in main.shared}
        assert len(sizes) == 2  # one int buffer, one double buffer
        # overlay: footprint = max(int buf, double buf), not the sum
        assert main.shared_bytes == max(sizes.values())


class TestCollapse:
    def test_collapse_two_loops(self):
        src = """
        float a[NK][NJ];
        long sum = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector collapse(2) reduction(+:sum)
        for(k=0; k<NK; k++)
          for(j=0; j<NJ; j++)
            sum += a[k][j];
        """
        rng = np.random.default_rng(21)
        a = rng.integers(0, 9, size=(5, 37)).astype(np.float32)
        prog = acc.compile(src, num_gangs=3, num_workers=1, vector_length=32)
        res = prog.run(a=a)
        assert res.scalars["sum"] == int(a.sum())

    def test_collapse_preserves_index_recovery(self):
        src = """
        float a[NK][NJ];
        float out[NK][NJ];
        #pragma acc parallel copyin(a) copyout(out)
        #pragma acc loop gang vector collapse(2)
        for(k=0; k<NK; k++)
          for(j=0; j<NJ; j++)
            out[k][j] = a[k][j] * 2.0f;
        """
        rng = np.random.default_rng(22)
        a = rng.random((6, 11)).astype(np.float32)
        prog = acc.compile(src, num_gangs=2, num_workers=1, vector_length=16)
        res = prog.run(a=a, out=np.zeros_like(a))
        np.testing.assert_allclose(res.outputs["out"], a * 2.0)


class TestRunValidation:
    SRC = """
    float a[n];
    long sum = 0;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang vector reduction(+:sum)
    for(i=0; i<n; i++)
      sum += a[i];
    """

    def test_missing_array(self):
        from repro.errors import RuntimeDataError
        prog = acc.compile(self.SRC, num_workers=1, **{k: v for k, v in
                           GEOM.items() if k != "num_workers"})
        with pytest.raises(RuntimeDataError, match="missing host array"):
            prog.run()

    def test_wrong_dtype(self):
        from repro.errors import RuntimeDataError
        prog = acc.compile(self.SRC, num_workers=1, num_gangs=2,
                           vector_length=32)
        with pytest.raises(RuntimeDataError, match="dtype"):
            prog.run(a=np.ones(8, dtype=np.float64))

    def test_unknown_kwarg(self):
        from repro.errors import RuntimeDataError
        prog = acc.compile(self.SRC, num_workers=1, num_gangs=2,
                           vector_length=32)
        with pytest.raises(RuntimeDataError):
            prog.run(a=np.ones(8, dtype=np.float32), bogus=3)

    def test_dump_kernels(self):
        prog = acc.compile(self.SRC, num_workers=1, num_gangs=2,
                           vector_length=32, pipeline="minimal")
        text = prog.dump_kernels()
        assert "acc_region_main" in text
        assert "acc_reduction_finish_sum" in text
