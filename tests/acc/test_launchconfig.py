"""Launch-geometry resolution tests."""

import pytest

from repro.errors import CompileError
from repro.acc.launchconfig import DEFAULT_GEOMETRY, resolve_geometry
from repro.gpu.device import DeviceProperties


class TestDefaults:
    def test_paper_defaults(self):
        # §4: 192 gangs (12 SMs x 16 blocks), 8 workers, vector 128
        assert DEFAULT_GEOMETRY.num_gangs == 192
        assert DEFAULT_GEOMETRY.num_workers == 8
        assert DEFAULT_GEOMETRY.vector_length == 128
        assert DEFAULT_GEOMETRY.threads_per_block == 1024

    def test_all_defaults_apply(self):
        g = resolve_geometry(None, None, None, None, None, None)
        assert g == DEFAULT_GEOMETRY


class TestPrecedence:
    def test_directive_beats_kwargs(self):
        g = resolve_geometry(64, None, None, 32, None, None)
        assert g.num_gangs == 64

    def test_kwargs_beat_defaults(self):
        g = resolve_geometry(None, None, None, 32, 4, 64)
        assert (g.num_gangs, g.num_workers, g.vector_length) == (32, 4, 64)

    def test_mixed_sources(self):
        g = resolve_geometry(None, 2, None, 16, 8, None)
        assert g.num_gangs == 16
        assert g.num_workers == 2  # directive
        assert g.vector_length == 128  # default


class TestValidation:
    def test_block_limit_enforced(self):
        with pytest.raises(CompileError, match="threads per block"):
            resolve_geometry(None, 16, 128, None, None, None)

    def test_positive_required(self):
        with pytest.raises(CompileError, match="positive"):
            resolve_geometry(0, None, None, None, None, None)

    def test_custom_device_limit(self):
        small = DeviceProperties(max_threads_per_block=256)
        with pytest.raises(CompileError):
            resolve_geometry(None, 8, 64, None, None, None, device=small)
        resolve_geometry(None, 4, 64, None, None, None, device=small)
