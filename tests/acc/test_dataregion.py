"""Data-region tests: persistent device data across program runs."""

import numpy as np
import pytest

from repro import acc
from repro.errors import RuntimeDataError
from repro.acc.dataregion import DataRegion

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

SCALE = """
float a[n];
#pragma acc parallel copy(a)
#pragma acc loop gang worker vector
for (i = 0; i < n; i++)
    a[i] = a[i] * 2.0f;
"""

SUM = """
float a[n];
long s = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++)
    s += a[i];
"""


class TestLifetime:
    def test_data_stays_resident_across_runs(self):
        prog = acc.compile(SCALE, **GEOM)
        a = np.ones(128, np.float32)
        with DataRegion(copy={"a": a}) as region:
            for _ in range(3):
                prog.run(data_region=region)
        np.testing.assert_allclose(region.results["a"], 8.0)

    def test_original_host_array_untouched(self):
        prog = acc.compile(SCALE, **GEOM)
        a = np.ones(64, np.float32)
        with DataRegion(copy={"a": a}) as region:
            prog.run(data_region=region)
        assert (a == 1.0).all()

    def test_no_per_run_transfers(self):
        prog = acc.compile(SUM, **GEOM)
        a = np.ones(4096, np.float32)
        with DataRegion(copyin={"a": a}) as region:
            res = prog.run(data_region=region)
        labels = [lbl for lbl, _ in res.ledger.entries]
        assert not any(lbl.startswith("h2d:a") for lbl in labels)
        region_labels = [lbl for lbl, _ in region.ledger.entries]
        assert "h2d:a" in region_labels  # charged once, at region entry

    def test_transfer_savings_for_iterative_use(self):
        prog = acc.compile(SUM, **GEOM)
        a = np.ones(1 << 16, np.float32)
        iters = 5

        naive = sum(prog.run(a=a).modeled_ms for _ in range(iters))

        with DataRegion(copyin={"a": a}) as region:
            pooled = sum(prog.run(data_region=region).modeled_ms
                         for _ in range(iters))
        pooled += region.transfer_ms
        assert pooled < naive

    def test_two_programs_share_one_region(self):
        scale = acc.compile(SCALE, **GEOM)
        total = acc.compile(SUM, **GEOM)
        a = np.ones(100, np.float32)
        with DataRegion(copy={"a": a}) as region:
            scale.run(data_region=region)
            res = total.run(data_region=region)
        assert res.scalars["s"] == 200  # summed the scaled values

    def test_mixed_region_and_per_run_arrays(self):
        src = """
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang worker vector
        for (i = 0; i < n; i++)
            b[i] = a[i] + 1.0f;
        """
        prog = acc.compile(src, **GEOM)
        a = np.arange(32, dtype=np.float32)
        with DataRegion(copyin={"a": a}) as region:
            res = prog.run(b=np.zeros(32, np.float32), data_region=region)
        np.testing.assert_allclose(res.outputs["b"], a + 1)

    def test_region_held_outputs_not_in_run_outputs(self):
        prog = acc.compile(SCALE, **GEOM)
        a = np.ones(16, np.float32)
        with DataRegion(copy={"a": a}) as region:
            res = prog.run(data_region=region)
            assert "a" not in res.outputs  # still device-resident
        assert "a" in region.results


class TestUpdateDirectives:
    def test_update_host_mid_region(self):
        prog = acc.compile(SCALE, **GEOM)
        a = np.ones(16, np.float32)
        with DataRegion(copy={"a": a}) as region:
            prog.run(data_region=region)
            mid = region.update_host("a")
            np.testing.assert_allclose(mid, 2.0)
            prog.run(data_region=region)
        np.testing.assert_allclose(region.results["a"], 4.0)

    def test_update_device_mid_region(self):
        prog = acc.compile(SUM, **GEOM)
        a = np.ones(16, np.float32)
        with DataRegion(copyin={"a": a}) as region:
            region.update_device("a", np.full(16, 3.0, np.float32))
            res = prog.run(data_region=region)
        assert res.scalars["s"] == 48

    def test_update_unknown_name(self):
        with DataRegion(copyin={"a": np.ones(4, np.float32)}) as region:
            with pytest.raises(RuntimeDataError):
                region.update_host("b")


class TestValidation:
    def test_inactive_region_rejected(self):
        prog = acc.compile(SCALE, **GEOM)
        region = DataRegion(copy={"a": np.ones(8, np.float32)})
        with pytest.raises(RuntimeDataError, match="not active"):
            prog.run(data_region=region)

    def test_closed_region_rejected(self):
        prog = acc.compile(SCALE, **GEOM)
        with DataRegion(copy={"a": np.ones(8, np.float32)}) as region:
            pass
        with pytest.raises(RuntimeDataError, match="not active"):
            prog.run(data_region=region)

    def test_empty_region_rejected(self):
        with pytest.raises(RuntimeDataError):
            DataRegion()

    def test_duplicate_clause_rejected(self):
        a = np.ones(4, np.float32)
        with pytest.raises(RuntimeDataError):
            DataRegion(copy={"a": a}, copyin={"a": a})

    def test_reentry_rejected(self):
        region = DataRegion(copy={"a": np.ones(4, np.float32)})
        with region:
            pass
        with pytest.raises(RuntimeDataError):
            region.__enter__()
