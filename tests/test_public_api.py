"""Public-API surface tests: what a downstream user imports must exist,
be documented, and stay stable."""

import inspect

import pytest

import repro
from repro import acc


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy_exported(self):
        assert issubclass(repro.CompileError, repro.ReproError)
        assert issubclass(repro.SimulationError, repro.ReproError)


class TestAccSurface:
    def test_exports_exist(self):
        for name in acc.__all__:
            assert hasattr(acc, name), name

    def test_compile_signature(self):
        sig = inspect.signature(acc.compile)
        for param in ("compiler", "num_gangs", "num_workers",
                      "vector_length", "device", "array_dtypes"):
            assert param in sig.parameters, param

    def test_run_accepts_data_region_kwarg(self):
        sig = inspect.signature(acc.Program.run)
        assert "data_region" in sig.parameters
        assert "trace" in sig.parameters

    def test_profiles_enumerable(self):
        names = set(acc.PROFILES)
        assert {"openuh", "vendor-a", "vendor-b"} <= names


class TestDocstrings:
    """Every public module and API entry point carries documentation."""

    @pytest.mark.parametrize("modname", [
        "repro", "repro.acc", "repro.gpu", "repro.frontend", "repro.ir",
        "repro.codegen", "repro.testsuite", "repro.apps", "repro.bench",
        "repro.dtypes", "repro.errors",
        "repro.gpu.device", "repro.gpu.memory", "repro.gpu.kernelir",
        "repro.gpu.executor", "repro.gpu.costmodel",
        "repro.frontend.lexer", "repro.frontend.pragmas",
        "repro.frontend.cparser",
        "repro.ir.builder", "repro.ir.analysis", "repro.ir.autopar",
        "repro.ir.interp", "repro.ir.pprint",
        "repro.codegen.mapping", "repro.codegen.lowering",
        "repro.codegen.reduction.operators",
        "repro.codegen.reduction.logstep",
        "repro.acc.compiler", "repro.acc.runtime", "repro.acc.profiles",
        "repro.acc.dataregion", "repro.acc.openmp",
        "repro.acc.launchconfig",
        "repro.testsuite.cases", "repro.testsuite.verify",
        "repro.testsuite.runner",
        "repro.apps.heat2d", "repro.apps.matmul",
        "repro.apps.montecarlo_pi",
    ])
    def test_module_docstring(self, modname):
        import importlib
        mod = importlib.import_module(modname)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 30, modname

    @pytest.mark.parametrize("obj", [
        acc.compile, acc.Program, acc.Program.run, acc.DataRegion,
        acc.compile_omp, acc.RunResult,
    ])
    def test_api_docstrings(self, obj):
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20
