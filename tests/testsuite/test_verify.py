"""Testsuite verification: the Table 2 pass/fail pattern, at small scale.

These are the repository's most important integration tests: they assert
that the three compiler profiles reproduce the paper's Table 2 exactly —
OpenUH passes everything; the baselines fail precisely the cells the paper
reports.
"""

import numpy as np
import pytest

from repro.testsuite import POSITIONS, make_case, run_case, run_testsuite

SMALL = dict(size=384, num_gangs=6, num_workers=4, vector_length=32)


def result(position, op, ctype, compiler):
    case = make_case(position, op, ctype, size=SMALL["size"])
    return run_case(case, compiler, num_gangs=SMALL["num_gangs"],
                    num_workers=SMALL["num_workers"],
                    vector_length=SMALL["vector_length"])


class TestOpenUHPassesEverything:
    @pytest.mark.parametrize("position", POSITIONS)
    @pytest.mark.parametrize("op", ["+", "*"])
    def test_table2_grid_int(self, position, op):
        r = result(position, op, "int", "openuh")
        assert r.passed, r.detail

    @pytest.mark.parametrize("position", POSITIONS)
    def test_table2_grid_double(self, position):
        r = result(position, "+", "double", "openuh")
        assert r.passed, r.detail

    @pytest.mark.parametrize("op", ["max", "min", "&", "|", "^", "&&", "||"])
    def test_all_other_operators(self, op):
        # the paper: "our algorithms cover ... all reduction operator types"
        for position in ("vector", "worker", "gang",
                         "same line gang worker vector"):
            r = result(position, op, "int", "openuh")
            assert r.passed, f"{position} [{op}]: {r.detail}"

    def test_float_grid(self):
        for position in POSITIONS:
            r = result(position, "+", "float", "openuh")
            assert r.passed, f"{position}: {r.detail}"


class TestVendorBFailurePattern:
    """vendor-b models PGI 13.10's Table 2 column."""

    @pytest.mark.parametrize("position,op,expect", [
        ("gang", "+", "pass"),
        ("gang", "*", "pass"),
        ("worker", "+", "F"),
        ("worker", "*", "pass"),
        ("vector", "+", "F"),
        ("vector", "*", "pass"),
        ("gang worker", "+", "F"),
        ("gang worker", "*", "pass"),
        ("worker vector", "+", "pass"),
        ("worker vector", "*", "pass"),
        ("gang worker vector", "+", "CE"),
        ("gang worker vector", "*", "pass"),  # int passes in Table 2
        ("same line gang worker vector", "+", "pass"),
        ("same line gang worker vector", "*", "pass"),
    ])
    def test_int_column(self, position, op, expect):
        r = result(position, op, "int", "vendor-b")
        assert r.status == ("pass" if expect == "pass" else expect), r.detail

    def test_gwv_star_compile_error_on_float_and_double(self):
        # Table 2: PGI '*' on gang worker vector is CE for float/double
        assert result("gang worker vector", "*", "float",
                      "vendor-b").status == "CE"
        assert result("gang worker vector", "*", "double",
                      "vendor-b").status == "CE"

    def test_failures_are_wrong_values_not_crashes(self):
        r = result("vector", "+", "int", "vendor-b")
        assert r.status == "F"
        assert "expected" in r.detail  # executed and produced wrong numbers


class TestVendorAFailurePattern:
    """vendor-a models CAPS 3.4.0's Table 2 column: all the
    multi-level-different-loop '+' cases fail (no span inference on the
    '+' path), everything else passes."""

    @pytest.mark.parametrize("position,op,expect", [
        ("gang", "+", "pass"),
        ("worker", "+", "pass"),
        ("vector", "+", "pass"),
        ("gang worker", "+", "F"),
        ("gang worker", "*", "pass"),
        ("worker vector", "+", "F"),
        ("worker vector", "*", "pass"),
        ("gang worker vector", "+", "F"),
        ("gang worker vector", "*", "pass"),
        ("same line gang worker vector", "+", "pass"),
    ])
    def test_int_column(self, position, op, expect):
        r = result(position, op, "int", "vendor-a")
        assert r.status == ("pass" if expect == "pass" else expect), r.detail

    def test_annotating_every_level_fixes_vendor_a(self):
        # the paper: CAPS needs the reduction clause on every spanned level
        case = make_case("worker vector", "+", "int", size=SMALL["size"])
        fixed_src = case.source.replace(
            "#pragma acc loop vector",
            "#pragma acc loop vector reduction(+:j_sum)")
        from repro import acc
        prog = acc.compile(fixed_src, compiler="vendor-a",
                           num_gangs=6, num_workers=4, vector_length=32)
        rng = np.random.default_rng(42)
        inputs = case.make_inputs(rng)
        res = prog.run(**inputs)
        (kind, name, expect) = case.expected(inputs)[0]
        np.testing.assert_array_equal(res.outputs[name], expect)


class TestReportRendering:
    def test_report_table_shape(self):
        rep = run_testsuite(compilers=("openuh",), positions=("gang",),
                            ops=("+",), ctypes=("int",), size=128,
                            num_gangs=4, num_workers=2, vector_length=32)
        table = rep.to_table()
        assert "gang" in table and "openuh" in table
        assert "1/1 passed" in table

    def test_report_lookup_and_counts(self):
        rep = run_testsuite(compilers=("openuh", "vendor-b"),
                            positions=("vector",), ops=("+",),
                            ctypes=("int",), size=128, num_gangs=4,
                            num_workers=2, vector_length=32)
        assert rep.get("vector", "+", "int", "openuh").passed
        assert rep.get("vector", "+", "int", "vendor-b").status == "F"
        assert rep.pass_count("openuh") == 1
        assert rep.pass_count("vendor-b") == 0

    def test_progress_callback(self):
        seen = []
        run_testsuite(compilers=("openuh",), positions=("gang",),
                      ops=("+",), ctypes=("int",), size=128, num_gangs=4,
                      num_workers=2, vector_length=32,
                      progress=seen.append)
        assert len(seen) == 1
