"""Tests for the reduction-testsuite case generator."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import AnalysisError
from repro.testsuite.cases import (
    BENCH_SIZES, POSITIONS, ReductionCase, generate_cases, make_case,
)


class TestGeneration:
    def test_grid_size(self):
        cases = generate_cases()
        assert len(cases) == 7 * 2 * 3

    def test_all_positions_present(self):
        cases = generate_cases()
        assert {c.position for c in cases} == set(POSITIONS)

    def test_bench_sizes_cover_all_positions(self):
        assert set(BENCH_SIZES) == set(POSITIONS)

    def test_labels_match_table2_vocabulary(self):
        c = make_case("worker vector", "+", "double")
        assert c.label == "worker vector [+] double"
        assert c.dtype is DType.DOUBLE

    def test_bitwise_on_float_rejected(self):
        with pytest.raises(AnalysisError):
            make_case("gang", "&", "float")

    def test_sources_carry_single_clause_openuh_style(self):
        # RMP cases annotate ONE loop (the paper's §3.2.1 usability point)
        c = make_case("worker vector", "+", "int")
        assert c.source.count("reduction(") == 1

    def test_same_line_case_uses_one_loop(self):
        c = make_case("same line gang worker vector", "+", "int")
        assert c.source.count("for(") == 1
        assert "gang worker vector" in c.source

    def test_deterministic_inputs(self):
        c = make_case("gang", "+", "int", size=64)
        a = c.make_inputs(np.random.default_rng(1))
        b = c.make_inputs(np.random.default_rng(1))
        np.testing.assert_array_equal(a["input"], b["input"])

    def test_product_data_stays_finite(self):
        c = make_case("vector", "*", "float", size=4096)
        inp = c.make_inputs(np.random.default_rng(0))["input"]
        assert np.isfinite(inp.astype(np.float64).prod())

    @pytest.mark.parametrize("pos", POSITIONS)
    def test_dims_scale_with_size(self, pos):
        small = make_case(pos, "+", "int", size=256)
        big = make_case(pos, "+", "int", size=4096)
        assert int(np.prod(list(big.dims.values()))) > \
            int(np.prod(list(small.dims.values())))

    @pytest.mark.parametrize("op", ["+", "*", "max", "min", "&", "|", "^",
                                    "&&", "||"])
    def test_every_operator_generates(self, op):
        c = make_case("same line gang worker vector", op, "int", size=128)
        assert f"reduction({op}:" in c.source
