"""Property tests on the cost model's sanity: modeled time behaves like
time (monotone in work, decreasing in parallelism, additive in launches)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import acc

SUM_SRC = """
float a[n];
long s = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++)
    s += a[i];
"""


def kernel_ms(n, **geom):
    prog = acc.compile(SUM_SRC, **geom)
    return prog.run(a=np.ones(n, np.float32)).kernel_ms


class TestMonotonicity:
    @given(n1=st.integers(64, 2000), factor=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_more_work_never_costs_less(self, n1, factor):
        geom = dict(num_gangs=2, num_workers=2, vector_length=32)
        t1 = kernel_ms(n1, **geom)
        t2 = kernel_ms(n1 * factor, **geom)
        assert t2 >= t1 * 0.999

    def test_more_gangs_help_large_problems(self):
        # fixed work, more blocks -> more device concurrency, lower time
        few = kernel_ms(1 << 16, num_gangs=2, num_workers=2,
                        vector_length=64)
        many = kernel_ms(1 << 16, num_gangs=16, num_workers=2,
                         vector_length=64)
        assert many < few

    def test_transfers_scale_with_array_bytes(self):
        prog = acc.compile(SUM_SRC, num_gangs=2, num_workers=1,
                           vector_length=32)
        small = prog.run(a=np.ones(1 << 10, np.float32))
        big = prog.run(a=np.ones(1 << 16, np.float32))
        assert big.transfer_ms > small.transfer_ms

    def test_ledger_total_is_sum_of_entries(self):
        prog = acc.compile(SUM_SRC, num_gangs=2, num_workers=1,
                           vector_length=32)
        res = prog.run(a=np.ones(256, np.float32))
        assert res.modeled_us == pytest.approx(
            sum(t for _, t in res.ledger.entries))
        assert res.kernel_ms + res.transfer_ms == pytest.approx(
            res.modeled_ms)

    def test_every_kernel_appears_in_ledger(self):
        prog = acc.compile(SUM_SRC, num_gangs=2, num_workers=1,
                           vector_length=32)
        res = prog.run(a=np.ones(256, np.float32))
        kernel_labels = {lbl for lbl, _ in res.ledger.entries
                         if lbl.startswith("kernel:")}
        assert kernel_labels == {f"kernel:{k.name}"
                                 for k in prog.lowered.kernels}

    @given(seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_modeled_time_is_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random(512).astype(np.float32)
        # fresh programs -> identical modeled time for identical inputs
        t1 = acc.compile(SUM_SRC, num_gangs=2, num_workers=2,
                         vector_length=32).run(a=a).modeled_us
        t2 = acc.compile(SUM_SRC, num_gangs=2, num_workers=2,
                         vector_length=32).run(a=a).modeled_us
        assert t1 == t2


class TestStrategyCostOrderings:
    """The qualitative cost claims the paper makes, as properties."""

    def test_blocking_never_beats_window_on_streaming(self):
        n = 1 << 18
        geom = dict(num_gangs=8, num_workers=2, vector_length=64)
        w = acc.compile(SUM_SRC, **geom).run(
            a=np.ones(n, np.float32)).kernel_ms
        b = acc.compile(SUM_SRC, **geom, scheduling="blocking").run(
            a=np.ones(n, np.float32)).kernel_ms
        assert b >= w

    def test_sync_elision_never_hurts(self):
        src = """
        float a[NK][NI];
        float out[NK];
        #pragma acc parallel copyin(a) copyout(out)
        {
          #pragma acc loop gang
          for (k = 0; k < NK; k++) {
            float s = 0.0f;
            #pragma acc loop vector reduction(+:s)
            for (i = 0; i < NI; i++)
              s += a[k][i];
            out[k] = s;
          }
        }
        """
        a = np.ones((8, 512), np.float32)
        geom = dict(num_gangs=4, num_workers=2, vector_length=64)
        fast = acc.compile(src, **geom).run(
            a=a, out=np.zeros(8, np.float32)).kernel_ms
        slow = acc.compile(src, **geom, elide_warp_sync=False).run(
            a=a, out=np.zeros(8, np.float32)).kernel_ms
        assert slow >= fast
