"""Reflection-based merge contracts for the execution counters.

``KernelStats.merge`` and ``StmtCounters.merge`` discover their counter
fields by reflection, so a newly added counter cannot silently be
dropped; these tests enforce the same property from the outside — they
derive the expected behavior from ``dataclasses.fields`` too, so adding
a field with the wrong merge semantics (summed config, dropped counter)
fails here without the test needing to learn the field's name.
"""

from dataclasses import fields

from repro.gpu.events import AttributionTable, KernelStats, StmtCounters


def _filled(cls, start: int = 1):
    """An instance with every int field set to a distinct non-zero value."""
    obj = cls()
    for i, f in enumerate(fields(cls), start=start):
        if f.name in ("trace", "attribution"):
            continue
        setattr(obj, f.name, i)
    return obj


class TestKernelStatsMerge:
    def test_every_counter_field_is_summed(self):
        a, b = _filled(KernelStats, 1), _filled(KernelStats, 100)
        expect = {
            f.name: getattr(a, f.name)
            + (getattr(b, f.name)
               if f.name not in KernelStats.CONFIG_FIELDS else 0)
            for f in fields(KernelStats)
            if f.name not in ("trace", "attribution")
        }
        a.merge(b)
        for name, want in expect.items():
            assert getattr(a, name) == want, name

    def test_config_fields_describe_not_count(self):
        # blocks / threads_per_block / shared_bytes are launch shape, and
        # merging per-block stats must not multiply them
        a = KernelStats(blocks=4, threads_per_block=128, shared_bytes=512)
        b = KernelStats(blocks=4, threads_per_block=128, shared_bytes=512,
                        warp_inst_slots=7)
        a.merge(b)
        assert (a.blocks, a.threads_per_block, a.shared_bytes) == (4, 128,
                                                                   512)
        assert a.warp_inst_slots == 7

    def test_config_fields_exist(self):
        names = {f.name for f in fields(KernelStats)}
        assert KernelStats.CONFIG_FIELDS <= names

    def test_trace_extends_and_attribution_merges(self):
        a, b = KernelStats(), KernelStats()
        b.trace.append(object())
        b.attribution = AttributionTable()
        b.attribution.row(3).execs = 2
        a.merge(b)
        assert len(a.trace) == 1
        assert a.attribution is not None
        assert a.attribution.rows[3].execs == 2
        # merging again accumulates instead of replacing
        a.merge(b)
        assert a.attribution.rows[3].execs == 4

    def test_summary_names_every_counter_field(self):
        # the one-line summary must not silently omit a counter: every
        # non-structural field's value appears in the rendered text
        st = _filled(KernelStats, 1000)
        text = st.summary()
        for f in fields(KernelStats):
            if f.name in ("trace", "attribution"):
                continue
            assert str(getattr(st, f.name)) in text, f.name


class TestStmtCountersMerge:
    def test_every_field_is_summed(self):
        a, b = _filled(StmtCounters, 1), _filled(StmtCounters, 50)
        expect = {f.name: getattr(a, f.name) + getattr(b, f.name)
                  for f in fields(StmtCounters)}
        a.merge(b)
        assert a.as_dict() == expect

    def test_as_dict_covers_every_field(self):
        assert set(StmtCounters().as_dict()) == {
            f.name for f in fields(StmtCounters)}


class TestAttributionTable:
    def test_row_get_or_create(self):
        t = AttributionTable()
        r = t.row(5)
        assert t.row(5) is r
        assert set(t.rows) == {5}

    def test_merge_unions_rows(self):
        a, b = AttributionTable(), AttributionTable()
        a.row(1).execs = 1
        b.row(1).execs = 2
        b.row(9).lanes = 3
        a.merge(b)
        assert a.rows[1].execs == 3
        assert a.rows[9].lanes == 3

    def test_equality_is_by_content(self):
        a, b = AttributionTable(), AttributionTable()
        a.row(2).execs = 1
        b.row(2).execs = 1
        assert a == b
        b.row(2).execs = 2
        assert a != b
