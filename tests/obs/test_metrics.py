"""Metrics-registry behavior: instruments, reuse, snapshots."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("launches")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_monotonic(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_streaming_summary(self):
        h = MetricsRegistry().histogram("kernel_us")
        for v in (10.0, 30.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 60.0
        assert h.mean == 20.0
        assert h.min == 10.0
        assert h.max == 30.0

    def test_empty_mean(self):
        assert MetricsRegistry().histogram("empty").mean == 0.0


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        d = reg.to_dict()
        assert d["counters"] == {"n": 2.0}
        assert d["gauges"] == {"g": 1.5}
        assert d["histograms"]["h"]["count"] == 1
        assert d["histograms"]["h"]["mean"] == 4.0

    def test_format_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(7)
        reg.histogram("lat").observe(2.0)
        text = reg.format()
        assert "hits" in text and "7" in text
        assert "lat" in text and "n=1" in text
