"""Metrics-registry behavior: instruments, reuse, snapshots."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("launches")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_monotonic(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_streaming_summary(self):
        h = MetricsRegistry().histogram("kernel_us")
        for v in (10.0, 30.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 60.0
        assert h.mean == 20.0
        assert h.min == 10.0
        assert h.max == 30.0

    def test_empty_mean(self):
        assert MetricsRegistry().histogram("empty").mean == 0.0


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        d = reg.to_dict()
        assert d["counters"] == {"n": 2.0}
        assert d["gauges"] == {"g": 1.5}
        assert d["histograms"]["h"]["count"] == 1
        assert d["histograms"]["h"]["mean"] == 4.0

    def test_format_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(7)
        reg.histogram("lat").observe(2.0)
        text = reg.format()
        assert "hits" in text and "7" in text
        assert "lat" in text and "n=1" in text


class TestInstrumentAliases:
    """The ``serve.latency.*`` namespacing migration: the old flat
    ``serve.latency_us`` name must keep resolving — reads and writes —
    to the canonical namespaced instrument, not fork a second one."""

    def test_legacy_name_resolves_to_namespaced_histogram(self):
        reg = MetricsRegistry()
        legacy = reg.histogram("serve.latency_us")
        canonical = reg.histogram("serve.latency.all_us")
        assert legacy is canonical
        legacy.observe(10.0)
        canonical.observe(30.0)
        assert canonical.count == 2
        # the snapshot carries only the canonical name
        d = reg.to_dict()
        assert "serve.latency.all_us" in d["histograms"]
        assert "serve.latency_us" not in d["histograms"]

    def test_alias_applies_to_every_instrument_kind(self):
        reg = MetricsRegistry()
        assert reg.counter("serve.latency_us") \
            is reg.counter("serve.latency.all_us")
        assert reg.gauge("serve.latency_us") \
            is reg.gauge("serve.latency.all_us")


class TestConcurrency:
    """The registry is shared by every emitter of a run: counts must be
    exact under concurrent increments, not approximately right."""

    def test_concurrent_counter_increments_are_exact(self):
        import threading
        reg = MetricsRegistry()
        c = reg.counter("launches")
        n_threads, n_incs = 8, 2000

        def work():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs

    def test_concurrent_create_on_first_use_yields_one_instrument(self):
        import threading
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            seen.append(reg.counter("shared"))
            reg.counter("shared").inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
        assert reg.counter("shared").value == 8

    def test_concurrent_histogram_totals_are_exact(self):
        import threading
        reg = MetricsRegistry()
        h = reg.histogram("kernel_us")

        def work():
            for _ in range(1000):
                h.observe(2.0)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 6000
        assert h.total == 12000.0


class TestReset:
    def test_reset_drops_all_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(2.0)
        reg.reset()
        assert reg.to_dict() == {"counters": {}, "gauges": {},
                                 "histograms": {}}
        # create-on-first-use starts fresh after a reset
        assert reg.counter("a").value == 0

    def test_reset_isolates_program_runs(self):
        """One profiler across two runs, reset between: the second run's
        metrics carry no residue of the first (per-run isolation), and
        the timeline sees the runs as disjoint event sets via drain()."""
        import numpy as np

        from repro import acc
        from repro.obs import Profiler
        from repro.obs import timeline

        src = '''float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
'''
        prog = acc.compile(src, num_gangs=4, num_workers=1,
                           vector_length=32)
        a = np.ones(256, dtype=np.float32)
        profiler = Profiler()
        timeline.uninstall()
        with timeline.enabled() as tl:
            prog.run(profiler=profiler, a=a)
            first_launches = profiler.metrics.counter(
                "profiler.kernel_launches").value
            first_events = tl.drain()
            profiler.metrics.reset()
            prog.run(profiler=profiler, a=a)
            second_events = tl.drain()
        assert first_launches > 0
        assert (profiler.metrics.counter("profiler.kernel_launches").value
                == first_launches)
        assert not {e.seq for e in first_events} & \
            {e.seq for e in second_events}
