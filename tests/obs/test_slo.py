"""SLO accounting: the shared quantile helper, fixed-bin latency
histograms, and error-budget burn."""

import pytest

from repro.obs.slo import (LATENCY_BIN_EDGES, LatencyHistogram, SLOConfig,
                           SLOMonitor, format_slo, quantile)


class TestQuantile:
    """The single shared nearest-rank helper (satellite of the serve
    layer's p50/p95/p99 reporting) — exact on small samples."""

    def test_empty_is_zero(self):
        assert quantile([], 0.5) == 0.0

    def test_single_sample_is_that_sample(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert quantile([42.0], q) == 42.0

    def test_exact_on_small_samples(self):
        vals = [30.0, 10.0, 20.0, 40.0]  # order must not matter
        assert quantile(vals, 0.0) == 10.0
        assert quantile(vals, 1.0) == 40.0
        assert quantile(vals, 0.5) == 30.0  # round(0.5*3)=2 -> s[2]
        assert quantile(vals, 0.25) == 20.0

    def test_nearest_rank_median_odd(self):
        assert quantile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_returns_an_observed_value(self):
        # nearest-rank never interpolates: the answer is a sample
        vals = [1.0, 2.0, 4.0, 8.0, 16.0]
        for q in (0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99):
            assert quantile(vals, q) in vals

    def test_scheduler_reexports_the_same_function(self):
        # the serve layer must share this helper, not fork its own
        from repro.serve import scheduler
        assert scheduler.quantile is quantile


class TestLatencyHistogram:
    def test_edges_are_fixed_and_monotonic(self):
        assert LATENCY_BIN_EDGES[0] == 1.0
        assert LATENCY_BIN_EDGES[-1] == 1e8
        assert list(LATENCY_BIN_EDGES) == sorted(LATENCY_BIN_EDGES)
        assert len(set(LATENCY_BIN_EDGES)) == len(LATENCY_BIN_EDGES)

    def test_deterministic_snapshot(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (3.0, 250.0, 99_000.0, 3.0):
            a.observe(v)
        for v in (250.0, 3.0, 3.0, 99_000.0):  # order must not matter
            b.observe(v)
        assert a.to_dict() == b.to_dict()
        assert a.counts == b.counts

    def test_percentile_is_upper_edge_conservative(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.observe(500.0)
        p = h.percentile(0.99)
        # the reported value is a bin edge at or above every sample
        assert p in LATENCY_BIN_EDGES
        assert p >= 500.0

    def test_overflow_bin(self):
        h = LatencyHistogram()
        h.observe(5e9)  # above the last edge
        assert h.count == 1
        assert h.counts[-1] == 1
        assert h.percentile(0.99) == LATENCY_BIN_EDGES[-1]
        assert h.max_us == 5e9

    def test_empty_percentile(self):
        assert LatencyHistogram().percentile(0.5) == 0.0


class TestSLOMonitor:
    def test_good_requires_ok_and_under_objective(self):
        mon = SLOMonitor(SLOConfig(objective_ms=1.0, target=0.9))
        mon.record(1, 500.0, ok=True)     # fast + ok        -> good
        mon.record(1, 5_000.0, ok=True)   # slow success     -> bad
        mon.record(1, 500.0, ok=False)    # fast failure     -> bad
        assert (mon.good, mon.bad) == (1, 2)

    def test_burn_rate_semantics(self):
        mon = SLOMonitor(SLOConfig(objective_ms=1.0, target=0.9))
        # 10% budget; 1 bad in 10 -> burning exactly at budget
        for _ in range(9):
            mon.record(0, 100.0, ok=True)
        mon.record(0, 100.0, ok=False)
        assert mon.violation_rate() == pytest.approx(0.1)
        assert mon.burn_rate() == pytest.approx(1.0)
        assert mon.budget_remaining() == pytest.approx(0.0)

    def test_zero_bad_means_zero_burn(self):
        mon = SLOMonitor(SLOConfig(objective_ms=1000.0, target=0.99))
        for _ in range(5):
            mon.record(0, 10.0, ok=True)
        assert mon.burn_rate() == 0.0
        assert mon.budget_remaining() == 1.0

    def test_snapshot_per_priority(self):
        mon = SLOMonitor(SLOConfig(objective_ms=1000.0, target=0.99))
        mon.record(0, 10.0)
        mon.record(0, 30.0)
        mon.record(2, 500.0)
        snap = mon.snapshot()
        assert snap["total"] == 3 and snap["bad"] == 0
        assert set(snap["priorities"]) == {"p0", "p2"}
        assert snap["priorities"]["p0"]["count"] == 2
        assert snap["priorities"]["p0"]["rolling_p50_us"] in (10.0, 30.0)
        assert snap["priorities"]["p2"]["histogram"]["count"] == 1

    def test_format_slo_renders(self):
        mon = SLOMonitor()
        mon.record(1, 42.0)
        text = format_slo(mon.snapshot())
        assert "SLO: 99.00% within 1000 ms" in text
        assert "burn rate: 0.00x" in text
        assert "p1: n=1" in text
