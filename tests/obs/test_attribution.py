"""Statement-level attribution: executor parity, accounting invariants,
time apportionment, roofline verdicts, and the zero-overhead contract.

The load-bearing pins:

* both executors fill bit-identical per-statement tables over the full
  reduction testsuite grid (the same grid the kernel-level differential
  suite sweeps), with and without an armed fault injector;
* per-column row sums reproduce the kernel-level counters exactly —
  attribution is a decomposition, not a second estimate;
* apportioned statement times sum to the launch's modeled total within
  one ulp;
* roofline verdicts match the paper's claims (strided gang loads are
  memory-bound, shared-memory trees sync/shared-bound, contended
  atomics atomic-bound);
* with the knob off (the default) nothing is allocated and results are
  bitwise unchanged when it is on — a pure observer.
"""

import math

import numpy as np
import pytest

from repro import acc, obs
from repro.dtypes import DType
from repro.faults import FaultInjector, FaultPlan
from repro.gpu import GlobalMemory, K20C, launch
from repro.gpu.costmodel import LAUNCH_SID, CostModel
from repro.gpu.events import KernelStats
from repro.gpu.kernelir import (
    Assign, AtomicUpdate, Bin, GLoad, Kernel, Reg, Special, const_int,
    stamp_sids,
)
from repro.obs.roofline import classify
from repro.testsuite.cases import POSITIONS, generate_cases, make_case

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)

#: attribution column → the kernel-level counter its row sum must equal
COLSUMS = {
    "warp_slots": "warp_inst_slots",
    "global_transactions": "global_transactions",
    "l2_transactions": "l2_transactions",
    "global_bytes": "global_bytes",
    "dram_bytes": "dram_bytes",
    "shared_accesses": "shared_accesses",
    "bank_conflict_extra": "bank_conflict_extra",
    "barrier_arrivals": "barriers",
    "divergence_splits": "divergent_branches",
}

CASES = generate_cases(positions=POSITIONS, ops=("+", "*", "max", "min"),
                       ctypes=("int", "float"), size=160)


def run_attr(case, mode, faults=None, **compile_overrides):
    prog = acc.compile(case.source, **GEOM, **compile_overrides)
    inputs = case.make_inputs(np.random.default_rng(42))
    res = prog.run(executor_mode=mode, faults=faults, attribution=True,
                   **inputs)
    return prog, res


def assert_colsums(stats: KernelStats) -> None:
    rows = stats.attribution.rows.values()
    for col, counter in COLSUMS.items():
        assert (sum(getattr(r, col) for r in rows)
                == getattr(stats, counter)), col


class TestGridDifferential:
    """Full-grid pin: per-statement tables are bit-identical between the
    reference and batched executors, and each table is an exact
    decomposition of its kernel-level counters."""

    @pytest.mark.parametrize(
        "case", CASES, ids=[c.label.replace(" ", "_") for c in CASES])
    def test_tables_identical_and_sum_to_kernel_counters(self, case):
        tables = {}
        for mode in ("batched", "reference"):
            _, res = run_attr(case, mode)
            tables[mode] = {}
            for name, st in res.kernel_stats.items():
                assert st.attribution is not None, (mode, name)
                assert st.attribution.rows, (mode, name)
                assert_colsums(st)
                tables[mode][name] = st.attribution.as_dict()
        assert tables["batched"] == tables["reference"]


class TestFaultedAttribution:
    PLAN = FaultPlan(seed=1234, p_gload_flip=0.05, p_sload_flip=0.05,
                     max_faults=None)

    @pytest.mark.parametrize("position", ["gang", "worker vector"])
    def test_armed_runs_attribute_faults_identically(self, position):
        case = make_case(position, "+", "float", size=160)
        tables, fault_totals = {}, {}
        for mode in ("batched", "reference"):
            inj = FaultInjector(self.PLAN)
            _, res = run_attr(case, mode, faults=inj)
            tables[mode] = {n: st.attribution.as_dict()
                            for n, st in res.kernel_stats.items()}
            fault_totals[mode] = sum(
                r.fault_events for st in res.kernel_stats.values()
                for r in st.attribution.rows.values())
            assert fault_totals[mode] == len(inj.records)
        assert fault_totals["batched"] > 0, "plan injected nothing"
        assert tables["batched"] == tables["reference"]


class TestTimeApportionment:
    @pytest.mark.parametrize("position",
                             ["gang", "worker vector",
                              "gang worker vector"])
    def test_stmt_times_sum_to_kernel_total(self, position):
        case = make_case(position, "+", "float", size=640)
        prog, res = run_attr(case, "batched")
        cm = CostModel(prog.device)
        for name, st in res.kernel_stats.items():
            times = cm.stmt_times(st)
            total = cm.kernel_time(st).total_us
            assert abs(sum(times.values()) - total) <= math.ulp(total), name
            assert LAUNCH_SID in times
            assert times[LAUNCH_SID] > 0.0
            assert all(us >= 0.0 for us in times.values()), name

    def test_stmt_times_requires_attribution(self):
        with pytest.raises(ValueError):
            CostModel(K20C).stmt_times(KernelStats())


class TestRooflineVerdicts:
    """The paper's bottleneck claims, reproduced as verdicts."""

    def _roofline(self, res, prog, kernel_name):
        st = res.kernel_stats[kernel_name]
        ir = prog._compiled[kernel_name].kernel
        return classify(st, CostModel(prog.device).kernel_time(st),
                        prog.device, kernel=ir)

    def test_gang_strided_loads_are_memory_bound(self):
        # blocking scheduling gives each thread a contiguous chunk, so a
        # warp's lanes touch strides of segments per access (§3.1.3)
        case = make_case("gang", "+", "float", size=4096)
        prog, res = run_attr(case, "batched", scheduling="blocking")
        roof = self._roofline(res, prog, "acc_region_main")
        assert roof.verdict == "memory-bound"
        assert roof.dominant_text is not None
        assert "global" in roof.dominant_text

    def test_shared_tree_finish_kernel_is_sync_or_shared_bound(self):
        case = make_case("gang worker vector", "+", "float", size=640)
        # needs the separate finish kernel: compile without fusion
        prog, res = run_attr(case, "batched", pipeline="minimal")
        (finish,) = [n for n in res.kernel_stats if "finish" in n]
        roof = self._roofline(res, prog, finish)
        assert roof.verdict in ("sync-bound", "shared-bound")
        tree = (roof.category_us.get("sync", 0.0)
                + roof.category_us.get("shared", 0.0))
        assert tree >= max(roof.category_us.get("memory", 0.0),
                           roof.category_us.get("compute", 0.0))

    def test_contended_atomics_are_atomic_bound(self):
        # every lane of every warp hammers out[0]: atomics do not
        # coalesce, so each access serializes into per-lane transactions
        k = stamp_sids(Kernel("atomic_storm", (
            Assign("v", const_int(1)),
            AtomicUpdate("out", const_int(0), "+", Reg("v")),
            AtomicUpdate("out", const_int(0), "+", Reg("v")),
        ), buffers=("out",)))
        g = GlobalMemory(K20C)
        g.alloc("out", 1, DType.INT)
        rep = launch(k, g, grid_dim=4, block_dim=(32, 2),
                     attribution=True)
        roof = classify(rep.stats, rep.timing, K20C, kernel=k)
        assert roof.verdict == "atomic-bound"
        assert roof.category_us["atomic"] == max(roof.category_us.values())
        assert roof.dominant_sid is not None
        assert rep.stats.attribution.rows[roof.dominant_sid].atomic_rounds \
            > 0
        assert int(g["out"].data[0]) == 2 * 4 * 64  # and it still computes

    def test_coalesced_streaming_loads_are_memory_bound(self):
        idx = Bin("+", Bin("*", Special("bx"), Special("ntid")),
                  Special("tid"))
        k = stamp_sids(Kernel("stream", (
            GLoad("x", "a", idx),
            Assign("y", Bin("+", Reg("x"), Reg("x"))),
        ), buffers=("a",)))
        g = GlobalMemory(K20C)
        g.alloc("a", 4096, DType.FLOAT)
        rep = launch(k, g, grid_dim=32, block_dim=(128, 1),
                     attribution=True)
        roof = classify(rep.stats, rep.timing, K20C, kernel=k)
        assert roof.verdict == "memory-bound"

    def test_compute_only_kernel_is_latency_bound(self):
        k = stamp_sids(Kernel("spin", tuple(
            Assign("x", const_int(i)) for i in range(8)
        )))
        g = GlobalMemory(K20C)
        rep = launch(k, g, grid_dim=2, block_dim=(32, 1),
                     attribution=True)
        roof = classify(rep.stats, rep.timing, K20C, kernel=k)
        assert roof.verdict == "latency-bound"

    def test_classify_without_attribution_still_gives_a_verdict(self):
        case = make_case("gang", "+", "float", size=4096)
        prog = acc.compile(case.source, **GEOM)
        res = prog.run(**case.make_inputs(np.random.default_rng(42)))
        st = res.kernel_stats["acc_region_main"]
        roof = classify(st, CostModel(prog.device).kernel_time(st),
                        prog.device)
        assert roof.verdict == "memory-bound"
        assert roof.dominant_sid is None


class TestZeroOverhead:
    """Attribution is opt-in and a pure observer."""

    def test_default_runs_allocate_no_tables(self):
        case = make_case("gang worker vector", "+", "float", size=160)
        prog = acc.compile(case.source, **GEOM)
        res = prog.run(**case.make_inputs(np.random.default_rng(42)))
        assert all(st.attribution is None
                   for st in res.kernel_stats.values())
        g = GlobalMemory(K20C)
        g.alloc("out", 64, DType.INT)
        k = Kernel("ids", (Assign("x", Special("tid")),))
        assert launch(k, g, grid_dim=1,
                      block_dim=(32, 1)).stats.attribution is None

    def test_attribution_is_a_pure_observer(self):
        case = make_case("gang worker vector", "+", "float", size=160)
        inputs = case.make_inputs(np.random.default_rng(42))
        prog = acc.compile(case.source, **GEOM)
        plain = prog.run(**inputs)
        attributed = prog.run(attribution=True, **inputs)
        for var in plain.scalars:
            assert (np.asarray(plain.scalars[var]).tobytes()
                    == np.asarray(attributed.scalars[var]).tobytes())
        assert plain.ledger.entries == attributed.ledger.entries
        for name, st in plain.kernel_stats.items():
            st2 = attributed.kernel_stats[name]
            assert st.global_transactions == st2.global_transactions
            assert st.warp_inst_slots == st2.warp_inst_slots


class TestRenderings:
    def _attributed_profile(self):
        case = make_case("gang worker vector", "+", "float", size=640)
        prof = obs.Profiler()
        prog = acc.compile(case.source, **GEOM, profiler=prof)
        res = prog.run(profiler=prof, attribution=True,
                       **case.make_inputs(np.random.default_rng(42)))
        return prof, prog, res

    def test_annotated_listing_lines_up_with_the_dump(self):
        from repro.gpu.kernelir import dump_with_sids
        prof, prog, _ = self._attributed_profile()
        rec = prof.kernels[0]
        text = obs.annotate_record(rec)
        lines, sid_lines = dump_with_sids(rec.kernel)
        body = text.splitlines()[3:]  # 2 header comments + column header
        assert len(body) == len(lines)
        # every executed statement line carries a percent gutter
        for sid, lineno in sid_lines.items():
            if sid in rec.stats.attribution.rows:
                assert "%" in body[lineno].split("|")[0]
        assert rec.name in text
        assert any(v in text for v in
                   ("memory-bound", "latency-bound", "sync-bound",
                    "shared-bound", "atomic-bound"))

    def test_attribution_rows_are_sorted_and_complete(self):
        prof, prog, _ = self._attributed_profile()
        rec = prof.kernels[0]
        rows = obs.record_rows(rec)
        times = [r["time_us"] for r in rows]
        assert times == sorted(times, reverse=True)
        assert abs(sum(r["time_share"] for r in rows) - 1.0) < 1e-9
        (launch_row,) = [r for r in rows if r["sid"] == LAUNCH_SID]
        assert launch_row["category"] == "launch"
        for r in rows:
            if r["sid"] != LAUNCH_SID:
                assert "counters" in r and "category" in r

    def test_format_profile_includes_annotated_section(self):
        prof, _, res = self._attributed_profile()
        report = obs.format_profile(prof, ledger=res.ledger)
        assert "Per-statement attribution" in report
        assert "%time" in report

    def test_counter_tracks_in_chrome_document(self):
        import json
        prof, _, res = self._attributed_profile()
        doc = json.loads(prof.to_json())
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in cs}
        assert any(n.endswith(".stmt_gtx") for n in names)
        assert any(n.endswith(".stmt_slots") for n in names)
        # the gtx counter series reproduce the attribution table
        main = res.kernel_stats["acc_region_main"]
        (gtx_ev,) = [e for e in cs
                     if e["name"] == "acc_region_main.stmt_gtx"]
        assert gtx_ev["args"] == {
            f"s{sid}": r.global_transactions
            for sid, r in main.attribution.rows.items()}

    def test_record_dict_carries_attribution_and_roofline(self):
        prof, _, _ = self._attributed_profile()
        doc = prof.kernels[0].to_dict()
        assert doc["attribution"]
        assert doc["roofline"]["verdict"]
        assert "dominant_sid" in doc["roofline"]
        # and a plain record omits both keys entirely
        case = make_case("gang", "+", "float", size=160)
        prof2 = obs.Profiler()
        prog2 = acc.compile(case.source, **GEOM)
        prog2.run(profiler=prof2,
                  **case.make_inputs(np.random.default_rng(42)))
        plain = prof2.kernels[0].to_dict()
        assert "attribution" not in plain and "roofline" not in plain
