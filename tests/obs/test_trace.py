"""Trace-recorder behavior and Chrome-trace export schema."""

import json

from repro.obs.trace import Span, TraceRecorder


class TestRecorder:
    def test_spans_lay_out_back_to_back(self):
        tr = TraceRecorder()
        a = tr.add("k1", "kernel", 10.0)
        b = tr.add("k2", "kernel", 5.0)
        assert a.start_us == 0.0 and a.dur_us == 10.0
        assert b.start_us == 10.0
        assert tr.now() == 15.0

    def test_tracks_have_independent_clocks(self):
        tr = TraceRecorder()
        tr.add("compile", "compile", 100.0, track="host")
        k = tr.add("kernel", "kernel", 7.0)
        assert k.start_us == 0.0
        assert tr.now("host") == 100.0
        assert tr.now("device") == 7.0

    def test_region_encloses_children(self):
        tr = TraceRecorder()
        with tr.region("run", "run") as parent:
            tr.add("h2d", "transfer", 3.0)
            tr.add("main", "kernel", 9.0)
        assert parent.start_us == 0.0
        assert parent.dur_us == 12.0
        # the parent span is recorded before its children
        assert tr.spans[0] is parent


class TestChromeExport:
    def _validate(self, doc: dict) -> list[dict]:
        """Minimal Chrome trace-event schema check; returns the X events."""
        assert isinstance(doc["traceEvents"], list)
        xs = []
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["name"], str) and ev["name"]
                assert ev["ts"] >= 0 and ev["dur"] >= 0
                assert isinstance(ev["args"], dict)
                xs.append(ev)
        return xs

    def test_document_shape(self):
        tr = TraceRecorder()
        tr.add("k", "kernel", 2.5, grid=4)
        doc = json.loads(tr.to_json())
        xs = self._validate(doc)
        assert len(xs) == 1
        assert xs[0]["name"] == "k"
        assert xs[0]["args"]["grid"] == 4
        # track-name metadata present for both tracks
        names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(names) == 2

    def test_device_and_host_get_distinct_tids(self):
        tr = TraceRecorder()
        tr.add("d", "kernel", 1.0)
        tr.add("h", "compile", 1.0, track="host")
        xs = self._validate(tr.to_chrome())
        assert xs[0]["tid"] != xs[1]["tid"]

    def test_span_round_trips_through_json(self):
        s = Span("n", "c", 1.25, 2.5, "device", {"k": 1})
        assert json.loads(json.dumps(s.to_chrome()))["dur"] == 2.5
