"""Trace-recorder behavior and Chrome-trace export schema."""

import json

import numpy as np

from repro.obs.trace import CounterSample, Span, TraceRecorder


class TestRecorder:
    def test_spans_lay_out_back_to_back(self):
        tr = TraceRecorder()
        a = tr.add("k1", "kernel", 10.0)
        b = tr.add("k2", "kernel", 5.0)
        assert a.start_us == 0.0 and a.dur_us == 10.0
        assert b.start_us == 10.0
        assert tr.now() == 15.0

    def test_tracks_have_independent_clocks(self):
        tr = TraceRecorder()
        tr.add("compile", "compile", 100.0, track="host")
        k = tr.add("kernel", "kernel", 7.0)
        assert k.start_us == 0.0
        assert tr.now("host") == 100.0
        assert tr.now("device") == 7.0

    def test_region_encloses_children(self):
        tr = TraceRecorder()
        with tr.region("run", "run") as parent:
            tr.add("h2d", "transfer", 3.0)
            tr.add("main", "kernel", 9.0)
        assert parent.start_us == 0.0
        assert parent.dur_us == 12.0
        # the parent span is recorded before its children
        assert tr.spans[0] is parent


class TestChromeExport:
    def _validate(self, doc: dict) -> list[dict]:
        """Minimal Chrome trace-event schema check; returns the X events."""
        assert isinstance(doc["traceEvents"], list)
        xs = []
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M", "C")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "C":
                assert isinstance(ev["name"], str) and ev["name"]
                assert ev["ts"] >= 0
                assert isinstance(ev["args"], dict)
            if ev["ph"] == "X":
                assert isinstance(ev["name"], str) and ev["name"]
                assert ev["ts"] >= 0 and ev["dur"] >= 0
                assert isinstance(ev["args"], dict)
                xs.append(ev)
        return xs

    def test_document_shape(self):
        tr = TraceRecorder()
        tr.add("k", "kernel", 2.5, grid=4)
        doc = json.loads(tr.to_json())
        xs = self._validate(doc)
        assert len(xs) == 1
        assert xs[0]["name"] == "k"
        assert xs[0]["args"]["grid"] == 4
        # track-name metadata present for both tracks
        names = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(names) == 2

    def test_device_and_host_get_distinct_tids(self):
        tr = TraceRecorder()
        tr.add("d", "kernel", 1.0)
        tr.add("h", "compile", 1.0, track="host")
        xs = self._validate(tr.to_chrome())
        assert xs[0]["tid"] != xs[1]["tid"]

    def test_span_round_trips_through_json(self):
        s = Span("n", "c", 1.25, 2.5, "device", {"k": 1})
        assert json.loads(json.dumps(s.to_chrome()))["dur"] == 2.5

    def test_counter_samples_export_as_C_events(self):
        tr = TraceRecorder()
        tr.add("k", "kernel", 4.0)
        c = tr.counter("k.stmt_gtx", {"s0": 12, "s3": 7})
        assert isinstance(c, CounterSample)
        assert c.ts_us == 4.0  # sampled at the track clock, after the span
        doc = json.loads(tr.to_json())
        self._validate(doc)
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(cs) == 1
        assert cs[0]["name"] == "k.stmt_gtx"
        assert cs[0]["ts"] == 4.0
        assert cs[0]["args"] == {"s0": 12, "s3": 7}


class TestProfiledRunNesting:
    """Span nesting of a real profiled run: the ``run`` region must
    enclose its transfer and kernel children on the device track, and
    compile phases must land on the host track."""

    SRC = """float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

    def _profiled_doc(self):
        from repro import acc, obs
        prof = obs.Profiler()
        prog = acc.compile(self.SRC, num_gangs=4, num_workers=2,
                           vector_length=32, profiler=prof)
        prog.run(profiler=prof,
                 a=(np.arange(256) % 7).astype(np.float32))
        return prof, json.loads(prof.to_json())

    def test_run_region_encloses_transfer_and_kernel_spans(self):
        prof, doc = self._profiled_doc()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_cat = {}
        for ev in xs:
            by_cat.setdefault(ev["cat"], []).append(ev)
        assert by_cat["run"], "no run region recorded"
        run = by_cat["run"][0]
        for cat in ("transfer", "kernel"):
            assert by_cat[cat], f"no {cat} spans recorded"
            for child in by_cat[cat]:
                assert child["tid"] == run["tid"]
                assert run["ts"] <= child["ts"]
                assert (child["ts"] + child["dur"]
                        <= run["ts"] + run["dur"] + 1e-6), child["name"]

    def test_compile_phases_nest_on_host_track(self):
        prof, doc = self._profiled_doc()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        hosts = [e for e in xs if e["cat"] == "compile"]
        devices = [e for e in xs if e["cat"] in ("kernel", "transfer")]
        assert hosts and devices
        assert {e["tid"] for e in hosts}.isdisjoint(
            {e["tid"] for e in devices})
        # host spans also lay out back-to-back (non-overlapping)
        hosts.sort(key=lambda e: e["ts"])
        for a, b in zip(hosts, hosts[1:]):
            assert a["ts"] + a["dur"] <= b["ts"] + 1e-6
