"""Request tracing: context stamping, assembly, critical path, tail
sampling, pruning, and the zero-field contract with tracing off."""

import pytest

from repro.obs import timeline, trace
from repro.obs.timeline import Timeline, Tracer

TRACE_KEYS = {"trace_id", "span_id", "parent_id"}


@pytest.fixture(autouse=True)
def _clean_slate():
    """No leaked bus or tracer across tests."""
    timeline.uninstall()
    timeline.uninstall_tracer()
    yield
    timeline.uninstall()
    timeline.uninstall_tracer()


def _traced_bus():
    """Install a fresh bus + deterministic tracer; returns the bus."""
    tl = timeline.install()
    timeline.install_tracer(Tracer())
    return tl


class TestStamping:
    def test_span_inert_without_tracer(self):
        tl = timeline.install()
        with trace.span("serve", "request:r0") as h:
            tl.counter("gpu", "inner")
        assert (h.trace_id, h.span_id, h.parent_id) == (None, None, None)
        assert all(not (TRACE_KEYS & set(e.attrs)) for e in tl.events())

    def test_span_inert_without_bus(self):
        timeline.install_tracer(Tracer())
        with trace.span("serve", "request:r0") as h:
            pass
        assert h.span_id is None

    def test_ambient_stamping_of_leaf_events(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            tl.counter("gpu", "cache", event="hit")
            tl.span("gpu", "kernel:k", 10.0)
        evs = tl.events()
        assert all(e.attrs["trace_id"] == "r0" for e in evs)
        # the leaf span got an auto-allocated id; the counter did not
        kinds = {e.kind: e for e in evs if e.category == "gpu"}
        assert "span_id" in kinds["span"].attrs
        assert "span_id" not in kinds["counter"].attrs
        # all leaves hang off the enclosing span
        req = [e for e in evs if e.name == "request:r0"][0]
        assert all(e.attrs["parent_id"] == req.attrs["span_id"]
                   for e in evs if e is not req)

    def test_no_stamping_outside_span(self):
        tl = _traced_bus()
        tl.counter("gpu", "cache", event="miss")
        assert not (TRACE_KEYS & set(tl.events()[0].attrs))

    def test_nested_spans_link_parent_child(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0") as outer:
            with trace.span("passes", "compile") as inner:
                pass
        assert inner.trace_id == "r0"
        assert inner.parent_id == outer.span_id

    def test_exception_annotates_and_reraises(self):
        tl = _traced_bus()
        with pytest.raises(ValueError):
            with trace.span("serve", "request:r0", trace_id="r0"):
                raise ValueError("boom")
        ev = tl.events()[0]
        assert ev.attrs["error"] == "ValueError"

    def test_attach_reestablishes_context_cross_thread(self):
        import threading
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            ids = trace.current_ids()

            def body():
                with trace.attach(*ids):
                    tl.counter("gpu", "from-thread")

            t = threading.Thread(target=body)
            t.start()
            t.join()
        ev = [e for e in tl.events() if e.name == "from-thread"][0]
        assert ev.attrs["trace_id"] == "r0"
        assert ev.attrs["parent_id"] == ids[1]

    def test_tracing_scope_restores_previous(self):
        outer = timeline.install_tracer(Tracer())
        with trace.tracing() as inner:
            assert timeline.tracer() is inner is not outer
        assert timeline.tracer() is outer


class TestAssembly:
    def _make_request(self, tl, rid):
        with trace.span("serve", f"request:{rid}", trace_id=rid):
            with trace.span("serve", "queue"):
                pass
            with trace.span("serve", "dispatch:dev0"):
                with trace.span("passes", "compile"):
                    pass
                tl.span("gpu", "kernel:k", 25.0)
                tl.decision("gpu", "executor-mode", mode="batched")

    def test_single_rooted_tree(self):
        tl = _traced_bus()
        self._make_request(tl, "r0")
        trees = trace.assemble(tl.events())
        assert set(trees) == {"r0"}
        tree = trees["r0"]
        assert len(tree.roots) == 1 and not tree.orphans
        root = tree.root
        assert root.name == "request:r0"
        names = {c.name for c in root.children}
        assert names == {"queue", "dispatch:dev0"}
        dispatch = [c for c in root.children
                    if c.name == "dispatch:dev0"][0]
        kids = {c.name for c in dispatch.children}
        assert kids == {"compile", "kernel:k"}
        # the decision rides on the dispatch span's events, not a child
        assert [ev["name"] for ev in dispatch.events] == ["executor-mode"]

    def test_assembly_is_order_independent(self):
        tl = _traced_bus()
        self._make_request(tl, "r0")
        evs = [e.to_dict() for e in tl.events()]
        fwd = trace.assemble(evs)["r0"]
        rev = trace.assemble(list(reversed(evs)))["r0"]
        assert trace.render_tree(fwd) == trace.render_tree(rev)

    def test_two_requests_two_trees(self):
        tl = _traced_bus()
        self._make_request(tl, "r0")
        self._make_request(tl, "r1")
        trees = trace.assemble(tl.events())
        assert set(trees) == {"r0", "r1"}
        assert all(len(t.roots) == 1 and not t.orphans
                   for t in trees.values())

    def test_missing_parent_is_an_orphan(self):
        tl = _traced_bus()
        tl.span("serve", "stray", 5.0, trace_id="rX", span_id=99,
                parent_id=42)
        tree = trace.assemble(tl.events())["rX"]
        assert not tree.roots and len(tree.orphans) == 1

    def test_events_without_trace_id_ignored(self):
        tl = _traced_bus()
        tl.counter("gpu", "untraced")
        assert trace.assemble(tl.events()) == {}


class TestCriticalPath:
    def test_descends_dominant_wall_chain_to_modeled_leaf(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            with trace.span("serve", "queue"):
                pass
            with trace.span("serve", "dispatch:dev0"):
                import time as _t
                _t.sleep(0.02)  # make dispatch dominate queue
                tl.span("gpu", "transfer:h2d:a", 5.0)
                tl.span("gpu", "kernel:k", 50.0)
        tree = trace.assemble(tl.events())["r0"]
        path = trace.critical_path(tree)
        names = [s["name"] for s in path]
        assert names == ["request:r0", "dispatch:dev0", "kernel:k"]
        assert path[-1]["modeled"] is True
        assert not path[0]["modeled"]

    def test_hedge_overlap_not_double_subtracted(self):
        # two children covering the same interval: self time subtracts
        # their union, not their sum
        root = trace.SpanNode("t", 1, None, "serve", "request:r",
                              ts_us=100.0, dur_us=100.0, attrs={})
        for sid in (2, 3):
            root.children.append(trace.SpanNode(
                "t", sid, 1, "serve", f"dispatch:dev{sid}",
                ts_us=90.0, dur_us=80.0, attrs={}))
        assert trace._self_us(root) == pytest.approx(20.0)

    def test_render_marks_modeled_and_abandoned(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            with trace.span("serve", "dispatch:dev1") as sp:
                sp.attrs["abandoned"] = True
            with trace.span("serve", "dispatch:dev0"):
                tl.span("gpu", "kernel:k", 30.0)
        text = trace.render_tree(trace.assemble(tl.events())["r0"])
        assert "[abandoned]" in text
        assert "~30.0us" in text
        assert "critical path:" in text

    def test_chrome_export_splits_clock_domains(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            tl.span("gpu", "kernel:k", 30.0)
        doc = trace.tree_to_chrome(trace.assemble(tl.events())["r0"])
        evs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        by_name = {e["name"]: e for e in evs}
        assert by_name["kernel:k"]["dur"] == 30.0
        assert by_name["kernel:k"]["tid"] \
            != by_name["request:r0"]["tid"]


class TestTailSampler:
    def test_keeps_slowest_k(self):
        s = trace.TailSampler(keep_slowest=2, sample_every=0,
                              keep_statuses=())
        assert s.offer("a", 10.0) == (True, [])
        assert s.offer("b", 30.0) == (True, [])
        keep, evicted = s.offer("c", 20.0)  # displaces a (10us)
        assert keep and evicted == ["a"]
        keep, evicted = s.offer("d", 5.0)   # too fast, not kept
        assert not keep and evicted == ["d"]
        assert s.kept_ids() == {"b", "c"}

    def test_keeps_every_nth_deterministically(self):
        s = trace.TailSampler(keep_slowest=0, sample_every=3,
                              keep_statuses=())
        verdicts = [s.offer(f"t{i}", 1.0)[0] for i in range(7)]
        assert verdicts == [True, False, False, True, False, False,
                            True]

    def test_keeps_error_statuses(self):
        s = trace.TailSampler(keep_slowest=1, sample_every=0,
                              keep_statuses=("error", "expired"))
        s.offer("slow", 100.0)
        keep, evicted = s.offer("err", 1.0, status="error")
        assert keep and evicted == []
        assert "err" in s.kept_ids()

    def test_status_kept_trace_survives_heap_eviction(self):
        s = trace.TailSampler(keep_slowest=1, sample_every=0,
                              keep_statuses=("error",))
        s.offer("e", 10.0, status="error")   # in heap AND status-kept
        keep, evicted = s.offer("big", 50.0)  # displaces e from heap
        assert keep and evicted == []         # but e must not be pruned
        assert s.kept_ids() == {"e", "big"}

    def test_stats(self):
        s = trace.TailSampler(keep_slowest=1, sample_every=0,
                              keep_statuses=())
        s.offer("a", 1.0)
        s.offer("b", 2.0)
        st = s.stats()
        assert st["offered"] == 2 and st["kept"] == 1
        assert st["pruned"] == 1


class TestPruning:
    def test_prune_trace_removes_and_suppresses(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            pass
        with trace.span("serve", "request:r1", trace_id="r1"):
            pass
        tl.prune_trace("r0")
        assert {e.attrs.get("trace_id") for e in tl.events()} == {"r1"}
        assert tl.pruned > 0
        # a late event of the pruned trace (abandoned hedge loser
        # finishing after the sampling verdict) is dropped, not orphaned
        before = len(tl.events())
        tl.span("serve", "dispatch:dev9", 1.0, trace_id="r0",
                span_id=999, parent_id=1)
        assert len(tl.events()) == before
        assert "r0" not in trace.assemble(tl.events())


class TestVerify:
    def _request_tree(self, tl, rid, kernel_us):
        with trace.span("serve", f"request:{rid}", trace_id=rid):
            tl.span("gpu", "kernel:k", kernel_us)
        # stamp the recorded latency like the scheduler's complete
        # decision does: as a child of the root span
        root_ev = [e for e in tl.events()
                   if e.name == f"request:{rid}"][0]
        tl.decision("serve", "complete", trace_id=rid,
                    parent_id=root_ev.attrs["span_id"],
                    latency_us=root_ev.dur_us)

    def test_clean_traces_pass(self):
        tl = _traced_bus()
        self._request_tree(tl, "r0", 10.0)
        self._request_tree(tl, "r1", 20.0)
        verdict = trace.verify_request_traces(
            trace.assemble(tl.events()))
        assert verdict["ok"], verdict["problems"]
        assert verdict["requests"] == 2
        assert verdict["slowest"]["latency_err"] <= 0.01

    def test_orphan_fails_the_gate(self):
        tl = _traced_bus()
        self._request_tree(tl, "r0", 10.0)
        tl.span("serve", "stray", 1.0, trace_id="r0", span_id=777,
                parent_id=555)
        verdict = trace.verify_request_traces(
            trace.assemble(tl.events()))
        assert not verdict["ok"]
        assert any("orphan" in p for p in verdict["problems"])

    def test_latency_mismatch_fails_the_gate(self):
        tl = _traced_bus()
        with trace.span("serve", "request:r0", trace_id="r0"):
            pass
        root_ev = [e for e in tl.events()
                   if e.name == "request:r0"][0]
        tl.decision("serve", "complete", trace_id="r0",
                    parent_id=root_ev.attrs["span_id"],
                    latency_us=root_ev.dur_us * 100 + 1000)
        verdict = trace.verify_request_traces(
            trace.assemble(tl.events()))
        assert not verdict["ok"]
        assert any("recorded latency" in p for p in verdict["problems"])

    def test_non_request_traces_not_gated(self):
        tl = _traced_bus()
        with trace.span("acc", "run:main", trace_id="t1"):
            pass
        verdict = trace.verify_request_traces(
            trace.assemble(tl.events()))
        assert verdict["ok"] and verdict["requests"] == 0
