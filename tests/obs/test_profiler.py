"""Profiler end-to-end: record correctness on a known vecsum reduction,
Chrome-trace output, and metrics accumulation across repeated launches."""

import json

import numpy as np
import pytest

from repro import acc
from repro.obs import Profiler, format_profile

VECSUM = """
float a[n];
long total = 0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
"""

N = 1024
GEOM = dict(num_gangs=2, num_workers=2, vector_length=32)


@pytest.fixture
def profiled_run():
    prof = Profiler()
    # the record pins below describe the paper-shape two-kernel plan;
    # the optimized pipeline fuses the finish kernel and retunes, which
    # tests/passes cover separately
    prog = acc.compile(VECSUM, profiler=prof, **GEOM, pipeline="minimal")
    res = prog.run(a=np.arange(N, dtype=np.float32), profiler=prof)
    return prof, prog, res


class TestKernelRecords:
    def test_one_record_per_launch(self, profiled_run):
        prof, prog, res = profiled_run
        assert [r.name for r in prof.kernels] == \
            ["acc_region_main", "acc_reduction_finish_total"]
        # the record holds the same stats object the run result reports
        for rec in prof.kernels:
            assert rec.stats is res.kernel_stats[rec.name]

    def test_main_kernel_exact_counts(self, profiled_run):
        """1024 float32 reads = 32 fully-coalesced 128B segments; 2 blocks
        x 64 threads write one 8-byte long partial each = 1024 B = 8 more
        segments.  The direct-RMP main kernel has no block reduction, so
        no barriers."""
        prof, _, _ = profiled_run
        main = prof.kernels_named("acc_region_main")[0]
        assert main.stats.global_transactions == 40
        assert main.stats.global_bytes == 1024 * 4 + 2 * 64 * 8
        assert main.stats.dram_bytes == 40 * 128
        assert main.stats.barriers == 0
        assert main.coalescing_efficiency == 1.0
        assert main.bank_conflict_degree == 1.0

    def test_finish_kernel_exact_counts(self, profiled_run):
        prof, _, _ = profiled_run
        fin = prof.kernels_named("acc_reduction_finish_total")[0]
        assert fin.grid_dim == 1
        assert fin.block_dim == (256, 1)
        assert fin.stats.barriers == 3  # 256-wide log-step, warp tail elided
        assert fin.stats.shared_accesses > 0

    def test_launch_config_and_strategy(self, profiled_run):
        prof, _, _ = profiled_run
        main = prof.kernels_named("acc_region_main")[0]
        assert main.grid_dim == 2
        assert main.block_dim == (32, 2)
        assert main.compiler == "openuh"
        assert main.strategy["scheduling"] == "window"
        assert main.strategy["gang_partial_style"] == "buffer"

    def test_occupancy(self, profiled_run):
        """64 threads = 2 warps/block; the 2-block grid leaves 2 resident
        blocks per SM -> 4 of 64 warp slots."""
        prof, _, _ = profiled_run
        main = prof.kernels_named("acc_region_main")[0]
        assert main.occupancy == pytest.approx(4 / 64)

    def test_timing_matches_ledger(self, profiled_run):
        prof, _, res = profiled_run
        kernel_us = {f"kernel:{r.name}": r.modeled_us for r in prof.kernels}
        assert kernel_us == pytest.approx(
            {k: v for k, v in res.ledger.by_label().items()
             if k.startswith("kernel:")})


class TestTraceOutput:
    def test_chrome_document(self, profiled_run):
        prof, _, _ = profiled_run
        doc = json.loads(prof.to_json())
        cats = {e.get("cat") for e in doc["traceEvents"]
                if e["ph"] == "X"}
        # compile phases + transfers + kernels + finalize + run envelope
        assert {"compile", "transfer", "kernel", "reduction",
                "run"} <= cats
        assert len(doc["kernels"]) == 2
        for k in doc["kernels"]:
            assert set(k["derived"]) == {
                "occupancy", "coalescing_efficiency",
                "bank_conflict_degree", "divergence_rate", "l2_hit_rate"}

    def test_finalize_span_encloses_finish_kernel(self, profiled_run):
        prof, _, _ = profiled_run
        spans = {s.name: s for s in prof.trace.spans}
        fin = spans["finalize:total"]
        kern = spans["acc_reduction_finish_total"]
        assert fin.start_us <= kern.start_us
        assert fin.start_us + fin.dur_us >= kern.start_us + kern.dur_us

    def test_structured_trace_consumed_when_enabled(self):
        prof = Profiler()
        prog = acc.compile(VECSUM, profiler=prof, **GEOM)
        prog.run(a=np.ones(N, dtype=np.float32), profiler=prof, trace=True)
        main = prof.kernels_named("acc_region_main")[0]
        assert len(main.stats.trace) > 0
        assert prof.metrics.counter("profiler.trace_events.gload").value > 0

    def test_no_structured_trace_by_default(self, profiled_run):
        prof, _, _ = profiled_run
        assert all(len(r.stats.trace) == 0 for r in prof.kernels)


class TestAccumulation:
    def test_metrics_accumulate_across_repeated_launches(self):
        prof = Profiler()
        prog = acc.compile(VECSUM, profiler=prof, **GEOM,
                           pipeline="minimal")
        a = np.ones(N, dtype=np.float32)
        for _ in range(3):
            prog.run(a=a, profiler=prof)
        m = prof.metrics
        assert m.counter("profiler.kernel_launches").value == 6
        assert m.counter("profiler.transfers").value == 6  # h2d:a + d2h result per run
        assert m.counter("profiler.h2d_bytes").value == 3 * N * 4
        assert m.histogram("profiler.kernel_us").count == 6
        assert len(prof.kernels) == 6
        # launch indices are session-global and strictly increasing
        assert [r.launch_index for r in prof.kernels] == list(range(6))

    def test_profiler_is_pure_observer(self):
        """Same program, with and without a profiler: identical results."""
        a = np.arange(N, dtype=np.float32)
        bare = acc.compile(VECSUM, **GEOM).run(a=a)
        prof = Profiler()
        seen = acc.compile(VECSUM, profiler=prof, **GEOM).run(
            a=a, profiler=prof)
        assert bare.scalars["total"] == seen.scalars["total"]
        assert bare.ledger.total_us == pytest.approx(seen.ledger.total_us)


class TestReport:
    def test_text_report_sections(self, profiled_run):
        prof, _, res = profiled_run
        text = format_profile(prof, ledger=res.ledger)
        assert "acc_region_main" in text
        assert "acc_reduction_finish_total" in text
        assert "occ" in text and "coal" in text
        assert "TOTAL" in text  # ledger section
        assert "profiler.kernel_launches" in text

    def test_empty_profiler_report(self):
        assert "no kernel launches" in format_profile(Profiler())
