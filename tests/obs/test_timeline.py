"""The telemetry bus: ring bound, sampling, isolation, emit-site wiring."""

import json

import numpy as np
import pytest

from repro import acc
from repro.obs import timeline
from repro.obs.timeline import Timeline

SRC = '''float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
'''


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    """Every test starts and ends with no process-wide bus installed."""
    timeline.uninstall()
    yield
    timeline.uninstall()


def run_once(**kw):
    prog = acc.compile(SRC, num_gangs=8, num_workers=2, vector_length=32)
    a = (np.arange(1 << 10) % 7).astype(np.float32)
    return prog.run(a=a, **kw)


class TestBus:
    def test_disabled_by_default(self):
        assert timeline.current() is None
        # the module-level helper is a no-op without a bus
        assert timeline.emit("gpu", "span", "x") is None

    def test_emit_and_query(self):
        tl = Timeline()
        tl.span("gpu", "kernel:k", 12.5, grid=4)
        tl.counter("gpu", "cache", event="hit")
        tl.decision("passes", "autotune:x", choice="two-step")
        assert tl.categories() == {"gpu": 2, "passes": 1}
        assert [e.kind for e in tl.events("gpu")] == ["span", "counter"]
        ev = tl.events("gpu", kind="span")[0]
        assert ev.name == "kernel:k" and ev.attrs["grid"] == 4
        assert ev.dur_us == 12.5

    def test_seq_and_ts_monotonic(self):
        tl = Timeline()
        for i in range(5):
            tl.counter("gpu", f"c{i}")
        evs = tl.events()
        assert [e.seq for e in evs] == sorted(e.seq for e in evs)
        assert all(a.ts_us <= b.ts_us for a, b in zip(evs, evs[1:]))

    def test_ring_buffer_bounds_memory(self):
        tl = Timeline(capacity=10)
        for i in range(25):
            tl.counter("gpu", f"c{i}")
        assert len(tl.events()) == 10
        assert tl.dropped == 15
        assert tl.emitted == 25
        # oldest dropped, newest kept
        assert tl.events()[-1].name == "c24"

    def test_per_category_sampling(self):
        tl = Timeline(sample={"gpu": 3})
        for i in range(9):
            tl.counter("gpu", f"g{i}")
            tl.counter("passes", f"p{i}")
        assert len(tl.events("gpu")) == 3  # every 3rd kept
        assert len(tl.events("passes")) == 9  # unsampled category: all
        assert tl.sampled_out == 6

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Timeline().emit("gpu", "bogus", "x")

    def test_timed_span_measures_wall(self):
        tl = Timeline()
        with tl.timed_span("gpu", "work", tag=1):
            pass
        ev = tl.events("gpu")[0]
        assert ev.kind == "span" and ev.dur_us >= 0.0
        assert ev.attrs["tag"] == 1

    def test_jsonl_roundtrip(self, tmp_path):
        tl = Timeline()
        tl.span("gpu", "kernel:k", 1.0, val=np.float32(2.5),
                n=np.int64(7))
        p = tmp_path / "tl.jsonl"
        tl.export_jsonl(str(p))
        docs = [json.loads(line) for line in p.read_text().splitlines()]
        # line 0 is the header record, then one line per event
        assert len(docs) == 2
        assert docs[0]["header"] == "repro.obs.timeline"
        # numpy scalars must coerce to plain JSON numbers
        assert docs[1]["attrs"]["val"] == 2.5
        assert docs[1]["attrs"]["n"] == 7

    def test_jsonl_header_roundtrip(self, tmp_path):
        tl = Timeline(capacity=4, sample={"gpu": 2})
        for i in range(10):
            tl.counter("gpu", f"c{i}")
        p = tmp_path / "tl.jsonl"
        tl.export_jsonl(str(p))
        header, events = timeline.read_jsonl(str(p))
        # the header carries enough to tell truncated from complete
        assert header["capacity"] == 4
        assert header["emitted"] == 10
        assert header["sampled_out"] == 5
        assert header["dropped"] == 1
        assert header["retained"] == len(events) == 4
        assert header["sample"] == {"gpu": 2}
        assert header["tracing"] is False
        assert all("category" in ev for ev in events)

    def test_read_jsonl_tolerates_headerless_export(self, tmp_path):
        p = tmp_path / "old.jsonl"
        p.write_text(json.dumps({"seq": 1, "ts_us": 0.0,
                                 "category": "gpu", "kind": "counter",
                                 "name": "c", "dur_us": 0.0,
                                 "attrs": {}}) + "\n")
        header, events = timeline.read_jsonl(str(p))
        assert header is None
        assert len(events) == 1 and events[0]["name"] == "c"

    def test_enabled_restores_previous_bus(self):
        outer = timeline.install()
        with timeline.enabled() as inner:
            assert timeline.current() is inner
            assert inner is not outer
        assert timeline.current() is outer

    def test_drain_isolates_runs(self):
        tl = Timeline()
        tl.counter("gpu", "first")
        first = tl.drain()
        tl.counter("gpu", "second")
        assert [e.name for e in first] == ["first"]
        assert [e.name for e in tl.events()] == ["second"]


class TestEmitSites:
    """The subsystems actually feed the bus — and only when installed."""

    def test_run_emits_nothing_without_bus(self):
        res = run_once()
        assert timeline.current() is None
        assert res.scalars["total"] is not None

    def test_compile_and_run_emit(self):
        with timeline.enabled() as tl:
            run_once()
        cats = tl.categories()
        assert cats.get("passes", 0) > 0 and cats.get("gpu", 0) > 0
        names = {e.name for e in tl.events("gpu")}
        assert any(n.startswith("kernel:") for n in names)
        assert any(n.startswith("transfer:h2d") for n in names)
        decisions = tl.events("gpu", kind="decision")
        assert any(e.name == "executor-mode" for e in decisions)
        spans = {e.name for e in tl.events("passes", kind="span")}
        assert any(n.startswith("pass:") for n in spans)

    def test_pure_observer(self):
        plain = run_once()
        with timeline.enabled():
            observed = run_once()
        assert (np.asarray(plain.scalars["total"]).tobytes()
                == np.asarray(observed.scalars["total"]).tobytes())
        assert plain.ledger.entries == observed.ledger.entries

    def test_no_cross_run_leakage_via_drain(self):
        with timeline.enabled() as tl:
            run_once()
            first = tl.drain()
            run_once()
            second = tl.drain()
        firsts = {e.seq for e in first}
        assert firsts and not firsts & {e.seq for e in second}

    def test_fault_events(self):
        from repro.faults import FaultPlan
        with timeline.enabled() as tl:
            inj = FaultPlan(p_gload_flip=1.0, seed=3,
                            max_faults=2).injector()
            run_once(faults=inj, max_attempts=3, runs=3, degrade=True)
        faults = tl.events("faults", kind="fault")
        assert len(faults) == len(inj.records) > 0
        assert all(e.attrs["fault_kind"] == "bitflip" for e in faults)

    def test_executor_fallback_decision(self):
        # the reference walker is an explicit request; the decision event
        # records requested vs effective mode
        with timeline.enabled() as tl:
            run_once(executor_mode="reference")
        dec = [e for e in tl.events("gpu", kind="decision")
               if e.name == "executor-mode"]
        assert dec and dec[0].attrs["mode"] == "reference"
