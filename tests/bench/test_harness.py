"""Bench-harness tests: series formatting and the CLI entry points."""

import pytest

from repro.bench.harness import Series, format_series, speedup_note


class TestSeries:
    def test_format_aligns_rows(self):
        a = Series("openuh", [("64", 1.5), ("128", 3.0)])
        b = Series("vendor-b", [("64", 2.5), ("128", "F")])
        text = format_series("demo", [a, b], xlabel="size")
        lines = text.splitlines()
        assert "demo" in lines[0]
        assert "openuh" in lines[2] and "vendor-b" in lines[2]
        assert any("1.500" in ln and "2.500" in ln for ln in lines)
        assert any("F" in ln for ln in lines)

    def test_missing_points_render_dash(self):
        a = Series("x", [("1", 1.0)])
        b = Series("y", [("2", 2.0)])
        text = format_series("t", [a, b])
        assert "-" in text

    def test_speedup_note(self):
        assert speedup_note(1.0, 2.0) == "2.00x slower"
        assert speedup_note(2.0, 1.0) == "2.00x faster"
        assert speedup_note(0.0, 1.0) == "n/a"


class TestCLIs:
    """Tiny end-to-end runs of each bench CLI (quick paths)."""

    def test_table2_quick(self, capsys):
        from repro.bench.table2 import main
        assert main(["--quick", "--ops", "+", "--ctypes", "int"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "openuh" in out

    def test_fig11_quick_single_position(self, capsys):
        from repro.bench.fig11 import main
        assert main(["--quick", "--positions", "vector"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11(c)" in out

    def test_fig12_quick_matmul_only(self, capsys):
        from repro.bench.fig12 import main
        assert main(["--quick", "--only", "b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12(b)" in out
        assert "F" in out  # vendor-b's missing bar

    def test_ablations_quick_subset(self, capsys):
        from repro.bench.ablations import main
        assert main(["--quick", "--only", "A4", "A8"]) == 0
        out = capsys.readouterr().out
        assert "A4" in out and "A8" in out

    def test_fig11_subfigure_letters(self):
        from repro.bench.fig11 import SUBFIGURES
        assert SUBFIGURES["gang"] == "a"
        assert SUBFIGURES["same line gang worker vector"] == "g"


class TestAblationRows:
    def test_every_ablation_has_quick_size(self):
        from repro.bench.ablations import ABLATIONS, _QUICK_SIZES
        assert set(_QUICK_SIZES) == set(ABLATIONS)

    def test_ablation_variants_verified_correct(self):
        # _measure raises if a variant produces a wrong result
        from repro.bench.ablations import run_ablation
        rows = run_ablation("A1", quick=True)
        assert len(rows) == 2
        assert all(r.kernel_ms > 0 for r in rows)


class TestProfileSinkTruncation:
    def test_write_truncated_stamps_document(self, tmp_path):
        import json

        from repro.bench.harness import ProfileSink

        sink = ProfileSink(str(tmp_path / "p.json"))
        with sink.profiler.phase("sweep"):
            pass
        path = sink.write({"bench": "t"},
                          truncated_by=RuntimeError("died mid-sweep"))
        doc = json.loads(open(path).read())
        assert doc["truncated"] is True
        assert doc["truncated_by"]["error"] == "RuntimeError"
        assert doc["bench"] == {"bench": "t"}
        assert doc["traceEvents"]  # the partial trace survived
