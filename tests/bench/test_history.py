"""The perf observatory: ledger, MAD bands, and the regression detector.

The load-bearing acceptance test is
:class:`TestDetectorSelfTest`: an artificially injected ~20% slowdown on
one config must be flagged as a regression while every unperturbed
config passes inside its noise band.
"""

import json

import pytest

from repro.bench import history as H
from repro.bench.history import LedgerEntry


def entry(config="cfg", pipeline="default", executor="batched",
          modeled=1.0, modeled_mad=0.0, wall=100.0, wall_mad=2.0,
          host="ci", sha="abc", source="measured", at=0.0):
    return LedgerEntry(sha=sha, recorded_at=at, host=host, config=config,
                       pipeline=pipeline, executor=executor, reps=3,
                       modeled_ms=modeled, modeled_mad_ms=modeled_mad,
                       wall_ms=wall, wall_mad_ms=wall_mad, source=source)


class TestStats:
    def test_median(self):
        assert H.median([3.0, 1.0, 2.0]) == 2.0
        assert H.median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            H.median([])

    def test_mad_is_robust_to_one_outlier(self):
        # one wild outlier barely moves the MAD (unlike a stddev)
        assert H.mad([10.0, 10.0, 10.0, 10.0, 1000.0]) == 0.0


class TestLedgerIO:
    def test_roundtrip_preserves_entries(self, tmp_path):
        p = str(tmp_path / "h.jsonl")
        first = [entry(config="a"), entry(config="b", wall=None,
                                          wall_mad=None)]
        H.append_entries(p, first)
        H.append_entries(p, [entry(config="a", modeled=2.0)])
        got = H.load_ledger(p)
        assert len(got) == 3
        assert got[0] == first[0]
        assert got[1].wall_ms is None
        # append order is preserved — the detector's chronology
        assert [e.config for e in got] == ["a", "b", "a"]

    def test_from_dict_ignores_unknown_fields(self):
        d = entry().to_dict()
        d["future_field"] = 42
        assert LedgerEntry.from_dict(d) == entry()


class TestDetector:
    def test_single_entry_is_skipped(self):
        v, = H.detect([entry()])
        assert v.status == "skipped"

    def test_within_band_is_ok(self):
        v, = H.detect([entry(modeled=1.0), entry(modeled=1.04)],
                      floor=0.05)
        assert v.status == "ok"

    def test_regression_beyond_floor(self):
        v, = H.detect([entry(modeled=1.0), entry(modeled=1.2)],
                      floor=0.05)
        assert v.status == "regression"
        assert v.delta_pct == pytest.approx(20.0)

    def test_improvement_is_not_a_regression(self):
        v, = H.detect([entry(modeled=1.0), entry(modeled=0.5)])
        assert v.status == "improvement"

    def test_mad_band_absorbs_wall_noise(self):
        # baseline wall 100 +/- MAD 4: k=3 band = 12 > 5% floor
        vs = H.detect([entry(wall=100.0, wall_mad=4.0),
                       entry(wall=110.0, wall_mad=4.0)],
                      metric="wall", k=3.0, floor=0.05)
        assert vs[0].status == "ok"
        vs = H.detect([entry(wall=100.0, wall_mad=4.0),
                       entry(wall=115.0, wall_mad=4.0)],
                      metric="wall", k=3.0, floor=0.05)
        assert vs[0].status == "regression"

    def test_wall_across_hosts_is_skipped_not_flagged(self):
        v, = H.detect([entry(host="laptop", wall=100.0),
                       entry(host="ci", wall=300.0)], metric="wall")
        assert v.status == "skipped"
        assert "host" in v.note

    def test_baseline_anchor_blocks_slow_drift(self):
        # three +4% steps: each vs previous is inside the 5% band, but
        # vs the first-entry anchor the cumulative drift is flagged
        drift = [entry(modeled=1.0), entry(modeled=1.04),
                 entry(modeled=1.08), entry(modeled=1.125)]
        v, = H.detect(drift, floor=0.05, against="previous")
        assert v.status == "ok"
        v, = H.detect(drift, floor=0.05, against="baseline")
        assert v.status == "regression"

    def test_imported_baseline_wins_as_anchor(self):
        entries = [entry(modeled=1.0),
                   entry(modeled=2.0, source="baseline-import"),
                   entry(modeled=2.05)]
        v, = H.detect(entries, floor=0.05)
        assert v.status == "ok"
        assert v.baseline == 2.0


class TestDetectorSelfTest:
    """The acceptance bar: a ~20% injected slowdown on ONE config is
    flagged; unperturbed configs pass within the MAD noise band."""

    def test_perturbed_config_flagged_others_pass(self):
        configs = ["a", "b", "c", "d"]
        base = [entry(config=c, modeled=1.0) for c in configs]
        cur = [entry(config=c, modeled=1.2 if c == "b" else 1.01)
               for c in configs]
        verdicts = H.detect(base + cur, floor=0.05)
        by_cfg = {v.config: v.status for v in verdicts}
        assert by_cfg == {"a": "ok", "b": "regression", "c": "ok",
                          "d": "ok"}

    def test_end_to_end_via_measure_perturb(self, tmp_path):
        """Record twice with the real measurement path (quick grid); the
        second run perturbs one config by 20%.  Only that config's rows
        regress — the deterministic modeled metric holds everything else
        bit-stable inside the band."""
        p = str(tmp_path / "hist.jsonl")
        H.append_entries(p, H.measure(reps=1, quick=True))
        H.append_entries(p, H.measure(
            reps=1, quick=True, perturb={"reduction_64gang": 1.2}))
        verdicts = H.detect(H.load_ledger(p), metric="modeled")
        regressed = {v.config for v in verdicts
                     if v.status == "regression"}
        assert regressed == {"reduction_64gang"}
        ok = [v for v in verdicts if v.config != "reduction_64gang"]
        assert ok and all(v.status == "ok" for v in ok)


class TestImportBaseline:
    def test_seeds_workloads_and_pass_grid(self, tmp_path):
        doc = {
            "reps": 2,
            "workloads": {"table2_quick": {
                "modeled_ms_total": 0.5, "batched_wall_s": 0.6,
                "reference_wall_s": 1.8, "speedup": 3.0,
                "modeled_identical": True}},
            "pass_pipeline": {"configs": [{
                "config": "gang [+] float", "minimal_ms": 0.04,
                "optimized_ms": 0.03, "bitwise_identical": True,
                "improvement": 0.25}]},
        }
        p = tmp_path / "base.json"
        p.write_text(json.dumps(doc))
        entries = H.import_baseline(str(p))
        keys = {e.key for e in entries}
        assert ("table2_quick", "default", "batched") in keys
        assert ("table2_quick", "default", "reference") in keys
        assert ("passes:gang [+] float", "minimal", "batched") in keys
        assert ("passes:gang [+] float", "optimized", "batched") in keys
        by_key = {e.key: e for e in entries}
        ref = by_key[("table2_quick", "default", "reference")]
        assert ref.wall_ms == pytest.approx(1800.0)
        assert ref.modeled_ms == 0.5
        assert all(e.source == "baseline-import" for e in entries)

    def test_committed_baseline_imports(self):
        # the real committed document must keep importing cleanly
        entries = H.import_baseline("BENCH_table2.json")
        assert len(entries) >= 4
        assert {e.executor for e in entries} >= {"batched", "reference",
                                                 "trace"}
        # the trace gate's per-row speedups land in the ledger too
        assert any(e.config.startswith("trace:") for e in entries)


class TestReports:
    def _ledger(self):
        return [entry(config="a", modeled=1.0, sha="s1"),
                entry(config="a", modeled=1.3, sha="s2"),
                entry(config="b", modeled=2.0, sha="s1"),
                entry(config="b", modeled=2.0, sha="s2")]

    def test_markdown_flags_regression_row(self):
        md = H.format_report(self._ledger())
        assert "**REGRESSION**" in md
        lines = [ln for ln in md.splitlines() if ln.startswith("| a ")]
        assert lines and "+30.0" in lines[0]

    def test_html_is_self_contained(self):
        html = H.render_html(self._ledger())
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "regression" in html
        # no external resources: the CI artifact must open offline
        assert "http://" not in html and "https://" not in html
