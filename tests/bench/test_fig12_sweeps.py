"""Direct tests of the Fig. 12 sweep helpers (tiny scales)."""

import pytest

from repro.bench.fig12 import heat_sweep, matmul_sweep, pi_sweep
from repro.bench.harness import Series


class TestHeatSweep:
    def test_vendor_a_reports_no_convergence(self):
        series = heat_sweep(sizes=(16,), compilers=("openuh", "vendor-a"),
                            tol=0.5, max_iters=40)
        by_label = {s.label: dict(s.points) for s in series}
        assert isinstance(by_label["openuh"]["16x16"], float)
        assert by_label["vendor-a"]["16x16"] == "no-convergence"

    def test_progress_callback_fires(self):
        seen = []
        heat_sweep(sizes=(16,), compilers=("openuh",), tol=0.5,
                   max_iters=40, progress=seen.append)
        assert len(seen) == 1 and "heat" in seen[0]


class TestMatmulSweep:
    def test_vendor_b_cell_is_failure(self):
        series = matmul_sweep(sizes=(8,), compilers=("openuh", "vendor-b"))
        by_label = {s.label: dict(s.points) for s in series}
        assert by_label["vendor-b"]["8x8"] == "F"
        assert isinstance(by_label["openuh"]["8x8"], float)


class TestPiSweep:
    def test_times_scale_with_samples(self):
        (s,) = pi_sweep(sizes=(1 << 12, 1 << 14), compilers=("openuh",))
        pts = dict(s.points)
        assert pts["16K"] > pts["4K"]

    def test_series_structure(self):
        series = pi_sweep(sizes=(1 << 12,), compilers=("openuh", "vendor-a"))
        assert [s.label for s in series] == ["openuh", "vendor-a"]
        assert all(isinstance(s, Series) for s in series)
