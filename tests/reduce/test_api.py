"""``repro.reduce`` library tests: specs, operators, pairs, segments."""

import numpy as np
import pytest

from repro import reduce as R
from repro.dtypes import DType
from repro.errors import AnalysisError
from repro.gpu import kernelir as K

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)
MODES = ("reference", "batched", "trace")


def rng():
    return np.random.default_rng(42)


class TestScalarReduce:
    def test_float_sum_matches_numpy(self):
        x = rng().standard_normal(777).astype(np.float32)
        got = R.reduce(x, **GEOM)
        np.testing.assert_allclose(got, x.sum(dtype=np.float64),
                                   rtol=1e-5)

    @pytest.mark.parametrize("op,ref", [
        ("max", np.max), ("min", np.min),
    ])
    def test_minmax_bit_exact(self, op, ref):
        x = rng().standard_normal(500).astype(np.float32)
        assert R.reduce(x, op, **GEOM) == ref(x)

    @pytest.mark.parametrize("op,ufunc", [
        ("&", np.bitwise_and), ("|", np.bitwise_or),
        ("^", np.bitwise_xor),
    ])
    def test_bitwise_int(self, op, ufunc):
        x = rng().integers(0, 1 << 30, 300).astype(np.int32)
        assert R.reduce(x, op, **GEOM) == ufunc.reduce(x)

    def test_init_folds_with_host_on_the_left(self):
        x = rng().integers(-50, 50, 200).astype(np.int64)
        assert R.reduce(x, "+", init=1000, **GEOM) == x.sum() + 1000

    def test_int_sum_wraps_like_c(self):
        x = np.full(64, np.iinfo(np.int32).max // 2, np.int32)
        with np.errstate(over="ignore"):
            expect = x.sum(dtype=np.int32)
        got = R.reduce(x, "+", **GEOM)
        assert got.dtype == np.int32
        assert got == expect

    @pytest.mark.parametrize("mode", MODES)
    def test_executor_modes_bit_identical(self, mode):
        x = rng().standard_normal(333).astype(np.float32)
        base = R.reduce(x, "+", **GEOM,
                        run_kwargs=dict(executor_mode="reference"))
        got = R.reduce(x, "+", **GEOM,
                       run_kwargs=dict(executor_mode=mode))
        assert got.tobytes() == base.tobytes()

    def test_dtype_mismatch_rejected(self):
        x = rng().standard_normal(10).astype(np.float64)
        with pytest.raises(AnalysisError, match="dtype"):
            R.reduce(x, R.ReductionSpec(op="+", dtype=DType.FLOAT),
                     **GEOM)


class TestTupleReduce:
    def test_mixed_operators_one_loop(self):
        x = rng().standard_normal(400).astype(np.float32)
        y = rng().integers(0, 1000, 400).astype(np.int32)
        s, mx = R.tuple_reduce(
            [x, y], [R.ReductionSpec("+"), R.ReductionSpec("max")],
            **GEOM)
        np.testing.assert_allclose(s, x.sum(dtype=np.float64), rtol=1e-5)
        assert mx == y.max()

    def test_scalar_and_pair_together(self):
        x = rng().standard_normal(256).astype(np.float32)
        (s, (v, i)) = R.tuple_reduce(
            [x, x], [R.ReductionSpec("+"),
                     R.ReductionSpec("max", kind="argmax")], **GEOM)
        assert v == x.max() and i == int(np.argmax(x))

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="length"):
            R.tuple_reduce([np.zeros(4, np.float32),
                            np.zeros(5, np.float32)], ["+", "+"], **GEOM)

    def test_source_shape(self):
        src = R.build_source(
            (R.ReductionSpec("+"), R.ReductionSpec("max", kind="argmax")),
            (DType.FLOAT, DType.FLOAT))
        assert "reduction(+:r0)" in src
        assert "reduction(argmax:r1,r1_i)" in src
        assert "gang worker vector" in src


class TestPairs:
    @pytest.mark.parametrize("mode", MODES)
    def test_argmax_matches_numpy(self, mode):
        x = rng().standard_normal(1000).astype(np.float32)
        v, i = R.argmax(x, **GEOM,
                        run_kwargs=dict(executor_mode=mode))
        assert v == x.max() and i == int(np.argmax(x))

    @pytest.mark.parametrize("mode", MODES)
    def test_argmin_matches_numpy(self, mode):
        x = rng().standard_normal(1000).astype(np.float32)
        v, i = R.argmin(x, **GEOM,
                        run_kwargs=dict(executor_mode=mode))
        assert v == x.min() and i == int(np.argmin(x))

    def test_duplicate_extremum_takes_first_index(self):
        x = np.zeros(300, np.float32)
        x[[37, 150, 250]] = 9.0
        _, i = R.argmax(x, **GEOM)
        assert i == 37

    def test_nan_never_wins(self):
        x = rng().standard_normal(128).astype(np.float32)
        x[[5, 60]] = np.nan
        v, i = R.argmax(x, **GEOM)
        finite = np.where(np.isfinite(x), x, -np.inf)
        assert v == finite.max() and i == int(np.argmax(finite))

    def test_pair_kind_requires_minmax_op(self):
        with pytest.raises(AnalysisError, match="value-index"):
            R.ReductionSpec("+", kind="argmax")


class TestSegmented:
    @pytest.mark.parametrize("mode", MODES)
    def test_float_sum_segments(self, mode):
        r = rng()
        vals = r.standard_normal(600).astype(np.float32)
        segs = r.integers(0, 12, 600).astype(np.int32)
        got = R.segmented_reduce(vals, segs, 12, **GEOM,
                                 run_kwargs=dict(executor_mode=mode))
        expect = np.zeros(12, np.float32)
        np.add.at(expect, segs, vals)
        np.testing.assert_allclose(got, expect, rtol=1e-4)

    def test_bitwise_or_segments(self):
        r = rng()
        vals = r.integers(0, 1 << 16, 256).astype(np.int32)
        segs = r.integers(0, 4, 256).astype(np.int32)
        got = R.segmented_reduce(vals, segs, 4, op="|", **GEOM)
        expect = np.zeros(4, np.int32)
        np.bitwise_or.at(expect, segs, vals)
        np.testing.assert_array_equal(got, expect)

    def test_empty_segment_keeps_identity(self):
        vals = np.ones(8, np.int32)
        segs = np.zeros(8, np.int32)
        got = R.segmented_reduce(vals, segs, 3, op="*", **GEOM)
        # segment 0 multiplies eight 1s; 1 and 2 keep the identity seed
        np.testing.assert_array_equal(got, [1, 1, 1])

    def test_out_of_range_segment_rejected(self):
        with pytest.raises(AnalysisError, match="segment ids"):
            R.segmented_reduce(np.ones(4, np.int32),
                               np.array([0, 1, 5, 0], np.int32), 3,
                               **GEOM)

    def test_unsupported_operator_rejected(self):
        with pytest.raises(AnalysisError, match="segmented_reduce"):
            R.segmented_reduce(np.ones(4, np.float32),
                               np.zeros(4, np.int32), 1, op="max",
                               **GEOM)


class TestCustomOperators:
    def test_define_and_reduce(self):
        R.define_operator(
            "smin3", identity=lambda d: np.iinfo(d.np).max,
            combine_ir=lambda a, b, d: K.Call("min", (a, b)),
            np_combine=np.minimum, integer_only=True)
        x = rng().integers(-1000, 1000, 300).astype(np.int32)
        got = R.reduce(x, "smin3",
                       update="if ({val} < {acc}) {acc} = {val};",
                       **GEOM)
        assert got == x.min()

    def test_custom_token_usable_in_pragma(self):
        from repro import acc

        R.define_operator(
            "gcd2", identity=0,
            combine_ir=lambda a, b, d: K.Call("min", (a, b)),
            np_combine=np.gcd, integer_only=True)
        # the clause parses; semantics here only exercise the frontend
        prog = acc.compile("""
int x[n];
int g = 0;
#pragma acc parallel copyin(x)
#pragma acc loop gang reduction(gcd2:g)
for (i = 0; i < n; i++) g = g + x[i];
""", **GEOM, pipeline="minimal")
        assert any(g.var == "g"
                   for g in prog.lowered.gang_reductions)

    def test_custom_without_update_template_rejected(self):
        R.define_operator(
            "noupd", identity=0,
            combine_ir=lambda a, b, d: K.Bin("+", a, b),
            np_combine=np.add)
        with pytest.raises(AnalysisError, match="update"):
            R.reduce(np.zeros(4, np.int32), "noupd", **GEOM)

    def test_builtin_token_cannot_be_redefined(self):
        with pytest.raises(AnalysisError, match="built-in"):
            R.define_operator("max", identity=0,
                              combine_ir=lambda a, b, d: a,
                              np_combine=np.add)
