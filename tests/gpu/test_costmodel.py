"""Cost-model tests: the mechanisms that drive the paper's performance shape."""

import numpy as np

from repro.dtypes import DType
from repro.gpu.costmodel import CostModel, TimingLedger
from repro.gpu.device import K20C
from repro.gpu.events import KernelStats
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import (
    Assign, Bin, GLoad, GStore, Kernel, Param, Reg, Special, While,
)
from repro.gpu.memory import GlobalMemory


def stats(**kw):
    base = dict(blocks=1, threads_per_block=32, shared_bytes=0)
    base.update(kw)
    return KernelStats(**base)


class TestKernelTime:
    def test_launch_overhead_always_charged(self):
        t = CostModel(K20C).kernel_time(stats())
        assert t.total_us == K20C.kernel_launch_us

    def test_more_transactions_cost_more(self):
        cm = CostModel(K20C)
        a = cm.kernel_time(stats(global_transactions=100))
        b = cm.kernel_time(stats(global_transactions=3200))
        assert b.total_us > a.total_us

    def test_concurrency_divides_cost(self):
        cm = CostModel(K20C)
        # same per-block work, 24 blocks all resident at once
        one = cm.kernel_time(stats(blocks=1, threads_per_block=1024,
                                   warp_inst_slots=10000))
        many = cm.kernel_time(stats(blocks=24, threads_per_block=1024,
                                    warp_inst_slots=240000))
        # 24x work but 24 concurrent blocks -> same time
        assert np.isclose(many.total_us, one.total_us)

    def test_bandwidth_floor_applies_to_streaming(self):
        cm = CostModel(K20C)
        # huge DRAM byte count with tiny transaction cost hits the floor
        s = stats(dram_bytes=208_000_000, global_transactions=1)
        t = cm.kernel_time(s)
        assert t.total_us >= 1000.0  # 208 MB at 208 GB/s = 1 ms

    def test_l2_hits_cost_less_than_dram(self):
        cm = CostModel(K20C)
        dram = cm.kernel_time(stats(global_transactions=1000))
        l2 = cm.kernel_time(stats(l2_transactions=1000))
        assert l2.global_us < dram.global_us

    def test_broadcast_load_counts_one_dram_many_l2(self):
        import numpy as np
        from repro.dtypes import DType
        from repro.gpu.events import KernelStats
        from repro.gpu.memory import GlobalMemory
        g = GlobalMemory(K20C)
        g.alloc("a", 64, DType.FLOAT)
        st = KernelStats()
        # 4 warps, every lane reads element 0
        g.load("a", np.zeros(128, dtype=np.int64), np.ones(128, bool),
               (np.arange(128) // 32).astype(np.int32), st)
        assert st.global_transactions == 1
        assert st.l2_transactions == 3
        assert st.dram_bytes == 128

    def test_sync_cost_scales_with_barriers(self):
        cm = CostModel(K20C)
        a = cm.kernel_time(stats(barriers=1))
        b = cm.kernel_time(stats(barriers=1001))
        assert b.sync_us > a.sync_us

    def test_shared_memory_footprint_reduces_concurrency(self):
        cm = CostModel(K20C)
        light = cm.kernel_time(stats(blocks=192, threads_per_block=32,
                                     warp_inst_slots=192_000))
        heavy = cm.kernel_time(stats(blocks=192, threads_per_block=32,
                                     shared_bytes=24 * 1024,
                                     warp_inst_slots=192_000))
        assert heavy.total_us > light.total_us
        assert heavy.concurrency < light.concurrency

    def test_transfer_time_linear_in_bytes(self):
        cm = CostModel(K20C)
        t1 = cm.transfer_time(6_000_000)
        t0 = cm.transfer_time(0)
        assert t0 == K20C.pcie_latency_us
        assert np.isclose(t1 - t0, 1000.0)  # 6 MB at 6 GB/s = 1 ms


class TestLedger:
    def test_accumulates(self):
        led = TimingLedger()
        led.add("kernel:a", 100.0)
        led.add("kernel:a", 50.0)
        led.add("xfer", 25.0)
        assert led.total_us == 175.0
        assert led.total_ms == 0.175
        assert led.by_label() == {"kernel:a": 150.0, "xfer": 25.0}

    def test_format_report_aggregates_by_label(self):
        led = TimingLedger()
        led.add("kernel:a", 100.0)
        led.add("kernel:a", 50.0)
        led.add("xfer", 50.0)
        text = led.format_report()
        lines = text.splitlines()
        assert len(lines) == 3  # two labels + TOTAL
        assert "kernel:a" in lines[0] and "x2" in lines[0]
        assert "150.00" in lines[0] and "75.0%" in lines[0]
        assert "xfer" in lines[1] and "x1" in lines[1]
        assert "TOTAL" in lines[2] and "200.00" in lines[2]
        assert str(led) == text

    def test_format_report_empty(self):
        text = TimingLedger().format_report()
        assert "TOTAL" in text and "0.00" in text


class TestEndToEndShape:
    """Coalesced window-sliding beats strided blocking access (§3.1.3)."""

    def _sum_traffic(self, blocking: bool):
        n = 4096
        bdx, grid = 128, 4
        g = GlobalMemory(K20C)
        g.alloc("in", n, DType.FLOAT, init=np.ones(n))
        g.alloc("out", n, DType.FLOAT)
        nthreads = bdx * grid
        chunk = n // nthreads
        if blocking:
            # each thread walks a contiguous chunk: lanes far apart
            body = (
                Assign("base", Bin("*", Bin("+", Bin("*", Special("bx"),
                                                     Special("bdx")),
                                            Special("tx")),
                                   Param("CHUNK"))),
                Assign("i", Reg("base")),
                While(Bin("<", Reg("i"), Bin("+", Reg("base"), Param("CHUNK"))), (
                    GLoad("v", "in", Reg("i")),
                    GStore("out", Reg("i"), Reg("v")),
                    Assign("i", Bin("+", Reg("i"), Param("ONE"))),
                )),
            )
        else:
            body = (
                Assign("i", Bin("+", Bin("*", Special("bx"), Special("bdx")),
                                Special("tx"))),
                While(Bin("<", Reg("i"), Param("N")), (
                    GLoad("v", "in", Reg("i")),
                    GStore("out", Reg("i"), Reg("v")),
                    Assign("i", Bin("+", Reg("i"), Param("STRIDE"))),
                )),
            )
        k = Kernel("sweep", body, params=("N", "STRIDE", "CHUNK", "ONE"),
                   buffers=("in", "out"))
        st = CompiledKernel(k, K20C).run(g, grid, (bdx, 1), params={
            "N": np.int32(n), "STRIDE": np.int32(nthreads),
            "CHUNK": np.int32(chunk), "ONE": np.int32(1),
        })
        assert (g["out"].data == 1).all()
        return st

    def test_window_sliding_coalesces(self):
        window = self._sum_traffic(blocking=False)
        blocked = self._sum_traffic(blocking=True)
        # blocking issues many more warp requests per access; the segment
        # reuse model serves repeats from the L2 rather than DRAM
        window_reqs = window.global_transactions + window.l2_transactions
        blocked_reqs = blocked.global_transactions + blocked.l2_transactions
        assert blocked_reqs > 4 * window_reqs
        cm = CostModel(K20C)
        assert cm.kernel_time(blocked).total_us > cm.kernel_time(window).total_us
