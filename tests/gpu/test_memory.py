"""Tests for global/shared memory: semantics and traffic accounting."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import OutOfBoundsError, ResourceError
from repro.gpu.device import K20C
from repro.gpu.events import KernelStats
from repro.gpu.kernelir import SharedArraySpec
from repro.gpu.memory import GlobalMemory, SharedMemory


def make_gmem():
    return GlobalMemory(K20C)


def warp_of(n):
    return (np.arange(n) // 32).astype(np.int32)


class TestAllocation:
    def test_alloc_and_read_back(self):
        g = make_gmem()
        buf = g.alloc("a", 16, DType.FLOAT, init=np.arange(16))
        assert buf.size == 16
        np.testing.assert_array_equal(buf.data, np.arange(16, dtype=np.float32))

    def test_alloc_zero_initialized(self):
        g = make_gmem()
        buf = g.alloc("z", 8, DType.INT)
        assert (buf.data == 0).all()

    def test_duplicate_name_rejected(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        with pytest.raises(ResourceError):
            g.alloc("a", 4, DType.INT)

    def test_bases_are_aligned_and_disjoint(self):
        g = make_gmem()
        a = g.alloc("a", 100, DType.DOUBLE)
        b = g.alloc("b", 100, DType.INT)
        assert a.base % 256 == 0 and b.base % 256 == 0
        assert b.base >= a.base + a.nbytes

    def test_over_allocation_rejected(self):
        g = make_gmem()
        with pytest.raises(ResourceError):
            g.alloc("big", K20C.global_mem_bytes, DType.DOUBLE)

    def test_init_size_mismatch_rejected(self):
        g = make_gmem()
        with pytest.raises(ResourceError):
            g.alloc("a", 4, DType.INT, init=np.arange(5))

    def test_free_allows_realloc(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        g.free("a")
        g.alloc("a", 8, DType.INT)
        assert g["a"].size == 8

    def test_missing_buffer_raises(self):
        g = make_gmem()
        with pytest.raises(OutOfBoundsError):
            g["nope"]


class TestGlobalAccess:
    def test_load_gathers_active_lanes(self):
        g = make_gmem()
        g.alloc("a", 64, DType.INT, init=np.arange(64) * 10)
        idx = np.arange(32)
        mask = idx % 2 == 0
        stats = KernelStats()
        out = g.load("a", idx, mask, warp_of(32), stats)
        np.testing.assert_array_equal(out[mask], idx[mask] * 10)
        assert (out[~mask] == 0).all()

    def test_store_scatter(self):
        g = make_gmem()
        g.alloc("a", 64, DType.FLOAT)
        idx = np.arange(32) + 8
        vals = np.full(32, 2.5, dtype=np.float32)
        stats = KernelStats()
        g.store("a", idx, vals, np.ones(32, bool), warp_of(32), stats)
        assert (g["a"].data[8:40] == 2.5).all()
        assert (g["a"].data[:8] == 0).all()

    def test_duplicate_store_highest_tid_wins(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        idx = np.zeros(32, dtype=np.int64)
        vals = np.arange(32, dtype=np.int32)
        g.store("a", idx, vals, np.ones(32, bool), warp_of(32), KernelStats())
        assert g["a"].data[0] == 31  # deterministic last-writer-wins

    def test_out_of_bounds_load(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        with pytest.raises(OutOfBoundsError):
            g.load("a", np.array([0, 4]), np.ones(2, bool), warp_of(2),
                   KernelStats())

    def test_negative_index_rejected(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        with pytest.raises(OutOfBoundsError):
            g.store("a", np.array([-1]), np.array([1]), np.ones(1, bool),
                    warp_of(1), KernelStats())

    def test_masked_out_of_bounds_is_ignored(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        idx = np.array([0, 99])
        mask = np.array([True, False])
        g.load("a", idx, mask, warp_of(2), KernelStats())  # no raise


class TestCoalescing:
    def test_unit_stride_float_is_one_transaction_per_warp(self):
        # 32 threads x 4 bytes consecutive = 128 bytes = 1 segment
        g = make_gmem()
        g.alloc("a", 1024, DType.FLOAT)
        stats = KernelStats()
        idx = np.arange(32)
        g.load("a", idx, np.ones(32, bool), warp_of(32), stats)
        assert stats.global_transactions == 1
        assert stats.global_bytes == 32 * 4

    def test_unit_stride_double_is_two_transactions(self):
        g = make_gmem()
        g.alloc("a", 1024, DType.DOUBLE)
        stats = KernelStats()
        g.load("a", np.arange(32), np.ones(32, bool), warp_of(32), stats)
        assert stats.global_transactions == 2

    def test_stride_32_floats_hits_32_segments(self):
        # blocking-style access: each lane in its own 128B segment
        g = make_gmem()
        g.alloc("a", 32 * 32, DType.FLOAT)
        stats = KernelStats()
        g.load("a", np.arange(32) * 32, np.ones(32, bool), warp_of(32), stats)
        assert stats.global_transactions == 32

    def test_two_warps_count_independently(self):
        g = make_gmem()
        g.alloc("a", 1024, DType.FLOAT)
        stats = KernelStats()
        g.load("a", np.arange(64), np.ones(64, bool), warp_of(64), stats)
        assert stats.global_transactions == 2

    def test_same_element_broadcast_is_one_transaction(self):
        g = make_gmem()
        g.alloc("a", 64, DType.FLOAT)
        stats = KernelStats()
        g.load("a", np.zeros(32, dtype=np.int64), np.ones(32, bool),
               warp_of(32), stats)
        assert stats.global_transactions == 1

    def test_atomic_charges_per_lane(self):
        g = make_gmem()
        g.alloc("a", 4, DType.INT)
        stats = KernelStats()
        g.atomic_update("a", np.zeros(32, dtype=np.int64),
                        np.ones(32, dtype=np.int32), np.ones(32, bool),
                        warp_of(32), stats, np.add)
        assert g["a"].data[0] == 32  # combines, unlike plain store
        assert stats.global_transactions == 32


def make_smem(specs, stats=None):
    stats = stats if stats is not None else KernelStats()
    return SharedMemory(K20C, tuple(specs), stats), stats


class TestSharedMemory:
    def test_store_load_roundtrip(self):
        sm, _ = make_smem([SharedArraySpec("s", DType.FLOAT, 64)])
        idx = np.arange(32)
        vals = idx.astype(np.float32) * 0.5
        sm.store("s", idx, vals, np.ones(32, bool), warp_of(32))
        out = sm.load("s", idx, np.ones(32, bool), warp_of(32))
        np.testing.assert_array_equal(out, vals)

    def test_exceeding_shared_limit_raises(self):
        with pytest.raises(ResourceError):
            make_smem([SharedArraySpec("s", DType.DOUBLE,
                                       K20C.shared_mem_per_block)])

    def test_two_arrays_are_disjoint(self):
        sm, _ = make_smem([
            SharedArraySpec("a", DType.INT, 32),
            SharedArraySpec("b", DType.INT, 32),
        ])
        sm.store("a", np.arange(32), np.full(32, 7, np.int32),
                 np.ones(32, bool), warp_of(32))
        assert (sm.read_array("b") == 0).all()

    def test_out_of_bounds(self):
        sm, _ = make_smem([SharedArraySpec("s", DType.INT, 8)])
        with pytest.raises(OutOfBoundsError):
            sm.load("s", np.array([8]), np.ones(1, bool), warp_of(1))

    def test_alignment_of_mixed_dtypes(self):
        # int (4B) followed by double (8B): double array must be 8-aligned
        sm, _ = make_smem([
            SharedArraySpec("i", DType.INT, 3),
            SharedArraySpec("d", DType.DOUBLE, 4),
        ])
        assert sm._offsets["d"] % 8 == 0


class TestBankConflicts:
    def test_unit_stride_float_is_conflict_free(self):
        sm, stats = make_smem([SharedArraySpec("s", DType.FLOAT, 64)])
        sm.load("s", np.arange(32), np.ones(32, bool), warp_of(32))
        assert stats.shared_accesses == 1
        assert stats.bank_conflict_extra == 0

    def test_stride_32_floats_is_32_way_conflict(self):
        # all 32 lanes hit bank 0 with distinct words
        sm, stats = make_smem([SharedArraySpec("s", DType.FLOAT, 32 * 32)])
        sm.load("s", np.arange(32) * 32, np.ones(32, bool), warp_of(32))
        assert stats.shared_accesses == 32
        assert stats.bank_conflict_extra == 31

    def test_same_word_broadcast_is_free(self):
        sm, stats = make_smem([SharedArraySpec("s", DType.FLOAT, 32)])
        sm.load("s", np.zeros(32, dtype=np.int64), np.ones(32, bool),
                warp_of(32))
        assert stats.shared_accesses == 1
        assert stats.bank_conflict_extra == 0

    def test_stride_2_floats_is_2_way_conflict(self):
        sm, stats = make_smem([SharedArraySpec("s", DType.FLOAT, 64)])
        sm.load("s", np.arange(32) * 2, np.ones(32, bool), warp_of(32))
        assert stats.shared_accesses == 2

    def test_doubles_unit_stride_is_2_way(self):
        # 8-byte elements span two 4-byte words -> stride-2 word pattern
        sm, stats = make_smem([SharedArraySpec("s", DType.DOUBLE, 32)])
        sm.load("s", np.arange(32), np.ones(32, bool), warp_of(32))
        assert stats.shared_accesses == 2
