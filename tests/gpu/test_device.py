"""Tests for the device model: limits, occupancy, validation."""

import pytest

from repro.errors import ResourceError
from repro.gpu.device import DeviceProperties, K20C


class TestDefaults:
    def test_k20c_matches_paper_platform(self):
        # Paper §4: Kepler K20c, 5 GB global memory, 13 SMs (12 usable),
        # <=16 blocks per SM, 1024 threads per block, warps of 32.
        assert K20C.warp_size == 32
        assert K20C.max_threads_per_block == 1024
        assert K20C.num_sms == 13
        assert K20C.usable_sms == 12
        assert K20C.max_blocks_per_sm == 16
        assert K20C.global_mem_bytes == 5 * 1024**3

    def test_paper_gang_choice_fills_device(self):
        # The paper chooses 192 gangs = 12 SMs x 16 blocks; with the paper's
        # 128x8 blocks, occupancy is warp-limited but the grid choice is
        # about the block-count cap.
        assert K20C.usable_sms * K20C.max_blocks_per_sm == 192

    def test_frozen(self):
        with pytest.raises(Exception):
            K20C.warp_size = 64  # type: ignore[misc]

    def test_with_overrides(self):
        d = K20C.with_overrides(kernel_launch_us=0.0)
        assert d.kernel_launch_us == 0.0
        assert K20C.kernel_launch_us == 5.0
        assert d.warp_size == K20C.warp_size


class TestValidateBlock:
    def test_accepts_paper_block_shape(self):
        K20C.validate_block(128, 8)  # vector 128 x worker 8 = 1024 threads

    def test_rejects_too_many_threads(self):
        with pytest.raises(ResourceError):
            K20C.validate_block(256, 8)

    def test_rejects_zero_dim(self):
        with pytest.raises(ResourceError):
            K20C.validate_block(0, 1)

    def test_rejects_oversized_shared(self):
        with pytest.raises(ResourceError):
            K20C.validate_block(32, 1, shared_bytes=K20C.shared_mem_per_block + 1)

    def test_accepts_exact_shared_limit(self):
        K20C.validate_block(32, 1, shared_bytes=K20C.shared_mem_per_block)


class TestOccupancy:
    def test_full_block_is_warp_limited(self):
        # 1024 threads = 32 warps; 64 warps/SM -> 2 blocks/SM -> 24 device-wide
        assert K20C.concurrent_blocks(1024, 0) == 24

    def test_small_block_is_block_cap_limited(self):
        # 32 threads = 1 warp; min(16 blocks, 64 warps) -> 16/SM -> 192
        assert K20C.concurrent_blocks(32, 0) == 192

    def test_shared_memory_limits_occupancy(self):
        # 24 KiB/block -> 2 blocks/SM by shared memory
        assert K20C.concurrent_blocks(32, 24 * 1024) == 24

    def test_at_least_one_block(self):
        assert K20C.concurrent_blocks(1024, K20C.shared_mem_per_block) >= 1

    def test_scales_with_usable_sms(self):
        d = DeviceProperties(usable_sms=1)
        assert d.concurrent_blocks(32, 0) == 16
