"""Reduction trip-count edge cases, in both executor modes.

The paper's testsuite sweeps positions and operators at comfortable
sizes; the degenerate trip counts live here: a zero-trip loop must leave
the reduction scalar at its host initial value, a single-trip loop must
apply exactly one combine, and non-power-of-two sizes must not depend on
the tree-fold padding.  Each case runs on the batched and the reference
executor and the two must agree bitwise.
"""

import numpy as np
import pytest

from repro import acc

MODES = ("batched", "reference")
GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)


def _sum_prog(ctype="float"):
    return acc.compile(f'''{ctype} a[n];
{ctype} total = {"7.5" if ctype in ("float", "double") else "7"};
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
''', **GEOM)


def _prod_prog():
    return acc.compile('''int a[n];
int total = 3;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(*:total)
for (i = 0; i < n; i++)
    total *= a[i];
''', **GEOM)


class TestZeroTrip:
    @pytest.mark.parametrize("mode", MODES)
    def test_sum_keeps_initial_scalar(self, mode):
        res = _sum_prog().run(executor_mode=mode,
                              a=np.empty(0, np.float32))
        assert res.scalars["total"] == np.float32(7.5)
        assert res.scalars["total"].dtype == np.float32

    @pytest.mark.parametrize("mode", MODES)
    def test_product_keeps_initial_scalar(self, mode):
        res = _prod_prog().run(executor_mode=mode, a=np.empty(0, np.int32))
        assert res.scalars["total"] == np.int32(3)


class TestSingleTrip:
    @pytest.mark.parametrize("mode", MODES)
    def test_sum_applies_one_combine_exactly(self, mode):
        res = _sum_prog().run(executor_mode=mode,
                              a=np.array([2.0], np.float32))
        assert res.scalars["total"] == np.float32(9.5)

    @pytest.mark.parametrize("mode", MODES)
    def test_product_applies_one_combine_exactly(self, mode):
        res = _prod_prog().run(executor_mode=mode,
                               a=np.array([5], np.int32))
        assert res.scalars["total"] == np.int32(15)


class TestNonPowerOfTwoTrips:
    # sizes straddling warp/block boundaries; int keeps the check exact
    @pytest.mark.parametrize("n", [3, 37, 63, 65, 127, 1000])
    def test_int_sum_exact(self, n):
        prog = _sum_prog("int")
        a = (np.arange(n) % 13).astype(np.int32)
        results = {m: prog.run(executor_mode=m, a=a) for m in MODES}
        for res in results.values():
            assert res.scalars["total"] == np.int32(a.sum() + 7)
        assert (results["batched"].scalars["total"].tobytes()
                == results["reference"].scalars["total"].tobytes())

    @pytest.mark.parametrize("n", [37, 1000])
    def test_float_sum_modes_agree_bitwise(self, n):
        prog = _sum_prog()
        a = ((np.arange(n) % 7) / 4.0).astype(np.float32)
        rb = prog.run(executor_mode="batched", a=a)
        rr = prog.run(executor_mode="reference", a=a)
        assert (rb.scalars["total"].tobytes()
                == rr.scalars["total"].tobytes())
        np.testing.assert_allclose(rb.scalars["total"],
                                   a.sum(dtype=np.float64) + 7.5,
                                   rtol=1e-5)
