"""Reduction trip-count and float edge cases, across all executor modes.

The paper's testsuite sweeps positions and operators at comfortable
sizes; the degenerate inputs live here: a zero-trip loop must leave the
reduction scalar at its host initial value, a single-trip loop must
apply exactly one combine, non-power-of-two sizes must not depend on the
tree-fold padding, and the adversarial float values — NaN under max/min,
signed zeros, and their interaction with the shuffle vs logstep warp
strategies — must not expose a divergence between executors.  Each case
runs on the reference, batched, and trace executors and all three must
agree bitwise.
"""

import numpy as np
import pytest

from repro import acc

MODES = ("batched", "reference", "trace")
GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)


def _sum_prog(ctype="float"):
    return acc.compile(f'''{ctype} a[n];
{ctype} total = {"7.5" if ctype in ("float", "double") else "7"};
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
''', **GEOM)


def _prod_prog():
    return acc.compile('''int a[n];
int total = 3;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(*:total)
for (i = 0; i < n; i++)
    total *= a[i];
''', **GEOM)


class TestZeroTrip:
    @pytest.mark.parametrize("mode", MODES)
    def test_sum_keeps_initial_scalar(self, mode):
        res = _sum_prog().run(executor_mode=mode,
                              a=np.empty(0, np.float32))
        assert res.scalars["total"] == np.float32(7.5)
        assert res.scalars["total"].dtype == np.float32

    @pytest.mark.parametrize("mode", MODES)
    def test_product_keeps_initial_scalar(self, mode):
        res = _prod_prog().run(executor_mode=mode, a=np.empty(0, np.int32))
        assert res.scalars["total"] == np.int32(3)


class TestSingleTrip:
    @pytest.mark.parametrize("mode", MODES)
    def test_sum_applies_one_combine_exactly(self, mode):
        res = _sum_prog().run(executor_mode=mode,
                              a=np.array([2.0], np.float32))
        assert res.scalars["total"] == np.float32(9.5)

    @pytest.mark.parametrize("mode", MODES)
    def test_product_applies_one_combine_exactly(self, mode):
        res = _prod_prog().run(executor_mode=mode,
                               a=np.array([5], np.int32))
        assert res.scalars["total"] == np.int32(15)


class TestNonPowerOfTwoTrips:
    # sizes straddling warp/block boundaries; int keeps the check exact
    @pytest.mark.parametrize("n", [3, 37, 63, 65, 127, 1000])
    def test_int_sum_exact(self, n):
        prog = _sum_prog("int")
        a = (np.arange(n) % 13).astype(np.int32)
        results = {m: prog.run(executor_mode=m, a=a) for m in MODES}
        for res in results.values():
            assert res.scalars["total"] == np.int32(a.sum() + 7)
        assert (results["batched"].scalars["total"].tobytes()
                == results["reference"].scalars["total"].tobytes())

    @pytest.mark.parametrize("n", [37, 1000])
    def test_float_sum_modes_agree_bitwise(self, n):
        prog = _sum_prog()
        a = ((np.arange(n) % 7) / 4.0).astype(np.float32)
        results = {m: prog.run(executor_mode=m, a=a) for m in MODES}
        ref = results["reference"].scalars["total"].tobytes()
        for m in MODES:
            assert results[m].scalars["total"].tobytes() == ref, m
        np.testing.assert_allclose(results["reference"].scalars["total"],
                                   a.sum(dtype=np.float64) + 7.5,
                                   rtol=1e-5)


def _minmax_prog(op, init, vector_strategy=None):
    overrides = ({"vector_strategy": vector_strategy}
                 if vector_strategy else {})
    return acc.compile(f'''float a[n];
float total = {init};
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction({op}:total)
for (i = 0; i < n; i++)
    total = f{op}(total, a[i]);
''', **GEOM, **overrides)


def _tri_run(prog, a):
    """Run all three executors; assert bitwise agreement; return one."""
    results = {m: prog.run(executor_mode=m, a=a) for m in MODES}
    ref = results["reference"].scalars["total"]
    for m in MODES:
        assert results[m].scalars["total"].tobytes() == ref.tobytes(), \
            f"{m} diverged bitwise from reference"
    return ref


class TestFloatAdversarial:
    """NaN and signed-zero inputs must not split the executors.

    The assertions are (1) bitwise agreement across all three executors
    — the contract — and (2) the C-semantics answer where it is
    well-defined: ``fmax``/``fmin`` ignore NaN when the other operand is
    a number, and an all-NaN reduction stays NaN.  Where C leaves the
    result unspecified (the sign of ``fmin(0.0, -0.0)``), only the
    cross-executor agreement is asserted.
    """

    #: both warp strategies: the shuffle tree and the shared-memory
    #: logstep fold combine in different orders, and each must be
    #: internally bit-identical across executors on adversarial values
    STRATEGIES = (None, "shuffle", "logstep")

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_max_ignores_scattered_nans(self, strategy):
        prog = _minmax_prog("max", "-3.0", strategy)
        a = ((np.arange(97) % 11) / 2.0).astype(np.float32)
        a[::7] = np.nan
        total = _tri_run(prog, a)
        assert total == np.float32(np.fmax.reduce(a))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_min_ignores_scattered_nans(self, strategy):
        prog = _minmax_prog("min", "100.0", strategy)
        a = ((np.arange(97) % 11) / 2.0).astype(np.float32)
        a[1::5] = np.nan
        total = _tri_run(prog, a)
        assert total == np.float32(np.fmin.reduce(a))

    @pytest.mark.parametrize("op,init", [("max", "-3.0"), ("min", "3.0")])
    def test_all_nan_input_stays_nan_or_init(self, op, init):
        # fmax/fmin drop NaN operands, so a reduction over all-NaN input
        # collapses to the initial value; whatever the tree shape, the
        # three executors must collapse identically
        prog = _minmax_prog(op, init)
        a = np.full(64, np.nan, np.float32)
        total = _tri_run(prog, a)
        assert total == np.float32(float(init))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_negative_zero_survives_max_fold(self, strategy):
        # every operand is -0.0: any fold order yields -0.0, and the
        # sign bit must survive each executor's tree identically
        prog = _minmax_prog("max", "-0.0", strategy)
        a = np.full(100, -0.0, np.float32)
        total = _tri_run(prog, a)
        assert total.tobytes() == np.float32(-0.0).tobytes()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mixed_signed_zeros_agree_across_executors(self, strategy):
        # fmin(0.0, -0.0) may legally return either zero — but all
        # three executors must pick the *same* one (they share the
        # combination tree; only the batching of its evaluation differs)
        prog = _minmax_prog("min", "0.0", strategy)
        a = np.zeros(128, np.float32)
        a[1::2] = -0.0
        _tri_run(prog, a)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_signed_zero_sum_agrees_across_executors(self, strategy):
        # (+0.0) + (-0.0) = +0.0 but (-0.0) + (-0.0) = -0.0: the result
        # of a sum over mixed zeros depends on the fold tree, so the
        # executors must agree bitwise on whatever the tree produces
        overrides = ({"vector_strategy": strategy} if strategy else {})
        prog = acc.compile('''float a[n];
float total = -0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
''', **GEOM, **overrides)
        a = np.full(256, -0.0, np.float32)
        total = _tri_run(prog, a)
        # note: the answer is legitimately +0.0, not -0.0 — the fold
        # tree pads inactive slots with the ``+`` identity (+0.0), and
        # (-0.0) + (+0.0) = +0.0.  The value is still a zero; the real
        # contract is the bitwise agreement asserted by _tri_run.
        assert total == np.float32(0.0)
