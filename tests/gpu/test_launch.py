"""Launch-helper tests (compile + run + time in one call)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import ResourceError, SimulationError
from repro.gpu import GlobalMemory, K20C, launch
from repro.gpu.kernelir import (
    Assign, Bin, GStore, Kernel, Reg, Special, const_int,
)


def ids_kernel():
    return Kernel("ids", (
        GStore("out", Bin("+", Bin("*", Special("bx"), Special("ntid")),
                          Special("tid")),
               Special("bx")),
    ), buffers=("out",))


class TestLaunch:
    def test_returns_report_with_timing(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 64, DType.INT)
        rep = launch(ids_kernel(), g, grid_dim=2, block_dim=(16, 2))
        assert rep.stats.blocks == 2
        assert rep.modeled_us >= K20C.kernel_launch_us
        assert rep.modeled_ms == rep.modeled_us / 1000.0
        np.testing.assert_array_equal(g["out"].data,
                                      np.repeat([0, 1], 32))

    def test_rejects_bad_grid(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        with pytest.raises(SimulationError):
            launch(ids_kernel(), g, grid_dim=0, block_dim=(4, 1))

    def test_rejects_oversized_block(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        with pytest.raises(ResourceError):
            launch(ids_kernel(), g, grid_dim=1, block_dim=(2048, 1))

    def test_custom_device_constants_flow_through(self):
        slow = K20C.with_overrides(kernel_launch_us=100.0)
        g = GlobalMemory(slow)
        g.alloc("out", 32, DType.INT)
        rep = launch(ids_kernel(), g, grid_dim=1, block_dim=(32, 1),
                     device=slow)
        assert rep.timing.launch_us == 100.0
