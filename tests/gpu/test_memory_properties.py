"""Property tests on the memory model's accounting invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.gpu.device import K20C
from repro.gpu.events import KernelStats
from repro.gpu.kernelir import SharedArraySpec
from repro.gpu.memory import GlobalMemory, SharedMemory

SIZE = 4096


def warp_of(n):
    return (np.arange(n) // 32).astype(np.int32)


class TestGlobalAccounting:
    @given(
        idx=st.lists(st.integers(0, SIZE - 1), min_size=1, max_size=128),
        dtype=st.sampled_from([DType.INT, DType.DOUBLE]),
    )
    @settings(max_examples=50, deadline=None)
    def test_transaction_bounds(self, idx, dtype):
        """DRAM fetches are bounded by distinct segments and lane count;
        total requests never exceed active lanes."""
        g = GlobalMemory(K20C)
        g.alloc("a", SIZE, dtype)
        stats = KernelStats()
        arr = np.asarray(idx, dtype=np.int64)
        mask = np.ones(len(idx), dtype=bool)
        g.load("a", arr, mask, warp_of(len(idx)), stats)

        base = g["a"].base
        segs = np.unique((base + arr * dtype.itemsize) // 128).size
        requests = stats.global_transactions + stats.l2_transactions
        assert stats.global_transactions == segs
        assert requests >= segs
        assert requests <= len(idx)
        assert stats.global_bytes == len(idx) * dtype.itemsize
        assert stats.dram_bytes == segs * 128

    @given(idx=st.lists(st.integers(0, SIZE - 1), min_size=1, max_size=96))
    @settings(max_examples=30, deadline=None)
    def test_statement_reuse_never_increases_dram(self, idx):
        """Re-executing the same access with a reuse slot costs no new
        DRAM fetches."""
        g = GlobalMemory(K20C)
        g.alloc("a", SIZE, DType.FLOAT)
        arr = np.asarray(idx, dtype=np.int64)
        mask = np.ones(len(idx), dtype=bool)
        cache: dict = {}
        s1 = KernelStats()
        g.load("a", arr, mask, warp_of(len(idx)), s1, reuse=(cache, 7))
        s2 = KernelStats()
        g.load("a", arr, mask, warp_of(len(idx)), s2, reuse=(cache, 7))
        assert s2.global_transactions == 0
        assert s2.l2_transactions == \
            s1.global_transactions + s1.l2_transactions

    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=64),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_store_load_roundtrip(self, values, seed):
        g = GlobalMemory(K20C)
        g.alloc("a", SIZE, DType.INT)
        rng = np.random.default_rng(seed)
        idx = rng.choice(SIZE, size=len(values), replace=False)
        vals = np.asarray(values, dtype=np.int32)
        mask = np.ones(len(values), dtype=bool)
        g.store("a", idx, vals, mask, warp_of(len(values)), KernelStats())
        out = g.load("a", idx, mask, warp_of(len(values)), KernelStats())
        np.testing.assert_array_equal(out, vals)


class TestSharedAccounting:
    @given(idx=st.lists(st.integers(0, 255), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_conflict_degree_bounds(self, idx):
        """One warp access serializes between 1 and 32 times, and exactly
        matches the max distinct-words-per-bank."""
        stats = KernelStats()
        sm = SharedMemory(K20C, (SharedArraySpec("s", DType.FLOAT, 256),),
                          stats)
        arr = np.asarray(idx, dtype=np.int64)
        mask = np.ones(len(idx), dtype=bool)
        sm.load("s", arr, mask, np.zeros(len(idx), dtype=np.int32))

        words = np.unique(arr)  # float32: one word per element
        banks = words % 32
        expect = max(np.bincount(banks.astype(int), minlength=32).max(), 1)
        assert stats.shared_accesses == expect
        assert 1 <= stats.shared_accesses <= 32
        assert stats.bank_conflict_extra == expect - 1
