"""Batched-block executor: bit-identity with the reference path.

The contract under test (see :mod:`repro.gpu.executor_batched`): for any
``block_batch``, results, every :class:`~repro.gpu.events.KernelStats`
counter, and raised errors match the reference executor exactly; kernels
whose blocks communicate through global memory are detected by the
static analysis and degrade to the reference path.
"""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import (
    BarrierDivergenceError, SimulationError, WatchdogTimeoutError,
)
from repro.gpu.device import K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import (
    Assign, AtomicUpdate, Bin, Const, GLoad, GStore, If, Kernel, Param,
    Reg, SharedArraySpec, SLoad, SStore, Special, Sync, While, const_int,
)
from repro.gpu.memory import GlobalMemory

STAT_FIELDS = (
    "blocks", "threads_per_block", "shared_bytes", "warp_inst_slots",
    "global_transactions", "l2_transactions", "global_bytes", "dram_bytes",
    "shared_accesses", "bank_conflict_extra", "barriers",
    "divergent_branches",
)


def counters(stats):
    return {f: getattr(stats, f) for f in STAT_FIELDS}


def block_sum_kernel():
    """Grid-stride windows + shared staging + serial fold by thread 0.

    Exercises every construct the batched compiler handles on one path:
    per-thread ``While`` with uneven trip counts (divergence), shared
    stores/loads, a barrier, a divergent ``If``, and a ``bx``-indexed
    result store.
    """
    i, j = Reg("i"), Reg("j")
    body = (
        Assign("acc", Const(0, DType.INT)),
        Assign("i", Bin("+", Bin("*", Special("bx"), Special("bdx")),
                        Special("tx"))),
        While(Bin("<", i, Param("N")), (
            GLoad("v", "in", i),
            Assign("acc", Bin("+", Reg("acc"), Reg("v"))),
            Assign("i", Bin("+", i,
                            Bin("*", Special("gdx"), Special("bdx")))),
        )),
        SStore("sdata", Special("tx"), Reg("acc")),
        Sync(),
        If(Bin("==", Special("tx"), const_int(0)), (
            SLoad("tot", "sdata", const_int(0)),
            Assign("j", const_int(1)),
            While(Bin("<", j, Special("bdx")), (
                SLoad("w", "sdata", j),
                Assign("tot", Bin("+", Reg("tot"), Reg("w"))),
                Assign("j", Bin("+", j, const_int(1))),
            )),
            GStore("out", Special("bx"), Reg("tot")),
        )),
    )
    return Kernel("bsum", body, params=("N",), buffers=("in", "out"),
                  shared=(SharedArraySpec("sdata", DType.INT, 64),))


def run_block_sum(n=1000, grid=7, mode=None, block_batch=None, trace=False):
    g = GlobalMemory(K20C)
    g.alloc("in", n, DType.INT, init=np.arange(n) % 13)
    g.alloc("out", grid, DType.INT)
    ck = CompiledKernel(block_sum_kernel(), K20C)
    stats = ck.run(g, grid, (64, 1), params={"N": np.int32(n)},
                   trace=trace, mode=mode, block_batch=block_batch)
    return g["out"].data.copy(), stats


class TestBitIdentity:
    def test_results_and_counters_match_reference(self):
        out_ref, st_ref = run_block_sum(mode="reference")
        out_bat, st_bat = run_block_sum(mode="batched")
        np.testing.assert_array_equal(out_bat, out_ref)
        assert counters(st_bat) == counters(st_ref)

    @pytest.mark.parametrize("block_batch", [1, 2, 7, 256])
    def test_invariant_under_chunk_size(self, block_batch):
        out_ref, st_ref = run_block_sum(mode="reference")
        out, st = run_block_sum(block_batch=block_batch)
        np.testing.assert_array_equal(out, out_ref)
        assert counters(st) == counters(st_ref)

    def test_batched_is_the_default(self, monkeypatch):
        # the no-env default; REPRO_EXECUTOR (e.g. the trace CI leg)
        # overrides it, so pin with the variable cleared
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        g = GlobalMemory(K20C)
        g.alloc("in", 64, DType.INT)
        g.alloc("out", 2, DType.INT)
        ck = CompiledKernel(block_sum_kernel(), K20C)
        assert ck.effective_mode(None, 2, g) == "batched"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            run_block_sum(mode="bogus")

    def test_trace_events_match_reference_per_kind_and_block(self):
        _, st_ref = run_block_sum(mode="reference", trace=True)
        _, st_bat = run_block_sum(mode="batched", trace=True)
        key = lambda ev: (ev.kind, ev.block)  # noqa: E731
        assert (sorted(map(key, st_bat.trace))
                == sorted(map(key, st_ref.trace)))


class TestSafetyAnalysis:
    def _mode(self, kernel, grid, bufs):
        g = GlobalMemory(K20C)
        for name, dtype, size in bufs:
            g.alloc(name, size, dtype)
        # request "batched" explicitly: these tests pin the
        # batched->reference demotion rungs, independent of the
        # REPRO_EXECUTOR session default
        return CompiledKernel(kernel, K20C).effective_mode(
            "batched", grid, g)

    def test_rmw_buffer_is_checked_then_falls_back(self):
        # later blocks read what earlier blocks wrote: the static pass
        # cannot prove disjointness, so the kernel runs checked; the
        # actual sharing trips the runtime hazard on the first launch and
        # the verdict sticks
        k = Kernel("inc", (
            GLoad("v", "buf", Special("tid")),
            GStore("buf", Special("tid"),
                   Bin("+", Reg("v"), const_int(1))),
        ), buffers=("buf",))
        g = GlobalMemory(K20C)
        g.alloc("buf", 64, DType.INT, init=np.arange(64))
        ck = CompiledKernel(k, K20C)
        assert ck.batch_safety.checked_bufs == ("buf",)
        assert ck.effective_mode("batched", 4, g) == "batched"  # optimistic
        ck.run(g, 2, (32, 2), mode="batched")
        assert ck.effective_mode("batched", 4, g) == "reference"  # sticky

    def test_checked_kernel_with_faults_goes_reference(self):
        from repro.faults import FaultInjector, FaultPlan
        k = Kernel("inc", (
            GLoad("v", "buf", Special("tid")),
            GStore("buf", Special("tid"),
                   Bin("+", Reg("v"), const_int(1))),
        ), buffers=("buf",))
        g = GlobalMemory(K20C)
        g.alloc("buf", 64, DType.INT)
        inj = FaultInjector(FaultPlan(seed=7))
        # an aborted checked attempt could not roll back the injector's
        # RNG draws, so armed launches skip the attempt entirely
        assert CompiledKernel(k, K20C).effective_mode(
            "batched", 4, g, faults=inj) == "reference"

    def test_disjoint_scatter_stays_batched_at_runtime(self):
        # data-dependent store index: unprovable statically, but these
        # contents partition locations by block, so the checked run keeps
        # the fast path and matches the reference bitwise
        k = Kernel("scat", (
            GLoad("j", "idx", Bin("+", Bin("*", Special("bx"),
                                           Special("ntid")),
                                  Special("tid"))),
            GStore("out", Reg("j"), Special("tid")),
        ), buffers=("idx", "out"))

        def run(mode):
            g = GlobalMemory(K20C)
            g.alloc("idx", 128, DType.INT, init=np.arange(128)[::-1].copy())
            g.alloc("out", 128, DType.INT)
            ck = CompiledKernel(k, K20C)
            st = ck.run(g, 4, (32, 1), mode=mode)
            return g["out"].data.copy(), st, ck
        out_b, st_b, ck = run(None)
        out_r, st_r, _ = run("reference")
        assert not ck._dynamic_fallback  # the check never tripped
        np.testing.assert_array_equal(out_b, out_r)
        assert counters(st_b) == counters(st_r)

    def test_uniform_store_checked_matches_reference(self):
        # every block stores to the same location: the last block wins in
        # both executors (same-statement collision), no fallback needed
        k = Kernel("uni", (
            GStore("out", const_int(0), Special("bx")),
        ), buffers=("out",))

        def run(mode):
            g = GlobalMemory(K20C)
            g.alloc("out", 4, DType.INT)
            ck = CompiledKernel(k, K20C)
            ck.run(g, 4, (32, 1), mode=mode)
            return g["out"].data.copy(), ck
        out_b, ck = run(None)
        out_r, _ = run("reference")
        assert not ck._dynamic_fallback
        np.testing.assert_array_equal(out_b, out_r)
        assert out_b[0] == 3  # the highest block's value

    def test_block_indexed_store_stays_batched(self):
        k = Kernel("perblk", (
            GStore("out", Special("bx"), Special("bx")),
        ), buffers=("out",))
        assert self._mode(k, 8, [("out", DType.INT, 8)]) == "batched"

    def test_looped_float_atomic_falls_back_int_does_not(self):
        def k(dt):
            return Kernel("atl", (
                Assign("i", const_int(0)),
                While(Bin("<", Reg("i"), const_int(4)), (
                    AtomicUpdate("acc", const_int(0), "+", Const(1, dt)),
                    Assign("i", Bin("+", Reg("i"), const_int(1))),
                )),
            ), buffers=("acc",))
        assert self._mode(k(DType.FLOAT), 4,
                          [("acc", DType.FLOAT, 1)]) == "reference"
        assert self._mode(k(DType.INT), 4,
                          [("acc", DType.INT, 1)]) == "batched"

    def test_fallback_still_produces_reference_results(self):
        def run(mode):
            g = GlobalMemory(K20C)
            g.alloc("buf", 64, DType.INT, init=np.arange(64))
            k = Kernel("inc", (
                GLoad("v", "buf", Special("tid")),
                GStore("buf", Special("tid"),
                       Bin("+", Reg("v"), const_int(1))),
            ), buffers=("buf",))
            st = CompiledKernel(k, K20C).run(g, 2, (32, 2), mode=mode)
            return g["buf"].data.copy(), st
        out_def, st_def = run(None)  # silently degrades to reference
        out_ref, st_ref = run("reference")
        np.testing.assert_array_equal(out_def, out_ref)
        assert counters(st_def) == counters(st_ref)


class TestBatchedErrors:
    def test_watchdog_trips(self):
        k = Kernel("spin", (
            Assign("i", const_int(0)),
            While(Bin("<", Reg("i"), const_int(1)), (
                Assign("x", Reg("i")),  # never advances i
            )),
            GStore("out", Special("bx"), Reg("i")),
        ), buffers=("out",))
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        with pytest.raises(WatchdogTimeoutError):
            CompiledKernel(k, K20C).run(g, 4, (32, 1), watchdog_budget=100)

    def test_sync_under_divergence_raises(self):
        k = Kernel("badsync", (
            If(Bin("<", Special("tx"), const_int(16)), (
                Sync(),
            )),
            GStore("out", Special("bx"), Special("bx")),
        ), buffers=("out",))
        g = GlobalMemory(K20C)
        g.alloc("out", 3, DType.INT)
        with pytest.raises(BarrierDivergenceError):
            CompiledKernel(k, K20C).run(g, 3, (32, 1))
