"""Differential suite: batched executor vs the reference executor.

Sweeps the paper's reduction-position grid (7 positions × four operators
× int/float) and asserts the two executor paths produce bitwise-equal
scalars/arrays and equal :class:`~repro.gpu.events.KernelStats`
counters, with and without an armed fault injector.  A golden pin of the
``worker vector`` case guards the counter values themselves (the
shared-memory hoist and the batched reuse accounting must not drift).
"""

import numpy as np
import pytest

from repro import acc
from repro.faults import FaultInjector, FaultPlan
from repro.testsuite.cases import POSITIONS, generate_cases, make_case

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)
STAT_FIELDS = (
    "blocks", "threads_per_block", "shared_bytes", "warp_inst_slots",
    "global_transactions", "l2_transactions", "global_bytes", "dram_bytes",
    "shared_accesses", "bank_conflict_extra", "barriers",
    "divergent_branches",
)


def counters(stats):
    return {f: getattr(stats, f) for f in STAT_FIELDS}


def run_case_mode(case, mode, faults=None):
    prog = acc.compile(case.source, **GEOM)
    inputs = case.make_inputs(np.random.default_rng(42))
    return prog.run(executor_mode=mode, faults=faults, **inputs)


def assert_identical(res_b, res_r):
    assert set(res_b.scalars) == set(res_r.scalars)
    for var in res_b.scalars:
        assert (np.asarray(res_b.scalars[var]).tobytes()
                == np.asarray(res_r.scalars[var]).tobytes()), var
    assert set(res_b.outputs) == set(res_r.outputs)
    for var in res_b.outputs:
        assert (res_b.outputs[var].tobytes()
                == res_r.outputs[var].tobytes()), var
    assert set(res_b.kernel_stats) == set(res_r.kernel_stats)
    for name in res_b.kernel_stats:
        assert (counters(res_b.kernel_stats[name])
                == counters(res_r.kernel_stats[name])), name


CASES = generate_cases(positions=POSITIONS, ops=("+", "*", "max", "min"),
                       ctypes=("int", "float"), size=160)


class TestGridDifferential:
    @pytest.mark.parametrize(
        "case", CASES, ids=[c.label.replace(" ", "_") for c in CASES])
    def test_modes_bit_identical(self, case):
        assert_identical(run_case_mode(case, "batched"),
                         run_case_mode(case, "reference"))


class TestFaultDifferential:
    # max_faults must be None here: a global injection cap is consumed in
    # execution order, which legitimately differs across executors; the
    # per-block RNG substreams make uncapped fault *sites* identical
    PLAN = FaultPlan(seed=1234, p_gload_flip=0.05, p_sload_flip=0.05,
                     max_faults=None)

    @pytest.mark.parametrize("position",
                             ["gang", "worker vector",
                              "gang worker vector"])
    def test_faulted_runs_identical(self, position):
        case = make_case(position, "+", "float", size=160)
        results, records = {}, {}
        for mode in ("batched", "reference"):
            inj = FaultInjector(self.PLAN)
            results[mode] = run_case_mode(case, mode, faults=inj)
            records[mode] = sorted(
                (r.site, r.kind, tuple(sorted(r.detail.items())))
                for r in inj.records)
        assert records["batched"] == records["reference"]
        assert records["batched"], "plan injected nothing — dead test"
        assert_identical(results["batched"], results["reference"])


class TestGoldenWorkerVector:
    """Pins the exact counters of one mid-size case in both modes.

    Captured from the pre-batching sequential executor; guards both the
    shared-memory hoist in the reference path (a reset must behave as a
    fresh allocation) and the batched segment-reuse finalization.
    """

    GOLDEN_MAIN = {
        "blocks": 4, "threads_per_block": 128, "shared_bytes": 512,
        "warp_inst_slots": 834, "global_transactions": 41,
        "l2_transactions": 57, "global_bytes": 5128, "dram_bytes": 5248,
        "shared_accesses": 64, "bank_conflict_extra": 0, "barriers": 6,
        "divergent_branches": 12,
    }
    GOLDEN_OUT_HEX = "00f00b4500d01045"

    @pytest.mark.parametrize("mode", ["batched", "reference"])
    def test_counters_and_result_pinned(self, mode):
        case = make_case("worker vector", "+", "float", size=640)
        prog = acc.compile(case.source, num_gangs=4, num_workers=4,
                           vector_length=32)
        inputs = case.make_inputs(np.random.default_rng(42))
        res = prog.run(executor_mode=mode, **inputs)
        assert counters(res.kernel_stats["acc_region_main"]) \
            == self.GOLDEN_MAIN
        assert res.outputs["out"].tobytes().hex() == self.GOLDEN_OUT_HEX
