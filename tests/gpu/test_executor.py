"""Executor tests: SIMT semantics with hand-built kernel IR.

These kernels are written the way the codegen writes them (window-sliding
``while`` loops per the paper's Fig. 3), so they double as an executable
specification for the lowering layer.
"""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import BarrierDivergenceError, SimulationError
from repro.gpu.device import K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import (
    Assign, AtomicUpdate, Bin, Call, Cast, Comment, Const, GLoad, GStore, If,
    Kernel, Param, Reg, Select, SLoad, SStore, SharedArraySpec, Special, Sync,
    UniformWhile, Un, While, const_int, dump,
)
from repro.gpu.memory import GlobalMemory


def run(kernel, gmem, grid=1, block=(32, 1), params=None, trace=False):
    return CompiledKernel(kernel, K20C).run(gmem, grid, block, params=params,
                                            trace=trace)


def window_copy_kernel(n_param="N"):
    """out[i] = in[i] * 2 over a window-sliding grid-stride loop (Fig. 3)."""
    i = Reg("i")
    body = (
        Assign("i", Bin("+", Bin("*", Special("bx"), Special("bdx")),
                        Special("tx"))),
        While(Bin("<", i, Param(n_param)), (
            GLoad("v", "in", i),
            GStore("out", i, Bin("*", Reg("v"), Const(2, DType.INT))),
            Assign("i", Bin("+", i, Bin("*", Special("gdx"), Special("bdx")))),
        )),
    )
    return Kernel("copy2x", body, params=(n_param,), buffers=("in", "out"))


class TestBasicExecution:
    def test_window_sliding_copy_exact(self):
        g = GlobalMemory(K20C)
        n = 1000  # not a multiple of anything convenient
        g.alloc("in", n, DType.INT, init=np.arange(n))
        g.alloc("out", n, DType.INT)
        run(window_copy_kernel(), g, grid=4, block=(64, 1),
            params={"N": np.int32(n)})
        np.testing.assert_array_equal(g["out"].data, np.arange(n) * 2)

    def test_independent_of_thread_count(self):
        # Paper §2.2: "independent of the number of threads used in each level"
        n = 257
        results = []
        for grid, bdx in [(1, 32), (3, 64), (9, 128), (192, 32)]:
            g = GlobalMemory(K20C)
            g.alloc("in", n, DType.INT, init=np.arange(n))
            g.alloc("out", n, DType.INT)
            run(window_copy_kernel(), g, grid=grid, block=(bdx, 1),
                params={"N": np.int32(n)})
            results.append(g["out"].data.copy())
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])

    def test_2d_block_indexing(self):
        # each thread writes its flattened id
        g = GlobalMemory(K20C)
        g.alloc("out", 64, DType.INT)
        k = Kernel("ids", (
            GStore("out", Special("tid"), Special("tid")),
        ), buffers=("out",))
        run(k, g, grid=1, block=(16, 4))
        np.testing.assert_array_equal(g["out"].data, np.arange(64))

    def test_ty_tx_decomposition(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 64, DType.INT)
        k = Kernel("xy", (
            GStore("out", Bin("+", Bin("*", Special("ty"), Special("bdx")),
                              Special("tx")),
                   Bin("+", Bin("*", Special("ty"), const_int(100)),
                       Special("tx"))),
        ), buffers=("out",))
        run(k, g, grid=1, block=(16, 4))
        expect = (np.arange(64) // 16) * 100 + np.arange(64) % 16
        np.testing.assert_array_equal(g["out"].data, expect)

    def test_param_missing_raises(self):
        g = GlobalMemory(K20C)
        g.alloc("in", 4, DType.INT)
        g.alloc("out", 4, DType.INT)
        with pytest.raises(SimulationError, match="not bound"):
            run(window_copy_kernel(), g)

    def test_unallocated_buffer_raises(self):
        g = GlobalMemory(K20C)
        g.alloc("in", 4, DType.INT)
        with pytest.raises(SimulationError, match="out"):
            run(window_copy_kernel(), g, params={"N": np.int32(4)})

    def test_register_read_before_write(self):
        k = Kernel("bad", (Assign("x", Reg("y")),))
        with pytest.raises(SimulationError, match="'y'"):
            run(k, GlobalMemory(K20C))


class TestControlFlow:
    def test_if_masks_both_sides(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 32, DType.INT)
        k = Kernel("branch", (
            If(Bin("<", Special("tx"), const_int(10)),
               (GStore("out", Special("tx"), const_int(1)),),
               (GStore("out", Special("tx"), const_int(2)),)),
        ), buffers=("out",))
        stats = run(k, g)
        expect = np.where(np.arange(32) < 10, 1, 2)
        np.testing.assert_array_equal(g["out"].data, expect)
        assert stats.divergent_branches == 1

    def test_uniform_branch_not_divergent(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 64, DType.INT)
        k = Kernel("warpsel", (
            # condition uniform within each warp: ty < 1 with bdx=32
            If(Bin("<", Special("ty"), const_int(1)),
               (GStore("out", Special("tid"), const_int(1)),)),
        ), buffers=("out",))
        stats = run(k, g, block=(32, 2))
        assert stats.divergent_branches == 0
        assert (g["out"].data[:32] == 1).all() and (g["out"].data[32:] == 0).all()

    def test_nested_if(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 32, DType.INT)
        k = Kernel("nest", (
            If(Bin("<", Special("tx"), const_int(16)), (
                If(Bin("<", Special("tx"), const_int(8)),
                   (GStore("out", Special("tx"), const_int(1)),),
                   (GStore("out", Special("tx"), const_int(2)),)),
            )),
        ), buffers=("out",))
        run(k, g)
        tx = np.arange(32)
        expect = np.where(tx < 8, 1, np.where(tx < 16, 2, 0))
        np.testing.assert_array_equal(g["out"].data, expect)

    def test_while_per_thread_trip_counts(self):
        # thread tx iterates tx times accumulating 1 each time
        g = GlobalMemory(K20C)
        g.alloc("out", 8, DType.INT)
        k = Kernel("tri", (
            Assign("acc", const_int(0)),
            Assign("i", const_int(0)),
            While(Bin("<", Reg("i"), Special("tx")), (
                Assign("acc", Bin("+", Reg("acc"), const_int(1))),
                Assign("i", Bin("+", Reg("i"), const_int(1))),
            )),
            GStore("out", Special("tx"), Reg("acc")),
        ), buffers=("out",))
        run(k, g, block=(8, 1))
        np.testing.assert_array_equal(g["out"].data, np.arange(8))

    def test_uniform_while_keeps_full_mask_for_sync(self):
        # trip counts differ across threads but sync stays legal
        g = GlobalMemory(K20C)
        g.alloc("out", 8, DType.INT)
        k = Kernel("uw", (
            Assign("j", Special("tx")),
            UniformWhile(Bin("<", Reg("j"), const_int(4)), (
                Sync(),
                If(Bin("<", Reg("j"), const_int(4)),
                   (GStore("out", Reg("j"), Reg("j")),)),
                Assign("j", Bin("+", Reg("j"), Special("bdx"))),
            )),
        ), buffers=("out",))
        stats = run(k, g, block=(8, 1))
        np.testing.assert_array_equal(g["out"].data[:4], np.arange(4))
        assert stats.barriers == 1  # max trip count across threads is 1

    def test_sync_under_divergence_raises(self):
        k = Kernel("badsync", (
            If(Bin("<", Special("tx"), const_int(4)), (Sync(),)),
        ))
        with pytest.raises(BarrierDivergenceError):
            run(k, GlobalMemory(K20C))

    def test_sync_inside_divergent_while_raises(self):
        k = Kernel("badsync2", (
            Assign("i", Special("tx")),
            While(Bin("<", Reg("i"), const_int(4)), (
                Sync(),
                Assign("i", Bin("+", Reg("i"), const_int(1))),
            )),
        ))
        with pytest.raises(BarrierDivergenceError):
            run(k, GlobalMemory(K20C))


class TestSharedAndSync:
    def test_shared_reverse_via_sync(self):
        # classic staging: write tx, sync, read reversed
        g = GlobalMemory(K20C)
        g.alloc("out", 32, DType.INT)
        k = Kernel("rev", (
            SStore("s", Special("tx"), Special("tx")),
            Sync(),
            SLoad("v", "s", Bin("-", const_int(31), Special("tx"))),
            GStore("out", Special("tx"), Reg("v")),
        ), buffers=("out",), shared=(SharedArraySpec("s", DType.INT, 32),))
        stats = run(k, g)
        np.testing.assert_array_equal(g["out"].data, 31 - np.arange(32))
        assert stats.barriers == 1

    def test_shared_fresh_per_block(self):
        # block 1 must not observe block 0's shared stores
        g = GlobalMemory(K20C)
        g.alloc("out", 2, DType.INT)
        k = Kernel("fresh", (
            If(Bin("==", Special("bx"), const_int(0)),
               (SStore("s", const_int(0), const_int(99)),)),
            Sync(),
            SLoad("v", "s", const_int(0)),
            If(Bin("==", Special("tx"), const_int(0)),
               (GStore("out", Special("bx"), Reg("v")),)),
        ), buffers=("out",), shared=(SharedArraySpec("s", DType.INT, 1),))
        run(k, g, grid=2)
        np.testing.assert_array_equal(g["out"].data, [99, 0])


class TestExpressions:
    def test_c_integer_division_truncates(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("cdiv", (
            Assign("a", Bin("-", Bin("*", Special("tx"), const_int(4)),
                            const_int(7))),  # -7, -3, 1, 5
            GStore("out", Special("tx"), Bin("/", Reg("a"), const_int(2))),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        np.testing.assert_array_equal(g["out"].data, [-3, -1, 0, 2])

    def test_c_modulo_sign_of_dividend(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("cmod", (
            Assign("a", Bin("-", Bin("*", Special("tx"), const_int(4)),
                            const_int(7))),
            GStore("out", Special("tx"), Bin("%", Reg("a"), const_int(3))),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        np.testing.assert_array_equal(g["out"].data, [-1, 0, 1, 2])

    def test_float_cast_truncates_toward_zero(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 2, DType.INT)
        k = Kernel("cast", (
            Assign("f", Select(Bin("==", Special("tx"), const_int(0)),
                               Const(-2.7, DType.FLOAT),
                               Const(2.7, DType.FLOAT))),
            GStore("out", Special("tx"), Cast(DType.INT, Reg("f"))),
        ), buffers=("out",))
        run(k, g, block=(2, 1))
        np.testing.assert_array_equal(g["out"].data, [-2, 2])

    def test_intrinsics(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 3, DType.DOUBLE)
        k = Kernel("intr", (
            GStore("out", const_int(0), Call("fmax", (
                Const(1.5, DType.DOUBLE), Const(2.5, DType.DOUBLE)))),
            GStore("out", const_int(1), Call("fabs", (
                Const(-3.0, DType.DOUBLE),))),
            GStore("out", const_int(2), Call("sqrt", (
                Const(9.0, DType.DOUBLE),))),
        ), buffers=("out",))
        run(k, g, block=(1, 1))
        np.testing.assert_allclose(g["out"].data, [2.5, 3.0, 3.0])

    def test_logical_ops(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("logic", (
            Assign("a", Bin("&&", Bin("<", Special("tx"), const_int(2)),
                            Bin(">", Special("tx"), const_int(0)))),
            GStore("out", Special("tx"), Cast(DType.INT, Reg("a"))),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        np.testing.assert_array_equal(g["out"].data, [0, 1, 0, 0])

    def test_unary_ops(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 2, DType.INT)
        k = Kernel("un", (
            GStore("out", const_int(0), Un("neg", const_int(5))),
            GStore("out", const_int(1), Un("inv", const_int(0))),
        ), buffers=("out",))
        run(k, g, block=(1, 1))
        np.testing.assert_array_equal(g["out"].data, [-5, -1])

    def test_int32_wraps_like_c(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 1, DType.INT)
        big = Const(2**31 - 1, DType.INT)
        k = Kernel("wrap", (
            GStore("out", const_int(0), Bin("+", big, Const(1, DType.INT))),
        ), buffers=("out",))
        run(k, g, block=(1, 1))
        assert g["out"].data[0] == -(2**31)


class TestAtomics:
    def test_atomic_add_combines_all_lanes(self):
        g = GlobalMemory(K20C)
        g.alloc("acc", 1, DType.INT)
        k = Kernel("atom", (
            AtomicUpdate("acc", const_int(0), "+", const_int(1)),
        ), buffers=("acc",))
        run(k, g, grid=3, block=(32, 2))
        assert g["acc"].data[0] == 3 * 64

    def test_atomic_max(self):
        g = GlobalMemory(K20C)
        g.alloc("acc", 1, DType.INT)
        k = Kernel("atommax", (
            AtomicUpdate("acc", const_int(0), "max", Special("tid")),
        ), buffers=("acc",))
        run(k, g, grid=1, block=(16, 2))
        assert g["acc"].data[0] == 31


class TestStatsAndDump:
    def test_instruction_slots_scale_with_warps(self):
        k = Kernel("nop", (Assign("x", const_int(0)),))
        s1 = run(k, GlobalMemory(K20C), block=(32, 1))
        s2 = run(k, GlobalMemory(K20C), block=(32, 4))
        assert s2.warp_inst_slots == 4 * s1.warp_inst_slots

    def test_comment_is_free(self):
        k1 = Kernel("c1", (Comment("hello"), Assign("x", const_int(0))))
        k2 = Kernel("c2", (Assign("x", const_int(0)),))
        s1 = run(k1, GlobalMemory(K20C))
        s2 = run(k2, GlobalMemory(K20C))
        assert s1.warp_inst_slots == s2.warp_inst_slots

    def test_trace_collects_events(self):
        g = GlobalMemory(K20C)
        g.alloc("in", 32, DType.INT)
        g.alloc("out", 32, DType.INT)
        stats = run(window_copy_kernel(), g, params={"N": np.int32(32)},
                    trace=True)
        kinds = {e.kind for e in stats.trace}
        assert "gload" in kinds and "gstore" in kinds

    def test_dump_renders_cuda_like_text(self):
        text = dump(window_copy_kernel())
        assert "__global__ void copy2x" in text
        assert "while" in text and "blockIdx.x" in text
        assert "gridDim.x" in text
