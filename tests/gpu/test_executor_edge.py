"""Executor edge cases: nesting, masking, register dtype transitions."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import SimulationError
from repro.gpu.device import K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import (
    Assign, Bin, Cast, GLoad, GStore, If, Kernel, Param, Reg, Select,
    SharedArraySpec, SLoad, SStore, Special, Sync, UniformWhile, While,
    const_int,
)
from repro.gpu.memory import GlobalMemory


def run(kernel, gmem, grid=1, block=(32, 1), params=None):
    return CompiledKernel(kernel, K20C).run(gmem, grid, block, params=params)


class TestNestedControlFlow:
    def test_uniform_while_inside_uniform_while(self):
        # outer worker-style lock-step loop with an inner one, plus syncs
        g = GlobalMemory(K20C)
        g.alloc("out", 16, DType.INT)
        k = Kernel("nest", (
            Assign("acc", const_int(0)),
            Assign("j", Special("ty")),
            UniformWhile(Bin("<", Reg("j"), const_int(3)), (
                Assign("i", Special("tx")),
                UniformWhile(Bin("&&", Bin("<", Reg("j"), const_int(3)),
                                 Bin("<", Reg("i"), const_int(5))), (
                    Sync(),
                    If(Bin("&&", Bin("<", Reg("j"), const_int(3)),
                           Bin("<", Reg("i"), const_int(5))),
                       (Assign("acc", Bin("+", Reg("acc"), const_int(1))),)),
                    Assign("i", Bin("+", Reg("i"), Special("bdx"))),
                )),
                Assign("j", Bin("+", Reg("j"), Special("bdy"))),
            )),
            GStore("out", Special("tid"), Reg("acc")),
        ), buffers=("out",))
        run(k, g, block=(8, 2))
        out = g["out"].data.reshape(2, 8)
        # worker ty handles j in {ty, ty+2}: ty=0 -> {0,2}, ty=1 -> {1}
        # lanes tx<5 count one per (j,i window)
        expect_rows = [2, 1]
        for ty in range(2):
            for tx in range(8):
                want = expect_rows[ty] * (1 if tx < 5 else 0)
                assert out[ty, tx] == want

    def test_while_inside_if(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 32, DType.INT)
        k = Kernel("wi", (
            Assign("acc", const_int(0)),
            If(Bin("<", Special("tx"), const_int(8)), (
                Assign("i", const_int(0)),
                While(Bin("<", Reg("i"), const_int(4)), (
                    Assign("acc", Bin("+", Reg("acc"), const_int(1))),
                    Assign("i", Bin("+", Reg("i"), const_int(1))),
                )),
            )),
            GStore("out", Special("tx"), Reg("acc")),
        ), buffers=("out",))
        run(k, g)
        expect = np.where(np.arange(32) < 8, 4, 0)
        np.testing.assert_array_equal(g["out"].data, expect)

    def test_zero_trip_loops(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("zt", (
            Assign("x", const_int(7)),
            While(Bin("<", const_int(5), const_int(0)),
                  (Assign("x", const_int(0)),)),
            UniformWhile(Bin("<", const_int(5), const_int(0)),
                         (Assign("x", const_int(0)),)),
            GStore("out", Special("tx"), Reg("x")),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        assert (g["out"].data == 7).all()


class TestRegisters:
    def test_register_dtype_transition_keeps_values(self):
        # same name reused at a different dtype (the lowering casts; here
        # we exercise the executor's re-materialization path)
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.DOUBLE)
        k = Kernel("dt", (
            Assign("x", const_int(3)),
            Assign("x", Cast(DType.DOUBLE, Reg("x"))),
            GStore("out", Special("tx"), Bin("*", Reg("x"),
                                             Reg("x"))),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        np.testing.assert_allclose(g["out"].data, 9.0)

    def test_partial_mask_assign_leaves_others(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 8, DType.INT)
        k = Kernel("pm", (
            Assign("x", const_int(1)),
            If(Bin("<", Special("tx"), const_int(4)),
               (Assign("x", const_int(2)),)),
            GStore("out", Special("tx"), Reg("x")),
        ), buffers=("out",))
        run(k, g, block=(8, 1))
        np.testing.assert_array_equal(g["out"].data,
                                      [2, 2, 2, 2, 1, 1, 1, 1])

    def test_select_with_scalar_branches(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("sel", (
            GStore("out", Special("tx"),
                   Select(Bin("==", Bin("%", Special("tx"), const_int(2)),
                              const_int(0)),
                          const_int(10), const_int(20))),
        ), buffers=("out",))
        run(k, g, block=(4, 1))
        np.testing.assert_array_equal(g["out"].data, [10, 20, 10, 20])


class TestSharedEdge:
    def test_shared_array_value_survives_across_syncs(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 1, DType.INT)
        k = Kernel("sv", (
            If(Bin("==", Special("tx"), const_int(3)),
               (SStore("s", const_int(0), const_int(42)),)),
            Sync(),
            Sync(),
            SLoad("v", "s", const_int(0)),
            If(Bin("==", Special("tx"), const_int(0)),
               (GStore("out", const_int(0), Reg("v")),)),
        ), buffers=("out",), shared=(SharedArraySpec("s", DType.INT, 1),))
        stats = run(k, g)
        assert g["out"].data[0] == 42
        assert stats.barriers == 2

    def test_param_scalar_promotes_in_expression(self):
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        k = Kernel("pp", (
            GStore("out", Special("tx"), Bin("+", Special("tx"),
                                             Param("off"))),
        ), params=("off",), buffers=("out",))
        run(k, g, block=(4, 1), params={"off": np.int32(100)})
        np.testing.assert_array_equal(g["out"].data, [100, 101, 102, 103])
