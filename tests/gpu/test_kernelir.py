"""Kernel-IR node and pretty-printer tests."""

import pytest

from repro.dtypes import DType
from repro.gpu import kernelir as K


class TestNodes:
    def test_specials_validated(self):
        K.Special("tx")
        with pytest.raises(ValueError):
            K.Special("threadIdx.z")

    def test_const_int_helper(self):
        c = K.const_int(7)
        assert c.value == 7 and c.dtype is DType.INT

    def test_kernels_are_hashable(self):
        k = K.Kernel("k", (K.Assign("x", K.const_int(1)),))
        assert hash(k) == hash(k)

    def test_shared_bytes_plain_sum(self):
        k = K.Kernel("k", (), shared=(
            K.SharedArraySpec("a", DType.FLOAT, 64),
            K.SharedArraySpec("b", DType.INT, 32),
        ))
        assert k.shared_bytes == 64 * 4 + 32 * 4

    def test_shared_bytes_overlay_counts_max(self):
        # the §3.3 mixed-dtype sharing: one region, widest dtype wins
        k = K.Kernel("k", (), shared=(
            K.SharedArraySpec("i", DType.INT, 128, overlay="red"),
            K.SharedArraySpec("d", DType.DOUBLE, 128, overlay="red"),
        ))
        assert k.shared_bytes == 128 * 8

    def test_shared_bytes_mixed_overlay_and_plain(self):
        k = K.Kernel("k", (), shared=(
            K.SharedArraySpec("i", DType.INT, 16, overlay="red"),
            K.SharedArraySpec("d", DType.DOUBLE, 16, overlay="red"),
            K.SharedArraySpec("p", DType.FLOAT, 8),
        ))
        assert k.shared_bytes == 16 * 8 + 8 * 4


class TestDump:
    def test_every_statement_kind_renders(self):
        body = (
            K.Comment("hello"),
            K.Assign("x", K.Bin("+", K.const_int(1), K.Param("n"))),
            K.GLoad("v", "buf", K.Special("tx")),
            K.GStore("buf", K.Special("tx"), K.Reg("v")),
            K.SLoad("w", "s", K.const_int(0)),
            K.SStore("s", K.const_int(0), K.Un("neg", K.Reg("w"))),
            K.If(K.Bin("<", K.Special("tx"), K.const_int(4)),
                 (K.Sync(),), (K.Assign("y", K.const_int(0)),)),
            K.While(K.Bin("<", K.Reg("x"), K.const_int(4)),
                    (K.Assign("x", K.Bin("+", K.Reg("x"), K.const_int(1))),)),
            K.UniformWhile(K.Bin("<", K.Reg("x"), K.const_int(8)),
                           (K.Sync(),)),
            K.AtomicUpdate("buf", K.const_int(0), "+", K.Reg("v")),
            K.Assign("z", K.Select(K.Bin("==", K.Special("ty"),
                                         K.const_int(0)),
                                   K.Call("fabs", (K.Reg("v"),)),
                                   K.Cast(DType.FLOAT, K.const_int(0)))),
        )
        k = K.Kernel("demo", body, params=("n",), buffers=("buf",),
                     shared=(K.SharedArraySpec("s", DType.FLOAT, 4),),
                     note="test kernel")
        text = K.dump(k)
        for token in ("// hello", "$n", "buf[", "s[", "__syncthreads",
                      "while (", "while-any (", "atomic buf[0] +=",
                      "fabs(", "(float)", "? ", "__shared__ float s[4]",
                      "// test kernel", "else"):
            assert token in text, f"missing {token!r} in dump"

    def test_unary_spellings(self):
        assert K._fmt_expr(K.Un("not", K.Reg("a"))) == "!a"
        assert K._fmt_expr(K.Un("inv", K.Reg("a"))) == "~a"
        assert K._fmt_expr(K.Un("neg", K.Reg("a"))) == "-a"

    def test_special_spellings_match_cuda(self):
        # Table 1 of the paper
        assert K._fmt_expr(K.Special("tx")) == "threadIdx.x"
        assert K._fmt_expr(K.Special("ty")) == "threadIdx.y"
        assert K._fmt_expr(K.Special("bx")) == "blockIdx.x"
        assert K._fmt_expr(K.Special("bdx")) == "blockDim.x"
        assert K._fmt_expr(K.Special("bdy")) == "blockDim.y"
        assert K._fmt_expr(K.Special("gdx")) == "gridDim.x"
