"""Launch compile-cache tests (keyed on kernel identity × device)."""

import numpy as np

from repro.dtypes import DType
from repro.gpu import GlobalMemory, K20C, launch
from repro.gpu.kernelir import Bin, GStore, Kernel, Special
from repro.gpu.launch import (
    _COMPILE_CACHE_MAX, compile_cache_clear, compile_cache_info,
)


def ids_kernel(name="ids"):
    return Kernel(name, (
        GStore("out", Bin("+", Bin("*", Special("bx"), Special("ntid")),
                          Special("tid")),
               Special("bx")),
    ), buffers=("out",))


def _gmem(device=K20C):
    g = GlobalMemory(device)
    g.alloc("out", 64, DType.INT)
    return g


class TestCompileCache:
    def setup_method(self):
        compile_cache_clear()

    def test_relaunch_hits_cache(self):
        # two *separately constructed* but structurally equal kernels
        # share one compilation: the key is kernel identity, not object id
        launch(ids_kernel(), _gmem(), grid_dim=2, block_dim=(16, 2))
        launch(ids_kernel(), _gmem(), grid_dim=2, block_dim=(16, 2))
        info = compile_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1
        assert info["size"] == 1

    def test_cached_launch_same_results(self):
        g1, g2 = _gmem(), _gmem()
        r1 = launch(ids_kernel(), g1, grid_dim=2, block_dim=(16, 2))
        r2 = launch(ids_kernel(), g2, grid_dim=2, block_dim=(16, 2))
        np.testing.assert_array_equal(g1["out"].data, g2["out"].data)
        assert r1.stats.summary() == r2.stats.summary()
        assert compile_cache_info()["hits"] == 1

    def test_different_device_is_a_different_entry(self):
        slow = K20C.with_overrides(kernel_launch_us=100.0)
        launch(ids_kernel(), _gmem(), grid_dim=1, block_dim=(32, 1))
        launch(ids_kernel(), _gmem(slow), grid_dim=1, block_dim=(32, 1),
               device=slow)
        info = compile_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 0
        assert info["size"] == 2

    def test_eviction_keeps_cache_bounded(self):
        for i in range(_COMPILE_CACHE_MAX + 8):
            launch(ids_kernel(f"k{i}"), _gmem(), grid_dim=1,
                   block_dim=(32, 1))
        info = compile_cache_info()
        assert info["size"] == _COMPILE_CACHE_MAX
        assert info["misses"] == _COMPILE_CACHE_MAX + 8
        assert info["evictions"] == 8

    def test_env_cap_bounds_cache(self, monkeypatch):
        # REPRO_LAUNCH_CACHE_MAX lets the service layer bound the memory
        # spent on compiled closures without reloading the module
        monkeypatch.setenv("REPRO_LAUNCH_CACHE_MAX", "4")
        for i in range(10):
            launch(ids_kernel(f"k{i}"), _gmem(), grid_dim=1,
                   block_dim=(32, 1))
        info = compile_cache_info()
        assert info["maxsize"] == 4
        assert info["size"] == 4
        assert info["evictions"] == 6
        # the LRU keeps the most recent entries: relaunching k9 hits
        launch(ids_kernel("k9"), _gmem(), grid_dim=1, block_dim=(32, 1))
        assert compile_cache_info()["hits"] == 1

    def test_env_cap_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAUNCH_CACHE_MAX", "not-a-number")
        assert compile_cache_info()["maxsize"] == _COMPILE_CACHE_MAX
        monkeypatch.setenv("REPRO_LAUNCH_CACHE_MAX", "0")
        assert compile_cache_info()["maxsize"] == 1  # clamps to >= 1

    def test_options_key_separates_entries(self):
        # same kernel compiled under different pipeline/option fingerprints
        # must not share a cache slot — a post-optimization kernel and its
        # minimal twin can otherwise alias
        launch(ids_kernel(), _gmem(), grid_dim=1, block_dim=(32, 1),
               options_key=("minimal", ()))
        launch(ids_kernel(), _gmem(), grid_dim=1, block_dim=(32, 1),
               options_key=("optimized", ("fuse-finish",)))
        info = compile_cache_info()
        assert info["misses"] == 2
        assert info["size"] == 2

    def test_sid_fingerprint_separates_structural_twins(self):
        # Stmt.sid is compare=False, so two structurally equal kernels
        # with different statement ids would collide without the sid
        # fingerprint in the key — corrupting per-statement attribution
        import dataclasses

        from repro.gpu.kernelir import stamp_sids

        k1 = stamp_sids(ids_kernel())
        k2 = ids_kernel()
        k2 = dataclasses.replace(k2, body=tuple(
            dataclasses.replace(s, sid=100 + i)
            for i, s in enumerate(k2.body)))
        assert k1 == k2  # structural equality ignores sids...
        launch(k1, _gmem(), grid_dim=1, block_dim=(32, 1))
        launch(k2, _gmem(), grid_dim=1, block_dim=(32, 1))
        info = compile_cache_info()  # ...but the cache must not
        assert info["misses"] == 2
        assert info["size"] == 2

    def test_mode_switch_never_serves_a_stale_closure(self):
        # executor mode and block_batch are launch-time arguments, NOT
        # part of the cache key: the per-mode artifacts live in separate
        # fields of the one cached CompiledKernel.  Switching modes on
        # the same kernel+device must share that entry (one miss) and
        # every mode must produce the reference answer — a closure that
        # baked in a mode or batch shape would serve stale results here
        from repro.gpu.kernelir import stamp_sids

        outs = {}
        for mode, bb in (("reference", None), ("batched", None),
                         ("trace", None), ("batched", 3), ("trace", 2),
                         ("reference", None)):
            g = _gmem()
            launch(stamp_sids(ids_kernel()), g, grid_dim=2,
                   block_dim=(16, 2), mode=mode, block_batch=bb)
            outs[(mode, bb)] = g["out"].data.copy()
        info = compile_cache_info()
        assert info["misses"] == 1  # one shared entry across all modes
        assert info["size"] == 1
        ref = outs[("reference", None)]
        for key, out in outs.items():
            np.testing.assert_array_equal(out, ref, err_msg=str(key))

    def test_fusion_fingerprint_separates_fused_twins(self):
        # kernelopt fusion decisions are part of the key: a kernel
        # rewritten by fuse-finish/cascade-fusion carries a fusion
        # marker in its note, and must never share a closure with its
        # unfused twin even under the same options_key
        import dataclasses

        from repro.gpu.launch import _fusion_fingerprint

        plain = ids_kernel()
        fused = dataclasses.replace(
            ids_kernel(), note="cascade-fused finish of s (from stage 0)")
        assert _fusion_fingerprint(plain) == ()
        assert _fusion_fingerprint(fused) == ("cascade-fused finish",)
        launch(plain, _gmem(), grid_dim=1, block_dim=(32, 1),
               options_key=("optimized",))
        launch(fused, _gmem(), grid_dim=1, block_dim=(32, 1),
               options_key=("optimized",))
        info = compile_cache_info()
        assert info["misses"] == 2
        assert info["size"] == 2

    def test_cascade_toggle_never_serves_a_stale_closure(self):
        # mirror of test_mode_switch_never_serves_a_stale_closure for
        # the cascade-fusion toggle: alternating fused / pinned-unfused
        # compiles of the same source must keep distinct compiled
        # closures and keep producing one set of result bits
        from repro import acc
        from repro.apps.softmax import SOFTMAX_SRC
        from repro.gpu.launch import _fusion_fingerprint

        # explicit pipeline pin: the toggle must fuse even when the
        # suite runs under REPRO_PASSES=minimal
        geom = dict(num_gangs=4, num_workers=2, vector_length=32,
                    pipeline="optimized")
        x = (np.arange(128) % 13).astype(np.float32)
        kw = dict(y=np.zeros_like(x), m=np.float32(-np.inf),
                  s=np.float32(0.0))
        bits = {}
        for tag, opts in (("fused", {}),
                          ("never", {"cascade_fusion": "never"}),
                          ("fused", {}),
                          ("never", {"cascade_fusion": "never"})):
            prog = acc.compile(SOFTMAX_SRC, **geom, **opts)
            bits.setdefault(tag, set()).add(
                prog.run(x=x, **kw).outputs["y"].tobytes())
            marks = {_fusion_fingerprint(k)
                     for k in prog.lowered.kernels}
            if tag == "fused":
                assert ("cascade-fused finish",) in marks
            else:
                assert not any("cascade-fused finish" in m
                               for mk in marks for m in mk)
        assert len(bits["fused"]) == 1
        assert bits["fused"] == bits["never"]  # bit-identical either way

    def test_clear_resets_counters(self):
        launch(ids_kernel(), _gmem(), grid_dim=1, block_dim=(32, 1))
        compile_cache_clear()
        assert compile_cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
            "maxsize": _COMPILE_CACHE_MAX,
        }
