"""Trace-compiled executor: eligibility, bit-identity, checked fallback.

The trace executor compiles a kernel into a generated Python function of
whole-array NumPy operations (see :mod:`repro.gpu.executor_trace`).  Its
contract mirrors the batched executor's: results, every
:class:`~repro.gpu.events.KernelStats` counter, and the per-statement
attribution table are bit-identical to the reference interpreter — and
whenever the generated code cannot honor a launch (static ineligibility,
runtime hazards, armed fault injectors, TraceEvent collection), the
launch silently degrades down the batched/reference chain rather than
diverge.  These tests pin both halves: identity where trace runs, and
the checked fallback (with its timeline decision record) where it
cannot.
"""

import dataclasses

import numpy as np
import pytest

from repro import acc
from repro.dtypes import DType
from repro.errors import WatchdogTimeoutError
from repro.faults import FaultInjector, FaultPlan
from repro.gpu import GlobalMemory, K20C
from repro.gpu.executor import CompiledKernel
from repro.gpu.executor_trace import (
    analyze_trace_safety, compile_trace_source, emit_trace_source,
)
from repro.gpu.kernelir import (
    AtomicUpdate, Bin, Const, GLoad, GStore, Kernel, Reg, Special,
    stamp_sids,
)
from repro.obs import timeline
from repro.testsuite.cases import generate_cases

MODES = ("reference", "batched", "trace")

_SUM_SRC = '''float a[n];
float total = 1.5;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
'''


def _stats_dict(st):
    d = {f.name: getattr(st, f.name) for f in dataclasses.fields(st)
         if f.name not in ("trace", "attribution")}
    d["attr"] = st.attribution.as_dict() if st.attribution else None
    return d


def _run_all_modes(prog, inputs):
    out = {}
    for mode in MODES:
        res = prog.run(executor_mode=mode, attribution=True, **inputs)
        bits = {n: np.asarray(v).tobytes() for n, v in res.scalars.items()}
        bits.update({n: np.asarray(v).tobytes()
                     for n, v in res.outputs.items()})
        ks = {k: _stats_dict(s) for k, s in sorted(res.kernel_stats.items())}
        out[mode] = (bits, ks)
    return out


class TestBitIdentity:
    """Results, counters, and attribution match the interpreters."""

    CASES = generate_cases(size=193)[::5]

    @pytest.mark.parametrize("case", CASES, ids=[c.label for c in CASES])
    def test_table2_sample_all_modes_identical(self, case):
        prog = acc.compile(case.source, num_gangs=4, num_workers=2,
                           vector_length=32)
        inputs = case.make_inputs(np.random.default_rng(11))
        out = _run_all_modes(prog, inputs)
        for mode in MODES[1:]:
            assert out[mode] == out["reference"], \
                f"{mode} diverged from reference on {case.label}"

    def test_non_warp_multiple_block_width(self):
        # blockDim.x = 48 is not a multiple of the warp size, so warps
        # span worker rows and the emitter's WOK guard must route every
        # warp-uniform access down the per-lane fallback path
        case = generate_cases(positions=("worker vector",), ops=("+",),
                              ctypes=("float",), size=193)[0]
        prog = acc.compile(case.source, num_gangs=3, num_workers=2,
                           vector_length=48)
        inputs = case.make_inputs(np.random.default_rng(5))
        out = _run_all_modes(prog, inputs)
        for mode in MODES[1:]:
            assert out[mode] == out["reference"], mode

    def test_trace_respects_block_batch_chunking(self):
        prog = acc.compile(_SUM_SRC, num_gangs=8, num_workers=2,
                           vector_length=32)
        a = ((np.arange(997) % 13) / 8.0).astype(np.float32)
        ref = prog.run(executor_mode="reference", a=a)
        for bb in (1, 3, 8):
            res = prog.run(executor_mode="trace", block_batch=bb, a=a)
            assert (res.scalars["total"].tobytes()
                    == ref.scalars["total"].tobytes()), bb


class TestEligibility:
    def test_reduction_kernels_are_eligible(self):
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        assert prog.trace_src  # the trace-codegen pass emitted something
        for name, ck in prog._compiled.items():
            if name in prog.trace_src:
                assert ck.trace_safety.eligible

    def test_atomic_kernel_is_ineligible_and_demotes(self):
        k = stamp_sids(Kernel("atom", (
            AtomicUpdate("out", Const(0, DType.INT), "+",
                         Special("tid")),
        ), buffers=("out",)))
        ck = CompiledKernel(k, K20C)
        verdict = ck.trace_safety
        assert not verdict.eligible
        assert "atomic" in verdict.reason
        g = GlobalMemory(K20C)
        g.alloc("out", 4, DType.INT)
        # requesting trace must transparently run the demoted mode
        assert ck.effective_mode("trace", 2, g) != "trace"
        ck.run(g, 2, (32, 1), mode="trace")
        g2 = GlobalMemory(K20C)
        g2.alloc("out", 4, DType.INT)
        CompiledKernel(k, K20C).run(g2, 2, (32, 1), mode="reference")
        np.testing.assert_array_equal(g["out"].data, g2["out"].data)

    def test_codegen_is_deterministic(self):
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        for name, src in prog.trace_src.items():
            kernel = next(k for k in prog.lowered.kernels
                          if k.name == name)
            assert emit_trace_source(kernel, prog.device) == src
            fn, slot_sids = compile_trace_source(src)
            assert callable(fn)

    def test_program_attaches_pass_artifact(self):
        # the trace-codegen pass output rides on the Program and is
        # adopted by the compiled kernels — the first trace launch skips
        # codegen entirely
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        name = prog.lowered.main_kernel.name
        assert prog._compiled[name].trace_source == prog.trace_src[name]
        rec = [r for r in prog.pass_records if r.name == "trace-codegen"]
        assert rec and "emitted" in rec[0].note


class TestCheckedFallback:
    """Satellite: trace under hazards/faults degrades, never diverges."""

    def _rmw_kernel(self):
        # later blocks read locations earlier blocks wrote: statically
        # unprovable, runtime hazard on the first launch
        return stamp_sids(Kernel("inc", (
            GLoad("v", "buf", Special("tid")),
            GStore("buf", Special("tid"),
                   Bin("+", Reg("v"), Const(1, DType.INT))),
        ), buffers=("buf",)))

    def test_runtime_hazard_demotes_and_matches_reference(self):
        def run(mode):
            g = GlobalMemory(K20C)
            g.alloc("buf", 64, DType.INT, init=np.arange(64))
            ck = CompiledKernel(self._rmw_kernel(), K20C)
            ck.run(g, 2, (32, 2), mode=mode)
            return g["buf"].data.copy(), ck
        out_tr, ck = run("trace")
        out_ref, _ = run("reference")
        np.testing.assert_array_equal(out_tr, out_ref)
        # the hazard verdict sticks: later trace requests resolve lower
        g = GlobalMemory(K20C)
        g.alloc("buf", 64, DType.INT)
        assert ck.effective_mode("trace", 2, g) == "reference"

    def test_armed_faults_demote_with_identical_injection(self):
        # an armed injector demotes trace to the batched resolution; the
        # injected faults (seeded per plan) must land identically, so a
        # trace-requested run equals a batched-requested run bitwise
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = ((np.arange(500) % 7) / 4.0).astype(np.float32)
        plan = FaultPlan.single("gload-flip", seed=99)
        res_tr = prog.run(executor_mode="trace", faults=plan,
                          max_attempts=1, a=a)
        res_ba = prog.run(executor_mode="batched", faults=plan,
                          max_attempts=1, a=a)
        assert (res_tr.scalars["total"].tobytes()
                == res_ba.scalars["total"].tobytes())

    def test_demotion_decision_lands_on_timeline(self):
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = np.ones(100, np.float32)
        inj = FaultInjector(FaultPlan(seed=3))  # armed, nothing fires
        with timeline.enabled() as tl:
            prog.run(executor_mode="trace", faults=inj, a=a)
            decisions = [e for e in tl.events("gpu", "decision")
                         if e.name == "executor-mode"]
        assert decisions
        for e in decisions:
            assert e.attrs["requested"] == "trace"
            assert e.attrs["mode"] != "trace"
            assert e.attrs["fallback"] is True

    def test_trace_run_decision_is_not_a_fallback(self):
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = np.ones(100, np.float32)
        with timeline.enabled() as tl:
            prog.run(executor_mode="trace", a=a)
            decisions = [e for e in tl.events("gpu", "decision")
                         if e.name == "executor-mode"
                         and e.attrs["mode"] == "trace"]
        assert decisions  # at least the main kernel ran traced
        for e in decisions:
            assert e.attrs["fallback"] is False

    def test_trace_event_collection_demotes(self):
        # TraceEvent collection is a per-access interpreter concern the
        # generated code omits — requesting both must serve the events
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = np.ones(100, np.float32)
        res = prog.run(executor_mode="trace", trace=True, a=a)
        assert any(st.trace for st in res.kernel_stats.values())
        plain = prog.run(executor_mode="trace", a=a)
        assert (res.scalars["total"].tobytes()
                == plain.scalars["total"].tobytes())

    def test_watchdog_fires_under_trace(self):
        prog = acc.compile(_SUM_SRC, num_gangs=4, num_workers=2,
                           vector_length=32)
        a = np.ones(1 << 14, np.float32)
        with pytest.raises(WatchdogTimeoutError):
            prog.run(executor_mode="trace", watchdog_budget=2, a=a)
