"""IR builder tests: symbols, typing, index flattening."""

import pytest

from repro.dtypes import DType
from repro.errors import AnalysisError
from repro.frontend.cparser import parse_region
from repro.ir import nodes as N
from repro.ir.builder import build_region


def build(src, **kw):
    return build_region(parse_region(src), **kw)


FIG4A = """
float input[NK][NJ][NI];
float temp[NK][NJ][NI];
#pragma acc parallel copyin(input) copyout(temp)
{
  #pragma acc loop gang
  for(k=0; k<NK; k++){
    #pragma acc loop worker
    for(j=0; j<NJ; j++){
      int i_sum = j;
      #pragma acc loop vector reduction(+:i_sum)
      for(i=0; i<NI; i++)
        i_sum += input[k][j][i];
      temp[k][j][0] = i_sum;
    }
  }
}
"""


class TestSymbols:
    def test_arrays_from_clauses(self):
        r = build(FIG4A)
        assert r.array("input").transfer == "copyin"
        assert r.array("temp").transfer == "copyout"
        assert r.array("input").dtype is DType.FLOAT
        assert r.array("input").extents == ("NK", "NJ", "NI")

    def test_extent_scalars_bound_from_shape(self):
        r = build(FIG4A)
        nk = r.scalar("NK")
        assert nk.dtype is DType.INT
        assert nk.from_shape == ("input", 0)

    def test_free_identifiers_become_int_params(self):
        r = build("""
        float a[n];
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:m)
        for(i=0; i<count; i++)
          m += a[i];
        """)
        assert r.scalar("count").dtype is DType.INT
        assert r.scalar("m").dtype is DType.INT

    def test_preamble_scalar_with_init(self):
        r = build("""
        double sum = 0.0;
        float a[n];
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(+:sum)
        for(i=0; i<n; i++)
          sum += a[i];
        """)
        s = r.scalar("sum")
        assert s.dtype is DType.DOUBLE
        assert s.init.value == 0.0

    def test_undeclared_clause_array_rejected(self):
        with pytest.raises(AnalysisError, match="no\\s+declaration"):
            build("""
            #pragma acc parallel copyin(mystery)
            #pragma acc loop gang
            for(i=0; i<n; i++)
              x = mystery[i];
            """)

    def test_array_dtypes_kwarg_declares_flat_array(self):
        r = build("""
        #pragma acc parallel copyin(A)
        #pragma acc loop gang vector reduction(+:c)
        for(i=0; i<n; i++)
          c += A[i];
        """, array_dtypes={"A": "float", "c": "float"} if False else
            {"A": "float"})
        assert r.array("A").dtype is DType.FLOAT
        assert r.array("A").extents == ()

    def test_undeclared_preamble_array_defaults_to_copy(self):
        r = build("""
        float extra[n];
        float a[n];
        #pragma acc parallel copyin(a)
        #pragma acc loop gang
        for(i=0; i<n; i++)
          extra[i] = a[i];
        """)
        assert r.array("extra").transfer == "copy"

    def test_launch_config_from_directive(self):
        r = build("""
        float a[n];
        #pragma acc parallel copyin(a) num_gangs(64) num_workers(4) \\
            vector_length(32)
        #pragma acc loop gang
        for(i=0; i<n; i++)
          a[i] = a[i];
        """)
        assert (r.num_gangs, r.num_workers, r.vector_length) == (64, 4, 32)


class TestTyping:
    def test_index_flattening_row_major(self):
        r = build(FIG4A)
        gang = r.body[0]
        worker = gang.body[0]
        vec = worker.body[1]
        accum = vec.body[0]
        # i_sum = i_sum + input[(k*NJ + j)*NI + i]
        ref = accum.value.b if isinstance(accum.value, N.IBin) else None
        # find the array ref
        refs = []

        def scan(e):
            if isinstance(e, N.IArrayRef):
                refs.append(e)
            for f in ("a", "b", "cond"):
                if hasattr(e, f):
                    scan(getattr(e, f))
            if hasattr(e, "args"):
                for a in e.args:
                    scan(a)
        scan(accum.value)
        assert len(refs) == 1
        idx = refs[0].index
        assert isinstance(idx, N.IBin) and idx.op == "+"
        assert idx.dtype is DType.INT

    def test_mixed_int_float_accumulation_casts(self):
        r = build(FIG4A)
        worker = r.body[0].body[0]
        decl = worker.body[0]
        assert isinstance(decl, N.IDecl)
        assert decl.dtype is DType.INT  # int i_sum = j;
        accum = worker.body[1].body[0]
        # i_sum (int) += input[...] (float): value cast back to int
        assert accum.target.dtype is DType.INT
        assert accum.value.dtype is DType.INT

    def test_double_literal_vs_float_literal(self):
        r = build("""
        float a[n];
        double d = 0.0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:d)
        for(i=0; i<n; i++)
          d += a[i] * 2.0;
        """)
        loop = r.body[0]
        accum = loop.body[0]
        assert accum.value.dtype is DType.DOUBLE

    def test_comparison_yields_bool(self):
        r = build("""
        float x[n];
        float y[n];
        #pragma acc parallel copyin(x, y)
        #pragma acc loop gang vector reduction(+:m)
        for(i=0; i<n; i++){
          if(x[i]*x[i] + y[i]*y[i] < 1.0)
            m += 1;
        }
        """)
        iff = r.body[0].body[0]
        assert isinstance(iff, N.IIf)
        assert iff.cond.dtype is DType.BOOL

    def test_modulo_on_float_rejected(self):
        with pytest.raises(AnalysisError, match="fmod|integer"):
            build("""
            float a[n];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for(i=0; i<n; i++)
              a[i] = a[i] % 2.0;
            """)

    def test_unknown_function_rejected(self):
        with pytest.raises(AnalysisError, match="unknown function"):
            build("""
            float a[n];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for(i=0; i<n; i++)
              a[i] = mystery_fn(a[i]);
            """)

    def test_rand_rejected_with_guidance(self):
        with pytest.raises(AnalysisError, match="host"):
            build("""
            float a[n];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for(i=0; i<n; i++)
              a[i] = rand();
            """)

    def test_wrong_subscript_count(self):
        with pytest.raises(AnalysisError, match="dimension"):
            build("""
            float a[NK][NJ];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for(i=0; i<NK; i++)
              x = a[i];
            """)

    def test_array_decl_inside_region_rejected(self):
        with pytest.raises(AnalysisError, match="inside the compute region"):
            build("""
            float a[n];
            #pragma acc parallel copyin(a)
            {
              float scratch[4];
              #pragma acc loop gang
              for(i=0; i<n; i++)
                a[i] = a[i];
            }
            """)
