"""IR pretty-printer tests."""

from repro.frontend.cparser import parse_region
from repro.ir.analysis import analyze_region
from repro.ir.builder import build_region
from repro.ir.pprint import format_plan, format_region

SRC = """
float input[NK][NI];
float out[NK];
double s = 2.5;
#pragma acc parallel copyin(input) copyout(out) num_gangs(8)
{
  #pragma acc loop gang
  for (k = 0; k < NK; k++) {
    float row = 0.0f;
    #pragma acc loop vector reduction(+:row)
    for (i = 0; i < NI; i++) {
      if (input[k][i] > 0.0f)
        row += input[k][i];
    }
    out[k] = row;
  }
}
"""


class TestFormatRegion:
    def test_symbol_tables(self):
        text = format_region(build_region(parse_region(SRC)))
        assert "float input[NKxNI]  (copyin)" in text
        assert "float out[NK]  (copyout)" in text
        assert "int NK  <- shape of input[0]" in text
        assert "double s  init 2.5" in text
        assert "launch: gangs=8" in text

    def test_loop_annotations(self):
        text = format_region(build_region(parse_region(SRC)))
        assert "[gang]" in text
        assert "[vector reduction(+:row)]" in text

    def test_statements_render(self):
        text = format_region(build_region(parse_region(SRC)))
        assert "float row = 0.0f;" in text
        assert "if ((input[((k * NI) + i)] > 0.0f))" in text
        assert "out[k] = row;" in text

    def test_unannotated_marker(self):
        src = SRC.replace("#pragma acc loop vector reduction(+:row)\n", "")
        text = format_region(build_region(parse_region(src)))
        assert "[unannotated]" in text


class TestFormatPlan:
    def test_plan_rendering(self):
        region = build_region(parse_region(SRC))
        plan = analyze_region(region, num_workers=1, vector_length=64)
        text = format_plan(plan)
        assert "row: op '+'" in text
        assert "span vector" in text
        assert "lock-step loops" in text

    def test_no_reductions(self):
        src = """
        float a[n];
        #pragma acc parallel copy(a)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            a[i] = a[i];
        """
        region = build_region(parse_region(src))
        plan = analyze_region(region, num_workers=1, vector_length=32)
        assert "(no reductions)" in format_plan(plan)

    def test_padded_levels_shown(self):
        src = """
        float a[n];
        long s = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:s)
        for (i = 0; i < n; i++)
            s += a[i];
        """
        region = build_region(parse_region(src))
        plan = analyze_region(region, num_workers=8, vector_length=32)
        assert "padded: worker" in format_plan(plan)
