"""Host-interpreter tests: the sequential C-semantics oracle."""

import numpy as np
import pytest

from repro.errors import RuntimeDataError
from repro.frontend.cparser import parse_region
from repro.ir.builder import build_region
from repro.ir.interp import run_host


def host(src, **kw):
    return run_host(build_region(parse_region(src)), **kw)


class TestBasics:
    def test_simple_sum(self):
        r = host("""
        float a[n];
        long total = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang vector reduction(+:total)
        for (i = 0; i < n; i++)
            total += a[i];
        """, a=np.arange(100, dtype=np.float32))
        assert r.scalars["total"] == 4950

    def test_array_output(self):
        r = host("""
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            b[i] = a[i] * 2.0f + 1.0f;
        """, a=np.arange(8, dtype=np.float32), b=np.zeros(8, np.float32))
        np.testing.assert_allclose(r.arrays["b"],
                                   np.arange(8) * 2.0 + 1.0)

    def test_copyout_starts_zeroed(self):
        r = host("""
        float a[n];
        float b[n];
        #pragma acc parallel copyin(a) copyout(b)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            b[0] = a[0];
        """, a=np.ones(4, np.float32), b=np.full(4, 9.0, np.float32))
        # entries never written must be 0 (device buffers are zero-alloc'd)
        np.testing.assert_allclose(r.arrays["b"], [1, 0, 0, 0])

    def test_int_wraparound_matches_c(self):
        r = host("""
        int a[n];
        int p = 1;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(*:p)
        for (i = 0; i < n; i++)
            p *= a[i];
        """, a=np.full(40, 3, np.int32))
        expect = np.int32(1)
        with np.errstate(over="ignore"):
            for _ in range(40):
                expect = np.int32(expect * 3)
        assert r.scalars["p"] == expect

    def test_nested_loops_and_if(self):
        r = host("""
        int a[NK][NI];
        int cnt = 0;
        #pragma acc parallel copyin(a)
        {
          #pragma acc loop gang reduction(+:cnt)
          for (k = 0; k < NK; k++) {
            #pragma acc loop vector
            for (i = 0; i < NI; i++) {
              if (a[k][i] > 2)
                cnt += 1;
            }
          }
        }
        """, a=np.arange(12).reshape(3, 4).astype(np.int32))
        assert r.scalars["cnt"] == int((np.arange(12) > 2).sum())

    def test_intrinsics(self):
        r = host("""
        double a[n];
        double m = 0.0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(max:m)
        for (i = 0; i < n; i++)
            m = fmax(m, fabs(a[i]));
        """, a=np.array([1.0, -7.5, 3.0]))
        assert r.scalars["m"] == 7.5

    def test_missing_array_raises(self):
        with pytest.raises(RuntimeDataError):
            host("""
            float a[n];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang
            for (i = 0; i < n; i++)
                a[i] = a[i];
            """)

    def test_out_of_bounds_detected(self):
        with pytest.raises(RuntimeDataError, match="out of bounds"):
            host("""
            float a[n];
            #pragma acc parallel copy(a)
            #pragma acc loop gang
            for (i = 0; i < n; i++)
                a[i + 1] = a[i];
            """, a=np.ones(4, np.float32))

    def test_inputs_not_mutated(self):
        a = np.ones(4, np.float32)
        host("""
        float a[n];
        #pragma acc parallel copy(a)
        #pragma acc loop gang
        for (i = 0; i < n; i++)
            a[i] = 5.0f;
        """, a=a)
        assert (a == 1).all()


class TestAgainstSimulator:
    """The oracle and the device agree on every testsuite case."""

    @pytest.mark.parametrize("position", [
        "gang", "worker", "vector", "gang worker", "worker vector",
        "gang worker vector", "same line gang worker vector",
    ])
    @pytest.mark.parametrize("op", ["+", "*"])
    def test_testsuite_cases(self, position, op):
        from repro import acc
        from repro.frontend.cparser import parse_region
        from repro.ir.builder import build_region
        from repro.testsuite.cases import make_case

        case = make_case(position, op, "int", size=192)
        region = build_region(parse_region(case.source))
        rng = np.random.default_rng(11)
        inputs = case.make_inputs(rng)

        ref = run_host(region, **inputs)
        prog = acc.compile(case.source, num_gangs=4, num_workers=2,
                           vector_length=32)
        res = prog.run(**inputs)

        for kind, name, _ in case.expected(inputs):
            if kind == "scalar":
                assert res.scalars[name] == ref.scalars[name]
            else:
                np.testing.assert_array_equal(res.outputs[name],
                                              ref.arrays[name])
