"""Reduction-span inference and structural validation tests (§3.2.1)."""

import pytest

from repro.errors import AnalysisError
from repro.frontend.cparser import parse_region
from repro.ir.analysis import analyze_region
from repro.ir.builder import build_region


def plan(src, num_workers=8, vector_length=128, infer=True):
    region = build_region(parse_region(src))
    return analyze_region(region, num_workers=num_workers,
                          vector_length=vector_length, infer_span=infer)


TRIPLE = """
float input[NK][NJ][NI];
float temp[NK][NJ][NI];
#pragma acc parallel copyin(input) copyout(temp)
{{
  #pragma acc loop gang {gang_red}
  for(k=0; k<NK; k++){{
    {gdecl}
    #pragma acc loop worker {worker_red}
    for(j=0; j<NJ; j++){{
      {wdecl}
      #pragma acc loop vector {vector_red}
      for(i=0; i<NI; i++)
        {vbody}
      {wtail}
    }}
    {gtail}
  }}
}}
"""


def triple(gang_red="", worker_red="", vector_red="", gdecl="", wdecl="",
           vbody="temp[k][j][i]=input[k][j][i];", wtail="", gtail=""):
    return TRIPLE.format(gang_red=gang_red, worker_red=worker_red,
                         vector_red=vector_red, gdecl=gdecl, wdecl=wdecl,
                         vbody=vbody, wtail=wtail, gtail=gtail)


class TestSingleLevelSpans:
    def test_vector_only(self):
        p = plan(triple(wdecl="int i_sum = j;",
                        vector_red="reduction(+:i_sum)",
                        vbody="i_sum += input[k][j][i];",
                        wtail="temp[k][j][0] = i_sum;"))
        (info,) = p.all_reductions
        assert info.span == ("vector",)
        assert info.same_line
        assert not info.gang_involved

    def test_worker_only(self):
        p = plan(triple(gdecl="int j_sum = k;",
                        worker_red="reduction(+:j_sum)",
                        vbody="temp[k][j][i]=input[k][j][i];",
                        wtail="j_sum += temp[k][j][0];",
                        gtail="temp[k][0][0] = j_sum;"))
        (info,) = p.all_reductions
        assert info.span == ("worker",)

    def test_gang_only(self):
        p = plan("""
        float input[NK][NJ][NI];
        float temp[NK][NJ][NI];
        double sum = 0.0;
        #pragma acc parallel copyin(input) create(temp)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop worker
            for(j=0; j<NJ; j++){
              #pragma acc loop vector
              for(i=0; i<NI; i++)
                temp[k][j][i]=input[k][j][i];
            }
            sum += temp[k][0][0];
          }
        }
        """)
        (info,) = p.all_reductions
        assert info.span == ("gang",)
        assert info.gang_involved


class TestSpanInference:
    """The paper's Fig. 9: clause on worker, accumulation in vector loop."""

    FIG9 = """
    float input[NK][NJ][NI];
    float temp[NK];
    #pragma acc parallel copyin(input) copyout(temp)
    {
      #pragma acc loop gang
      for(k=0; k<NK; k++){
        int j_sum = k;
        #pragma acc loop worker reduction(+:j_sum)
        for(j=0; j<NJ; j++){
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            j_sum += input[k][j][i];
        }
        temp[k] = j_sum;
      }
    }
    """

    def test_openuh_infers_worker_vector_span(self):
        p = plan(self.FIG9)
        (info,) = p.all_reductions
        assert info.span == ("worker", "vector")
        assert not info.same_line

    def test_without_inference_span_is_clause_only(self):
        # models compilers that require the clause on every level
        p = plan(self.FIG9, infer=False)
        (info,) = p.all_reductions
        assert info.span == ("worker",)

    def test_clause_on_both_levels_widens_span(self):
        # CAPS style: reduction clause on both worker and vector loops —
        # even without inference, explicit clauses declare the full span
        src = self.FIG9.replace(
            "#pragma acc loop vector",
            "#pragma acc loop vector reduction(+:j_sum)")
        p = plan(src, infer=False)
        infos = p.all_reductions
        assert len(infos) == 1  # nested clause folded into the outer plan
        assert infos[0].span == ("worker", "vector")

    def test_gang_worker_vector_span(self):
        p = plan("""
        float input[NK][NJ][NI];
        int sum = 0;
        #pragma acc parallel copyin(input)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop worker
            for(j=0; j<NJ; j++){
              #pragma acc loop vector
              for(i=0; i<NI; i++)
                sum += input[k][j][i];
            }
          }
        }
        """)
        (info,) = p.all_reductions
        assert info.span == ("gang", "worker", "vector")

    def test_same_line_gang_worker_vector(self):
        p = plan("""
        float a[n];
        int sum = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(+:sum)
        for(i=0; i<n; i++)
          sum += a[i];
        """)
        (info,) = p.all_reductions
        assert info.span == ("gang", "worker", "vector")
        assert info.same_line

    def test_accumulation_in_seq_loop_adds_no_levels(self):
        p = plan("""
        float a[NK][NJ];
        int sum = 0;
        #pragma acc parallel copyin(a)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop seq
            for(j=0; j<NJ; j++)
              sum += a[k][j];
          }
        }
        """)
        (info,) = p.all_reductions
        assert info.span == ("gang",)


class TestStructuralRules:
    def test_gang_vector_different_loops_rejected_with_workers(self):
        src = """
        float a[NK][NI];
        int sum = 0;
        #pragma acc parallel copyin(a)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop vector
            for(i=0; i<NI; i++)
              sum += a[k][i];
          }
        }
        """
        with pytest.raises(AnalysisError, match="worker"):
            plan(src, num_workers=8)

    def test_gang_vector_ok_with_single_worker(self):
        src = """
        float a[NK][NI];
        int sum = 0;
        #pragma acc parallel copyin(a)
        {
          #pragma acc loop gang reduction(+:sum)
          for(k=0; k<NK; k++){
            #pragma acc loop vector
            for(i=0; i<NI; i++)
              sum += a[k][i];
          }
        }
        """
        p = plan(src, num_workers=1)
        (info,) = p.all_reductions
        assert info.span == ("gang", "worker", "vector")

    def test_same_line_gang_vector_allowed(self):
        # Monte Carlo π shape (Fig. 13(c))
        p = plan("""
        float x[n];
        float y[n];
        int m = 0;
        #pragma acc parallel copyin(x,y)
        #pragma acc loop gang vector reduction(+:m)
        for(i=0; i<n; i++){
          if(x[i]*x[i] + y[i]*y[i] < 1.0f)
            m += 1;
        }
        """, num_workers=8)
        (info,) = p.all_reductions
        assert set(info.span) == {"gang", "worker", "vector"}

    def test_vector_inside_vector_rejected(self):
        with pytest.raises(AnalysisError, match="already distributed"):
            plan("""
            float a[NK][NI];
            #pragma acc parallel copyin(a)
            {
              #pragma acc loop vector
              for(k=0; k<NK; k++){
                #pragma acc loop vector
                for(i=0; i<NI; i++)
                  a[k][i] = a[k][i];
              }
            }
            """)

    def test_gang_inside_worker_rejected(self):
        with pytest.raises(AnalysisError, match="may not nest"):
            plan("""
            float a[NK][NI];
            #pragma acc parallel copyin(a)
            {
              #pragma acc loop worker
              for(k=0; k<NK; k++){
                #pragma acc loop gang
                for(i=0; i<NI; i++)
                  a[k][i] = a[k][i];
              }
            }
            """)

    def test_array_reduction_rejected(self):
        with pytest.raises(AnalysisError, match="scalar"):
            plan("""
            float a[n];
            #pragma acc parallel copy(a)
            #pragma acc loop gang reduction(+:a)
            for(i=0; i<n; i++)
              a[i] = a[i];
            """)

    def test_bitwise_reduction_on_float_rejected(self):
        with pytest.raises(AnalysisError, match="integer"):
            plan("""
            float a[n];
            float s = 0.0f;
            #pragma acc parallel copyin(a)
            #pragma acc loop gang vector reduction(&:s)
            for(i=0; i<n; i++)
              s += a[i];
            """)

    def test_undefined_reduction_variable(self):
        with pytest.raises(AnalysisError, match="never declared"):
            plan("""
            float a[n];
            #pragma acc parallel copyin(a)
            #pragma acc loop gang reduction(+:ghost)
            for(i=0; i<n; i++)
              a[i] = a[i];
            """)


class TestBarrierLoops:
    def test_vector_finalize_marks_enclosing_loops(self):
        p = plan(triple(wdecl="int i_sum = j;",
                        vector_red="reduction(+:i_sum)",
                        vbody="i_sum += input[k][j][i];",
                        wtail="temp[k][j][0] = i_sum;"))
        # gang and worker loops both contain the block-level finalize
        assert len(p.barrier_loops) == 2

    def test_gang_only_reduction_has_no_barrier_loops(self):
        p = plan("""
        float a[NK];
        int sum = 0;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang reduction(+:sum)
        for(k=0; k<NK; k++)
          sum += a[k];
        """)
        assert p.barrier_loops == set()

    def test_multiple_reductions_same_loop(self):
        p = plan("""
        float a[n];
        int s1 = 0;
        int s2 = 1;
        #pragma acc parallel copyin(a)
        #pragma acc loop gang worker vector reduction(+:s1) reduction(*:s2)
        for(i=0; i<n; i++){
          s1 += a[i];
          s2 *= a[i];
        }
        """)
        assert len(p.all_reductions) == 2
        ops = {r.var: r.op.token for r in p.all_reductions}
        assert ops == {"s1": "+", "s2": "*"}
