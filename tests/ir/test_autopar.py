"""Auto-parallelization tests for ``kernels`` regions (§2.1)."""

import numpy as np
import pytest

from repro import acc
from repro.frontend.cparser import parse_region
from repro.ir import nodes as N
from repro.ir.autopar import auto_parallelize
from repro.ir.builder import build_region

GEOM = dict(num_gangs=4, num_workers=2, vector_length=32)


def schedule(src):
    region = auto_parallelize(build_region(parse_region(src)))

    levels = {}

    def visit(stmts):
        for s in stmts:
            if isinstance(s, N.ILoop):
                levels[s.var] = (s.info.levels, s.info.reductions)
                visit(s.body)
            elif isinstance(s, N.IIf):
                visit(s.then)
                visit(s.orelse)
    visit(region.body)
    return levels


class TestScheduling:
    def test_independent_nest_gets_gang_worker_vector(self):
        levels = schedule("""
        float a[NK][NJ][NI];
        float b[NK][NJ][NI];
        #pragma acc kernels copyin(a) copyout(b)
        {
          for (k = 0; k < NK; k++)
            for (j = 0; j < NJ; j++)
              for (i = 0; i < NI; i++)
                b[k][j][i] = a[k][j][i] * 2.0f;
        }
        """)
        assert levels["k"][0] == ("gang",)
        assert levels["j"][0] == ("worker",)
        assert levels["i"][0] == ("vector",)

    def test_parallel_region_left_alone(self):
        levels = schedule("""
        float a[n];
        #pragma acc parallel copy(a)
        {
          for (i = 0; i < n; i++)
            a[i] = a[i];
        }
        """)
        assert levels["i"][0] == ()  # unannotated stays sequential

    def test_flow_dependence_stays_sequential(self):
        levels = schedule("""
        float a[n];
        #pragma acc kernels copy(a)
        {
          for (i = 1; i < n; i++)
            a[i] = a[i - 1] + 1.0f;
        }
        """)
        assert levels["i"][0] == ()

    def test_write_not_indexed_by_var_stays_sequential(self):
        levels = schedule("""
        float a[n];
        float last[m];
        #pragma acc kernels copyin(a) copyout(last)
        {
          for (i = 0; i < n; i++)
            last[0] = a[i];
        }
        """)
        assert levels["i"][0] == ()

    def test_scalar_carried_dependence_stays_sequential(self):
        # the partial sum is consumed inside the loop: not a reduction
        levels = schedule("""
        float a[n];
        float prefix[n];
        float s = 0.0f;
        #pragma acc kernels copyin(a) copyout(prefix)
        {
          for (i = 0; i < n; i++) {
            s += a[i];
            prefix[i] = s;
          }
        }
        """)
        assert levels["i"][0] == ()

    def test_local_scalar_is_privatizable(self):
        levels = schedule("""
        float a[n];
        float b[n];
        #pragma acc kernels copyin(a) copyout(b)
        {
          for (i = 0; i < n; i++) {
            float t = a[i] * 2.0f;
            b[i] = t + 1.0f;
          }
        }
        """)
        assert levels["i"][0] == ("vector",) or levels["i"][0] == ("gang",)

    def test_explicit_annotation_respected(self):
        levels = schedule("""
        float a[NK][NI];
        float b[NK][NI];
        #pragma acc kernels copyin(a) copyout(b)
        {
          #pragma acc loop worker
          for (k = 0; k < NK; k++)
            for (i = 0; i < NI; i++)
              b[k][i] = a[k][i];
        }
        """)
        assert levels["k"][0] == ("worker",)
        assert levels["i"][0] == ("vector",)  # continues below worker


class TestReductionRecognition:
    def test_sum_detected(self):
        levels = schedule("""
        float a[n];
        float s = 0.0f;
        #pragma acc kernels copyin(a)
        {
          for (i = 0; i < n; i++)
            s += a[i];
        }
        """)
        assert levels["i"][0] == ("gang",)
        assert levels["i"][1] == (("+", "s"),)

    def test_max_through_intrinsic_detected(self):
        levels = schedule("""
        double a[n];
        double m = 0.0;
        #pragma acc kernels copyin(a)
        {
          for (i = 0; i < n; i++)
            m = fmax(m, a[i]);
        }
        """)
        assert levels["i"][1] == (("max", "m"),)

    def test_non_associative_update_not_a_reduction(self):
        levels = schedule("""
        float a[n];
        float s = 0.0f;
        #pragma acc kernels copyin(a)
        {
          for (i = 0; i < n; i++)
            s = a[i] - s;
        }
        """)
        assert levels["i"][0] == ()


class TestEndToEnd:
    def test_unannotated_matmul_runs_parallel_and_correct(self):
        # Fig. 13(b) with ZERO loop annotations: the compiler schedules it
        src = """
        float A[n2];
        float B[n2];
        float C[n2];
        #pragma acc kernels copyin(A, B) copyout(C)
        {
          for (i = 0; i < n; i++) {
            for (j = 0; j < n; j++) {
              float c = 0.0f;
              for (k = 0; k < n; k++)
                c += A[i*n+k] * B[k*n+j];
              C[i*n+j] = c;
            }
          }
        }
        """
        prog = acc.compile(src, **GEOM)
        n = 12
        rng = np.random.default_rng(0)
        A = rng.random((n, n)).astype(np.float32)
        B = rng.random((n, n)).astype(np.float32)
        res = prog.run(A=A.ravel(), B=B.ravel(),
                       C=np.zeros(n * n, np.float32), n=n)
        np.testing.assert_allclose(res.outputs["C"].reshape(n, n),
                                   A @ B, rtol=1e-4)
        # and it really went parallel: the kernel uses the thread geometry
        text = prog.dump_kernels()
        assert "blockIdx.x" in text and "threadIdx.x" in text

    def test_auto_reduction_end_to_end(self):
        src = """
        float a[n];
        long total = 0;
        #pragma acc kernels copyin(a)
        {
          for (i = 0; i < n; i++)
            total += a[i];
        }
        """
        prog = acc.compile(src, **GEOM)
        a = np.arange(500, dtype=np.float32)
        res = prog.run(a=a)
        assert res.scalars["total"] == a.sum()

    def test_sequential_fallback_still_correct(self):
        src = """
        float a[n];
        #pragma acc kernels copy(a)
        {
          for (i = 1; i < n; i++)
            a[i] = a[i - 1] + 1.0f;
        }
        """
        prog = acc.compile(src, **GEOM)
        a = np.zeros(16, np.float32)
        res = prog.run(a=a)
        np.testing.assert_allclose(res.outputs["a"], np.arange(16))
