"""Scalar type-system tests: C-style mappings and promotions."""

import numpy as np
import pytest

from repro.dtypes import (
    DType, ctype_to_dtype, from_numpy, is_float, is_integer, promote,
)


class TestMapping:
    @pytest.mark.parametrize("ctype,np_dtype,size", [
        ("int", np.int32, 4), ("long", np.int64, 8),
        ("float", np.float32, 4), ("double", np.float64, 8),
    ])
    def test_lp64_mapping(self, ctype, np_dtype, size):
        dt = ctype_to_dtype(ctype)
        assert dt.np == np.dtype(np_dtype)
        assert dt.itemsize == size
        assert dt.ctype == ctype

    def test_unsigned_models_as_int(self):
        assert ctype_to_dtype("unsigned") is DType.INT

    def test_roundtrip_from_numpy(self):
        for dt in (DType.INT, DType.LONG, DType.FLOAT, DType.DOUBLE):
            assert from_numpy(dt.np) is dt

    def test_unknown_ctype(self):
        with pytest.raises(KeyError):
            ctype_to_dtype("size_t")


class TestPromotion:
    """C's usual arithmetic conversions — NOT NumPy's value-based rules."""

    def test_int_float_is_float_not_double(self):
        # NumPy would say float64; C says float
        assert promote(DType.INT, DType.FLOAT) is DType.FLOAT
        assert promote(DType.LONG, DType.FLOAT) is DType.FLOAT

    def test_rank_ladder(self):
        assert promote(DType.INT, DType.LONG) is DType.LONG
        assert promote(DType.FLOAT, DType.DOUBLE) is DType.DOUBLE
        assert promote(DType.INT, DType.DOUBLE) is DType.DOUBLE

    def test_symmetric(self):
        for a in (DType.INT, DType.LONG, DType.FLOAT, DType.DOUBLE):
            for b in (DType.INT, DType.LONG, DType.FLOAT, DType.DOUBLE):
                assert promote(a, b) is promote(b, a)

    def test_bool_promotes_to_int(self):
        assert promote(DType.BOOL, DType.BOOL) is DType.INT
        assert promote(DType.BOOL, DType.INT) is DType.INT

    def test_predicates(self):
        assert is_integer(DType.INT) and is_integer(DType.LONG)
        assert not is_integer(DType.FLOAT)
        assert is_float(DType.DOUBLE) and not is_float(DType.LONG)
