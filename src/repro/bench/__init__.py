"""Benchmark harnesses regenerating the paper's evaluation artifacts.

Each module doubles as a CLI::

    python -m repro.bench.table2      # Table 2 (testsuite grid)
    python -m repro.bench.fig11       # Fig. 11 series (per position)
    python -m repro.bench.fig12       # Fig. 12 (heat / matmul / Monte Carlo)
    python -m repro.bench.ablations   # ablations A1-A7 (see DESIGN.md)

All report *modeled* device time from the simulator's cost model; pass
``--size``/``--scale`` to trade fidelity against wall-clock simulation time
(see EXPERIMENTS.md for the scaled-size rationale).  The ``benchmarks/``
pytest-benchmark suite wraps the same entry points.
"""

from repro.bench.harness import Series, format_series

__all__ = ["Series", "format_series"]
