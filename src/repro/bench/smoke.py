"""CI bench smoke: executor fast-path speedup guard.

Runs a scaled-down Table 2 sweep (the paper's 192-gang launch geometry
on small per-position sizes, each case compiled once up front — the
executor is what this gate guards, so compilation sits outside the timed
region) and a 64-gang reduction, in all three executor modes, and
records, per workload, the modeled kernel ms (which must be byte-equal
across modes — the bit-identity contract) and the wall-clock seconds of
each mode.

A separate ``trace_executor`` section times individual Table 2 rows —
(position, op, ctype) configurations at bench-scale sizes — in all
three modes.  Its gate is baseline-free: every row must be modeled- and
result-identical across the modes, and at least ``TRACE_MIN_ROWS_10X``
rows must show a >=10x trace-over-reference wall speedup (a property of
the current build, not a ratio against history; gang-position rows
clear it with margin, and slower rows are recorded honestly).

Usage::

    python -m repro.bench.smoke --out BENCH_table2.json    # write baseline
    python -m repro.bench.smoke --check BENCH_table2.json  # CI gate

``--check`` compares against a committed baseline.  Absolute wall-clock
is machine-dependent, so the regression metric is the *ratio*
``batched_wall / reference_wall`` of the same run — a dimensionless
measure of how much of the fast path's advantage survives.  The gate
fails when the current ratio exceeds the baseline ratio by more than
``--tolerance`` (default 25%), or when modeled ms diverge between modes
at all.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

__all__ = ["run_smoke", "check_against_baseline"]

TOLERANCE = 0.25

#: the trace-executor gate: this many Table 2 rows must clear a >=10x
#: trace-over-reference wall speedup
TRACE_MIN_ROWS_10X = 3
TRACE_SPEEDUP_FLOOR = 10.0

#: the rows the trace gate times: (position, op, ctype, size).  Gang
#: rows at 8192 clear the 10x floor with margin on CI-class machines;
#: the gang-worker row sits below it (per-lane gather cost floor) and is
#: recorded honestly without feeding the >=10x count.
TRACE_ROWS = (
    ("gang", "+", "float", 8192),
    ("gang", "*", "float", 8192),
    ("gang", "+", "double", 8192),
    ("gang", "*", "double", 8192),
    ("gang", "+", "int", 8192),
    ("gang worker", "+", "float", 32768),
)

_REDUCTION_SRC = '''float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
'''


def _time_best(fn, reps: int):
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _table2_workload(reps: int) -> dict:
    from repro import acc
    from repro.testsuite.cases import POSITIONS, generate_cases

    # the paper's launch geometry (Table 2 runs 192 gangs x 8 workers x
    # 128 vector) at scaled-down sizes: multi-gang execution, which is
    # exactly what the batched path accelerates
    cases = generate_cases(positions=POSITIONS, ops=("+",),
                           ctypes=("float",), size=4096)
    compiled = [(case,
                 acc.compile(case.source, num_gangs=192, num_workers=8,
                             vector_length=128),
                 case.make_inputs(np.random.default_rng(42)))
                for case in cases]

    out = {}
    for mode in ("batched", "reference", "trace"):
        def sweep(m=mode):
            return [prog.run(executor_mode=m, **inputs)
                    for _, prog, inputs in compiled]
        wall, results = _time_best(sweep, reps)
        out[mode] = {
            "wall_s": wall,
            "cells": [(case.label, round(res.kernel_ms, 9))
                      for (case, _, _), res in zip(compiled, results)],
        }
    return {
        "modeled_identical": all(
            out[m]["cells"] == out["reference"]["cells"]
            for m in ("batched", "trace")),
        "modeled_ms_total": sum(ms for _, ms in out["batched"]["cells"]),
        "batched_wall_s": out["batched"]["wall_s"],
        "reference_wall_s": out["reference"]["wall_s"],
        "trace_wall_s": out["trace"]["wall_s"],
        "speedup": out["reference"]["wall_s"] / out["batched"]["wall_s"],
        "trace_speedup":
            out["reference"]["wall_s"] / out["trace"]["wall_s"],
    }


def _gang64_workload(reps: int) -> dict:
    from repro import acc

    prog = acc.compile(_REDUCTION_SRC, num_gangs=64, num_workers=4,
                       vector_length=32)
    a = (np.arange(1 << 16) % 97).astype(np.float32)
    out = {}
    for mode in ("batched", "reference", "trace"):
        wall, res = _time_best(
            lambda m=mode: prog.run(executor_mode=m, a=a), reps)
        out[mode] = {
            "wall_s": wall,
            "total_hex": np.asarray(res.scalars["total"]).tobytes().hex(),
            "modeled_ms": res.kernel_ms,
        }
    return {
        "modeled_identical": all(
            out[m]["total_hex"] == out["reference"]["total_hex"]
            and out[m]["modeled_ms"] == out["reference"]["modeled_ms"]
            for m in ("batched", "trace")),
        "modeled_ms_total": out["batched"]["modeled_ms"],
        "batched_wall_s": out["batched"]["wall_s"],
        "reference_wall_s": out["reference"]["wall_s"],
        "trace_wall_s": out["trace"]["wall_s"],
        "speedup": out["reference"]["wall_s"] / out["batched"]["wall_s"],
        "trace_speedup":
            out["reference"]["wall_s"] / out["trace"]["wall_s"],
    }


def _trace_workload(reps: int) -> dict:
    """Per-row Table 2 timings for the trace-executor speedup gate.

    Each row is one (position, op, ctype) Table 2 configuration at a
    bench-scale size, compiled once under the paper's 192x8x128 launch
    geometry and run in all three executor modes.  Identity is checked
    on the modeled ms *and* the result bytes; the speedup gate counts
    rows whose trace-over-reference wall ratio clears
    ``TRACE_SPEEDUP_FLOOR``.
    """
    from repro import acc
    from repro.testsuite.cases import make_case

    rows = []
    for position, op, ctype, size in TRACE_ROWS:
        case = make_case(position, op, ctype, size=size)
        prog = acc.compile(case.source, num_gangs=192, num_workers=8,
                           vector_length=128)
        inputs = case.make_inputs(np.random.default_rng(42))
        runs = {}
        for mode in ("reference", "batched", "trace"):
            wall, res = _time_best(
                lambda m=mode: prog.run(executor_mode=m, **inputs), reps)
            runs[mode] = {
                "wall_s": wall,
                "modeled_ms": round(res.kernel_ms, 9),
                "bits": {n: np.asarray(v).tobytes().hex()
                         for n, v in res.scalars.items()},
            }
        ref = runs["reference"]
        rows.append({
            "config": f"{case.label} @{size}",
            "modeled_ms": ref["modeled_ms"],
            "modeled_identical": all(
                runs[m]["modeled_ms"] == ref["modeled_ms"]
                and runs[m]["bits"] == ref["bits"]
                for m in ("batched", "trace")),
            "reference_wall_s": ref["wall_s"],
            "batched_wall_s": runs["batched"]["wall_s"],
            "trace_wall_s": runs["trace"]["wall_s"],
            "batched_speedup": ref["wall_s"] / runs["batched"]["wall_s"],
            "trace_speedup": ref["wall_s"] / runs["trace"]["wall_s"],
        })
    return {
        "rows": rows,
        "all_identical": all(r["modeled_identical"] for r in rows),
        "rows_ge_10x": sum(1 for r in rows
                           if r["trace_speedup"] >= TRACE_SPEEDUP_FLOOR),
        "speedup_floor": TRACE_SPEEDUP_FLOOR,
        "min_rows_ge_10x": TRACE_MIN_ROWS_10X,
    }


def _attribution_guard() -> dict:
    """The attribution zero-overhead pin (boolean, not timed).

    Three contracts the ``--check`` gate enforces on the *current* run
    (no baseline needed): with ``attribution`` off the run allocates no
    tables; on, every launch fills one; and turning it on is a pure
    observer — bitwise-identical results and an identical ledger.
    """
    from repro import acc

    prog = acc.compile(_REDUCTION_SRC, num_gangs=8, num_workers=2,
                       vector_length=32)
    a = (np.arange(1 << 12) % 97).astype(np.float32)
    plain = prog.run(a=a)
    attributed = prog.run(attribution=True, a=a)
    return {
        "off_allocates_nothing": all(
            st.attribution is None
            for st in plain.kernel_stats.values()),
        "on_fills_tables": all(
            st.attribution is not None and bool(st.attribution.rows)
            for st in attributed.kernel_stats.values()),
        "pure_observer": (
            np.asarray(plain.scalars["total"]).tobytes()
            == np.asarray(attributed.scalars["total"]).tobytes()
            and plain.ledger.entries == attributed.ledger.entries),
    }


def _passes_guard() -> dict:
    """Pass-pipeline gate: minimal vs optimized on Table 2 configurations.

    Gang-involved float ``+`` cases under the buffer handoff, so the
    optimized pipeline has a finish kernel to fuse; float keeps the
    cost-model autotuner out (inexact combine — it declines to retune),
    leaving finish-kernel fusion + barrier elimination + constant
    folding, which are bit-identity-preserving by construction.  The
    ``--check`` gate requires bitwise-identical scalars per config and a
    >=5% modeled-time win on at least two configs (no baseline needed —
    these are properties of the current build).
    """
    from repro import acc
    from repro.testsuite.cases import generate_cases, make_case

    paper_geom = dict(num_gangs=192, num_workers=8, vector_length=128)
    configs = [(case.label, case, paper_geom) for case in generate_cases(
        positions=("gang", "gang worker", "gang worker vector",
                   "same line gang worker vector"),
        ops=("+",), ctypes=("float",), size=4096)]
    # one warp-sized-block geometry: every __syncthreads is redundant
    # there, so this row isolates the barrier-elimination win
    configs.append((
        "same-line gwv float + (24x1x32, warp-sized blocks)",
        make_case("same line gang worker vector", "+", "float", size=4096),
        dict(num_gangs=24, num_workers=1, vector_length=32)))

    rows = []
    for label, case, geom in configs:
        inputs = case.make_inputs(np.random.default_rng(7))
        runs = {}
        for pipe in ("minimal", "optimized"):
            prog = acc.compile(case.source, pipeline=pipe, **geom)
            runs[pipe] = prog.run(**inputs)
        bits = {pipe: {name: np.asarray(val).tobytes().hex()
                       for name, val in r.scalars.items()}
                for pipe, r in runs.items()}
        ms_min = runs["minimal"].kernel_ms
        ms_opt = runs["optimized"].kernel_ms
        rows.append({
            "config": label,
            "bitwise_identical": bits["minimal"] == bits["optimized"],
            "minimal_ms": round(ms_min, 9),
            "optimized_ms": round(ms_opt, 9),
            "improvement": round((ms_min - ms_opt) / ms_min, 4),
        })
    return {
        "configs": rows,
        "all_identical": all(r["bitwise_identical"] for r in rows),
        "improved_5pct": sum(1 for r in rows if r["improvement"] >= 0.05),
    }


#: cascade-fusion gate workloads: (label, geometry, n)
CASCADE_CONFIGS = (
    ("softmax 4x2x32 n=256", dict(num_gangs=4, num_workers=2,
                                  vector_length=32), 256),
    ("softmax 16x1x64 n=4096", dict(num_gangs=16, num_workers=1,
                                    vector_length=64), 4096),
)

#: the cascade gate floor: fused must win >=10% of device kernel time
CASCADE_MIN_IMPROVEMENT = 0.10


def _cascade_guard() -> dict:
    """Cascade-fusion gate: softmax fused vs ``cascade_fusion="never"``.

    Softmax (max → subtract-exp → ``+`` → divide) is the flagship
    cascade: the optimized pipeline folds the sum's finish kernel into
    its consumer stage.  The ``--check`` gate requires, per config,
    bitwise-identical outputs between the fused and pinned-unfused
    builds, strictly fewer kernels when fused, and a
    >=``CASCADE_MIN_IMPROVEMENT`` win on modeled device (kernel) time —
    properties of the current build, no baseline needed.
    """
    from repro.apps.softmax import softmax_result

    rows = []
    for label, geom, n in CASCADE_CONFIGS:
        x = (np.arange(n) % 113).astype(np.float32) / 7.0 - 8.0
        fused = softmax_result(x, **geom)
        never = softmax_result(x, cascade_fusion="never", **geom)
        ms_f, ms_n = fused.kernel_ms, never.kernel_ms
        rows.append({
            "config": label,
            "bitwise_identical":
                fused.y.tobytes() == never.y.tobytes()
                and (np.float32(fused.denom).tobytes()
                     == np.float32(never.denom).tobytes()),
            "fused_kernels": fused.num_kernels,
            "unfused_kernels": never.num_kernels,
            "fused_ms": round(ms_f, 9),
            "unfused_ms": round(ms_n, 9),
            "improvement": round((ms_n - ms_f) / ms_n, 4),
        })
    return {
        "configs": rows,
        "all_identical": all(r["bitwise_identical"] for r in rows),
        "all_fewer_kernels": all(
            r["fused_kernels"] < r["unfused_kernels"] for r in rows),
        "min_improvement": CASCADE_MIN_IMPROVEMENT,
    }


def _telemetry_guard() -> dict:
    """The telemetry-bus zero-overhead pin (boolean, not timed).

    Three contracts the ``--check`` gate enforces on the *current* run
    (no baseline needed): with no bus installed a run executes zero
    telemetry code — ``timeline.current()`` is ``None`` and tracemalloc
    attributes **no allocation** to ``timeline.py``; installing a bus is
    a pure observer — bitwise-identical scalars and an identical ledger
    in both executor modes; and an installed bus actually captures the
    run (kernel + transfer spans, an executor-mode decision).
    """
    import tracemalloc

    from repro import acc
    from repro.obs import timeline

    prog = acc.compile(_REDUCTION_SRC, num_gangs=8, num_workers=2,
                       vector_length=32)
    a = (np.arange(1 << 12) % 97).astype(np.float32)

    def run_both(**kw):
        return {m: prog.run(executor_mode=m, a=a, **kw)
                for m in ("batched", "reference")}

    # 1. disabled: no bus, and no allocation attributable to the bus
    tl_file = timeline.__file__
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        plain = run_both()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    flt = tracemalloc.Filter(True, tl_file)
    tl_allocs = after.filter_traces([flt]).compare_to(
        before.filter_traces([flt]), "lineno")
    off_no_alloc = (timeline.current() is None
                    and not any(st.size_diff > 0 or st.count_diff > 0
                                for st in tl_allocs))

    # 2./3. enabled: a pure observer that does capture the run
    with timeline.enabled() as tl:
        observed = run_both()
        cats = tl.categories()
        kinds = {e.kind for e in tl.events("gpu")}
        names = {e.name for e in tl.events("gpu")}
    bits = {tag: {m: np.asarray(r.scalars["total"]).tobytes()
                  for m, r in runs.items()}
            for tag, runs in (("plain", plain), ("observed", observed))}
    return {
        "off_no_bus_no_alloc": off_no_alloc,
        "pure_observer": (
            bits["plain"] == bits["observed"]
            and all(plain[m].ledger.entries == observed[m].ledger.entries
                    for m in plain)),
        "on_captures": (cats.get("gpu", 0) > 0
                        and "decision" in kinds and "span" in kinds
                        and any(n.startswith("kernel:") for n in names)
                        and any(n.startswith("transfer:") for n in names)),
    }


def _trace_guard() -> dict:
    """The request-tracing zero-overhead pin (boolean, not timed).

    Three contracts, mirroring ``_telemetry_guard``: with tracing
    uninstalled a run allocates nothing in ``trace.py`` and — even with
    a bus installed — emits **no** ``trace_id``/``span_id``/``parent_id``
    fields; installing a tracer is a pure observer (bit-identical
    scalars + identical ledger in both executor modes); and with tracing
    on, every run's events assemble into single-rooted span trees with
    no orphans.
    """
    import tracemalloc

    from repro import acc
    from repro.obs import timeline
    from repro.obs import trace as rtrace

    prog = acc.compile(_REDUCTION_SRC, num_gangs=8, num_workers=2,
                       vector_length=32)
    a = (np.arange(1 << 12) % 97).astype(np.float32)

    def run_both(**kw):
        return {m: prog.run(executor_mode=m, a=a, **kw)
                for m in ("batched", "reference")}

    # 1. tracer off, no bus: no allocation attributable to trace.py
    tr_file = rtrace.__file__
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        plain = run_both()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    flt = tracemalloc.Filter(True, tr_file)
    tr_allocs = after.filter_traces([flt]).compare_to(
        before.filter_traces([flt]), "lineno")
    off_no_alloc = (timeline.tracer() is None
                    and not any(st.size_diff > 0 or st.count_diff > 0
                                for st in tr_allocs))

    # 2. bus on, tracer off: no event gains a trace field
    trace_keys = {"trace_id", "span_id", "parent_id"}
    with timeline.enabled() as tl:
        untraced = run_both()
        no_fields = not any(trace_keys & set(ev.attrs)
                            for ev in tl.events())

    # 3. bus + tracer on: pure observer, and single-rooted assembly
    with timeline.enabled() as tl:
        with rtrace.tracing():
            traced = run_both()
        trees = rtrace.assemble(tl.events())
    assembled = (len(trees) == len(traced)  # one trace per run
                 and all(len(t.roots) == 1 and not t.orphans
                         for t in trees.values()))
    bits = {tag: {m: np.asarray(r.scalars["total"]).tobytes()
                  for m, r in runs.items()}
            for tag, runs in (("plain", plain), ("untraced", untraced),
                              ("traced", traced))}
    ledgers = {tag: {m: r.ledger.entries for m, r in runs.items()}
               for tag, runs in (("plain", plain), ("untraced", untraced),
                                 ("traced", traced))}
    return {
        "off_no_alloc": off_no_alloc,
        "off_no_trace_fields": no_fields,
        "pure_observer": (
            bits["plain"] == bits["untraced"] == bits["traced"]
            and ledgers["plain"] == ledgers["untraced"]
            == ledgers["traced"]),
        "on_assembles_single_rooted": assembled,
    }


def run_smoke(reps: int = 2) -> dict:
    """Both workloads, both modes; returns the baseline document."""
    return {
        "bench": "executor-fast-path-smoke",
        "reps": reps,
        "workloads": {
            "table2_quick": _table2_workload(reps),
            "reduction_64gang": _gang64_workload(reps),
        },
        "trace_executor": _trace_workload(reps),
        "attribution_guard": _attribution_guard(),
        "pass_pipeline": _passes_guard(),
        "cascade_fusion": _cascade_guard(),
        "telemetry_guard": _telemetry_guard(),
        "trace_guard": _trace_guard(),
    }


def check_against_baseline(current: dict, baseline: dict,
                           tolerance: float = TOLERANCE) -> list[str]:
    """Failure messages (empty = pass)."""
    failures = []
    for check, ok in current.get("attribution_guard", {}).items():
        if not ok:
            failures.append(f"attribution_guard: {check} violated — "
                            "per-statement attribution must be opt-in "
                            "and a pure observer")
    for check, ok in current.get("telemetry_guard", {}).items():
        if not ok:
            failures.append(f"telemetry_guard: {check} violated — the "
                            "telemetry bus must cost nothing when off "
                            "and observe without perturbing when on")
    for check, ok in current.get("trace_guard", {}).items():
        if not ok:
            failures.append(f"trace_guard: {check} violated — request "
                            "tracing must cost nothing when uninstalled "
                            "and not perturb results when on")
    pp = current.get("pass_pipeline")
    if pp is not None:
        for row in pp["configs"]:
            if not row["bitwise_identical"]:
                failures.append(
                    f"pass_pipeline: {row['config']}: optimized pipeline "
                    "changed results bitwise vs minimal — the kernel-IR "
                    "passes must be identity-preserving")
        if pp["improved_5pct"] < 2:
            failures.append(
                f"pass_pipeline: only {pp['improved_5pct']} config(s) "
                "improved modeled time by >=5% over the minimal pipeline "
                "(need 2) — fusion/barrier-elimination wins regressed")
    cf = current.get("cascade_fusion")
    if cf is not None:
        floor = cf.get("min_improvement", CASCADE_MIN_IMPROVEMENT)
        for row in cf["configs"]:
            if not row["bitwise_identical"]:
                failures.append(
                    f"cascade_fusion: {row['config']}: fused cascade "
                    "changed results bitwise vs the unfused pipeline — "
                    "the replay prologue must be exactness-preserving")
            if row["fused_kernels"] >= row["unfused_kernels"]:
                failures.append(
                    f"cascade_fusion: {row['config']}: fusion did not "
                    f"reduce the kernel count "
                    f"({row['unfused_kernels']} -> {row['fused_kernels']})")
            if row["improvement"] < floor:
                failures.append(
                    f"cascade_fusion: {row['config']}: modeled kernel "
                    f"time improved only {row['improvement']:.1%} "
                    f"(need >={floor:.0%}) — the fusion win regressed")
    te = current.get("trace_executor")
    if te is not None:
        for row in te["rows"]:
            if not row["modeled_identical"]:
                failures.append(
                    f"trace_executor: {row['config']}: trace results or "
                    "modeled ms diverged from the reference executor — "
                    "bit-identity contract broken")
        if te["rows_ge_10x"] < TRACE_MIN_ROWS_10X:
            failures.append(
                f"trace_executor: only {te['rows_ge_10x']} Table 2 "
                f"row(s) reached a >={TRACE_SPEEDUP_FLOOR:g}x "
                f"trace-over-reference wall speedup "
                f"(need {TRACE_MIN_ROWS_10X}) — the compiled fast path "
                "lost its advantage")
    for name, cur in current["workloads"].items():
        if not cur["modeled_identical"]:
            failures.append(
                f"{name}: executor modes disagree on modeled results — "
                "bit-identity contract broken")
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline file")
            continue
        cur_ratio = cur["batched_wall_s"] / cur["reference_wall_s"]
        base_ratio = base["batched_wall_s"] / base["reference_wall_s"]
        if cur_ratio > base_ratio * (1.0 + tolerance):
            failures.append(
                f"{name}: batched/reference wall ratio {cur_ratio:.3f} "
                f"regressed >{tolerance:.0%} vs baseline "
                f"{base_ratio:.3f}")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    g = ap.add_mutually_exclusive_group(required=True)
    g.add_argument("--out", metavar="PATH",
                   help="run the smoke and write a new baseline JSON")
    g.add_argument("--check", metavar="PATH",
                   help="run the smoke and gate against this baseline")
    ap.add_argument("--reps", type=int, default=2,
                    help="timing repetitions per mode (best-of)")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE,
                    help="allowed wall-ratio regression (default 0.25)")
    args = ap.parse_args(argv)

    doc = run_smoke(reps=args.reps)
    for name, w in doc["workloads"].items():
        print(f"  {name:<20} batched {w['batched_wall_s']*1e3:8.1f} ms  "
              f"reference {w['reference_wall_s']*1e3:8.1f} ms  "
              f"speedup {w['speedup']:.2f}x  "
              f"trace {w['trace_speedup']:.2f}x  "
              f"modeled-identical={w['modeled_identical']}",
              file=sys.stderr)
    te = doc["trace_executor"]
    for row in te["rows"]:
        print(f"  trace  {row['config']:<30} "
              f"reference {row['reference_wall_s']*1e3:8.1f} ms  "
              f"batched {row['batched_speedup']:5.2f}x  "
              f"trace {row['trace_speedup']:6.2f}x  "
              f"identical={row['modeled_identical']}", file=sys.stderr)
    print(f"  trace rows >=10x: {te['rows_ge_10x']}/{len(te['rows'])} "
          f"(gate: {te['min_rows_ge_10x']})", file=sys.stderr)
    pp = doc["pass_pipeline"]
    for row in pp["configs"]:
        print(f"  passes {row['config']:<42} "
              f"minimal {row['minimal_ms']:8.4f} ms  "
              f"optimized {row['optimized_ms']:8.4f} ms  "
              f"({row['improvement']:+.1%})  "
              f"bit-identical={row['bitwise_identical']}", file=sys.stderr)
    for row in doc["cascade_fusion"]["configs"]:
        print(f"  cascade {row['config']:<28} "
              f"unfused {row['unfused_ms']:8.4f} ms "
              f"({row['unfused_kernels']} kernels)  "
              f"fused {row['fused_ms']:8.4f} ms "
              f"({row['fused_kernels']} kernels)  "
              f"({row['improvement']:+.1%})  "
              f"bit-identical={row['bitwise_identical']}", file=sys.stderr)

    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[baseline written to {args.out}]", file=sys.stderr)
        return 0

    with open(args.check) as f:
        baseline = json.load(f)
    failures = check_against_baseline(doc, baseline,
                                      tolerance=args.tolerance)
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("[bench smoke ok]", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
