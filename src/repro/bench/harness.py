"""Shared helpers for the benchmark harnesses."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["ProfileSink", "Series", "format_series", "speedup_note"]


@dataclass
class Series:
    """One plotted series: label → (x, value-or-status) points."""

    label: str
    points: list[tuple[object, object]] = field(default_factory=list)

    def add(self, x, value) -> None:
        self.points.append((x, value))


def _fmt_cell(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def format_series(title: str, series: list[Series],
                  xlabel: str = "x", unit: str = "modeled ms") -> str:
    """Render series as an aligned text table (one row per x value)."""
    xs: list[object] = []
    for s in series:
        for x, _ in s.points:
            if x not in xs:
                xs.append(x)
    cells = [v for s in series for _, v in s.points]
    width = max(12,
                max((len(s.label) for s in series), default=12) + 2,
                max((len(_fmt_cell(v)) for v in cells), default=0) + 2)
    lines = [title, f"(values in {unit})",
             f"{xlabel:<16}" + "".join(f"{s.label:>{width}}" for s in series)]
    for x in xs:
        row = f"{str(x):<16}"
        for s in series:
            cell = dict(s.points).get(x, "-")
            row += f"{_fmt_cell(cell):>{width}}"
        lines.append(row)
    return "\n".join(lines)


def speedup_note(base: float, other: float) -> str:
    """Human-readable relative factor."""
    if base <= 0 or other <= 0:
        return "n/a"
    if other >= base:
        return f"{other / base:.2f}x slower"
    return f"{base / other:.2f}x faster"


class ProfileSink:
    """Optional machine-readable profile output for a bench run.

    Holds one :class:`repro.obs.Profiler` that the bench feeds (every
    kernel launch and transfer of the sweep accumulates into it) and
    writes the Chrome-trace profile document — plus a ``bench`` metadata
    block — next to the bench's text tables, e.g.
    ``artifacts/profile.json`` for ``--quick`` artifact runs.
    """

    def __init__(self, path: str):
        from repro.obs import Profiler
        self.path = path
        self.profiler = Profiler()

    def write(self, meta: dict | None = None,
              truncated_by: BaseException | None = None) -> str:
        """Serialize the accumulated profile; returns the path written.

        ``truncated_by`` marks a flush from the error path: the sweep
        died mid-run, and the document carries whatever was captured up
        to the failure, stamped ``truncated`` (see
        :meth:`repro.obs.Profiler.to_dict`).
        """
        doc = self.profiler.to_dict(truncated_by=truncated_by)
        if meta:
            doc["bench"] = dict(meta)
        with open(self.path, "w") as f:
            json.dump(doc, f, indent=2)
        return self.path
