"""Table 2 regenerator: the reduction testsuite across three compilers.

Usage::

    python -m repro.bench.table2 [--quick] [--ops + *] [--ctypes int float]

``--quick`` shrinks sizes/geometry for a fast sanity run.  The default uses
the paper's launch configuration (192 gangs × 8 workers × 128 vector) with
the scaled per-position sizes of
:data:`repro.testsuite.cases.BENCH_SIZES` — the simulator is interpreted
Python, so the paper's 1M-iteration loops are scaled down; ratios, not
absolute ms, are the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.testsuite import run_testsuite
from repro.testsuite.cases import BENCH_SIZES, TABLE2_CTYPES, TABLE2_OPS

__all__ = ["generate_table2"]


def generate_table2(quick: bool = False, ops=TABLE2_OPS,
                    ctypes=TABLE2_CTYPES, progress=None, profiler=None,
                    executor_mode: str | None = None,
                    block_batch: int | None = None):
    """Run the grid and return the report (Table 2).

    ``executor_mode`` / ``block_batch`` pick the simulator's executor
    path (modeled ms are identical either way; the bench smoke check uses
    both to compare wall-clock).
    """
    if quick:
        return run_testsuite(ops=ops, ctypes=ctypes, size=512,
                             num_gangs=8, num_workers=4, vector_length=32,
                             progress=progress, profiler=profiler,
                             executor_mode=executor_mode,
                             block_batch=block_batch)
    return run_testsuite(ops=ops, ctypes=ctypes, sizes=BENCH_SIZES,
                         progress=progress, profiler=profiler,
                         executor_mode=executor_mode,
                         block_batch=block_batch)


def main(argv=None) -> int:
    from repro.testsuite.cases import ALL_CTYPES, ALL_OPS

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small sizes/geometry for a fast run")
    ap.add_argument("--ops", nargs="+", default=list(TABLE2_OPS))
    ap.add_argument("--ctypes", nargs="+", default=list(TABLE2_CTYPES))
    ap.add_argument("--all-ops", action="store_true",
                    help="the full coverage grid: all 9 OpenACC operators "
                         "x all 4 data types (invalid combos skipped)")
    ap.add_argument("--profile-out", metavar="PATH",
                    help="write a machine-readable profile of the sweep "
                         "(Chrome-trace JSON, e.g. artifacts/profile.json)")
    args = ap.parse_args(argv)
    if args.all_ops:
        args.ops = list(ALL_OPS)
        args.ctypes = list(ALL_CTYPES)

    t0 = time.time()

    def progress(r):
        print(f"  {r.case.label:<45} {r.compiler:<10} {r.cell():>10}",
              file=sys.stderr, flush=True)

    sink = None
    if args.profile_out:
        from repro.bench.harness import ProfileSink
        sink = ProfileSink(args.profile_out)

    try:
        rep = generate_table2(quick=args.quick, ops=tuple(args.ops),
                              ctypes=tuple(args.ctypes), progress=progress,
                              profiler=sink.profiler if sink else None)
    except BaseException as exc:
        # a failed sweep is when the profile is most wanted: flush the
        # partial trace (stamped truncated) before the error surfaces
        if sink is not None and not isinstance(exc, KeyboardInterrupt):
            path = sink.write({"bench": "table2", "quick": args.quick,
                               "ops": list(args.ops),
                               "ctypes": list(args.ctypes)},
                              truncated_by=exc)
            print(f"[partial profile written to {path} (truncated)]",
                  file=sys.stderr)
        raise
    if sink is not None:
        path = sink.write({"bench": "table2", "quick": args.quick,
                           "ops": list(args.ops),
                           "ctypes": list(args.ctypes)})
        print(f"[profile written to {path}]", file=sys.stderr)
    print()
    print("Table 2 — Performance Results of OpenACC Compilers using the")
    print("reduction testsuite (modeled kernel ms; F = wrong result,")
    print("CE = compile error; vendor-a is CAPS-like, vendor-b PGI-like)")
    print()
    print(rep.to_table())
    print(f"\n[{time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
