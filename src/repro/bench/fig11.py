"""Fig. 11 regenerator: per-position compiler comparison series.

The paper's Fig. 11 plots the testsuite data of Table 2 as one bar chart per
reduction position (a: gang, b: worker, c: vector, d: gang worker,
e: worker vector, f: gang worker vector, g: same-line gang worker vector),
with bars per (operator, data type, compiler).  Missing bars are failures.

Usage::

    python -m repro.bench.fig11 [--quick] [--positions gang worker ...]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import Series, format_series
from repro.testsuite import run_testsuite
from repro.testsuite.cases import BENCH_SIZES, POSITIONS

__all__ = ["generate_fig11", "SUBFIGURES"]

#: subfigure letter per position, as in the paper
SUBFIGURES = dict(zip(POSITIONS, "abcdefg"))


def generate_fig11(positions=POSITIONS, quick: bool = False,
                   ctypes=("int", "float", "double"), progress=None,
                   profiler=None):
    """Returns {position: TestsuiteReport-slice} rendered as series."""
    if quick:
        rep = run_testsuite(positions=positions, ctypes=ctypes, size=512,
                            num_gangs=8, num_workers=4, vector_length=32,
                            progress=progress, profiler=profiler)
    else:
        rep = run_testsuite(positions=positions, ctypes=ctypes,
                            sizes=BENCH_SIZES, progress=progress,
                            profiler=profiler)
    figures = {}
    for pos in positions:
        series = []
        for comp in rep.compilers:
            s = Series(label=comp)
            for r in rep.results:
                if r.case.position == pos and r.compiler == comp:
                    s.add(f"[{r.case.op}] {r.case.ctype}",
                          r.modeled_ms if r.passed else r.status)
            series.append(s)
        figures[pos] = series
    return figures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--positions", nargs="+", default=list(POSITIONS))
    ap.add_argument("--profile-out", metavar="PATH",
                    help="write a machine-readable profile of the sweep "
                         "(Chrome-trace JSON, e.g. artifacts/profile.json)")
    args = ap.parse_args(argv)
    t0 = time.time()
    sink = None
    if args.profile_out:
        from repro.bench.harness import ProfileSink
        sink = ProfileSink(args.profile_out)
    try:
        figures = generate_fig11(positions=tuple(args.positions),
                                 quick=args.quick,
                                 profiler=sink.profiler if sink else None)
    except BaseException as exc:
        # flush the partial trace (stamped truncated) on a failed sweep
        if sink is not None and not isinstance(exc, KeyboardInterrupt):
            path = sink.write({"bench": "fig11", "quick": args.quick,
                               "positions": list(args.positions)},
                              truncated_by=exc)
            print(f"[partial profile written to {path} (truncated)]",
                  file=sys.stderr)
        raise
    if sink is not None:
        path = sink.write({"bench": "fig11", "quick": args.quick,
                           "positions": list(args.positions)})
        print(f"[profile written to {path}]", file=sys.stderr)
    for pos, series in figures.items():
        letter = SUBFIGURES.get(pos, "?")
        print()
        print(format_series(
            f"Figure 11({letter}) — reduction in {pos}",
            series, xlabel="[op] dtype"))
    print(f"\n[{time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
