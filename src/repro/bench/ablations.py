"""Ablation benchmarks for the design choices the paper argues for.

Each ablation pits the OpenUH choice against the alternative the paper
describes (and usually rejects), measuring the *mechanism* (bank conflicts,
barrier counts, transactions, shared-memory footprint) alongside modeled
time:

* **A1** — vector-reduction shared-memory layout: row Fig. 6(c) vs
  transposed Fig. 6(b) (bank conflicts).
* **A2** — worker-reduction strategy: first-row Fig. 8(c) vs duplicated
  rows Fig. 8(b) (shared footprint + barriers).
* **A3** — iteration scheduling: window sliding vs blocking (§3.1.3,
  coalescing).
* **A4** — log-step barrier elision: warp-aware vs barrier-every-step
  (§3.1.2).
* **A5** — RMP style: direct flat combine vs level-by-level (§3.2.1,
  barrier count).
* **A6** — non-power-of-two vector sizes (§3.3: correct but slower).
* **A7** — reduction staging memory: shared vs global (§3.3).

Usage::

    python -m repro.bench.ablations [--quick] [--only A1 A4 ...]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from repro import acc
from repro.testsuite.cases import make_case

__all__ = ["AblationRow", "run_ablation", "ABLATIONS"]


@dataclass
class AblationRow:
    """One measured configuration of an ablation."""

    ablation: str
    config: str
    kernel_ms: float
    counters: dict

    def __str__(self) -> str:
        extras = "  ".join(f"{k}={v}" for k, v in self.counters.items())
        return (f"  {self.ablation:<4} {self.config:<34} "
                f"{self.kernel_ms:>9.3f} ms   {extras}")


def _measure(case, *, geom=None, **overrides) -> tuple[float, dict]:
    geom = geom or {}
    # each ablation isolates ONE lowering choice, so the paper-shape
    # minimal pipeline is the default here — otherwise the optimizer
    # (e.g. finish-kernel fusion) would blur the comparison.  The
    # pipeline itself is ablation A10, which overrides this.
    overrides.setdefault("pipeline", "minimal")
    prog = acc.compile(case.source, **geom, **overrides)
    rng = np.random.default_rng(42)
    inputs = case.make_inputs(rng)
    res = prog.run(**inputs)
    # verify — an ablation variant must stay correct
    for kind, name, expect in case.expected(inputs):
        got = res.scalars[name] if kind == "scalar" else res.outputs[name]
        if not np.allclose(np.asarray(got, dtype=np.float64),
                           np.asarray(expect, dtype=np.float64), rtol=1e-5):
            raise AssertionError(
                f"ablation variant produced a wrong result for {case.label}")
    st = res.kernel_stats["acc_region_main"]
    return res.kernel_ms, {
        "sync": st.barriers,
        "bankconf": st.bank_conflict_extra,
        "dram_tx": st.global_transactions,
        "l2": st.l2_transactions,
        "smem_bytes": st.shared_bytes,
    }


def _rows(name, case, variants, geom=None) -> list[AblationRow]:
    out = []
    for label, overrides in variants:
        ms, counters = _measure(case, geom=geom, **overrides)
        out.append(AblationRow(name, label, ms, counters))
    return out


def a1_vector_layouts(size=16384) -> list[AblationRow]:
    case = make_case("vector", "+", "float", size=size)
    return _rows("A1", case, [
        ("row layout (Fig. 6c, OpenUH)", dict(vector_layout="row")),
        ("transposed layout (Fig. 6b)", dict(vector_layout="transposed")),
    ])


def a2_worker_strategies(size=16384) -> list[AblationRow]:
    case = make_case("worker", "+", "float", size=size)
    return _rows("A2", case, [
        ("first-row (Fig. 8c, OpenUH)", dict(worker_strategy="first_row")),
        ("duplicated rows (Fig. 8b)", dict(worker_strategy="duplicated")),
    ])


def a3_scheduling(size=1 << 22) -> list[AblationRow]:
    case = make_case("same line gang worker vector", "+", "float", size=size)
    return _rows("A3", case, [
        ("window sliding (OpenUH)", dict(scheduling="window")),
        ("blocking", dict(scheduling="blocking")),
    ])


def a4_sync_elision(size=16384) -> list[AblationRow]:
    case = make_case("vector", "+", "float", size=size)
    return _rows("A4", case, [
        ("warp-aware elision (OpenUH)", dict(elide_warp_sync=True)),
        ("barrier every step", dict(elide_warp_sync=False)),
    ])


def a5_rmp_style(size=1 << 20) -> list[AblationRow]:
    case = make_case("worker vector", "+", "float", size=size)
    return _rows("A5", case, [
        ("direct flat combine (OpenUH)", dict(block_rmp_style="direct")),
        ("level by level (rejected §3.2.1)",
         dict(block_rmp_style="level_by_level")),
    ])


def a6_nonpow2_vector(size=16384) -> list[AblationRow]:
    case = make_case("vector", "+", "float", size=size)
    rows = []
    for vl in (128, 96, 100):
        ms, counters = _measure(case, geom=dict(vector_length=vl,
                                                num_workers=8))
        rows.append(AblationRow("A6", f"vector_length={vl}"
                                + ("" if vl % 32 == 0 else " (not warp-mult)"),
                                ms, counters))
    return rows


def a7_memory_space(size=1 << 20) -> list[AblationRow]:
    case = make_case("worker vector", "+", "float", size=size)
    return _rows("A7", case, [
        ("shared-memory staging (default)", dict(reduction_memory="shared")),
        ("global-memory staging (§3.3)", dict(reduction_memory="global")),
    ])


def a8_gang_handoff(size=1 << 20) -> list[AblationRow]:
    """Extension: the paper's partial-buffer + finish kernel vs a modern
    block-reduce + device-atomic handoff (single kernel, no finish)."""
    case = make_case("same line gang worker vector", "+", "float", size=size)
    rows = []
    for label, overrides in [
        ("partial buffer + finish kernel (paper)",
         dict(gang_partial_style="buffer")),
        ("block reduce + atomic RMW (extension)",
         dict(gang_partial_style="atomic")),
    ]:
        ms, counters = _measure(case, **overrides)
        rows.append(AblationRow("A8", label, ms, counters))
    return rows


def a9_shuffle(size=16384) -> list[AblationRow]:
    """Extension: shared-memory log-step (the paper) vs Kepler __shfl_down
    warp trees for the block-level combine."""
    case = make_case("vector", "+", "float", size=size)
    return _rows("A9", case, [
        ("shared-memory log-step (paper)", dict(vector_strategy="logstep")),
        ("warp shuffle trees (extension)", dict(vector_strategy="shuffle")),
    ])


def a10_pass_pipeline(size=1 << 20) -> list[AblationRow]:
    """Extension: the kernel-IR optimization pipeline (finish-kernel
    fusion, barrier elimination, constant folding) vs the paper-shape
    minimal lowering.  Float '+' keeps the cost-model autotuner out of
    the comparison (inexact combine, so it declines to retune), leaving
    exactly the bit-identity-preserving kernel-IR passes."""
    case = make_case("same line gang worker vector", "+", "float", size=size)
    return _rows("A10", case, [
        ("minimal pipeline (paper shape)", dict(pipeline="minimal")),
        ("optimized pipeline (kernel-IR passes)",
         dict(pipeline="optimized")),
    ])


ABLATIONS = {
    "A1": (a1_vector_layouts, "vector layout: row vs transposed"),
    "A2": (a2_worker_strategies, "worker strategy: first-row vs duplicated"),
    "A3": (a3_scheduling, "scheduling: window vs blocking"),
    "A4": (a4_sync_elision, "log-step barrier elision"),
    "A5": (a5_rmp_style, "RMP: direct vs level-by-level"),
    "A6": (a6_nonpow2_vector, "non-power-of-two vector sizes"),
    "A7": (a7_memory_space, "reduction staging: shared vs global"),
    "A8": (a8_gang_handoff, "gang handoff: finish kernel vs atomics"),
    "A9": (a9_shuffle, "block combine: log-step vs warp shuffles"),
    "A10": (a10_pass_pipeline, "pass pipeline: minimal vs optimized"),
}

_QUICK_SIZES = {"A1": 2048, "A2": 2048, "A3": 1 << 18, "A4": 2048,
                "A5": 1 << 16, "A6": 2048, "A7": 1 << 16, "A8": 1 << 16,
                "A9": 2048, "A10": 1 << 16}


def run_ablation(name: str, quick: bool = False) -> list[AblationRow]:
    fn, _ = ABLATIONS[name]
    if quick:
        return fn(size=_QUICK_SIZES[name])
    return fn()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--only", nargs="+", choices=sorted(ABLATIONS),
                    default=sorted(ABLATIONS))
    args = ap.parse_args(argv)
    t0 = time.time()
    for name in args.only:
        _, desc = ABLATIONS[name]
        print(f"\n{name}: {desc}")
        for row in run_ablation(name, quick=args.quick):
            print(row)
    print(f"\n[{time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
