"""``repro.bench.history`` — the performance-regression observatory.

One static benchmark snapshot cannot answer the paper's actually
*comparative* questions (does strategy A still beat B on this device
generation?  did the last PR's executor change hold its speedup?).  This
module keeps an **append-only run ledger** — one JSONL entry per
``(git SHA, config, pipeline, executor mode)`` measurement, median-of-N
repetitions with a MAD (median-absolute-deviation) noise estimate — and
a **regression detector** that flags any config whose current median
leaves the baseline's noise band:

    band = max(k * baseline_MAD, floor * baseline_median)
    regression  ⇔  current_median > baseline_median + band
    improvement ⇔  current_median < baseline_median - band

Two metrics ride in every entry:

* ``modeled_ms`` — the analytic cost model's kernel time.  Deterministic
  and machine-independent, so it compares across hosts and its MAD is
  zero (the ``floor`` term supplies the band).  A modeled regression
  means the *compiler* changed (pass pipeline, lowering, cost model).
* ``wall_ms``   — real wall-clock of the same runs.  Machine-dependent
  and noisy, so the detector only compares entries whose ``host``
  fingerprints match; the MAD band absorbs scheduler noise.  A wall
  regression means the *implementation* got slower (executor, caches).

The measured configurations mirror ``repro.bench.smoke`` (the Table 2
sweep and the 64-gang reduction in each executor mode, plus the
minimal-vs-optimized pass-pipeline grid), so
:func:`import_baseline` can seed the ledger's first reference point from
the committed ``BENCH_table2.json``.  ``python -m repro obs
record|compare|report`` is the CLI face (see ``docs/telemetry.md``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass

from repro.obs import timeline as _timeline

__all__ = ["LedgerEntry", "Verdict", "DEFAULT_LEDGER", "append_entries",
           "load_ledger", "measure", "import_baseline", "detect",
           "format_report", "render_html", "git_sha", "median", "mad"]

DEFAULT_LEDGER = "artifacts/bench_history.jsonl"
SCHEMA = 1

#: detector defaults: k MADs of headroom, but never a band tighter than
#: ``floor`` of the baseline median (MAD is 0 for deterministic metrics)
DEFAULT_K = 3.0
DEFAULT_FLOOR = 0.05

_REDUCTION_SRC = '''float a[n];
float total = 0.0;
#pragma acc parallel copyin(a)
#pragma acc loop gang worker vector reduction(+:total)
for (i = 0; i < n; i++)
    total += a[i];
'''


def median(xs) -> float:
    s = sorted(xs)
    if not s:
        raise ValueError("median of empty sample")
    n = len(s)
    mid = n // 2
    return float(s[mid]) if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def mad(xs) -> float:
    """Median absolute deviation — a robust noise width."""
    m = median(xs)
    return median([abs(x - m) for x in xs])


def git_sha(short: bool = True) -> str:
    try:
        args = ["git", "rev-parse"] + (["--short"] if short else []) \
            + ["HEAD"]
        out = subprocess.run(args, capture_output=True, text=True,
                             timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


@dataclass(frozen=True)
class LedgerEntry:
    """One measurement of one configuration, appended to the ledger."""

    sha: str
    recorded_at: float        # unix seconds
    host: str                 # wall-clock comparability fingerprint
    config: str               # e.g. "table2_quick", a pass-grid label
    pipeline: str             # "default" | "minimal" | "optimized" | ...
    executor: str             # "batched" | "reference"
    reps: int
    modeled_ms: float         # median over reps
    modeled_mad_ms: float
    wall_ms: float | None     # median over reps (None: not measured)
    wall_mad_ms: float | None
    source: str = "measured"  # "measured" | "baseline-import"
    schema: int = SCHEMA

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.config, self.pipeline, self.executor)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "LedgerEntry":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


# -- ledger I/O -----------------------------------------------------------

def append_entries(path: str, entries: list[LedgerEntry]) -> str:
    """Append entries to the JSONL ledger (created if missing)."""
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "a") as f:
        for e in entries:
            f.write(json.dumps(e.to_dict(), sort_keys=True) + "\n")
    return path


def load_ledger(path: str) -> list[LedgerEntry]:
    """All entries, in append (= chronological) order."""
    entries: list[LedgerEntry] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(LedgerEntry.from_dict(json.loads(line)))
    return entries


# -- measurement ----------------------------------------------------------

def _sample(fn, reps: int) -> tuple[list[float], object]:
    """``reps`` timed calls → (wall seconds per rep, last result)."""
    walls, result = [], None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - t0)
    return walls, result


def _entry(config: str, pipeline: str, executor: str, reps: int,
           modeled_samples: list[float], wall_samples: list[float] | None,
           *, sha: str, now: float, host: str,
           perturb: float = 1.0) -> LedgerEntry:
    modeled = [m * perturb for m in modeled_samples]
    walls = [w * perturb for w in wall_samples] if wall_samples else None
    return LedgerEntry(
        sha=sha, recorded_at=now, host=host, config=config,
        pipeline=pipeline, executor=executor, reps=reps,
        modeled_ms=median(modeled), modeled_mad_ms=mad(modeled),
        wall_ms=median(walls) * 1e3 if walls else None,
        wall_mad_ms=mad(walls) * 1e3 if walls else None)


def measure(reps: int = 3, quick: bool = False,
            perturb: dict[str, float] | None = None,
            sha: str | None = None) -> list[LedgerEntry]:
    """Measure the observatory's configuration grid.

    Mirrors the bench-smoke workloads: the scaled Table 2 sweep and a
    64-gang reduction, each in every executor mode (``reps`` wall
    samples each), plus the minimal-vs-optimized pass-pipeline grid
    (modeled time is deterministic, so it is run once).  ``quick``
    shrinks sizes/geometry for tests.  ``perturb`` maps config label →
    slowdown factor applied to that config's samples — the documented
    self-test hook that lets the regression detector prove itself
    without waiting for a real regression.

    Emits one ``bench`` counter event per row onto the telemetry bus
    (modeled vs wall-clock, the cost model's fidelity signal).
    """
    import numpy as np

    from repro import acc
    from repro.testsuite.cases import POSITIONS, generate_cases

    perturb = dict(perturb or {})
    sha = sha if sha is not None else git_sha()
    now = time.time()
    host = platform.node() or "unknown-host"
    entries: list[LedgerEntry] = []

    def add(config, pipeline, executor, n, modeled, walls):
        e = _entry(config, pipeline, executor, n, modeled, walls,
                   sha=sha, now=now, host=host,
                   perturb=perturb.get(config, 1.0))
        entries.append(e)
        tl = _timeline.current()
        if tl is not None:
            tl.counter("bench", f"history:{config}", pipeline=pipeline,
                       executor=executor, modeled_ms=e.modeled_ms,
                       wall_ms=e.wall_ms,
                       model_vs_wall=(None if not e.wall_ms else round(
                           e.modeled_ms / e.wall_ms, 6)))

    # 1. the Table 2 sweep (multi-gang launches, what the batched
    #    executor accelerates), per executor mode
    size, geom = ((512, dict(num_gangs=8, num_workers=2, vector_length=32))
                  if quick
                  else (4096, dict(num_gangs=192, num_workers=8,
                                   vector_length=128)))
    cases = generate_cases(positions=POSITIONS, ops=("+",),
                           ctypes=("float",), size=size)
    compiled = [(acc.compile(case.source, **geom),
                 case.make_inputs(np.random.default_rng(42)))
                for case in cases]
    for mode in ("batched", "reference", "trace"):
        def sweep(m=mode):
            return [prog.run(executor_mode=m, **inputs)
                    for prog, inputs in compiled]
        walls, results = _sample(sweep, reps)
        modeled = [sum(r.kernel_ms for r in results)] * reps
        add("table2_quick", "default", mode, reps, modeled, walls)

    # 2. the 64-gang reduction (launch-overhead-sensitive single kernel)
    rgeom = (dict(num_gangs=8, num_workers=2, vector_length=32) if quick
             else dict(num_gangs=64, num_workers=4, vector_length=32))
    rprog = acc.compile(_REDUCTION_SRC, **rgeom)
    a = (np.arange(1 << (12 if quick else 16)) % 97).astype(np.float32)
    for mode in ("batched", "reference", "trace"):
        walls, res = _sample(lambda m=mode: rprog.run(executor_mode=m, a=a),
                             reps)
        add("reduction_64gang", "default", mode, reps,
            [res.kernel_ms] * reps, walls)

    # 3. minimal vs optimized pass pipelines (modeled time only: the
    #    metric is deterministic, one run per cell suffices)
    from repro.testsuite.cases import make_case
    pp_positions = (("gang", "gang worker vector") if quick else
                    ("gang", "gang worker", "gang worker vector",
                     "same line gang worker vector"))
    grid = [(None, make_case(pos, "+", "float", size=size), geom)
            for pos in pp_positions]
    if not quick:
        # the warp-sized-block row from the smoke pass grid (isolates the
        # barrier-elimination win; label must match the imported baseline)
        grid.append(("same-line gwv float + (24x1x32, warp-sized blocks)",
                     make_case("same line gang worker vector", "+", "float",
                               size=size),
                     dict(num_gangs=24, num_workers=1, vector_length=32)))
    for label, case, g in grid:
        inputs = case.make_inputs(np.random.default_rng(7))
        for pipe in ("minimal", "optimized"):
            prog = acc.compile(case.source, pipeline=pipe, **g)
            res = prog.run(**inputs)
            add(f"passes:{label or case.label}", pipe, "batched", 1,
                [res.kernel_ms], None)
    return entries


def import_baseline(baseline_path: str, *,
                    sha: str = "seed-baseline") -> list[LedgerEntry]:
    """Seed entries from a committed ``BENCH_table2.json`` smoke baseline.

    A one-shot importer (``repro obs record --import-baseline``) so the
    very first ``compare`` has a reference point: the smoke document's
    per-workload wall/modeled numbers become ``baseline-import`` entries
    (host ``"baseline-import"``, so cross-machine wall comparisons are
    skipped, and MAD 0, so the detector's relative floor supplies the
    noise band), and the pass-pipeline grid's minimal/optimized modeled
    times become per-config entries.
    """
    with open(baseline_path) as f:
        doc = json.load(f)
    now = time.time()
    reps = int(doc.get("reps", 1))
    entries: list[LedgerEntry] = []
    for name, w in doc.get("workloads", {}).items():
        for mode in ("batched", "reference", "trace"):
            if f"{mode}_wall_s" not in w:  # pre-trace-executor baselines
                continue
            entries.append(LedgerEntry(
                sha=sha, recorded_at=now, host="baseline-import",
                config=name, pipeline="default", executor=mode, reps=reps,
                modeled_ms=float(w["modeled_ms_total"]), modeled_mad_ms=0.0,
                wall_ms=float(w[f"{mode}_wall_s"]) * 1e3, wall_mad_ms=0.0,
                source="baseline-import"))
    # the trace gate's per-row Table 2 timings (one config per row, one
    # entry per executor mode) — the speedup ledger the gate refers to
    for row in doc.get("trace_executor", {}).get("rows", []):
        for mode in ("batched", "reference", "trace"):
            entries.append(LedgerEntry(
                sha=sha, recorded_at=now, host="baseline-import",
                config=f"trace:{row['config']}", pipeline="default",
                executor=mode, reps=reps,
                modeled_ms=float(row["modeled_ms"]), modeled_mad_ms=0.0,
                wall_ms=float(row[f"{mode}_wall_s"]) * 1e3,
                wall_mad_ms=0.0, source="baseline-import"))
    for row in doc.get("pass_pipeline", {}).get("configs", []):
        for pipe in ("minimal", "optimized"):
            entries.append(LedgerEntry(
                sha=sha, recorded_at=now, host="baseline-import",
                config=f"passes:{row['config']}", pipeline=pipe,
                executor="batched", reps=1,
                modeled_ms=float(row[f"{pipe}_ms"]), modeled_mad_ms=0.0,
                wall_ms=None, wall_mad_ms=None, source="baseline-import"))
    return entries


# -- the regression detector ----------------------------------------------

@dataclass(frozen=True)
class Verdict:
    """The detector's finding for one config key."""

    config: str
    pipeline: str
    executor: str
    metric: str           # "modeled" | "wall"
    status: str           # "ok" | "regression" | "improvement" | "skipped"
    baseline: float | None
    current: float | None
    band: float | None
    delta_pct: float | None
    note: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


def _metric_of(e: LedgerEntry, metric: str):
    if metric == "modeled":
        return e.modeled_ms, e.modeled_mad_ms
    return e.wall_ms, e.wall_mad_ms


def detect(entries: list[LedgerEntry], *, metric: str = "modeled",
           k: float = DEFAULT_K, floor: float = DEFAULT_FLOOR,
           against: str = "baseline") -> list[Verdict]:
    """Compare the latest entry per key against its baseline entry.

    ``against="baseline"`` anchors on each key's *first* entry (an
    imported baseline when present), so slow drift cannot creep in one
    tolerated step at a time; ``against="previous"`` compares
    consecutive entries instead.  Wall-clock comparisons require
    matching ``host`` fingerprints — cross-machine wall deltas are
    reported ``skipped``, never flagged.
    """
    if metric not in ("modeled", "wall"):
        raise ValueError(f"unknown metric {metric!r}")
    groups: dict[tuple, list[LedgerEntry]] = {}
    for e in entries:
        groups.setdefault(e.key, []).append(e)

    verdicts: list[Verdict] = []
    for key in sorted(groups):
        group = groups[key]
        cur = group[-1]
        if against == "previous" and len(group) >= 2:
            base = group[-2]
        else:
            imported = [e for e in group if e.source == "baseline-import"]
            base = imported[0] if imported else group[0]
        config, pipeline, executor = key

        def verdict(status, b=None, c=None, band=None, note=""):
            delta = (None if not b or c is None
                     else round((c - b) / b * 100.0, 2))
            return Verdict(config=config, pipeline=pipeline,
                           executor=executor, metric=metric, status=status,
                           baseline=b, current=c, band=band,
                           delta_pct=delta, note=note)

        if cur is base:
            verdicts.append(verdict(
                "skipped", note="single entry; record again to compare"))
            continue
        b, b_mad = _metric_of(base, metric)
        c, _ = _metric_of(cur, metric)
        if b is None or c is None:
            verdicts.append(verdict(
                "skipped", note=f"{metric} not recorded on both entries"))
            continue
        if metric == "wall" and base.host != cur.host:
            verdicts.append(verdict(
                "skipped", b, c,
                note=f"hosts differ ({base.host} vs {cur.host}); "
                     "wall times are not comparable"))
            continue
        band = max(k * (b_mad or 0.0), floor * b)
        if c > b + band:
            verdicts.append(verdict("regression", b, c, band,
                                    note=f"median left the noise band "
                                         f"(+{(c - b) / b:.1%})"))
        elif c < b - band:
            verdicts.append(verdict("improvement", b, c, band))
        else:
            verdicts.append(verdict("ok", b, c, band))
    return verdicts


# -- reporting ------------------------------------------------------------

_SPARKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    return "".join(_SPARKS[int((v - lo) / (hi - lo) * (len(_SPARKS) - 1))]
                   for v in values)


def _series(entries: list[LedgerEntry], metric: str):
    """key → chronological list of (sha, value) with the metric present."""
    out: dict[tuple, list[tuple[str, float]]] = {}
    for e in entries:
        v, _ = _metric_of(e, metric)
        if v is not None:
            out.setdefault(e.key, []).append((e.sha, v))
    return out


def format_report(entries: list[LedgerEntry], *, metric: str = "modeled",
                  k: float = DEFAULT_K,
                  floor: float = DEFAULT_FLOOR) -> str:
    """Markdown trend report: one row per config key."""
    verdicts = {(v.config, v.pipeline, v.executor): v
                for v in detect(entries, metric=metric, k=k, floor=floor)}
    series = _series(entries, metric)
    lines = [
        f"# Perf observatory — {metric} ms per config",
        "",
        f"{len(entries)} ledger entries, {len(series)} config keys; "
        f"band = max({k:g}·MAD, {floor:.0%}·baseline).",
        "",
        "| config | pipeline | executor | trend | baseline | latest "
        "| Δ% | verdict |",
        "|---|---|---|---|---:|---:|---:|---|",
    ]
    for key in sorted(series):
        config, pipeline, executor = key
        vals = [v for _, v in series[key]]
        v = verdicts.get(key)
        status = v.status if v else "?"
        mark = {"regression": "**REGRESSION**",
                "improvement": "improvement"}.get(status, status)
        base = f"{v.baseline:.4f}" if v and v.baseline is not None else "-"
        curr = f"{v.current:.4f}" if v and v.current is not None else \
            (f"{vals[-1]:.4f}" if vals else "-")
        delta = (f"{v.delta_pct:+.1f}" if v and v.delta_pct is not None
                 else "-")
        lines.append(f"| {config} | {pipeline} | {executor} "
                     f"| `{_sparkline(vals)}` | {base} | {curr} "
                     f"| {delta} | {mark} |")
    return "\n".join(lines)


def render_html(entries: list[LedgerEntry], *, metric: str = "modeled",
                k: float = DEFAULT_K, floor: float = DEFAULT_FLOOR) -> str:
    """Self-contained HTML dashboard (inline SVG trend per config)."""
    verdicts = {(v.config, v.pipeline, v.executor): v
                for v in detect(entries, metric=metric, k=k, floor=floor)}
    series = _series(entries, metric)
    status_color = {"regression": "#c0392b", "improvement": "#1e8449",
                    "ok": "#566573", "skipped": "#aab7b8"}

    def svg(points: list[tuple[str, float]]) -> str:
        vals = [v for _, v in points]
        w, h, pad = 220, 48, 4
        lo, hi = min(vals), max(vals)
        span = (hi - lo) or 1.0
        n = len(vals)
        xs = [pad + i * (w - 2 * pad) / max(1, n - 1) for i in range(n)]
        ys = [h - pad - (v - lo) / span * (h - 2 * pad) for v in vals]
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
        dots = "".join(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5">'
            f'<title>{sha}: {v:.5f} ms</title></circle>'
            for x, y, (sha, v) in zip(xs, ys, points))
        line = (f'<polyline points="{pts}" fill="none" '
                'stroke="currentColor" stroke-width="1.5"/>'
                if n > 1 else "")
        return (f'<svg width="{w}" height="{h}" '
                f'viewBox="0 0 {w} {h}">{line}{dots}</svg>')

    rows = []
    for key in sorted(series):
        config, pipeline, executor = key
        v = verdicts.get(key)
        status = v.status if v else "?"
        color = status_color.get(status, "#000")
        curr = (f"{v.current:.4f}" if v and v.current is not None
                else f"{series[key][-1][1]:.4f}")
        delta = (f"{v.delta_pct:+.1f}%" if v and v.delta_pct is not None
                 else "—")
        rows.append(
            "<tr>"
            f"<td><code>{config}</code></td><td>{pipeline}</td>"
            f"<td>{executor}</td><td>{svg(series[key])}</td>"
            f"<td class='num'>{curr}</td><td class='num'>{delta}</td>"
            f"<td style='color:{color};font-weight:600'>{status}</td>"
            "</tr>")
    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>repro perf observatory — {metric} trends</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; }}
 table {{ border-collapse: collapse; }}
 th, td {{ padding: .35rem .8rem; border-bottom: 1px solid #ddd;
           text-align: left; vertical-align: middle; }}
 td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
 svg {{ color: #2e86c1; display: block; }}
 code {{ background: #f4f6f6; padding: 0 .25rem; }}
</style></head><body>
<h1>Perf observatory — {metric} ms per config</h1>
<p>{len(entries)} ledger entries · {len(series)} config keys ·
band = max({k:g}·MAD, {floor:.0%}·baseline)</p>
<table><thead><tr><th>config</th><th>pipeline</th><th>executor</th>
<th>trend</th><th>latest</th><th>Δ%</th><th>verdict</th></tr></thead>
<tbody>
{chr(10).join(rows)}
</tbody></table></body></html>
"""
