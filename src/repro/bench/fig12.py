"""Fig. 12 regenerator: the three applications across compilers.

* **(a) 2-D heat equation** — grid sizes swept; per-iteration ``max``
  reduction until convergence.  vendor-a (CAPS-like) never converges (its
  bar is missing in the paper).
* **(b) matrix multiplication** — sizes swept; the k loop is a vector ``+``
  reduction.  vendor-b (PGI-like) computes wrong products (missing bar).
* **(c) Monte Carlo π** — sample counts swept; gang·vector ``+`` reduction
  over pre-generated points (modeled time includes the PCIe transfer, which
  is what scales with the paper's 1/2/4 GB buffers).

Usage::

    python -m repro.bench.fig12 [--quick] [--only a|b|c]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.apps.heat2d import solve_heat
from repro.apps.matmul import matmul
from repro.apps.montecarlo_pi import estimate_pi
from repro.bench.harness import Series, format_series

__all__ = ["heat_sweep", "matmul_sweep", "pi_sweep"]

COMPILERS = ("openuh", "vendor-b", "vendor-a")

#: paper sweeps 128..512 grids, 1..4 GB samples; scaled for the simulator
HEAT_SIZES = (32, 48, 64)
HEAT_SIZES_QUICK = (16, 24)
MATMUL_SIZES = (32, 48, 64)
MATMUL_SIZES_QUICK = (12, 16)
PI_SIZES = (1 << 18, 1 << 19, 1 << 20)
PI_SIZES_QUICK = (1 << 13, 1 << 14)


def heat_sweep(sizes=HEAT_SIZES, compilers=COMPILERS, tol: float = 0.5,
               max_iters: int = 120, progress=None) -> list[Series]:
    """Fig. 12(a): modeled time to convergence per grid size."""
    series = []
    for comp in compilers:
        s = Series(label=comp)
        for n in sizes:
            r = solve_heat(n=n, tol=tol, max_iters=max_iters, compiler=comp)
            s.add(f"{n}x{n}", r.kernel_ms if r.converged
                  else "no-convergence")
            if progress:
                progress(f"heat {n}x{n} {comp}: "
                         f"{'%.2f ms' % r.kernel_ms if r.converged else 'did not converge'}")
        series.append(s)
    return series


def matmul_sweep(sizes=MATMUL_SIZES, compilers=COMPILERS,
                 progress=None) -> list[Series]:
    """Fig. 12(b): modeled matmul time per matrix size."""
    rng = np.random.default_rng(12)
    series = []
    for comp in compilers:
        s = Series(label=comp)
        for n in sizes:
            A = rng.random((n, n)).astype(np.float32)
            B = rng.random((n, n)).astype(np.float32)
            r = matmul(A, B, compiler=comp)
            s.add(f"{n}x{n}", r.kernel_ms if r.correct else "F")
            if progress:
                progress(f"matmul {n}x{n} {comp}: "
                         f"{'%.2f ms' % r.kernel_ms if r.correct else 'F'}")
        series.append(s)
    return series


def pi_sweep(sizes=PI_SIZES, compilers=COMPILERS,
             progress=None) -> list[Series]:
    """Fig. 12(c): modeled time (incl. transfers) per sample count."""
    series = []
    for comp in compilers:
        s = Series(label=comp)
        for n in sizes:
            r = estimate_pi(n, compiler=comp)
            s.add(f"{n // 1024}K", r.total_ms)
            if progress:
                progress(f"pi {n} {comp}: {r.total_ms:.2f} ms "
                         f"(pi={r.pi:.4f})")
        series.append(s)
    return series


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--only", choices=("a", "b", "c"))
    args = ap.parse_args(argv)
    t0 = time.time()
    progress = lambda msg: print("  " + msg, flush=True)  # noqa: E731

    if args.only in (None, "a"):
        sizes = HEAT_SIZES_QUICK if args.quick else HEAT_SIZES
        print(format_series("Figure 12(a) — 2D heat equation [max]",
                            heat_sweep(sizes=sizes, progress=progress),
                            xlabel="grid"))
        print()
    if args.only in (None, "b"):
        sizes = MATMUL_SIZES_QUICK if args.quick else MATMUL_SIZES
        print(format_series("Figure 12(b) — matrix multiplication [+]",
                            matmul_sweep(sizes=sizes, progress=progress),
                            xlabel="matrix"))
        print()
    if args.only in (None, "c"):
        sizes = PI_SIZES_QUICK if args.quick else PI_SIZES
        print(format_series("Figure 12(c) — Monte Carlo PI [+] "
                            "(incl. transfers)",
                            pi_sweep(sizes=sizes, progress=progress),
                            xlabel="samples"))
    print(f"\n[{time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
