"""Auto-parallelization for ``kernels`` regions.

§2.1 of the paper: *"the parallel construct provides more control to the
user while the kernels provides more control to the compiler."*  Inside a
``#pragma acc kernels`` region, loops without explicit ``loop`` annotations
are the *compiler's* to schedule.  This pass implements that:

1. **Dependence test** (conservative): a loop may run in parallel iff

   * every array element written inside it is indexed by an expression
     that *uses the loop variable* (distinct iterations write distinct
     elements for affine accesses), and
   * no array is read at an index that differs from an index it is written
     at within the same loop (rules out ``a[i] = a[i-1]`` flow
     dependences), and
   * every scalar assigned inside the loop is either loop-local (declared
     in the body — privatizable) or a *reduction* (see below).

2. **Reduction recognition**: assignments of the shape ``s = s ⊕ expr``
   for an associative-commutative ⊕ (``+ * & | ^``, plus ``min``/``max``
   through their intrinsic form) mark ``s`` as a reduction variable, and
   the pass attaches the corresponding ``reduction`` clause — the kernels
   region equivalent of what §3 does for explicit clauses.

3. **Level assignment**: outermost parallelizable loops in each nest get
   ``gang``, then ``worker``, then ``vector`` (deeper parallel loops stay
   sequential), mirroring how the explicit examples of Fig. 2 ascribe
   levels outside-in.

Loops that fail the test run sequentially — correctness first, as any real
compiler must choose.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir import nodes as N

__all__ = ["auto_parallelize"]

_LEVELS = ("gang", "worker", "vector")

#: associative & commutative binary operators recognizable as reductions
_REDUCIBLE_BINOPS = {"+", "*", "&", "|", "^"}
_REDUCIBLE_CALLS = {"fmax": "max", "max": "max", "fmin": "min",
                    "min": "min"}


def _strip_casts(e: N.IExpr) -> N.IExpr:
    while isinstance(e, N.ICast):
        e = e.a
    return e


def _reads_var(e: N.IExpr, name: str) -> bool:
    e = _strip_casts(e)
    if isinstance(e, N.IVar):
        return e.name == name
    for f in ("a", "b", "cond", "index"):
        if hasattr(e, f) and _reads_var(getattr(e, f), name):
            return True
    if isinstance(e, N.ICall):
        return any(_reads_var(a, name) for a in e.args)
    if isinstance(e, N.ICond):
        return any(_reads_var(x, name) for x in (e.cond, e.a, e.b))
    return False


def _reduction_op_of(stmt: N.IAssign) -> str | None:
    """If ``stmt`` is ``v = v ⊕ expr`` (⊕ associative-commutative),
    return the operator token, else None."""
    if not isinstance(stmt.target, N.IVar):
        return None
    v = stmt.target.name
    value = _strip_casts(stmt.value)
    if isinstance(value, N.IBin) and value.op in _REDUCIBLE_BINOPS:
        a, b = _strip_casts(value.a), _strip_casts(value.b)
        a_is_v = isinstance(a, N.IVar) and a.name == v
        b_is_v = isinstance(b, N.IVar) and b.name == v
        # exactly one side is v, and v does not also appear inside the other
        if a_is_v and not _reads_var(value.b, v):
            return value.op
        if b_is_v and not _reads_var(value.a, v):
            return value.op
        return None
    if isinstance(value, N.ICall) and value.fn in _REDUCIBLE_CALLS \
            and len(value.args) == 2:
        a, b = _strip_casts(value.args[0]), _strip_casts(value.args[1])
        if isinstance(a, N.IVar) and a.name == v \
                and not _reads_var(value.args[1], v):
            return _REDUCIBLE_CALLS[value.fn]
        if isinstance(b, N.IVar) and b.name == v \
                and not _reads_var(value.args[0], v):
            return _REDUCIBLE_CALLS[value.fn]
    return None


class _LoopFacts:
    """What one loop's body does, gathered in a single walk."""

    def __init__(self, loop: N.ILoop):
        self.loop = loop
        self.local_scalars: set[str] = set()
        self.assigned_scalars: set[str] = set()
        #: scalar -> operator for pure-accumulation scalars; None = tainted
        self.accumulators: dict[str, str | None] = {}
        self.accum_counts: dict[str, int] = {}
        self.scalar_reads: dict[str, int] = {}
        self.array_writes: list[N.IArrayRef] = []
        self.array_reads: list[N.IArrayRef] = []
        self._walk(loop.body)

    def _walk(self, stmts) -> None:
        for s in stmts:
            if isinstance(s, N.IDecl):
                self.local_scalars.add(s.name)
                if s.init is not None:
                    self._scan_reads(s.init)
            elif isinstance(s, N.IAssign):
                self._scan_reads(s.value)
                if getattr(s, "atomic", False) \
                        and isinstance(s.target, N.IArrayRef):
                    # atomic updates combine across iterations: no
                    # injectivity requirement, no flow dependence
                    self._scan_reads(s.target.index)
                    continue
                if isinstance(s.target, N.IVar):
                    name = s.target.name
                    self.assigned_scalars.add(name)
                    op = _reduction_op_of(s)
                    if op is not None:
                        self.accum_counts[name] = \
                            self.accum_counts.get(name, 0) + 1
                    if name not in self.accumulators:
                        self.accumulators[name] = op
                    elif self.accumulators[name] != op:
                        self.accumulators[name] = None
                else:
                    self._scan_reads(s.target.index)
                    self.array_writes.append(s.target)
            elif isinstance(s, N.IIf):
                self._scan_reads(s.cond)
                self._walk(s.then)
                self._walk(s.orelse)
            elif isinstance(s, N.ILoop):
                self._scan_reads(s.start)
                self._scan_reads(s.end)
                self._scan_reads(s.step)
                self.local_scalars.add(s.var)
                self._walk(s.body)

    def _scan_reads(self, e: N.IExpr) -> None:
        e = _strip_casts(e)
        if isinstance(e, N.IVar):
            self.scalar_reads[e.name] = self.scalar_reads.get(e.name, 0) + 1
            return
        if isinstance(e, N.IArrayRef):
            self.array_reads.append(e)
            self._scan_reads(e.index)
            return
        for f in ("a", "b"):
            if hasattr(e, f):
                self._scan_reads(getattr(e, f))
        if isinstance(e, N.ICall):
            for a in e.args:
                self._scan_reads(a)
        if isinstance(e, N.ICond):
            for x in (e.cond, e.a, e.b):
                self._scan_reads(x)


def _parallelizable(facts: _LoopFacts) -> tuple[bool, list[tuple[str, str]]]:
    """Conservative dependence test; returns (ok, detected reductions)."""
    var = facts.loop.var
    reductions: list[tuple[str, str]] = []

    # scalars: each assigned scalar must be loop-local or a pure
    # accumulator whose intermediate value is never otherwise consumed
    # (reading a partial sum, e.g. `s += a[i]; b[i] = s;`, is a genuine
    # loop-carried dependence)
    for name in facts.assigned_scalars:
        if name in facts.local_scalars:
            continue
        op = facts.accumulators.get(name)
        if op is None:
            return False, []
        if facts.scalar_reads.get(name, 0) != facts.accum_counts.get(name, 0):
            return False, []
        reductions.append((op, name))

    # array writes must be distinguished by the loop variable
    written_arrays: dict[str, list[N.IExpr]] = {}
    for ref in facts.array_writes:
        if not _reads_var(ref.index, var):
            return False, []
        written_arrays.setdefault(ref.array, []).append(ref.index)

    # reads of written arrays must match a write index exactly
    for ref in facts.array_reads:
        if ref.array in written_arrays:
            if not any(ref.index == w for w in written_arrays[ref.array]):
                return False, []
    return True, reductions


def _assign_levels(stmts, next_level: int) -> tuple:
    """Rewrite unannotated loops with inferred levels, outside-in."""
    out = []
    for s in stmts:
        if isinstance(s, N.ILoop):
            out.append(_rewrite_loop(s, next_level))
        elif isinstance(s, N.IIf):
            out.append(replace(
                s, then=_assign_levels(s.then, next_level),
                orelse=_assign_levels(s.orelse, next_level)))
        else:
            out.append(s)
    return tuple(out)


def _rewrite_loop(loop: N.ILoop, next_level: int) -> N.ILoop:
    if loop.info.levels or loop.info.seq or loop.info.reductions:
        # explicitly annotated: respect the user, only recurse
        consumed = next_level
        if loop.info.levels:
            consumed = max(consumed, 1 + max(
                _LEVELS.index(lv) for lv in loop.info.levels))
        return replace(loop, body=_assign_levels(loop.body, consumed))

    if next_level >= len(_LEVELS):
        return replace(loop, body=_assign_levels(loop.body, next_level))

    facts = _LoopFacts(loop)
    ok, reductions = _parallelizable(facts)
    if not ok:
        return replace(loop, body=_assign_levels(loop.body, next_level))
    info = replace(loop.info, levels=(_LEVELS[next_level],),
                   reductions=tuple(reductions))
    return replace(loop, info=info,
                   body=_assign_levels(loop.body, next_level + 1))


def auto_parallelize(region: N.Region) -> N.Region:
    """Schedule a ``kernels`` region's unannotated loops (no-op for
    ``parallel`` regions, where unannotated loops are the user's choice)."""
    if region.kind != "kernels":
        return region
    return replace(region, body=_assign_levels(region.body, 0))
