"""Typed loop-nest IR nodes.

Every expression carries its :class:`~repro.dtypes.DType`; the builder
inserts explicit casts following C's usual arithmetic conversions, so later
phases never guess types.  Array references carry a *flattened* index
expression (row-major over the declared shape) — multi-dimensional subscripts
are already linearized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes import DType

__all__ = [
    "IExpr", "IConst", "IVar", "IArrayRef", "IBin", "IUn", "ICall", "ICast",
    "ICond",
    "IStmt", "IAssign", "IDecl", "IIf", "ILoop",
    "LoopInfo", "ArrayInfo", "ScalarInfo", "Region",
]


# -- expressions -------------------------------------------------------------

class IExpr:
    __slots__ = ()
    dtype: DType


@dataclass(frozen=True)
class IConst(IExpr):
    value: object
    dtype: DType


@dataclass(frozen=True)
class IVar(IExpr):
    """A scalar variable: region parameter, loop variable, or local."""

    name: str
    dtype: DType


@dataclass(frozen=True)
class IArrayRef(IExpr):
    """``array[flat_index]`` — reads are expressions, writes are IAssign
    targets."""

    array: str
    index: IExpr  # integer-typed flat index
    dtype: DType


@dataclass(frozen=True)
class IBin(IExpr):
    op: str
    a: IExpr
    b: IExpr
    dtype: DType


@dataclass(frozen=True)
class IUn(IExpr):
    op: str  # 'neg', 'not', 'inv'
    a: IExpr
    dtype: DType


@dataclass(frozen=True)
class ICall(IExpr):
    fn: str
    args: tuple[IExpr, ...]
    dtype: DType


@dataclass(frozen=True)
class ICast(IExpr):
    a: IExpr
    dtype: DType


@dataclass(frozen=True)
class ICond(IExpr):
    cond: IExpr
    a: IExpr
    b: IExpr
    dtype: DType


# -- statements --------------------------------------------------------------

class IStmt:
    __slots__ = ()


@dataclass(frozen=True)
class IAssign(IStmt):
    """``target = value`` (compound ops are desugared by the builder).

    ``atomic`` marks a ``#pragma acc atomic update``: the lowering emits a
    device read-modify-write so colliding updates combine.
    """

    target: IVar | IArrayRef
    value: IExpr
    line: int = 0
    atomic: bool = False


@dataclass(frozen=True)
class IDecl(IStmt):
    """Scalar declaration local to its enclosing scope."""

    name: str
    dtype: DType
    init: IExpr | None = None
    line: int = 0


@dataclass(frozen=True)
class IIf(IStmt):
    cond: IExpr
    then: tuple[IStmt, ...]
    orelse: tuple[IStmt, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class LoopInfo:
    """OpenACC annotations on a loop."""

    levels: tuple[str, ...] = ()  # subset of gang/worker/vector
    seq: bool = False
    reductions: tuple[tuple[str, str], ...] = ()  # (operator, variable)
    #: value-index pair reductions: (kind, value_var, index_var) where
    #: kind is "argmax" or "argmin"
    arg_reductions: tuple[tuple[str, str, str], ...] = ()
    private: tuple[str, ...] = ()
    collapse: int = 1

    @property
    def is_parallel(self) -> bool:
        return bool(self.levels)


@dataclass(frozen=True)
class ILoop(IStmt):
    """Canonical counted loop ``for (var = start; var < end; var += step)``.

    ``loop_id`` uniquely identifies the loop within its region (used by the
    analysis to key reduction plans).
    """

    loop_id: int
    var: str
    start: IExpr
    end: IExpr
    step: IExpr
    body: tuple[IStmt, ...]
    info: LoopInfo = LoopInfo()
    line: int = 0


# -- region ------------------------------------------------------------------

@dataclass(frozen=True)
class ArrayInfo:
    """A device array visible in the region.

    ``extents`` are symbolic (scalar names bound from the host array's shape
    at run time) or literal ints; empty for flat arrays whose size comes
    directly from the host array.
    """

    name: str
    dtype: DType
    extents: tuple[object, ...]  # str (scalar name) or int (literal)
    transfer: str  # copy, copyin, copyout, create, present


@dataclass(frozen=True)
class ScalarInfo:
    """A scalar visible in the region (kernel parameter, firstprivate)."""

    name: str
    dtype: DType
    from_shape: tuple[str, int] | None = None  # (array, dim) it is bound from
    init: IExpr | None = None  # host-side initializer from the preamble


@dataclass(frozen=True)
class Region:
    """One OpenACC compute region, fully typed and normalized."""

    kind: str  # parallel | kernels
    body: tuple[IStmt, ...]
    arrays: tuple[ArrayInfo, ...]
    scalars: tuple[ScalarInfo, ...]
    num_gangs: int | None = None
    num_workers: int | None = None
    vector_length: int | None = None

    def array(self, name: str) -> ArrayInfo:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def scalar(self, name: str) -> ScalarInfo:
        for s in self.scalars:
            if s.name == name:
                return s
        raise KeyError(name)
