"""Loop-nest IR: the compiler's middle end.

The IR normalizes the C AST into a typed loop tree annotated with OpenACC
level information; :mod:`repro.ir.analysis` then performs the reduction-span
inference that §3.2.1 of the paper highlights as OpenUH's "smart" reduction
placement, producing a :class:`~repro.ir.analysis.RegionPlan` the lowering
consumes.
"""

from repro.ir.nodes import (
    IConst, IVar, IArrayRef, IBin, IUn, ICall, ICast, ICond,
    IAssign, IDecl, IIf, ILoop, LoopInfo, Region, ArrayInfo, ScalarInfo,
)
from repro.ir.builder import build_region
from repro.ir.analysis import analyze_region, RegionPlan, ReductionInfo

__all__ = [
    "IConst", "IVar", "IArrayRef", "IBin", "IUn", "ICall", "ICast", "ICond",
    "IAssign", "IDecl", "IIf", "ILoop", "LoopInfo", "Region", "ArrayInfo",
    "ScalarInfo", "build_region", "analyze_region", "RegionPlan",
    "ReductionInfo",
]
