"""C AST → loop-nest IR: symbol resolution, typing, index flattening.

Two passes over the region:

1. **Symbol collection** — preamble declarations define arrays (with
   symbolic shapes) and host scalars; data clauses define the transfer plan;
   free identifiers become ``int`` kernel parameters; array extents bind to
   scalars filled from the host arrays' shapes at run time.
2. **Statement building** — scoped type propagation with C's usual
   arithmetic conversions (explicit :class:`~repro.ir.nodes.ICast` nodes),
   compound-assignment desugaring, and row-major flattening of
   multi-dimensional subscripts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dtypes import DType, ctype_to_dtype, promote, is_integer
from repro.errors import AnalysisError, CompileError
from repro.frontend import ast_nodes as A
from repro.frontend.pragmas import AccLoopInfo, AccRegionInfo, DataClause
from repro.ir import nodes as N

__all__ = ["build_region"]

# intrinsics: name -> (arity, kind); kind 'float' promotes args to a common
# floating type (C calls these on double), 'poly' keeps the promoted arg type
_INTRINSICS = {
    "fmax": (2, "float"), "fmaxf": (2, "float"),
    "fmin": (2, "float"), "fminf": (2, "float"),
    "fabs": (1, "float"), "fabsf": (1, "float"),
    "sqrt": (1, "float"), "sqrtf": (1, "float"),
    "exp": (1, "float"), "expf": (1, "float"),
    "log": (1, "float"), "logf": (1, "float"),
    "sin": (1, "float"), "cos": (1, "float"),
    "floor": (1, "float"), "ceil": (1, "float"),
    "pow": (2, "float"), "powf": (2, "float"),
    "abs": (1, "poly"), "min": (2, "poly"), "max": (2, "poly"),
}

_INT_ONLY_OPS = ("%", "<<", ">>", "&", "|", "^")
_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


@dataclass
class _Scope:
    vars: dict[str, DType] = field(default_factory=dict)


class _Builder:
    def __init__(self, cregion: A.CRegion,
                 array_dtypes: dict[str, str] | None):
        self.cregion = cregion
        self.info: AccRegionInfo = cregion.info
        self.extra_array_dtypes = dict(array_dtypes or {})
        self.arrays: dict[str, N.ArrayInfo] = {}
        self.scalars: dict[str, N.ScalarInfo] = {}
        self.scopes: list[_Scope] = [_Scope()]
        self.loop_ids = itertools.count()

    # ------------------------------------------------------------------
    # pass 1: symbols
    # ------------------------------------------------------------------

    def collect_symbols(self) -> None:
        declared_arrays: dict[str, A.CDecl] = {}
        for stmt in self.cregion.preamble:
            if isinstance(stmt, A.CDecl):
                if stmt.dims:
                    declared_arrays[stmt.name] = stmt
                else:
                    dtype = ctype_to_dtype(stmt.ctype)
                    init = None
                    if stmt.init is not None:
                        init = self._const_fold_host(stmt.init, dtype)
                    self.scalars[stmt.name] = N.ScalarInfo(
                        stmt.name, dtype, init=init)
            elif isinstance(stmt, A.CAssign):
                # `sum = 0;` before the region: untyped host scalar
                if isinstance(stmt.target, A.CIdent) \
                        and stmt.target.name not in self.scalars:
                    self.scalars[stmt.target.name] = N.ScalarInfo(
                        stmt.target.name, DType.INT,
                        init=self._const_fold_host(stmt.value, DType.INT))
                elif isinstance(stmt.target, A.CIdent):
                    old = self.scalars[stmt.target.name]
                    self.scalars[stmt.target.name] = N.ScalarInfo(
                        old.name, old.dtype, old.from_shape,
                        self._const_fold_host(stmt.value, old.dtype))
            else:
                raise AnalysisError(
                    "only declarations and scalar assignments may precede "
                    "the compute region")

        # arrays named in data clauses
        clause_names = set()
        for dc in self.info.data:
            clause_names.add(dc.name)
            self._define_array(dc.name, dc.kind, declared_arrays)
        # preamble-declared arrays not in any clause default to `copy`
        for name in declared_arrays:
            if name not in clause_names:
                self._define_array(name, "copy", declared_arrays)

        # free identifiers referenced by the region body become int params
        for name in _free_idents(self.cregion.body):
            if name in self.arrays or name in self.scalars \
                    or name in _INTRINSICS:
                continue
            self.scalars[name] = N.ScalarInfo(name, DType.INT)

    def _define_array(self, name: str, transfer: str,
                      declared: dict[str, A.CDecl]) -> None:
        if name in self.arrays:
            raise AnalysisError(f"array {name!r} appears in multiple data "
                                "clauses")
        if name in declared:
            decl = declared[name]
            dtype = ctype_to_dtype(decl.ctype)
            extents: list[object] = []
            for i, dim in enumerate(decl.dims):
                if isinstance(dim, A.CIdent):
                    extents.append(dim.name)
                    if dim.name not in self.scalars:
                        self.scalars[dim.name] = N.ScalarInfo(
                            dim.name, DType.INT, from_shape=(name, i))
                elif isinstance(dim, A.CIntLit):
                    extents.append(dim.value)
                else:
                    raise AnalysisError(
                        f"array {name!r}: dimension {i} must be an "
                        "identifier or integer literal")
            self.arrays[name] = N.ArrayInfo(name, dtype, tuple(extents),
                                            transfer)
        elif name in self.extra_array_dtypes:
            dtype = ctype_to_dtype(self.extra_array_dtypes[name])
            self.arrays[name] = N.ArrayInfo(name, dtype, (), transfer)
        else:
            raise AnalysisError(
                f"array {name!r} is used in a data clause but has no "
                "declaration; declare it before the region (e.g. "
                f"'float {name}[n];') or pass array_dtypes={{'{name}': ...}}")

    @staticmethod
    def _const_fold_host(e: A.CExpr, dtype: DType):
        """Evaluate a constant preamble initializer."""
        if isinstance(e, A.CIntLit):
            return N.IConst(dtype.np.type(e.value), dtype)
        if isinstance(e, A.CFloatLit):
            return N.IConst(dtype.np.type(e.value), dtype)
        if isinstance(e, A.CUnary) and e.op == "-":
            inner = _Builder._const_fold_host(e.operand, dtype)
            return N.IConst(dtype.np.type(-inner.value), dtype)
        raise AnalysisError(
            "preamble initializers must be literal constants")

    # ------------------------------------------------------------------
    # pass 2: statements
    # ------------------------------------------------------------------

    def build(self) -> N.Region:
        self.collect_symbols()
        body = self._stmts(self.cregion.body)
        return N.Region(
            kind=self.info.kind,
            body=body,
            arrays=tuple(self.arrays.values()),
            scalars=tuple(self.scalars.values()),
            num_gangs=self.info.num_gangs,
            num_workers=self.info.num_workers,
            vector_length=self.info.vector_length,
        )

    def _lookup(self, name: str) -> DType | None:
        for scope in reversed(self.scopes):
            if name in scope.vars:
                return scope.vars[name]
        if name in self.scalars:
            return self.scalars[name].dtype
        return None

    def _stmts(self, stmts: tuple[A.CStmt, ...]) -> tuple[N.IStmt, ...]:
        out: list[N.IStmt] = []
        for s in stmts:
            built = self._stmt(s)
            if built is not None:
                out.append(built)
        return tuple(out)

    def _stmt(self, s: A.CStmt) -> N.IStmt | None:
        if isinstance(s, A.CBlock):
            # flatten blocks but keep their scope
            self.scopes.append(_Scope())
            inner = self._stmts(s.stmts)
            self.scopes.pop()
            if not inner:
                return None
            if len(inner) == 1:
                return inner[0]
            # represent a scoped block as an if(true) — rare in practice
            return N.IIf(N.IConst(True, DType.BOOL), inner)

        if isinstance(s, A.CDecl):
            if s.dims:
                raise AnalysisError(
                    f"array declaration {s.name!r} inside the compute region "
                    "is not supported (declare arrays before the region)",
                )
            dtype = ctype_to_dtype(s.ctype)
            init = self._cast(self._expr(s.init), dtype) if s.init else None
            self.scopes[-1].vars[s.name] = dtype
            return N.IDecl(s.name, dtype, init, line=s.line)

        if isinstance(s, A.CAssign):
            return self._assign(s)

        if isinstance(s, A.CIf):
            cond = self._expr(s.cond)
            self.scopes.append(_Scope())
            then = self._stmts(s.then)
            self.scopes.pop()
            self.scopes.append(_Scope())
            orelse = self._stmts(s.orelse)
            self.scopes.pop()
            return N.IIf(cond, then, orelse, line=s.line)

        if isinstance(s, A.CFor):
            return self._for(s)

        if isinstance(s, A.CWhile):
            raise AnalysisError(
                "general while loops inside compute regions are not "
                "supported (use counted for loops)")

        raise AnalysisError(f"unsupported statement {type(s).__name__}")

    def _assign(self, s: A.CAssign) -> N.IAssign:
        target = self._expr(s.target)
        if not isinstance(target, (N.IVar, N.IArrayRef)):
            raise AnalysisError("bad assignment target")
        if isinstance(target, N.IVar) and self._lookup(target.name) is None:
            # assignment to an undeclared name: define as int local
            self.scopes[-1].vars[target.name] = DType.INT
            target = N.IVar(target.name, DType.INT)
        value = self._expr(s.value)
        if s.op:
            value = self._binop(s.op, target, value)
        if getattr(s, "atomic", False):
            if not isinstance(target, N.IArrayRef):
                raise AnalysisError(
                    "'#pragma acc atomic' targets must be array elements "
                    f"(line {s.line})")
            if s.op not in ("+", "*", "&", "|", "^"):
                raise AnalysisError(
                    "'#pragma acc atomic' supports the compound updates "
                    f"+= *= &= |= ^= (line {s.line})")
        return N.IAssign(target, self._cast(value, target.dtype),
                         line=s.line, atomic=getattr(s, "atomic", False))

    def _for(self, s: A.CFor) -> N.ILoop:
        start = self._cast(self._expr(s.start), DType.INT)
        end = self._cast(self._expr(s.end), DType.INT)
        step = self._cast(self._expr(s.step), DType.INT)
        self.scopes.append(_Scope())
        self.scopes[-1].vars[s.var] = DType.INT
        body = self._stmts(s.body)
        self.scopes.pop()
        p = s.pragma
        if isinstance(p, AccLoopInfo):
            info = N.LoopInfo(levels=p.levels, seq=p.seq,
                              reductions=p.reductions,
                              arg_reductions=p.arg_reductions,
                              private=p.private, collapse=p.collapse)
        else:
            info = N.LoopInfo()
        return N.ILoop(loop_id=next(self.loop_ids), var=s.var, start=start,
                       end=end, step=step, body=body, info=info, line=s.line)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _expr(self, e: A.CExpr) -> N.IExpr:
        if isinstance(e, A.CIntLit):
            # literals that don't fit int get long, as in C
            dt = DType.INT if -(2**31) <= e.value < 2**31 else DType.LONG
            return N.IConst(dt.np.type(e.value), dt)
        if isinstance(e, A.CFloatLit):
            dt = DType.DOUBLE if e.is_double else DType.FLOAT
            return N.IConst(dt.np.type(e.value), dt)
        if isinstance(e, A.CIdent):
            dt = self._lookup(e.name)
            if dt is None:
                if e.name in self.arrays:
                    raise AnalysisError(
                        f"array {e.name!r} used without a subscript")
                raise AnalysisError(f"unknown identifier {e.name!r}")
            return N.IVar(e.name, dt)
        if isinstance(e, A.CIndex):
            return self._index(e)
        if isinstance(e, A.CBinary):
            return self._binop(e.op, self._expr(e.left), self._expr(e.right))
        if isinstance(e, A.CUnary):
            a = self._expr(e.operand)
            if e.op == "-":
                return N.IUn("neg", a, a.dtype)
            if e.op == "!":
                return N.IUn("not", a, DType.BOOL)
            if e.op == "~":
                if not is_integer(a.dtype):
                    raise AnalysisError("'~' requires an integer operand")
                return N.IUn("inv", a, a.dtype)
            raise AnalysisError(f"unsupported unary {e.op!r}")
        if isinstance(e, A.CCall):
            return self._call(e)
        if isinstance(e, A.CCast):
            return self._cast(self._expr(e.operand), ctype_to_dtype(e.ctype))
        if isinstance(e, A.CCond):
            cond = self._expr(e.cond)
            a, b = self._expr(e.then), self._expr(e.orelse)
            dt = promote(a.dtype, b.dtype)
            return N.ICond(cond, self._cast(a, dt), self._cast(b, dt), dt)
        raise AnalysisError(f"unsupported expression {type(e).__name__}")

    def _index(self, e: A.CIndex) -> N.IArrayRef:
        # unwind the subscript chain
        subs: list[A.CExpr] = []
        base = e
        while isinstance(base, A.CIndex):
            subs.append(base.index)
            base = base.base
        subs.reverse()
        if not isinstance(base, A.CIdent) or base.name not in self.arrays:
            name = base.name if isinstance(base, A.CIdent) else "?"
            raise AnalysisError(
                f"subscripted name {name!r} is not a known array (declare it "
                "before the region or add it to a data clause)")
        arr = self.arrays[base.name]
        ndim = len(arr.extents) if arr.extents else 1
        if len(subs) != ndim:
            raise AnalysisError(
                f"array {arr.name!r} has {ndim} dimension(s), "
                f"subscripted with {len(subs)}")
        idx = self._cast(self._expr(subs[0]), DType.INT)
        for i in range(1, ndim):
            ext = arr.extents[i]
            ext_e: N.IExpr = (N.IConst(DType.INT.np.type(ext), DType.INT)
                              if isinstance(ext, int)
                              else N.IVar(ext, DType.INT))
            idx = N.IBin("+", N.IBin("*", idx, ext_e, DType.INT),
                         self._cast(self._expr(subs[i]), DType.INT),
                         DType.INT)
        return N.IArrayRef(arr.name, idx, arr.dtype)

    def _call(self, e: A.CCall) -> N.IExpr:
        if e.name == "rand":
            raise AnalysisError(
                "rand() is not supported inside compute regions (the paper "
                "pre-generates random data on the host; do the same)")
        if e.name not in _INTRINSICS:
            raise AnalysisError(f"unknown function {e.name!r} in compute "
                                "region")
        arity, kind = _INTRINSICS[e.name]
        if len(e.args) != arity:
            raise AnalysisError(
                f"{e.name}() expects {arity} argument(s), got {len(e.args)}")
        args = [self._expr(a) for a in e.args]
        dt = args[0].dtype
        for a in args[1:]:
            dt = promote(dt, a.dtype)
        if kind == "float" and dt not in (DType.FLOAT, DType.DOUBLE):
            dt = DType.DOUBLE  # C promotes to double for math calls
        if dt is DType.BOOL:
            dt = DType.INT
        args = [self._cast(a, dt) for a in args]
        return N.ICall(e.name, tuple(args), dt)

    def _binop(self, op: str, a: N.IExpr, b: N.IExpr) -> N.IExpr:
        if op in ("&&", "||"):
            return N.IBin(op, a, b, DType.BOOL)
        if op in _COMPARISONS:
            dt = promote(a.dtype, b.dtype)
            return N.IBin(op, self._cast(a, dt), self._cast(b, dt),
                          DType.BOOL)
        dt = promote(a.dtype, b.dtype)
        if op in _INT_ONLY_OPS and op != "%":
            if not is_integer(dt):
                raise AnalysisError(
                    f"operator {op!r} requires integer operands")
        if op == "%" and not is_integer(dt):
            raise AnalysisError("'%' requires integer operands (use fmod)")
        return N.IBin(op, self._cast(a, dt), self._cast(b, dt), dt)

    @staticmethod
    def _cast(e: N.IExpr, dtype: DType) -> N.IExpr:
        if e.dtype == dtype:
            return e
        if isinstance(e, N.IConst):
            return N.IConst(dtype.np.type(e.value), dtype)
        return N.ICast(e, dtype)


def _free_idents(stmts) -> set[str]:
    """All identifiers referenced anywhere in the statement tree, minus the
    ones bound by declarations/loops within it."""
    used: set[str] = set()
    bound: set[str] = set()

    def expr(e: A.CExpr) -> None:
        if isinstance(e, A.CIdent):
            used.add(e.name)
        elif isinstance(e, A.CIndex):
            expr(e.base)
            expr(e.index)
        elif isinstance(e, A.CBinary):
            expr(e.left)
            expr(e.right)
        elif isinstance(e, A.CUnary):
            expr(e.operand)
        elif isinstance(e, A.CCall):
            for a in e.args:
                expr(a)
        elif isinstance(e, A.CCast):
            expr(e.operand)
        elif isinstance(e, A.CCond):
            expr(e.cond)
            expr(e.then)
            expr(e.orelse)

    def stmt(s: A.CStmt) -> None:
        if isinstance(s, A.CBlock):
            for x in s.stmts:
                stmt(x)
        elif isinstance(s, A.CDecl):
            bound.add(s.name)
            for d in s.dims:
                expr(d)
            if s.init:
                expr(s.init)
        elif isinstance(s, A.CAssign):
            expr(s.target)
            expr(s.value)
        elif isinstance(s, A.CIf):
            expr(s.cond)
            for x in s.then + s.orelse:
                stmt(x)
        elif isinstance(s, A.CFor):
            bound.add(s.var)
            expr(s.start)
            expr(s.end)
            expr(s.step)
            for x in s.body:
                stmt(x)
        elif isinstance(s, A.CWhile):
            expr(s.cond)
            for x in s.body:
                stmt(x)

    for s in stmts:
        stmt(s)
    return used - bound


def build_region(cregion: A.CRegion,
                 array_dtypes: dict[str, str] | None = None) -> N.Region:
    """Build the typed loop-nest IR for a parsed OpenACC region."""
    try:
        return _Builder(cregion, array_dtypes).build()
    except KeyError as exc:  # unknown ctype and friends
        raise CompileError(f"unknown type or symbol: {exc}") from exc
