"""Human-readable rendering of the loop-nest IR (``--dump-ir``)."""

from __future__ import annotations

from repro.ir import nodes as N
from repro.ir.analysis import RegionPlan

__all__ = ["format_region", "format_plan"]


def _expr(e: N.IExpr) -> str:
    if isinstance(e, N.IConst):
        from repro.dtypes import DType
        v = e.value.item() if hasattr(e.value, "item") else e.value
        if e.dtype is DType.LONG:
            return f"{v}L"
        if e.dtype is DType.FLOAT:
            return f"{float(v)}f"
        if e.dtype is DType.DOUBLE:
            return f"{float(v)}"
        return repr(v)
    if isinstance(e, N.IVar):
        return e.name
    if isinstance(e, N.IArrayRef):
        return f"{e.array}[{_expr(e.index)}]"
    if isinstance(e, N.IBin):
        return f"({_expr(e.a)} {e.op} {_expr(e.b)})"
    if isinstance(e, N.IUn):
        sym = {"neg": "-", "not": "!", "inv": "~"}[e.op]
        return f"{sym}{_expr(e.a)}"
    if isinstance(e, N.ICall):
        return f"{e.fn}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, N.ICast):
        return f"({e.dtype.ctype}){_expr(e.a)}"
    if isinstance(e, N.ICond):
        return f"({_expr(e.cond)} ? {_expr(e.a)} : {_expr(e.b)})"
    return f"<{type(e).__name__}>"


def _stmts(stmts, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    for s in stmts:
        if isinstance(s, N.IDecl):
            init = f" = {_expr(s.init)}" if s.init is not None else ""
            out.append(f"{pad}{s.dtype.ctype} {s.name}{init};")
        elif isinstance(s, N.IAssign):
            prefix = "atomic " if getattr(s, "atomic", False) else ""
            out.append(f"{pad}{prefix}{_expr(s.target)} = {_expr(s.value)};")
        elif isinstance(s, N.IIf):
            out.append(f"{pad}if ({_expr(s.cond)}) {{")
            _stmts(s.then, indent + 1, out)
            if s.orelse:
                out.append(f"{pad}}} else {{")
                _stmts(s.orelse, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(s, N.ILoop):
            notes = []
            if s.info.levels:
                notes.append("/".join(s.info.levels))
            if s.info.seq:
                notes.append("seq")
            for op, var in s.info.reductions:
                notes.append(f"reduction({op}:{var})")
            if s.info.collapse > 1:
                notes.append(f"collapse({s.info.collapse})")
            tag = f"  // loop#{s.loop_id}" + (
                f" [{' '.join(notes)}]" if notes else " [unannotated]")
            out.append(f"{pad}for ({s.var} = {_expr(s.start)}; "
                       f"{s.var} < {_expr(s.end)}; "
                       f"{s.var} += {_expr(s.step)}) {{{tag}")
            _stmts(s.body, indent + 1, out)
            out.append(f"{pad}}}")
        else:
            out.append(f"{pad}<{type(s).__name__}>")


def format_region(region: N.Region) -> str:
    """Render a region: symbol tables plus the annotated loop tree."""
    out = [f"region kind={region.kind}"]
    if region.num_gangs or region.num_workers or region.vector_length:
        out.append(f"  launch: gangs={region.num_gangs} "
                   f"workers={region.num_workers} "
                   f"vector={region.vector_length}")
    out.append("  arrays:")
    for a in region.arrays:
        ext = "x".join(str(e) for e in a.extents) if a.extents else "flat"
        out.append(f"    {a.dtype.ctype} {a.name}[{ext}]  ({a.transfer})")
    out.append("  scalars:")
    for s in region.scalars:
        extra = ""
        if s.from_shape:
            extra = f"  <- shape of {s.from_shape[0]}[{s.from_shape[1]}]"
        elif s.init is not None:
            extra = f"  init {s.init.value}"
        out.append(f"    {s.dtype.ctype} {s.name}{extra}")
    out.append("  body:")
    _stmts(region.body, 2, out)
    return "\n".join(out)


def format_plan(plan: RegionPlan) -> str:
    """Render the reduction plan (``--dump-plan``)."""
    out = [f"reduction plan (workers={plan.num_workers}, "
           f"vector={plan.vector_length}):"]
    if not plan.all_reductions:
        out.append("  (no reductions)")
    for info in plan.all_reductions:
        out.append(
            f"  {info.var}: op '{info.op.token}' ({info.dtype.ctype}), "
            f"clause on loop#{info.clause_loop_id}, "
            f"span {' & '.join(info.span)}"
            + (" [same-line]" if info.same_line else "")
            + (f" [padded: {','.join(info.padded_levels)}]"
               if info.padded_levels else ""))
    if plan.barrier_loops:
        out.append(f"  lock-step loops (contain barriers): "
                   f"{sorted(plan.barrier_loops)}")
    return "\n".join(out)
