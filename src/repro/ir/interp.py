"""Sequential host interpreter for the loop-nest IR.

Executes a compute region with plain sequential C semantics — loops run in
order, reductions are ordinary accumulations — over NumPy-backed host
arrays.  This is the "CPU result" the paper's testsuite verifies against
(§4), implemented as a generic oracle: any region the compiler accepts can
also be executed here, which powers the differential property tests
(random program ⊢ simulator result == host result).

Scalar arithmetic follows the same C rules the device executor uses
(wrap-around ints, truncating division/casts), so int results match
bit-exactly; float results may differ by reassociation only.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import DType
from repro.errors import ReproError, RuntimeDataError
from repro.ir import nodes as N

__all__ = ["run_host", "HostResult"]


class _Env:
    def __init__(self):
        self.scalars: dict[str, np.generic] = {}
        self.arrays: dict[str, np.ndarray] = {}  # flat views


def _truncdiv(a, b):
    if isinstance(a, (np.floating, float)):
        return a / b
    q, r = divmod(int(a), int(b))
    if r != 0 and (int(a) < 0) != (int(b) < 0):
        q += 1
    return q


def _cmod(a, b):
    if isinstance(a, (np.floating, float)):
        return np.fmod(a, b)
    return int(a) - _truncdiv(a, b) * int(b)


_CALLS = {
    "fmax": np.fmax, "fmaxf": np.fmax, "fmin": np.fmin, "fminf": np.fmin,
    "fabs": np.abs, "fabsf": np.abs, "abs": np.abs,
    "sqrt": np.sqrt, "sqrtf": np.sqrt, "exp": np.exp, "expf": np.exp,
    "log": np.log, "logf": np.log, "sin": np.sin, "cos": np.cos,
    "floor": np.floor, "ceil": np.ceil, "pow": np.power, "powf": np.power,
    "min": np.minimum, "max": np.maximum,
}


def _eval(e: N.IExpr, env: _Env):
    if isinstance(e, N.IConst):
        return e.value
    if isinstance(e, N.IVar):
        try:
            return env.scalars[e.name]
        except KeyError:
            raise ReproError(f"host interpreter: unbound scalar {e.name!r}") \
                from None
    if isinstance(e, N.IArrayRef):
        idx = int(_eval(e.index, env))
        arr = env.arrays[e.array]
        if not 0 <= idx < arr.size:
            raise RuntimeDataError(
                f"host interpreter: index {idx} out of bounds for "
                f"{e.array!r} (size {arr.size})")
        return arr[idx]
    if isinstance(e, N.IBin):
        a = _eval(e.a, env)
        if e.op == "&&":
            return bool(a) and bool(_eval(e.b, env))
        if e.op == "||":
            return bool(a) or bool(_eval(e.b, env))
        b = _eval(e.b, env)
        with np.errstate(over="ignore", invalid="ignore"):
            if e.op == "+":
                r = a + b
            elif e.op == "-":
                r = a - b
            elif e.op == "*":
                r = a * b
            elif e.op == "/":
                r = _truncdiv(a, b)
            elif e.op == "%":
                r = _cmod(a, b)
            elif e.op == "<<":
                r = int(a) << int(b)
            elif e.op == ">>":
                r = int(a) >> int(b)
            elif e.op == "&":
                r = np.bitwise_and(a, b)
            elif e.op == "|":
                r = np.bitwise_or(a, b)
            elif e.op == "^":
                r = np.bitwise_xor(a, b)
            elif e.op == "<":
                return bool(a < b)
            elif e.op == "<=":
                return bool(a <= b)
            elif e.op == ">":
                return bool(a > b)
            elif e.op == ">=":
                return bool(a >= b)
            elif e.op == "==":
                return bool(a == b)
            elif e.op == "!=":
                return bool(a != b)
            else:
                raise ReproError(f"host interpreter: unknown op {e.op!r}")
            if e.dtype is not DType.BOOL:
                r = e.dtype.np.type(r)
            return r
    if isinstance(e, N.IUn):
        a = _eval(e.a, env)
        if e.op == "neg":
            with np.errstate(over="ignore"):
                return e.dtype.np.type(-a)
        if e.op == "not":
            return not bool(a)
        if e.op == "inv":
            return e.dtype.np.type(~np.asarray(a))
    if isinstance(e, N.ICall):
        args = [_eval(a, env) for a in e.args]
        with np.errstate(invalid="ignore"):
            return e.dtype.np.type(_CALLS[e.fn](*args))
    if isinstance(e, N.ICast):
        v = _eval(e.a, env)
        with np.errstate(over="ignore", invalid="ignore"):
            return e.dtype.np.type(v)
    if isinstance(e, N.ICond):
        return _eval(e.a if bool(_eval(e.cond, env)) else e.b, env)
    raise ReproError(f"host interpreter: unknown expr {type(e).__name__}")


def _exec(stmts, env: _Env) -> None:
    for s in stmts:
        if isinstance(s, N.IDecl):
            if s.init is not None:
                env.scalars[s.name] = _eval(s.init, env)
            else:
                env.scalars[s.name] = s.dtype.np.type(0)
        elif isinstance(s, N.IAssign):
            val = _eval(s.value, env)
            if isinstance(s.target, N.IVar):
                env.scalars[s.target.name] = val
            else:
                idx = int(_eval(s.target.index, env))
                arr = env.arrays[s.target.array]
                if not 0 <= idx < arr.size:
                    raise RuntimeDataError(
                        f"host interpreter: store index {idx} out of "
                        f"bounds for {s.target.array!r}")
                arr[idx] = val
        elif isinstance(s, N.IIf):
            _exec(s.then if bool(_eval(s.cond, env)) else s.orelse, env)
        elif isinstance(s, N.ILoop):
            var = s.var
            v = int(_eval(s.start, env))
            end = int(_eval(s.end, env))
            step = int(_eval(s.step, env))
            if step <= 0:
                raise ReproError("host interpreter: non-positive loop step")
            while v < end:
                env.scalars[var] = np.int32(v)
                _exec(s.body, env)
                v += step
                end = int(_eval(s.end, env))
        else:
            raise ReproError(
                f"host interpreter: unknown stmt {type(s).__name__}")


class HostResult:
    """Sequential-reference outputs: arrays (all of them) and scalars."""

    def __init__(self, arrays: dict[str, np.ndarray],
                 scalars: dict[str, np.generic]):
        self.arrays = arrays
        self.scalars = scalars


def run_host(region: N.Region, **kwargs) -> HostResult:
    """Execute a region sequentially on the host.

    Arguments mirror ``Program.run``: NumPy arrays for every region array,
    keyword scalars for unbound parameters.  Input arrays are not modified;
    the result holds fresh copies.
    """
    env = _Env()
    for arr in region.arrays:
        if arr.name not in kwargs:
            raise RuntimeDataError(f"missing host array {arr.name!r}")
        host = np.array(kwargs[arr.name], dtype=arr.dtype.np)
        env.arrays[arr.name] = host.reshape(-1)
        if arr.extents:
            for i, ext in enumerate(arr.extents):
                if isinstance(ext, str):
                    env.scalars[ext] = np.int32(host.shape[i])
        # non-copied-in buffers start zeroed, like the device allocation
        if arr.transfer in ("copyout", "create"):
            env.arrays[arr.name][:] = 0
    for info in region.scalars:
        if info.name in kwargs and not isinstance(kwargs[info.name],
                                                  np.ndarray):
            env.scalars[info.name] = info.dtype.np.type(kwargs[info.name])
        elif info.name in env.scalars:
            pass  # bound from a shape
        elif info.init is not None:
            env.scalars[info.name] = info.dtype.np.type(info.init.value)
        else:
            raise RuntimeDataError(
                f"host interpreter: scalar {info.name!r} has no value")
    _exec(region.body, env)
    shaped = {}
    for arr in region.arrays:
        host = np.asarray(kwargs[arr.name])
        shaped[arr.name] = env.arrays[arr.name].reshape(host.shape)
    return HostResult(arrays=shaped, scalars=dict(env.scalars))
