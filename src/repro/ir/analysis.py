"""Region analysis: loop-nest validation and reduction-span inference.

This implements the behaviour §3.2.1 of the paper singles out: *"the OpenUH
compiler ... can automatically detect the position of the reduction variable
and the user just needs to add the reduction clause to the loop that is the
closest to the next use of that reduction variable."*

Given a ``reduction(op:var)`` clause on one loop, the analysis locates every
accumulation of ``var`` in that loop's subtree and unions the parallelism
levels of the loops on the paths to them.  A clause on a ``worker`` loop
whose accumulation happens inside a nested ``vector`` loop therefore gets
span ``(worker, vector)`` — reduction across multi-level parallelism in
different loops (Fig. 9) — without the user annotating the inner loop.

The analysis also enforces the paper's structural rules:

* loop levels must nest outside-in (gang ⊃ worker ⊃ vector) and may not
  repeat along a path;
* a reduction may not span gang & vector *in different loops* without going
  through worker (§3.2.1), unless only one worker is configured (then the
  worker level is trivially included);
* reduction variables must be scalars (array reductions are the extension of
  Komoda et al. [11], out of scope here as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes import DType
from repro.errors import AnalysisError
from repro.codegen.reduction.operators import ReductionOperator, get_operator
from repro.ir import nodes as N

__all__ = ["ReductionInfo", "RegionPlan", "analyze_region"]

_LEVEL_ORDER = {"gang": 0, "worker": 1, "vector": 2}


@dataclass(frozen=True)
class ReductionInfo:
    """One reduction variable's plan, keyed to its (outermost) clause loop."""

    var: str
    dtype: DType
    op: ReductionOperator
    clause_loop_id: int
    span: tuple[str, ...]  # canonical order subset of (gang, worker, vector)
    same_line: bool  # whole span sits on the clause loop itself
    #: span levels that are never actually distributed (added by the
    #: gang·vector upgrade); their redundant lanes contribute identities
    padded_levels: tuple[str, ...] = ()
    #: "scalar" for plain reductions; "argmax"/"argmin" for value-index
    #: pairs (``var`` is the value variable, ``index_var`` the index)
    kind: str = "scalar"
    index_var: str | None = None
    index_dtype: DType | None = None

    @property
    def gang_involved(self) -> bool:
        return "gang" in self.span

    @property
    def is_pair(self) -> bool:
        return self.kind in ("argmax", "argmin")


@dataclass
class RegionPlan:
    """Everything the lowering needs to know about a region's reductions."""

    region: N.Region
    num_workers: int
    vector_length: int
    reductions_by_loop: dict[int, list[ReductionInfo]] = field(
        default_factory=dict)
    barrier_loops: set[int] = field(default_factory=set)
    #: kernel-stage split of the region body: index ``j`` of each
    #: top-level statement that opens a new stage.  A region compiles to
    #: one kernel per stage; a boundary sits before every top-level
    #: statement that reads a gang-reduction result produced by an
    #: earlier top-level statement (the result only exists after the
    #: producing kernel completes and the host folds it).
    stage_starts: list[int] = field(default_factory=lambda: [0])
    #: per-stage sets of scalar names read by the stage's statements
    #: (used by the cascade-fusion pass to locate consumers)
    stage_reads: list[set[str]] = field(default_factory=list)

    @property
    def all_reductions(self) -> list[ReductionInfo]:
        return [r for infos in self.reductions_by_loop.values()
                for r in infos]

    @property
    def has_gang_reduction(self) -> bool:
        return any(r.gang_involved for r in self.all_reductions)

    @property
    def num_stages(self) -> int:
        return max(1, len(self.stage_starts))

    def stage_bodies(self) -> list[tuple[N.IStmt, ...]]:
        """The region body sliced into per-stage statement tuples."""
        body = self.region.body
        starts = self.stage_starts or [0]
        ends = starts[1:] + [len(body)]
        return [tuple(body[a:b]) for a, b in zip(starts, ends)]

    def reduction_vars(self) -> set[str]:
        return {r.var for r in self.all_reductions}


def analyze_region(region: N.Region, *, num_workers: int,
                   vector_length: int,
                   infer_span: bool = True) -> RegionPlan:
    """Validate the loop nest and plan every reduction.

    ``infer_span=False`` models compilers without the automatic position
    detection (the paper's CAPS discussion): the span is taken literally
    from the clause placement, so a single-clause RMP program silently
    reduces at the wrong level.  A callable ``infer_span(op_token) -> bool``
    enables the detection per operator (vendor-a's '+' fast path skips it).
    """
    if callable(infer_span):
        infer_for = infer_span
    else:
        infer_for = (lambda _op, _v=bool(infer_span): _v)
    plan = RegionPlan(region=region, num_workers=num_workers,
                      vector_length=vector_length)
    array_names = {a.name for a in region.arrays}
    claimed: set[str] = set()  # vars already planned by an ancestor clause

    def walk(stmts: tuple[N.IStmt, ...], path_levels: list[str],
             loops_in_path: list[N.ILoop]) -> bool:
        """Returns True if this statement list contains a block-level
        (non-gang) reduction finalize — i.e. barriers."""
        has_barrier = False
        for s in stmts:
            if isinstance(s, N.ILoop):
                has_barrier |= _loop(s, path_levels, loops_in_path)
            elif isinstance(s, N.IIf):
                has_barrier |= walk(s.then, path_levels, loops_in_path)
                has_barrier |= walk(s.orelse, path_levels, loops_in_path)
        return has_barrier

    def _loop(loop: N.ILoop, path_levels: list[str],
              loops_in_path: list[N.ILoop]) -> bool:
        # --- structural validation -----------------------------------
        for lv in loop.info.levels:
            if lv in path_levels:
                raise AnalysisError(
                    f"loop at line {loop.line}: level {lv!r} is already "
                    "distributed by an enclosing loop")
            for outer in path_levels:
                if _LEVEL_ORDER[lv] < _LEVEL_ORDER[outer]:
                    raise AnalysisError(
                        f"loop at line {loop.line}: {lv!r} loop may not "
                        f"nest inside a {outer!r} loop")

        # --- reduction planning ---------------------------------------
        my_barrier = False
        newly_claimed: list[str] = []
        for op_tok, var in loop.info.reductions:
            if var in array_names:
                raise AnalysisError(
                    f"reduction variable {var!r} is an array; only scalar "
                    "reductions are supported (array reduction is the "
                    "multi-GPU extension of Komoda et al.)")
            if var in claimed:
                # clause repeated on a nested loop (the multi-clause style
                # the paper attributes to CAPS): fold this loop's levels
                # into the ancestor's span instead of planning twice
                from dataclasses import replace as _replace
                for infos_ in plan.reductions_by_loop.values():
                    for i_, inf_ in enumerate(infos_):
                        if inf_.var == var:
                            merged = set(inf_.span) | set(loop.info.levels)
                            infos_[i_] = _replace(
                                inf_,
                                span=tuple(lv for lv in
                                           ("gang", "worker", "vector")
                                           if lv in merged),
                                same_line=False,
                            )
                continue
            dtype = _var_dtype(region, loop, var)
            op = get_operator(op_tok)
            op.validate_dtype(dtype)
            if infer_for(op_tok):
                span_set = set(loop.info.levels) | _span_below(loop, var)
            else:
                span_set = set(loop.info.levels)
            span = tuple(lv for lv in ("gang", "worker", "vector")
                         if lv in span_set)
            same_line = span_set <= set(loop.info.levels)
            padded: tuple[str, ...] = ()
            if {"gang", "vector"} <= span_set and "worker" not in span_set:
                if same_line or num_workers == 1:
                    # trivially include the worker level (§3.2.1: with one
                    # worker the hierarchy degenerates); the worker lanes
                    # execute redundantly, so they are padded with
                    # identities at the combine
                    span = tuple(lv for lv in ("gang", "worker", "vector")
                                 if lv in span_set | {"worker"})
                    padded = ("worker",)
                else:
                    raise AnalysisError(
                        f"reduction on {var!r} spans gang & vector in "
                        "different loops without going through worker "
                        "(§3.2.1); annotate the intermediate loop or set "
                        "num_workers(1)")
            info = ReductionInfo(var=var, dtype=dtype, op=op,
                                 clause_loop_id=loop.loop_id, span=span,
                                 same_line=same_line, padded_levels=padded)
            plan.reductions_by_loop.setdefault(loop.loop_id, []).append(info)
            claimed.add(var)
            newly_claimed.append(var)
            if not info.gang_involved and info.span:
                my_barrier = True

        for kind, val, idx in loop.info.arg_reductions:
            for v in (val, idx):
                if v in array_names:
                    raise AnalysisError(
                        f"{kind} reduction variable {v!r} is an array; "
                        "only scalar value-index pairs are supported")
            dtype = _var_dtype(region, loop, val)
            index_dtype = _var_dtype(region, loop, idx)
            if index_dtype not in (DType.INT, DType.LONG):
                raise AnalysisError(
                    f"{kind} index variable {idx!r} must be an integer "
                    f"type, got {index_dtype.ctype!r}")
            # the value component combines like max/min; the index rides
            # along, ties broken toward the smaller index
            op = get_operator("max" if kind == "argmax" else "min")
            span_set = set(loop.info.levels) | _span_below(loop, val) \
                | _span_below(loop, idx)
            span = tuple(lv for lv in ("gang", "worker", "vector")
                         if lv in span_set)
            if "gang" not in span_set:
                raise AnalysisError(
                    f"{kind} reduction on ({val!r}, {idx!r}) requires a "
                    "gang-distributed loop (pair combines happen in the "
                    "finish kernel; block-local pair trees are not "
                    "supported)")
            info = ReductionInfo(
                var=val, dtype=dtype, op=op,
                clause_loop_id=loop.loop_id, span=span,
                same_line=span_set <= set(loop.info.levels),
                kind=kind, index_var=idx, index_dtype=index_dtype)
            plan.reductions_by_loop.setdefault(loop.loop_id, []).append(info)
            claimed.add(val)
            newly_claimed.append(val)

        inner_barrier = walk(loop.body,
                             path_levels + list(loop.info.levels),
                             loops_in_path + [loop])
        for var in newly_claimed:
            claimed.discard(var)
        if inner_barrier:
            plan.barrier_loops.add(loop.loop_id)
        # propagate: this loop contains barriers if a reduction finalizes
        # at its close or anywhere inside
        return my_barrier or inner_barrier

    walk(region.body, [], [])
    _plan_stages(plan)
    return plan


def _plan_stages(plan: RegionPlan) -> None:
    """Split the region body into kernel stages.

    A gang reduction's result only exists after its kernel completes
    (partials → finish kernel → host fold), so a top-level statement
    that *reads* a gang-reduced variable produced by an earlier
    top-level statement must start a new kernel.  Cascaded reductions
    (softmax's max → map → sum → map) compile to one kernel per stage;
    the cascade-fusion pass may later fold the handoffs back.
    """
    body = plan.region.body
    region = plan.region
    # gang-reduction result vars produced by each top-level statement
    produced: list[set[str]] = []
    for s in body:
        ids = _loop_ids(s)
        vars_: set[str] = set()
        for lid in ids:
            for r in plan.reductions_by_loop.get(lid, []):
                if r.gang_involved:
                    vars_.add(r.var)
                    if r.index_var:
                        vars_.add(r.index_var)
        produced.append(vars_)
    reads = [_scalar_reads((s,)) for s in body]
    writes = [_scalar_writes((s,)) for s in body]

    starts = [0] if body else []
    pending: set[str] = set()       # produced, not yet host-finalized
    plain_writes: set[str] = set()  # scalars written outside gang reductions
    stage_reads: list[set[str]] = [set()] if body else []
    for j, s in enumerate(body):
        if j > 0 and reads[j] & pending:
            # kernel boundary: the host finalizes every pending result
            # between the two launches, so all of them become readable
            stale = reads[j] & plain_writes
            if stale:
                raise AnalysisError(
                    f"scalar(s) {sorted(stale)} are modified in an "
                    "earlier kernel stage and read after a stage "
                    "boundary; only gang-reduction results carry "
                    "across stages")
            starts.append(j)
            stage_reads.append(set())
            pending = set()
        stage_reads[-1] |= reads[j]
        pending |= produced[j]
        plain_writes |= (writes[j] - produced[j])
    plan.stage_starts = starts or [0]
    plan.stage_reads = stage_reads


def _loop_ids(stmt: N.IStmt) -> list[int]:
    """Every ILoop id in a statement subtree."""
    out: list[int] = []

    def visit(s: N.IStmt) -> None:
        if isinstance(s, N.ILoop):
            out.append(s.loop_id)
            for x in s.body:
                visit(x)
        elif isinstance(s, N.IIf):
            for x in s.then + s.orelse:
                visit(x)

    visit(stmt)
    return out


def _scalar_reads(stmts: tuple[N.IStmt, ...]) -> set[str]:
    """Scalar (IVar) names read anywhere in the statement list."""
    reads: set[str] = set()

    def expr(e: N.IExpr) -> None:
        if isinstance(e, N.IVar):
            reads.add(e.name)
        elif isinstance(e, N.IArrayRef):
            expr(e.index)
        elif isinstance(e, N.IBin):
            expr(e.a)
            expr(e.b)
        elif isinstance(e, (N.IUn, N.ICast)):
            expr(e.a)
        elif isinstance(e, N.ICall):
            for a in e.args:
                expr(a)
        elif isinstance(e, N.ICond):
            expr(e.cond)
            expr(e.a)
            expr(e.b)

    def stmt(s: N.IStmt) -> None:
        if isinstance(s, N.IAssign):
            expr(s.value)
            if isinstance(s.target, N.IArrayRef):
                expr(s.target.index)
        elif isinstance(s, N.IDecl):
            if s.init is not None:
                expr(s.init)
        elif isinstance(s, N.IIf):
            expr(s.cond)
            for x in s.then + s.orelse:
                stmt(x)
        elif isinstance(s, N.ILoop):
            expr(s.start)
            expr(s.end)
            expr(s.step)
            for x in s.body:
                stmt(x)

    for s in stmts:
        stmt(s)
    return reads


def _scalar_writes(stmts: tuple[N.IStmt, ...]) -> set[str]:
    """Scalar (IVar) names assigned anywhere in the statement list,
    excluding loop iteration variables (per-thread locals)."""
    writes: set[str] = set()
    loop_vars: set[str] = set()

    def stmt(s: N.IStmt) -> None:
        if isinstance(s, N.IAssign):
            if isinstance(s.target, N.IVar):
                writes.add(s.target.name)
        elif isinstance(s, N.IIf):
            for x in s.then + s.orelse:
                stmt(x)
        elif isinstance(s, N.ILoop):
            loop_vars.add(s.var)
            for x in s.body:
                stmt(x)

    for s in stmts:
        stmt(s)
    return writes - loop_vars


def _span_below(clause_loop: N.ILoop, var: str) -> set[str]:
    """Union of parallel levels between the clause loop and every
    accumulation of ``var`` in its subtree."""
    spans: set[str] = set()

    def visit(stmts: tuple[N.IStmt, ...], levels: tuple[str, ...]) -> None:
        for s in stmts:
            if isinstance(s, N.IAssign):
                if isinstance(s.target, N.IVar) and s.target.name == var:
                    spans.update(levels)
            elif isinstance(s, N.IDecl) and s.name == var:
                raise AnalysisError(
                    f"declaration of {var!r} shadows the reduction variable "
                    f"of the enclosing clause (line {s.line})")
            elif isinstance(s, N.IIf):
                visit(s.then, levels)
                visit(s.orelse, levels)
            elif isinstance(s, N.ILoop):
                visit(s.body, levels + s.info.levels)

    visit(clause_loop.body, ())
    return spans


def _var_dtype(region: N.Region, clause_loop: N.ILoop, var: str) -> DType:
    """Dtype of a reduction variable: a region scalar or a local declared
    lexically before the clause loop (the paper's `int i_sum = j;`)."""
    try:
        return region.scalar(var).dtype
    except KeyError:
        pass
    found: list[DType] = []

    def visit(stmts) -> None:
        for s in stmts:
            if isinstance(s, N.IDecl) and s.name == var:
                found.append(s.dtype)
            elif isinstance(s, N.IIf):
                visit(s.then)
                visit(s.orelse)
            elif isinstance(s, N.ILoop):
                visit(s.body)

    visit(region.body)
    if not found:
        raise AnalysisError(
            f"reduction variable {var!r} is never declared or assigned")
    return found[0]
