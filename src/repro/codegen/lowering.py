"""Region lowering: loop-nest IR → simulated CUDA kernels.

This is the compiler pass the paper describes.  The shape of the generated
code follows Fig. 3 / Fig. 5 exactly:

* distributed loops become window-sliding ``while`` loops over the thread
  geometry (``k = blockIdx.x + k_start; while (k < k_end) { ...; k +=
  gridDim.x; }``), or chunked loops under the blocking-scheduling baseline;
* loops whose bodies contain block-level reduction barriers become
  *lock-step* loops (``UniformWhile``) with an explicit ``active``
  predicate, so ``__syncthreads`` stays uniform even when the trip count is
  not a multiple of the thread count (§3.3's iteration-space generality);
* statements execute redundantly across the thread dimensions that are not
  distributed at their nesting depth; array stores are guarded to lane 0 of
  those dimensions (Fig. 5's ``if (threadIdx.x == 0) ...``);
* reductions finalize at their clause loop per §3.1/§3.2 — see
  :meth:`_Lowerer._finalize` for the strategy dispatch.

Strategy choices (layouts, scheduling, sync elision, RMP style, memory
space) live in :class:`LoweringOptions`; the compiler profiles of
:mod:`repro.acc.profiles` bundle them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

import numpy as np

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.gpu import kernelir as K
from repro.ir import nodes as N
from repro.ir.analysis import RegionPlan, ReductionInfo
from repro.codegen.mapping import LaunchGeometry, distribution
from repro.codegen.reduction.logstep import logstep_reduce
from repro.codegen.reduction.operators import ReductionOperator
from repro.codegen.reduction.treeutil import cross_warp_handoff, is_pow2, \
    shuffle_deltas

__all__ = ["LoweringOptions", "LoweredProgram", "GangReductionSpec",
           "ScratchBuffer", "StrategySelector", "PlannedStrategy",
           "lower_region"]


@dataclass(frozen=True)
class LoweringOptions:
    """Strategy knobs for the lowering (bundled by compiler profiles)."""

    scheduling: str = "window"  # "window" | "blocking"  (§3.1.3)
    vector_layout: str = "row"  # "row" Fig.6(c) | "transposed" Fig.6(b)
    # "logstep" = the paper's shared-memory interleaved log-step (Fig. 7);
    # "shuffle" = extension: Kepler __shfl_down warp trees (ablation A9) —
    # falls back to logstep for non-power-of-two widths
    vector_strategy: str = "logstep"
    worker_strategy: str = "first_row"  # "first_row" 8(c) | "duplicated" 8(b)
    elide_warp_sync: bool = True  # §3.1.2 last-warp sync elision
    reduction_memory: str = "shared"  # "shared" | "global"  (§3.3)
    # RMP style (§3.2.1): "direct" = one flat combine over all partials;
    # "level_by_level" = the rejected alternative that reduces one level at
    # a time.  Block spans (worker·vector) and gang-involved spans are
    # controlled separately because real compilers mix them.
    block_rmp_style: str = "direct"
    gang_rmp_style: str = "direct"
    finish_block_size: int = 256
    # codegen quality: when False, the blocking-scheduled loop re-derives
    # its distribution arithmetic (iteration count, chunk, bounds, the loop
    # variable) every iteration instead of strength-reducing it to an
    # increment — the per-iteration overhead of weak loop code
    strength_reduction: bool = True
    # gang handoff: "buffer" (the paper's partial buffer + finish kernel,
    # Fig. 5(c)) or "atomic" (extension: block reduce + device atomic RMW;
    # logical && / || fall back to the buffer scheme)
    gang_partial_style: str = "buffer"
    # defensive runtime style: launch an extra kernel that zero-initializes
    # the gang-reduction partial buffer before the main kernel (OpenUH
    # proves every entry is written and skips this; runtimes that cannot
    # pay one more launch per reduction, which hurts iterative apps)
    zero_init_partials: bool = False
    # modeled closed-source defect: '+' fast path stores its partials
    # transposed but log-steps assuming the row layout (wrong when bdy > 1)
    bug_sum_layout_mismatch: bool = False
    # cascade fusion across kernel stages (the cascade-fusion pass):
    # "auto" prices fused vs unfused per cascade with the cost model,
    # "always"/"never" pin the decision for every cascade
    cascade_fusion: str = "auto"


@dataclass(frozen=True)
class ScratchBuffer:
    """A compiler-allocated global buffer (reduction partials/results).

    ``fill_identity_of`` names a reduction operator whose identity must
    pre-fill the buffer at allocation (the atomic gang-reduction result
    slot accumulates in place).
    """

    name: str
    dtype: DType
    size: int
    fill_identity_of: str | None = None


@dataclass(frozen=True)
class GangReductionSpec:
    """Host-visible plan for one gang-involved reduction."""

    var: str
    op: ReductionOperator
    dtype: DType
    partial_buf: str
    result_buf: str
    finish_kernel: K.Kernel | None
    #: optional extra launch before the main kernel (the defensive
    #: zero-initialization style; None for OpenUH)
    init_kernel: K.Kernel | None = None
    init_grid: int = 1
    #: index of the kernel stage whose launch produces the partials
    #: (stage 0 is the main kernel; cascaded regions have more)
    stage: int = 0
    #: "scalar", or "argmax"/"argmin" for value-index pairs
    kind: str = "scalar"
    #: pair reductions: the index component's variable and buffers
    index_var: str | None = None
    index_dtype: DType | None = None
    index_partial_buf: str | None = None
    index_result_buf: str | None = None
    #: set by the cascade-fusion pass: the finish replay was folded into
    #: a consumer-stage prologue, so no finish kernel runs and the host
    #: reads the result buffer only after all stages complete
    cascade_fused: bool = False

    @property
    def is_pair(self) -> bool:
        return self.kind in ("argmax", "argmin")

    @property
    def exactness(self) -> str:
        """Exactness class the verifier gates fusion on."""
        return "exact" if self.op.is_exact(self.dtype) else "ordered"


@dataclass
class LoweredProgram:
    """Output of the lowering: kernels plus the host launch plan."""

    main_kernel: K.Kernel
    geometry: LaunchGeometry
    gang_reductions: list[GangReductionSpec]
    scratch: list[ScratchBuffer]
    params: tuple[str, ...]
    plan: RegionPlan
    options: LoweringOptions
    #: cascaded regions: kernels for stages 1..n-1 (stage 0 is
    #: ``main_kernel``); each stage is a separate launch and the host
    #: folds the finished gang-reduction results in between
    stage_kernels: tuple[K.Kernel, ...] = ()
    #: per-stage sorted tuples of scalar names each stage reads (mirrors
    #: ``plan.stage_reads`` in a pickle-stable form; the cascade-fusion
    #: pass locates consumer stages with it)
    stage_reads: tuple[tuple[str, ...], ...] = ()

    @property
    def num_stages(self) -> int:
        return 1 + len(self.stage_kernels)

    def stage_kernel(self, stage: int) -> K.Kernel:
        return self.main_kernel if stage == 0 \
            else self.stage_kernels[stage - 1]

    @property
    def kernels(self) -> list[K.Kernel]:
        out = []
        for g in self.gang_reductions:
            if g.init_kernel is not None:
                out.append(g.init_kernel)
        out.append(self.main_kernel)
        out.extend(self.stage_kernels)
        out.extend(g.finish_kernel for g in self.gang_reductions
                   if g.finish_kernel is not None)
        return out


_BIN_OPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
            "<", "<=", ">", ">=", "==", "!=", "&&", "||"}

#: operators the simulated device supports as atomic read-modify-writes
_ATOMIC_CAPABLE = {"+", "*", "max", "min", "&", "|", "^"}


def _conj(*exprs: K.Expr | None) -> K.Expr | None:
    out: K.Expr | None = None
    for e in exprs:
        if e is None:
            continue
        out = e if out is None else K.Bin("&&", out, e)
    return out


class StrategySelector:
    """Per-reduction strategy override hook.

    The lowering consults the selector at each strategy decision point:
    ``choose(field, var)`` may return a replacement value for one
    strategy field (``"vector_strategy"`` or ``"gang_partial_style"``)
    applied to the reduction of variable ``var``, or ``None`` to keep
    the :class:`LoweringOptions` default.  The cost-model autotune pass
    drives the lowering through this interface; the base class is the
    identity selector.
    """

    def choose(self, field: str, var: str) -> str | None:
        return None


class PlannedStrategy(StrategySelector):
    """Selector backed by a pre-computed ``{(field, var): value}`` plan."""

    def __init__(self, choices: dict[tuple[str, str], str]):
        self.choices = dict(choices)

    def choose(self, field: str, var: str) -> str | None:
        return self.choices.get((field, var))


class _Lowerer:
    def __init__(self, plan: RegionPlan, geom: LaunchGeometry,
                 opts: LoweringOptions, *,
                 selector: StrategySelector | None = None,
                 stamp: bool = True):
        self.plan = plan
        self.region = plan.region
        self.geom = geom
        self.opts = opts
        self.selector = selector
        self.stamp = stamp
        self.uid = itertools.count()
        self.active: K.Expr | None = None
        self.dist: set[str] = set()
        self.shared_sizes: dict[DType, int] = {}  # overlay-shared red buffers
        self.scratch: list[ScratchBuffer] = []
        self.gang_reductions: list[GangReductionSpec] = []
        self.buffers_used: set[str] = set()
        self.stage = 0

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def lower(self) -> LoweredProgram:
        stage_bodies = self.plan.stage_bodies()
        nstages = len(stage_bodies)
        params = tuple(s.name for s in self.region.scalars)
        kernels: list[K.Kernel] = []
        for si, stmts in enumerate(stage_bodies):
            self.stage = si
            self.active = None
            self.dist = set()
            self.shared_sizes = {}
            self.buffers_used = set()
            body: list[K.Stmt] = []
            # firstprivate materialization: every region scalar becomes a
            # register seeded from its launch parameter.  Each stage is a
            # separate launch, so every stage kernel repeats it; the host
            # folds finished gang-reduction results into the parameter
            # environment between stages, which is how a later stage sees
            # an earlier stage's reduction result.
            for s in self.region.scalars:
                body.append(K.Assign(s.name, K.Param(s.name)))
            body.extend(self._stmts(stmts))

            shared = tuple(
                K.SharedArraySpec(self._shared_name(dt), dt, size,
                                  overlay="red")
                for dt, size in sorted(self.shared_sizes.items(),
                                       key=lambda kv: kv[0].value)
            )
            note = (f"lowered with {self.opts.scheduling} scheduling, "
                    f"{self.opts.vector_layout} vector layout")
            if nstages > 1:
                note += f"; stage {si} of {nstages}"
            # sid stamping keeps ids stable through the compile cache and
            # the executors (sid/loc are compare-excluded, so stamped and
            # unstamped kernels stay structurally identical); with
            # ``stamp=False`` the pass pipeline owns stamping as a final
            # pass
            kernels.append(self._stamp(K.Kernel(
                name="acc_region_main" if si == 0
                     else f"acc_region_stage{si}",
                body=tuple(body),
                params=params,
                buffers=tuple(sorted(self.buffers_used)),
                shared=shared,
                note=note,
            )))
        return LoweredProgram(
            main_kernel=kernels[0],
            geometry=self.geom,
            gang_reductions=self.gang_reductions,
            scratch=self.scratch,
            params=params,
            plan=self.plan,
            options=self.opts,
            stage_kernels=tuple(kernels[1:]),
            stage_reads=tuple(tuple(sorted(r))
                              for r in self.plan.stage_reads)
                        or ((),) * nstages,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _stamp(self, kernel: K.Kernel) -> K.Kernel:
        return K.stamp_sids(kernel) if self.stamp else kernel

    def _select(self, field: str, var: str) -> str:
        """Resolve a strategy field, giving the selector first say."""
        if self.selector is not None:
            choice = self.selector.choose(field, var)
            if choice is not None:
                return choice
        return getattr(self.opts, field)

    def _shared_name(self, dtype: DType) -> str:
        return f"_sred_{dtype.value}"

    def _need_shared(self, dtype: DType, size: int) -> str:
        name = self._shared_name(dtype)
        self.shared_sizes[dtype] = max(self.shared_sizes.get(dtype, 0), size)
        return name

    def _tmp(self, stem: str) -> str:
        return f"_{stem}{next(self.uid)}"

    def _store_guard(self) -> K.Expr | None:
        """Lane guard for redundant execution across undistributed dims."""
        terms: list[K.Expr] = []
        if "vector" not in self.dist and self.geom.vector_length > 1:
            terms.append(K.Bin("==", K.Special("tx"), K.const_int(0)))
        if "worker" not in self.dist and self.geom.num_workers > 1:
            terms.append(K.Bin("==", K.Special("ty"), K.const_int(0)))
        return _conj(*terms) if terms else None

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _expr(self, e: N.IExpr, prelude: list[K.Stmt]) -> K.Expr:
        if isinstance(e, N.IConst):
            return K.Const(e.value, e.dtype)
        if isinstance(e, N.IVar):
            return K.Reg(e.name)
        if isinstance(e, N.IArrayRef):
            idx = self._expr(e.index, prelude)
            t = self._tmp("ld")
            self.buffers_used.add(e.array)
            prelude.append(K.GLoad(t, e.array, idx))
            return K.Reg(t)
        if isinstance(e, N.IBin):
            if e.op not in _BIN_OPS:
                raise LoweringError(f"unsupported binary op {e.op!r}")
            return K.Bin(e.op, self._expr(e.a, prelude),
                         self._expr(e.b, prelude))
        if isinstance(e, N.IUn):
            return K.Un(e.op, self._expr(e.a, prelude))
        if isinstance(e, N.ICall):
            return K.Call(e.fn, tuple(self._expr(a, prelude)
                                      for a in e.args))
        if isinstance(e, N.ICast):
            return K.Cast(e.dtype, self._expr(e.a, prelude))
        if isinstance(e, N.ICond):
            return K.Select(self._expr(e.cond, prelude),
                            self._expr(e.a, prelude),
                            self._expr(e.b, prelude))
        raise LoweringError(f"unknown IR expression {type(e).__name__}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _stmts(self, stmts: tuple[N.IStmt, ...]) -> list[K.Stmt]:
        out: list[K.Stmt] = []
        for s in stmts:
            out.extend(self._stmt(s))
        return out

    def _guarded(self, inner: list[K.Stmt],
                 extra: K.Expr | None = None) -> list[K.Stmt]:
        """Wrap statements in the activity/lane guard if one applies."""
        g = _conj(self.active, extra)
        if g is None or not inner:
            return inner
        return [K.If(g, tuple(inner))]

    def _stmt(self, s: N.IStmt) -> list[K.Stmt]:
        if isinstance(s, N.IDecl):
            prelude: list[K.Stmt] = []
            if s.init is not None:
                val = self._expr(s.init, prelude)
            else:
                val = K.Const(s.dtype.np.type(0), s.dtype)
            return self._guarded(prelude + [K.Assign(s.name, val)])

        if isinstance(s, N.IAssign):
            prelude = []
            if s.atomic and isinstance(s.target, N.IArrayRef):
                return self._atomic_assign(s, prelude)
            val = self._expr(s.value, prelude)
            if isinstance(s.target, N.IVar):
                return self._guarded(prelude + [K.Assign(s.target.name, val)])
            # array store: lane-guarded against redundant execution
            idx = self._expr(s.target.index, prelude)
            self.buffers_used.add(s.target.array)
            store = K.GStore(s.target.array, idx, val)
            return self._guarded(prelude + [store], self._store_guard())

        if isinstance(s, N.IIf):
            prelude = []
            cond = self._expr(s.cond, prelude)
            return self._lower_if(s, cond, prelude)

        if isinstance(s, N.ILoop):
            return self._loop(s)

        raise LoweringError(f"unknown IR statement {type(s).__name__}")

    def _atomic_assign(self, s: N.IAssign,
                       prelude: list[K.Stmt]) -> list[K.Stmt]:
        """``#pragma acc atomic update``: lower ``a[i] = a[i] ⊕ e`` to a
        device read-modify-write, so colliding lanes combine."""
        def strip(e):
            while isinstance(e, N.ICast):
                e = e.a
            return e

        value = strip(s.value)
        if not isinstance(value, N.IBin) or value.op not in _ATOMIC_CAPABLE:
            raise LoweringError(
                f"atomic update must be a compound ⊕= (line {s.line})")
        tgt = s.target
        if strip(value.a) == tgt:
            rhs = value.b
        elif strip(value.b) == tgt:
            rhs = value.a
        else:
            raise LoweringError(
                "atomic update must read and write the same element "
                f"(line {s.line})")
        rhs_k = self._expr(N.ICast(rhs, tgt.dtype)
                           if rhs.dtype != tgt.dtype else rhs, prelude)
        idx = self._expr(tgt.index, prelude)
        self.buffers_used.add(tgt.array)
        upd = K.AtomicUpdate(tgt.array, idx, value.op, rhs_k)
        return self._guarded(prelude + [upd], self._store_guard())

    def _lower_if(self, s: N.IIf, cond: K.Expr,
                  prelude: list[K.Stmt]) -> list[K.Stmt]:
        saved = self.active
        self.active = None
        then = self._stmts(s.then)
        orelse = self._stmts(s.orelse)
        self.active = saved
        inner = prelude + [K.If(cond, tuple(then), tuple(orelse))]
        return self._guarded(inner)

    # ------------------------------------------------------------------
    # loops
    # ------------------------------------------------------------------

    def _loop(self, loop: N.ILoop) -> list[K.Stmt]:
        if loop.info.collapse > 1:
            return self._collapsed_loop(loop)

        out: list[K.Stmt] = []
        infos = self.plan.reductions_by_loop.get(loop.loop_id, [])
        # reduction entry: capture the incoming value, seed the identity
        for info in infos:
            if not info.gang_involved:
                out.append(K.Assign(f"_init_{info.var}", K.Reg(info.var)))
            out.append(K.Assign(info.var, info.op.identity_const(info.dtype)))
            if info.is_pair:
                out.append(K.Assign(
                    info.index_var,
                    self._index_identity_const(info.index_dtype)))

        prelude: list[K.Stmt] = []
        start = self._expr(loop.start, prelude)
        end = self._expr(loop.end, prelude)
        step = self._expr(loop.step, prelude)
        if prelude:
            out.extend(self._guarded(prelude))

        levels = tuple(loop.info.levels)
        uniform = loop.loop_id in self.plan.barrier_loops
        saved_active, saved_dist = self.active, set(self.dist)

        if levels and self.opts.scheduling == "blocking":
            out.extend(self._blocking_loop(loop, levels, start, end, step,
                                           uniform))
        else:
            out.extend(self._window_loop(loop, levels, start, end, step,
                                         uniform))

        self.active, self.dist = saved_active, saved_dist

        # reduction finalize at the clause loop's close (§3.1/§3.2)
        distributed = set(levels) | saved_dist
        for info in infos:
            out.extend(self._finalize(info, distributed))
        return out

    def _window_loop(self, loop: N.ILoop, levels: tuple[str, ...],
                     start: K.Expr, end: K.Expr, step: K.Expr,
                     uniform: bool) -> list[K.Stmt]:
        """Fig. 3 window-sliding form (also used for seq loops: stride=step)."""
        var = loop.var
        out: list[K.Stmt] = []
        if levels:
            d = distribution(levels, self.geom)
            out.append(K.Comment(
                f"loop {var}: distributed over {'/'.join(levels)} "
                f"(window sliding, stride {d.total})"))
            out.append(K.Assign(var, K.Bin(
                "+", start, K.Bin("*", d.position, step))))
            stride: K.Expr = K.Bin("*", K.const_int(d.total), step)
            self.dist |= set(levels)
        else:
            out.append(K.Assign(var, start))
            stride = step
        cond = K.Bin("<", K.Reg(var), end)

        if uniform:
            act = self._tmp("act")
            outer_active = self.active
            loop_cond = _conj(outer_active, cond)
            self.active = K.Reg(act)
            body: list[K.Stmt] = [K.Assign(act, loop_cond)]
            body.extend(self._stmts(loop.body))
            body.append(K.Assign(var, K.Bin("+", K.Reg(var), stride)))
            out.append(K.UniformWhile(loop_cond, tuple(body)))
        else:
            loop_cond = _conj(self.active, cond)
            self.active = None
            body = self._stmts(loop.body)
            body.append(K.Assign(var, K.Bin("+", K.Reg(var), stride)))
            out.append(K.While(loop_cond, tuple(body)))
        return out

    def _blocking_loop(self, loop: N.ILoop, levels: tuple[str, ...],
                       start: K.Expr, end: K.Expr, step: K.Expr,
                       uniform: bool) -> list[K.Stmt]:
        """Chunked scheduling: thread p takes iterations
        [p*chunk, (p+1)*chunk)."""
        var = loop.var
        d = distribution(levels, self.geom)
        u = next(self.uid)
        nit, chunk, it, itend = (f"_nit{u}", f"_chunk{u}", f"_it{u}",
                                 f"_itend{u}")
        one = K.const_int(1)
        out: list[K.Stmt] = [
            K.Comment(f"loop {var}: distributed over {'/'.join(levels)} "
                      f"(blocking, {d.total} chunks)"),
            K.Assign(nit, K.Bin("/", K.Bin("-", K.Bin("+", end, step),
                                           K.Bin("+", start, one)), step)),
            K.Assign(chunk, K.Bin("/", K.Bin("-", K.Bin(
                "+", K.Reg(nit), K.const_int(d.total)), one),
                K.const_int(d.total))),
            K.Assign(it, K.Bin("*", d.position, K.Reg(chunk))),
            K.Assign(itend, K.Bin("+", K.Reg(it), K.Reg(chunk))),
            K.Assign(itend, K.Select(K.Bin("<", K.Reg(itend), K.Reg(nit)),
                                     K.Reg(itend), K.Reg(nit))),
        ]
        self.dist |= set(levels)
        cond = K.Bin("<", K.Reg(it), K.Reg(itend))
        set_var = K.Assign(var, K.Bin("+", start,
                                      K.Bin("*", K.Reg(it), step)))
        advance = K.Assign(it, K.Bin("+", K.Reg(it), one))

        # weak-codegen model: re-derive the distribution arithmetic every
        # iteration instead of keeping it in registers
        rederive: list[K.Stmt] = []
        if not self.opts.strength_reduction:
            rederive = [
                K.Assign(nit, K.Bin("/", K.Bin("-", K.Bin("+", end, step),
                                               K.Bin("+", start, one)),
                                    step)),
                K.Assign(chunk, K.Bin("/", K.Bin("-", K.Bin(
                    "+", K.Reg(nit), K.const_int(d.total)), one),
                    K.const_int(d.total))),
                K.Assign(itend, K.Bin("+", K.Bin("*", d.position,
                                                 K.Reg(chunk)),
                                      K.Reg(chunk))),
                K.Assign(itend, K.Select(
                    K.Bin("<", K.Reg(itend), K.Reg(nit)),
                    K.Reg(itend), K.Reg(nit))),
            ]

        if uniform:
            act = self._tmp("act")
            loop_cond = _conj(self.active, cond)
            self.active = K.Reg(act)
            body: list[K.Stmt] = [*rederive, K.Assign(act, loop_cond),
                                  set_var]
            body.extend(self._stmts(loop.body))
            body.append(advance)
            out.append(K.UniformWhile(loop_cond, tuple(body)))
        else:
            loop_cond = _conj(self.active, cond)
            self.active = None
            body = [*rederive, set_var]
            body.extend(self._stmts(loop.body))
            body.append(advance)
            out.append(K.While(loop_cond, tuple(body)))
        return out

    def _collapsed_loop(self, loop: N.ILoop) -> list[K.Stmt]:
        """collapse(n): linearize n perfectly-nested loops (§4 mentions
        collapse for nests deeper than three)."""
        chain: list[N.ILoop] = [loop]
        cur = loop
        for _ in range(loop.info.collapse - 1):
            if len(cur.body) != 1 or not isinstance(cur.body[0], N.ILoop):
                raise LoweringError(
                    f"collapse({loop.info.collapse}) requires perfectly "
                    f"nested loops (line {loop.line})")
            cur = cur.body[0]
            if cur.info.levels or cur.info.reductions:
                raise LoweringError(
                    "collapsed inner loops may not carry their own "
                    f"annotations (line {cur.line})")
            chain.append(cur)

        infos = self.plan.reductions_by_loop.get(loop.loop_id, [])
        out: list[K.Stmt] = []
        for info in infos:
            if not info.gang_involved:
                out.append(K.Assign(f"_init_{info.var}", K.Reg(info.var)))
            out.append(K.Assign(info.var, info.op.identity_const(info.dtype)))
            if info.is_pair:
                out.append(K.Assign(
                    info.index_var,
                    self._index_identity_const(info.index_dtype)))

        u = next(self.uid)
        one = K.const_int(1)
        prelude: list[K.Stmt] = []
        nits: list[str] = []
        starts: list[K.Expr] = []
        steps: list[K.Expr] = []
        total = f"_ctot{u}"
        for idx, lp in enumerate(chain):
            s = self._expr(lp.start, prelude)
            e = self._expr(lp.end, prelude)
            st = self._expr(lp.step, prelude)
            n = f"_cn{u}_{idx}"
            prelude.append(K.Assign(n, K.Bin(
                "/", K.Bin("-", K.Bin("+", e, st), K.Bin("+", s, one)), st)))
            nits.append(n)
            starts.append(s)
            steps.append(st)
        tot_expr: K.Expr = K.Reg(nits[0])
        for n in nits[1:]:
            tot_expr = K.Bin("*", tot_expr, K.Reg(n))
        prelude.append(K.Assign(total, tot_expr))
        out.extend(self._guarded(prelude))

        levels = tuple(loop.info.levels)
        uniform = loop.loop_id in self.plan.barrier_loops
        saved_active, saved_dist = self.active, set(self.dist)
        d = distribution(levels, self.geom) if levels else None
        t = f"_ct{u}"
        if d is not None:
            out.append(K.Assign(t, d.position))
            stride = K.const_int(d.total)
            self.dist |= set(levels)
        else:
            out.append(K.Assign(t, K.const_int(0)))
            stride = one
        cond = K.Bin("<", K.Reg(t), K.Reg(total))

        def recover() -> list[K.Stmt]:
            stmts: list[K.Stmt] = [K.Assign(f"_crem{u}", K.Reg(t))]
            rem = K.Reg(f"_crem{u}")
            for idx in range(len(chain) - 1, -1, -1):
                lp = chain[idx]
                stmts.append(K.Assign(lp.var, K.Bin(
                    "+", starts[idx],
                    K.Bin("*", K.Bin("%", rem, K.Reg(nits[idx])),
                          steps[idx]))))
                if idx > 0:
                    stmts.append(K.Assign(
                        f"_crem{u}", K.Bin("/", rem, K.Reg(nits[idx]))))
            return stmts

        innermost_body = chain[-1].body
        if uniform:
            act = self._tmp("act")
            loop_cond = _conj(self.active, cond)
            self.active = K.Reg(act)
            body: list[K.Stmt] = [K.Assign(act, loop_cond)]
            body.extend(recover())
            body.extend(self._stmts(innermost_body))
            body.append(K.Assign(t, K.Bin("+", K.Reg(t), stride)))
            out.append(K.UniformWhile(loop_cond, tuple(body)))
        else:
            loop_cond = _conj(self.active, cond)
            self.active = None
            body = recover()
            body.extend(self._stmts(innermost_body))
            body.append(K.Assign(t, K.Bin("+", K.Reg(t), stride)))
            out.append(K.While(loop_cond, tuple(body)))

        self.active, self.dist = saved_active, saved_dist
        distributed = set(loop.info.levels) | saved_dist
        for info in infos:
            out.extend(self._finalize(info, distributed))
        return out

    # ------------------------------------------------------------------
    # reduction finalization (the heart of the paper)
    # ------------------------------------------------------------------

    def _padded_value(self, info: ReductionInfo, span: set[str],
                      distributed: set[str]) -> K.Expr:
        """Per-thread partial, with identity substituted on lanes of span
        dimensions that were never actually distributed (they executed
        redundantly, e.g. the worker dimension of a same-line ``gang
        vector`` loop) so the cross-thread combine does not overcount."""
        terms: list[K.Expr] = []
        if "worker" in info.padded_levels and self.geom.num_workers > 1:
            terms.append(K.Bin("==", K.Special("ty"), K.const_int(0)))
        if "vector" in info.padded_levels and self.geom.vector_length > 1:
            terms.append(K.Bin("==", K.Special("tx"), K.const_int(0)))
        guard = _conj(*terms) if terms else None
        if guard is None:
            return K.Reg(info.var)
        return K.Select(guard, K.Reg(info.var),
                        info.op.identity_const(info.dtype))

    def _finalize(self, info: ReductionInfo,
                  distributed: set[str]) -> list[K.Stmt]:
        span = set(info.span)
        if not span:  # reduction on a seq loop: fold the initial value
            return [K.Assign(info.var, info.op.combine(
                K.Reg(f"_init_{info.var}"), K.Reg(info.var), info.dtype))]
        if "gang" in span:
            return self._finalize_gang(info, span, distributed)
        return self._finalize_block(info, span, distributed)

    # ---- block-level (shared-memory) reductions ----------------------

    def _finalize_block(self, info: ReductionInfo, span: set[str],
                        distributed: set[str]) -> list[K.Stmt]:
        value = self._padded_value(info, span, distributed)
        if self.opts.reduction_memory == "global" \
                and span == {"worker", "vector"}:
            return self._finalize_block_global(info, value)
        out: list[K.Stmt] = [K.Comment(
            f"reduce {info.var} across {'&'.join(sorted(span))}")]
        if span == {"vector"}:
            out += self._reduce_vector_level(info.var, info.op, info.dtype,
                                             value)
        elif span == {"worker"}:
            out += self._reduce_worker_level(info.var, info.op, info.dtype,
                                             value)
        elif span == {"worker", "vector"}:
            if self.opts.block_rmp_style == "level_by_level":
                out += self._reduce_vector_level(info.var, info.op,
                                                 info.dtype, value)
                out += self._reduce_worker_level(info.var, info.op,
                                                 info.dtype)
            else:
                out += self._reduce_flat_block(info.var, info.op, info.dtype,
                                               value)
        else:  # pragma: no cover - analysis prevents other combinations
            raise LoweringError(f"unexpected block reduction span {span}")
        # fold the captured entry value
        out.append(K.Assign(info.var, info.op.combine(
            K.Reg(f"_init_{info.var}"), K.Reg(info.var), info.dtype)))
        return out

    def _shuffle_warp_tree(self, var: str, op: ReductionOperator,
                           dtype: DType, width: int) -> list[K.Stmt]:
        """Intra-warp butterfly: after this, lane 0 of each width-aligned
        group holds the group's combined value (register traffic only)."""
        t = self._tmp("shfl")
        stmts: list[K.Stmt] = []
        for d in shuffle_deltas(width):
            stmts.append(K.ShflDown(t, var, d))
            stmts.append(K.Assign(var, op.combine(K.Reg(var), K.Reg(t),
                                                  dtype)))
        return stmts

    def _reduce_vector_level_shuffle(self, var: str, op: ReductionOperator,
                                     dtype: DType,
                                     value: K.Expr) -> list[K.Stmt]:
        """Extension (A9): per-row reduction via __shfl_down warp trees —
        shared memory only for the cross-warp handoff and the broadcast."""
        bdx, bdy = self.geom.vector_length, self.geom.num_workers
        tx, ty = K.Special("tx"), K.Special("ty")
        out: list[K.Stmt] = [K.Comment("warp-shuffle vector reduction (A9)")]
        if not isinstance(value, K.Reg) or value.name != var:
            out.append(K.Assign(var, value))
        out += self._shuffle_warp_tree(var, op, dtype, bdx)
        res = self._tmp("sres")
        nw = max(1, bdx // 32)
        arr = self._need_shared(dtype, bdy * nw if nw > 1 else bdy)
        out += cross_warp_handoff(
            arr, var, res, op, dtype, lane=tx, nw=nw, row=ty,
            warp_tree=lambda w: self._shuffle_warp_tree(var, op, dtype, w))
        out.append(K.Assign(var, K.Reg(res)))
        return out

    def _reduce_flat_block_shuffle(self, var: str, op: ReductionOperator,
                                   dtype: DType,
                                   value: K.Expr) -> list[K.Stmt]:
        """Extension (A9): whole-block reduction via two shuffle stages."""
        ntid = self.geom.threads_per_block
        tid = K.Special("tid")
        out: list[K.Stmt] = [K.Comment("warp-shuffle block reduction (A9)")]
        if not isinstance(value, K.Reg) or value.name != var:
            out.append(K.Assign(var, value))
        out += self._shuffle_warp_tree(var, op, dtype, ntid)
        res = self._tmp("sres")
        nw = max(1, ntid // 32)
        arr = self._need_shared(dtype, nw if nw > 1 else 1)
        out += cross_warp_handoff(
            arr, var, res, op, dtype, lane=tid, nw=nw, row=None,
            warp_tree=lambda w: self._shuffle_warp_tree(var, op, dtype, w))
        out.append(K.Assign(var, K.Reg(res)))
        return out

    def _reduce_vector_level(self, var: str, op: ReductionOperator,
                             dtype: DType,
                             value: K.Expr | None = None) -> list[K.Stmt]:
        """Per-worker-row reduction of per-thread partials (Fig. 6)."""
        value = value if value is not None else K.Reg(var)
        bdx, bdy = self.geom.vector_length, self.geom.num_workers
        if self._select("vector_strategy", var) == "shuffle" \
                and is_pow2(bdx) \
                and not self.opts.bug_sum_layout_mismatch:
            return self._reduce_vector_level_shuffle(var, op, dtype, value)
        arr = self._need_shared(dtype, bdx * bdy)
        tx, ty = K.Special("tx"), K.Special("ty")
        row_store = K.Bin("+", K.Bin("*", ty, K.const_int(bdx)), tx)
        transposed_store = K.Bin("+", K.Bin("*", tx, K.const_int(bdy)), ty)
        buggy = self.opts.bug_sum_layout_mismatch and op.token == "+"
        layout = self.opts.vector_layout
        if buggy:
            # defect model: transposed store, row-layout reduce
            store_idx = transposed_store
            ls = logstep_reduce(arr, bdx, op, dtype, lane=tx,
                                base=K.Bin("*", ty, K.const_int(bdx)),
                                stride=1,
                                elide_warp_sync=False)
            res_idx: K.Expr = K.Bin("*", ty, K.const_int(bdx))
        elif layout == "transposed":
            store_idx = transposed_store
            ls = logstep_reduce(arr, bdx, op, dtype, lane=tx, base=ty,
                                stride=bdy,
                                elide_warp_sync=self._elide(bdx))
            res_idx = ty
        else:
            store_idx = row_store
            ls = logstep_reduce(arr, bdx, op, dtype, lane=tx,
                                base=K.Bin("*", ty, K.const_int(bdx)),
                                stride=1,
                                elide_warp_sync=self._elide(bdx))
            res_idx = K.Bin("*", ty, K.const_int(bdx))
        res = self._tmp("vres")
        return [
            K.SStore(arr, store_idx, value),
            *ls.stmts,
            K.Sync(),
            K.SLoad(res, arr, res_idx),
            K.Assign(var, K.Reg(res)),
        ]

    def _reduce_worker_level(self, var: str, op: ReductionOperator,
                             dtype: DType,
                             value: K.Expr | None = None) -> list[K.Stmt]:
        """Reduce one value per worker (Fig. 8)."""
        value = value if value is not None else K.Reg(var)
        bdx, bdy = self.geom.vector_length, self.geom.num_workers
        tx, ty = K.Special("tx"), K.Special("ty")
        res = self._tmp("wres")
        buggy = self.opts.bug_sum_layout_mismatch and op.token == "+"
        if buggy:
            # defect model: partials at stride 1, reduce assuming stride bdy
            arr = self._need_shared(dtype, max(bdy * bdy, bdy))
            ls = logstep_reduce(arr, bdy, op, dtype, lane=tx,
                                guard=K.Bin("==", ty, K.const_int(0)),
                                stride=max(bdy, 1) if bdy > 1 else 1,
                                elide_warp_sync=False)
            return [
                K.If(K.Bin("==", tx, K.const_int(0)),
                     (K.SStore(arr, ty, value),)),
                *ls.stmts,
                K.Sync(),
                K.SLoad(res, arr, K.const_int(0)),
                K.Assign(var, K.Reg(res)),
            ]
        if self.opts.worker_strategy == "duplicated":
            return self._reduce_worker_duplicated(var, op, dtype, value)
        # OpenUH Fig. 8(c): partials in the first row, first-row threads
        # log-step (they are warp threads: no sync in the tail)
        arr = self._need_shared(dtype, bdy)
        if bdx >= max(1, bdy // 2) or bdy == 1:
            ls = logstep_reduce(arr, bdy, op, dtype, lane=tx,
                                guard=K.Bin("==", ty, K.const_int(0)),
                                elide_warp_sync=self.opts.elide_warp_sync)
            steps: list[K.Stmt] = list(ls.stmts)
        else:
            # degenerate geometry (vector_length < num_workers/2): a single
            # lane folds sequentially — correct, if slow
            steps = [K.Sync()]
            acc = self._tmp("wacc")
            seq: list[K.Stmt] = [K.SLoad(acc, arr, K.const_int(0))]
            for widx in range(1, bdy):
                t = self._tmp("wld")
                seq.append(K.SLoad(t, arr, K.const_int(widx)))
                seq.append(K.Assign(acc, op.combine(K.Reg(acc), K.Reg(t),
                                                    dtype)))
            seq.append(K.SStore(arr, K.const_int(0), K.Reg(acc)))
            steps.append(K.If(K.Bin("==", K.Special("tid"), K.const_int(0)),
                              tuple(seq)))
        return [
            K.If(K.Bin("==", tx, K.const_int(0)),
                 (K.SStore(arr, ty, value),)),
            *steps,
            K.Sync(),
            K.SLoad(res, arr, K.const_int(0)),
            K.Assign(var, K.Reg(res)),
        ]

    def _reduce_worker_duplicated(self, var: str, op: ReductionOperator,
                                  dtype: DType,
                                  value: K.Expr | None = None) -> list[K.Stmt]:
        """Baseline Fig. 8(b): every row holds a copy of all worker values
        and reduces it — more shared memory and a sync every step."""
        value = value if value is not None else K.Reg(var)
        bdx, bdy = self.geom.vector_length, self.geom.num_workers
        tx, ty = K.Special("tx"), K.Special("ty")
        arr = self._need_shared(dtype, max(bdy * bdy, bdy))
        w = self._tmp("wdup")
        res = self._tmp("wres")
        ls = logstep_reduce(arr, bdy, op, dtype, lane=tx,
                            base=K.Bin("*", ty, K.const_int(bdy)), stride=1,
                            guard=K.Bin("<", ty, K.const_int(bdy)),
                            elide_warp_sync=False)
        return [
            # stage each worker's value at [ty], then fan out to every row
            K.If(K.Bin("==", tx, K.const_int(0)),
                 (K.SStore(arr, ty, value),)),
            K.Sync(),
            K.If(K.Bin("<", tx, K.const_int(bdy)),
                 (K.SLoad(w, arr, tx),)),
            K.Sync(),
            K.If(K.Bin("&&", K.Bin("<", tx, K.const_int(bdy)),
                       K.Bin("<", ty, K.const_int(bdy))),
                 (K.SStore(arr, K.Bin("+", K.Bin("*", ty, K.const_int(bdy)),
                                      tx), K.Reg(w)),)),
            *ls.stmts,
            K.Sync(),
            K.SLoad(res, arr, K.const_int(0)),
            K.Assign(var, K.Reg(res)),
        ]

    def _reduce_flat_block(self, var: str, op: ReductionOperator,
                           dtype: DType,
                           value: K.Expr | None = None) -> list[K.Stmt]:
        """Whole-block flat reduction over per-thread partials (§3.2.1:
        buffer of workers × vector threads in shared memory)."""
        value = value if value is not None else K.Reg(var)
        ntid = self.geom.threads_per_block
        if self._select("vector_strategy", var) == "shuffle" \
                and is_pow2(ntid):
            return self._reduce_flat_block_shuffle(var, op, dtype, value)
        arr = self._need_shared(dtype, ntid)
        tid = K.Special("tid")
        ls = logstep_reduce(arr, ntid, op, dtype, lane=tid,
                            elide_warp_sync=self.opts.elide_warp_sync)
        res = self._tmp("fres")
        return [
            K.SStore(arr, tid, value),
            *ls.stmts,
            K.Sync(),
            K.SLoad(res, arr, K.const_int(0)),
            K.Assign(var, K.Reg(res)),
        ]

    def _finalize_block_global(self, info: ReductionInfo,
                               value: K.Expr) -> list[K.Stmt]:
        """§3.3: the same worker·vector reduction staged in *global* memory
        (for when shared memory is reserved for other computation)."""
        ntid = self.geom.threads_per_block
        gdx = self.geom.num_gangs
        buf = f"_redg_{info.var}"
        if all(s.name != buf for s in self.scratch):
            self.scratch.append(ScratchBuffer(buf, info.dtype, gdx * ntid))
            self.buffers_used.add(buf)
        base = K.Bin("*", K.Special("bx"), K.const_int(ntid))
        tid = K.Special("tid")
        ls = logstep_reduce(buf, ntid, info.op, info.dtype, lane=tid,
                            base=base, stride=1,
                            elide_warp_sync=self.opts.elide_warp_sync,
                            space="global")
        res = self._tmp("gres")
        return [
            K.Comment(f"reduce {info.var} across worker&vector in global "
                      "memory (§3.3)"),
            K.GStore(buf, K.Bin("+", base, tid), value),
            *ls.stmts,
            K.Sync(),
            K.GLoad(res, buf, base),
            K.Assign(info.var, K.Reg(res)),
            K.Assign(info.var, info.op.combine(
                K.Reg(f"_init_{info.var}"), K.Reg(info.var), info.dtype)),
        ]

    # ---- gang-involved reductions (two-kernel scheme, Fig. 5(c)) ------

    def _finalize_gang_atomic(self, info: ReductionInfo, span: set[str],
                              distributed: set[str]) -> list[K.Stmt]:
        """Extension (ablation A8): block-local reduce, then one atomic
        read-modify-write per block onto the result buffer — the modern
        single-kernel alternative to the paper's two-kernel scheme.  No
        finish kernel, no partial buffer, but serialized atomics."""
        value = self._padded_value(info, span, distributed)
        out: list[K.Stmt] = [K.Comment(
            f"gang-involved reduction of {info.var} "
            f"(span {'&'.join(sorted(span))}): block reduce + device atomic")]
        if span != {"gang"}:
            if info.same_line or span == {"gang", "worker", "vector"}:
                out += self._reduce_flat_block(info.var, info.op,
                                               info.dtype, value)
            else:
                if "vector" in span:
                    out += self._reduce_vector_level(info.var, info.op,
                                                     info.dtype, value)
                    value = K.Reg(info.var)
                if "worker" in span:
                    out += self._reduce_worker_level(info.var, info.op,
                                                     info.dtype, value)

        rbuf = f"_redr_{info.var}"
        self.scratch.append(ScratchBuffer(rbuf, info.dtype, 1,
                                          fill_identity_of=info.op.token))
        self.buffers_used.add(rbuf)
        out.append(K.If(K.Bin("==", K.Special("tid"), K.const_int(0)), (
            K.AtomicUpdate(rbuf, K.const_int(0), info.op.token,
                           K.Reg(info.var)),
        )))
        self.gang_reductions.append(GangReductionSpec(
            var=info.var, op=info.op, dtype=info.dtype, partial_buf=rbuf,
            result_buf=rbuf, finish_kernel=None, stage=self.stage))
        return out

    def _index_identity_const(self, dtype: DType) -> K.Const:
        """Identity for the index half of a pair: the largest index value,
        so any real index wins the smaller-index tie-break."""
        hi = np.iinfo(dtype.np).max
        return K.Const(dtype.np.type(hi), dtype)

    def _pair_take(self, kind: str, v2: K.Expr, i2: K.Expr,
                   v1: K.Expr, i1: K.Expr) -> K.Expr:
        """Does candidate pair (v2, i2) beat incumbent (v1, i1)?  Strict
        value comparison (NaN never wins) with ties broken toward the
        smaller index, so the combine is deterministic under any
        grouping."""
        cmp = ">" if kind == "argmax" else "<"
        return K.Bin("||", K.Bin(cmp, v2, v1),
                     K.Bin("&&", K.Bin("==", v2, v1), K.Bin("<", i2, i1)))

    def _finalize_gang_pair(self, info: ReductionInfo,
                            span: set[str]) -> list[K.Stmt]:
        """Value-index pair reduction (argmax/argmin): every participating
        lane writes its (value, index) partial pair to twin global
        buffers; a single-block finish kernel combines the pairs.  Pair
        combines are idempotent — duplicated partials from redundant
        lanes cannot overcount — so no identity padding is needed and
        the atomic / level-by-level styles (which have no pair form)
        are never consulted."""
        geom = self.geom
        tx, ty, bx = K.Special("tx"), K.Special("ty"), K.Special("bx")
        tid = K.Special("tid")
        out: list[K.Stmt] = [K.Comment(
            f"{info.kind} reduction of ({info.var}, {info.index_var}) "
            f"(span {'&'.join(sorted(span))}): pair partials to twin "
            "buffers, second kernel finishes")]

        if span == {"gang"}:
            size = geom.num_gangs
            index: K.Expr = bx
            guard: K.Expr | None = K.Bin("==", tid, K.const_int(0))
        elif "vector" not in span:
            size = geom.num_gangs * geom.num_workers
            index = K.Bin("+", K.Bin("*", bx, K.const_int(geom.num_workers)),
                          ty)
            guard = (K.Bin("==", tx, K.const_int(0))
                     if geom.vector_length > 1 else None)
        else:
            size = geom.num_gangs * geom.threads_per_block
            index = K.Bin("+", K.Bin(
                "*", bx, K.const_int(geom.threads_per_block)), tid)
            guard = None

        pv, pi = f"_redp_{info.var}", f"_redp_{info.index_var}"
        rv, ri = f"_redr_{info.var}", f"_redr_{info.index_var}"
        self.scratch.append(ScratchBuffer(pv, info.dtype, size))
        self.scratch.append(ScratchBuffer(pi, info.index_dtype, size))
        self.scratch.append(ScratchBuffer(rv, info.dtype, 1))
        self.scratch.append(ScratchBuffer(ri, info.index_dtype, 1))
        self.buffers_used.add(pv)
        self.buffers_used.add(pi)

        stores = (K.GStore(pv, index, K.Reg(info.var)),
                  K.GStore(pi, index, K.Reg(info.index_var)))
        if guard is not None:
            out.append(K.If(guard, stores))
        else:
            out.extend(stores)

        finish = self._build_pair_finish_kernel(info, pv, pi, rv, ri, size)
        self.gang_reductions.append(GangReductionSpec(
            var=info.var, op=info.op, dtype=info.dtype, partial_buf=pv,
            result_buf=rv, finish_kernel=finish, stage=self.stage,
            kind=info.kind, index_var=info.index_var,
            index_dtype=info.index_dtype, index_partial_buf=pi,
            index_result_buf=ri))
        return out

    def _build_pair_finish_kernel(self, info: ReductionInfo, pv: str,
                                  pi: str, rv: str, ri: str,
                                  n: int) -> K.Kernel:
        """Single-block finish kernel for a pair reduction: each lane
        folds a strided window of partial pairs, then an If-based
        shared-memory tree combines the per-lane pairs (a pair combine
        is conditional, not a single expression, so the log-step helper
        does not apply)."""
        bdx = self.opts.finish_block_size
        if not is_pow2(bdx):
            raise LoweringError(
                "pair reductions require a power-of-two finish_block_size, "
                f"got {bdx}")
        dtype, idt = info.dtype, info.index_dtype
        tx = K.Special("tx")
        av = f"_sfpv_{dtype.value}"
        ai = f"_sfpi_{idt.value}"

        def take(v2, i2, v1, i1):
            return self._pair_take(info.kind, v2, i2, v1, i1)

        body: list[K.Stmt] = [
            K.Assign("_fpv", info.op.identity_const(dtype)),
            K.Assign("_fpi", self._index_identity_const(idt)),
            K.Assign("_fk", tx),
            K.While(K.Bin("<", K.Reg("_fk"), K.const_int(n)), (
                K.GLoad("_flv", pv, K.Reg("_fk")),
                K.GLoad("_fli", pi, K.Reg("_fk")),
                K.If(take(K.Reg("_flv"), K.Reg("_fli"),
                          K.Reg("_fpv"), K.Reg("_fpi")), (
                    K.Assign("_fpv", K.Reg("_flv")),
                    K.Assign("_fpi", K.Reg("_fli")),
                )),
                K.Assign("_fk", K.Bin("+", K.Reg("_fk"),
                                      K.const_int(bdx))),
            )),
            K.SStore(av, tx, K.Reg("_fpv")),
            K.SStore(ai, tx, K.Reg("_fpi")),
        ]
        s = bdx // 2
        while s >= 1:
            body.append(K.Sync())
            body.append(K.If(K.Bin("<", tx, K.const_int(s)), (
                K.SLoad("_fov", av, K.Bin("+", tx, K.const_int(s))),
                K.SLoad("_foi", ai, K.Bin("+", tx, K.const_int(s))),
                K.SLoad("_fcv", av, tx),
                K.SLoad("_fci", ai, tx),
                K.If(take(K.Reg("_fov"), K.Reg("_foi"),
                          K.Reg("_fcv"), K.Reg("_fci")), (
                    K.SStore(av, tx, K.Reg("_fov")),
                    K.SStore(ai, tx, K.Reg("_foi")),
                )),
            )))
            s //= 2
        body.append(K.Sync())
        body.append(K.If(K.Bin("==", tx, K.const_int(0)), (
            K.SLoad("_frv", av, K.const_int(0)),
            K.SLoad("_fri", ai, K.const_int(0)),
            K.GStore(rv, K.const_int(0), K.Reg("_frv")),
            K.GStore(ri, K.const_int(0), K.Reg("_fri")),
        )))
        return self._stamp(K.Kernel(
            name=f"acc_reduction_finish_{info.var}",
            body=tuple(body),
            buffers=(pv, pi, rv, ri),
            shared=(K.SharedArraySpec(av, dtype, bdx),
                    K.SharedArraySpec(ai, idt, bdx)),
            note=f"pair finish kernel for {info.kind} of "
                 f"({info.var!r}, {info.index_var!r}) ({n} partials)",
        ))

    def _finalize_gang(self, info: ReductionInfo, span: set[str],
                       distributed: set[str]) -> list[K.Stmt]:
        if info.is_pair:
            return self._finalize_gang_pair(info, span)
        if self._select("gang_partial_style", info.var) == "atomic" \
                and info.op.token in _ATOMIC_CAPABLE:
            return self._finalize_gang_atomic(info, span, distributed)
        geom = self.geom
        tx, ty, bx = K.Special("tx"), K.Special("ty"), K.Special("bx")
        tid = K.Special("tid")
        value = self._padded_value(info, span, distributed)
        out: list[K.Stmt] = [K.Comment(
            f"gang-involved reduction of {info.var} "
            f"(span {'&'.join(sorted(span))}): partials to global buffer, "
            "second kernel finishes")]

        level_by_level = (self.opts.gang_rmp_style == "level_by_level"
                          and span != {"gang"})
        if level_by_level:
            # reduce the block-local levels first, then one partial per gang
            # (OpenUH instead writes one partial per *thread*, §3.2.1/3.2.2)
            if info.same_line:
                out += self._reduce_flat_block(info.var, info.op,
                                               info.dtype, value)
                value = K.Reg(info.var)
            else:
                if "vector" in span:
                    out += self._reduce_vector_level(info.var, info.op,
                                                     info.dtype, value)
                    value = K.Reg(info.var)
                if "worker" in span:
                    out += self._reduce_worker_level(info.var, info.op,
                                                     info.dtype, value)
                    value = K.Reg(info.var)
            span = {"gang"}

        if span == {"gang"}:
            size = geom.num_gangs
            index: K.Expr = bx
            guard: K.Expr | None = K.Bin("==", tid, K.const_int(0))
        elif span == {"gang", "worker"}:
            size = geom.num_gangs * geom.num_workers
            index = K.Bin("+", K.Bin("*", bx, K.const_int(geom.num_workers)),
                          ty)
            guard = (K.Bin("==", tx, K.const_int(0))
                     if geom.vector_length > 1 else None)
        else:  # gang & worker & vector
            size = geom.num_gangs * geom.threads_per_block
            index = K.Bin("+", K.Bin(
                "*", bx, K.const_int(geom.threads_per_block)), tid)
            guard = None

        pbuf = f"_redp_{info.var}"
        rbuf = f"_redr_{info.var}"
        self.scratch.append(ScratchBuffer(pbuf, info.dtype, size))
        self.scratch.append(ScratchBuffer(rbuf, info.dtype, 1))
        self.buffers_used.add(pbuf)

        store = K.GStore(pbuf, index, value)
        out.append(K.If(guard, (store,)) if guard is not None else store)

        finish = self._build_finish_kernel(info, pbuf, rbuf, size)
        init_kernel = None
        init_grid = 1
        if self.opts.zero_init_partials:
            bdx = self.opts.finish_block_size
            init_grid = max(1, -(-size // bdx))
            pos = K.Bin("+", K.Bin("*", K.Special("bx"), K.const_int(bdx)),
                        K.Special("tx"))
            init_kernel = self._stamp(K.Kernel(
                name=f"acc_reduction_init_{info.var}",
                body=(K.If(K.Bin("<", pos, K.const_int(size)), (
                    K.GStore(pbuf, pos, info.op.identity_const(info.dtype)),
                )),),
                buffers=(pbuf,),
                note=f"zero-initialize the {size} partials of {info.var!r}",
            ))
        self.gang_reductions.append(GangReductionSpec(
            var=info.var, op=info.op, dtype=info.dtype, partial_buf=pbuf,
            result_buf=rbuf, finish_kernel=finish,
            init_kernel=init_kernel, init_grid=init_grid,
            stage=self.stage))
        return out

    def _build_finish_kernel(self, info: ReductionInfo, pbuf: str,
                             rbuf: str, n: int) -> K.Kernel:
        """Single-block kernel reducing the partial buffer (the 'same
        reduction kernel as the one in vector addition' of §3.1.3)."""
        bdx = self.opts.finish_block_size
        op, dtype = info.op, info.dtype
        tx = K.Special("tx")
        arr = f"_sfin_{dtype.value}"
        ls = logstep_reduce(arr, bdx, op, dtype, lane=tx,
                            elide_warp_sync=self.opts.elide_warp_sync)
        t = "_fld"
        body: tuple[K.Stmt, ...] = (
            K.Assign("_facc", op.identity_const(dtype)),
            K.Assign("_fi", tx),
            K.While(K.Bin("<", K.Reg("_fi"), K.const_int(n)), (
                K.GLoad(t, pbuf, K.Reg("_fi")),
                K.Assign("_facc", op.combine(K.Reg("_facc"), K.Reg(t),
                                             dtype)),
                K.Assign("_fi", K.Bin("+", K.Reg("_fi"), K.const_int(bdx))),
            )),
            K.SStore(arr, tx, K.Reg("_facc")),
            *ls.stmts,
            K.If(K.Bin("==", tx, K.const_int(0)), (
                K.SLoad("_fres", arr, K.const_int(0)),
                K.GStore(rbuf, K.const_int(0), K.Reg("_fres")),
            )),
        )
        return self._stamp(K.Kernel(
            name=f"acc_reduction_finish_{info.var}",
            body=body,
            buffers=(pbuf, rbuf),
            shared=(K.SharedArraySpec(arr, dtype, bdx),),
            note=f"finish kernel for gang reduction of {info.var!r} "
                 f"({n} partials)",
        ))

    def _elide(self, row_width: int) -> bool:
        """Warp-sync elision is only safe for warp-aligned rows (§3.3's
        non-multiple-of-32 performance note)."""
        return (self.opts.elide_warp_sync
                and (row_width % 32 == 0 or
                     self.geom.threads_per_block <= 32))


def lower_region(plan: RegionPlan, geom: LaunchGeometry,
                 opts: LoweringOptions | None = None, *,
                 selector: StrategySelector | None = None,
                 stamp: bool = True) -> LoweredProgram:
    """Lower an analyzed region to kernels under the given strategy options.

    ``selector`` lets a caller (the autotune pass) override strategy
    fields per reduction variable; ``stamp=False`` defers sid stamping
    to the pipeline's final ``stamp-sids`` pass so optimization passes
    can rewrite kernels without ever exposing stale ids.
    """
    return _Lowerer(plan, geom, opts or LoweringOptions(),
                    selector=selector, stamp=stamp).lower()
