"""Code generation: OpenACC loop-nest IR → simulated CUDA kernels.

This package is the paper's core contribution: the mapping of parallel loops
onto the GPU thread hierarchy (:mod:`~repro.codegen.mapping`) and the
parallelization of reduction operations at and across every level of that
hierarchy (:mod:`~repro.codegen.reduction`), orchestrated by
:mod:`~repro.codegen.lowering`.
"""

__all__: list[str] = []
