"""Shared tree-step arithmetic for the reduction lowerings.

One home for the power-of-two predicates and the warp-shuffle cross-warp
handoff that :meth:`_Lowerer._reduce_vector_level_shuffle` and
:meth:`_Lowerer._reduce_flat_block_shuffle` used to duplicate: the
per-row variant is the flat variant with a non-``None`` ``row`` index,
so both call :func:`cross_warp_handoff` with different parameters and
emit byte-identical IR to the historical open-coded sequences.
"""

from __future__ import annotations

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.gpu import kernelir as K
from repro.codegen.reduction.operators import ReductionOperator

__all__ = ["is_pow2", "prev_pow2", "shuffle_deltas", "cross_warp_handoff"]


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def prev_pow2(n: int) -> int:
    """Largest power of two ≤ n (n ≥ 1)."""
    if n < 1:
        raise LoweringError(f"cannot reduce {n} elements")
    return 1 << (n.bit_length() - 1)


def shuffle_deltas(width: int, warp_size: int = 32) -> list[int]:
    """The halving ``__shfl_down`` deltas of one intra-warp butterfly
    over ``width`` lanes: ``min(width, warp)//2, ..., 1``."""
    out = []
    d = min(width, warp_size) // 2
    while d >= 1:
        out.append(d)
        d //= 2
    return out


def cross_warp_handoff(arr: str, var: str, res: str,
                       op: ReductionOperator, dtype: DType, *,
                       lane: K.Expr, nw: int,
                       row: K.Expr | None,
                       warp_tree) -> list[K.Stmt]:
    """The shared-memory handoff that follows an intra-warp shuffle tree.

    After every warp reduced its lanes into its lane-0 register, the
    ``nw`` warp leaders stage their value in ``arr``, the first ``nw``
    lanes re-shuffle those, and the result is broadcast back through
    ``arr`` into register ``res``.  ``row`` scopes the handoff to one
    worker row (``arr`` indexed at ``row*nw + k``); ``None`` means the
    whole block shares a single group.  ``warp_tree(width)`` builds the
    second-stage shuffle tree (the caller owns temp naming).

    With ``nw == 1`` there is nothing to re-shuffle: the single leader
    publishes its value directly.
    """
    zero = K.const_int(0)
    if nw > 1:
        base = K.Bin("*", row, K.const_int(nw)) if row is not None else None
        def at(off: K.Expr) -> K.Expr:
            return off if base is None else K.Bin("+", base, off)
        leader_idx = zero if base is None else base
        return [
            K.If(K.Bin("==", K.Bin("%", lane, K.const_int(32)), zero),
                 (K.SStore(arr, at(K.Bin("/", lane, K.const_int(32))),
                           K.Reg(var)),)),
            K.Sync(),
            K.Assign(var, op.identity_const(dtype)),
            K.If(K.Bin("<", lane, K.const_int(nw)),
                 (K.SLoad(var, arr, at(lane)),)),
            *warp_tree(max(2, nw)),
            K.If(K.Bin("==", lane, zero),
                 (K.SStore(arr, leader_idx, K.Reg(var)),)),
            K.Sync(),
            K.SLoad(res, arr, leader_idx),
        ]
    leader_idx = zero if row is None else row
    return [
        K.If(K.Bin("==", lane, zero),
             (K.SStore(arr, leader_idx, K.Reg(var)),)),
        K.Sync(),
        K.SLoad(res, arr, leader_idx),
    ]
