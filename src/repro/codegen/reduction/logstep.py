"""The interleaved log-step reduction (paper Fig. 7, §3.1.1, §3.3).

Generates fully-unrolled kernel-IR statement sequences that reduce ``n``
values held in a shared-memory array down to one, halving the active lane
count each step.  The generator implements the paper's refinements:

* **Full unrolling** — the block size is bounded by 1024 threads, so all
  steps are emitted statically (§3.1.1: "we unroll all iterations").
* **Warp-aware synchronization elision** — once a step's producers and
  readers fit in one warp (distance ≤ 32 with warp-aligned rows), the
  barrier between steps is dropped (§3.1.2: no synchronization in the last
  6 iterations).  Pass ``elide_warp_sync=False`` to emit a barrier after
  every step — that is the baseline behaviour ablation A4 measures, and it
  is also what correctness requires when the row width is not a multiple of
  the warp size (§3.3's performance warning about non-multiple-of-32 vector
  sizes follows from this).
* **Non-power-of-two pre-fold** (§3.3) — when ``n`` is not a power of two,
  the ``n - p`` elements beyond the previous power of two ``p`` are first
  folded onto the head, exactly as the paper describes for 96 threads
  (fold 32 onto the first 32, then reduce 64).

The same generator serves every layout by parameterizing the element
addressing (``base + lane*stride``): row layout Fig. 6(c) uses stride 1;
the transposed layout Fig. 6(b) uses stride ``blockDim.y`` and pays for it
in shared-memory bank conflicts, which the simulator counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.gpu import kernelir as K
from repro.codegen.reduction.operators import ReductionOperator

from repro.codegen.reduction.treeutil import prev_pow2

__all__ = ["LogStepReduction", "logstep_reduce", "prev_pow2"]

_uid = itertools.count()


@dataclass
class LogStepReduction:
    """A generated reduction sequence and where its result lives."""

    stmts: tuple[K.Stmt, ...]
    result_index: K.Expr  # shared-array element index holding the result
    steps: int  # number of halving steps emitted (diagnostics/ablation)
    syncs: int  # number of barriers emitted (diagnostics/ablation)


def _idx(base: K.Expr | None, lane: K.Expr, stride: int) -> K.Expr:
    e = lane if stride == 1 else K.Bin("*", lane, K.const_int(stride))
    if base is None:
        return e
    return K.Bin("+", base, e)


def _guarded(cond: K.Expr, extra: K.Expr | None) -> K.Expr:
    return cond if extra is None else K.Bin("&&", extra, cond)


def logstep_reduce(
    arr: str,
    n: int,
    op: ReductionOperator,
    dtype: DType,
    *,
    lane: K.Expr,
    base: K.Expr | None = None,
    stride: int = 1,
    guard: K.Expr | None = None,
    elide_warp_sync: bool = True,
    warp_size: int = 32,
    leading_sync: bool = True,
    trailing_sync: bool = False,
    space: str = "shared",
) -> LogStepReduction:
    """Emit an unrolled interleaved log-step reduction over ``n`` elements.

    Element ``k`` of the reduction lives at shared index ``base + k*stride``;
    lane ``k`` of the participating threads (selected by ``lane < k`` guards,
    optionally conjoined with ``guard``) owns element ``k``.

    ``leading_sync`` emits the barrier that orders the callers' partial
    stores before the first combining step; ``trailing_sync`` emits one
    after the last step so *other* threads may read the result.

    ``space`` selects where the staging buffer lives: ``"shared"``
    (default) or ``"global"`` — the §3.3 fallback for kernels whose shared
    memory is reserved for other computation (``arr`` then names a global
    buffer).
    """
    if n < 1:
        raise LoweringError(f"cannot reduce {n} elements")
    if space not in ("shared", "global"):
        raise LoweringError(f"unknown reduction space {space!r}")
    u = next(_uid)
    t1, t2 = f"_ls{u}_a", f"_ls{u}_b"
    stmts: list[K.Stmt] = []
    syncs = 0
    steps = 0
    load = K.SLoad if space == "shared" else K.GLoad
    store = K.SStore if space == "shared" else K.GStore

    def combine_at(dst_lane: K.Expr, src_lane: K.Expr, active: K.Expr):
        return K.If(_guarded(active, guard), (
            load(t1, arr, _idx(base, dst_lane, stride)),
            load(t2, arr, _idx(base, src_lane, stride)),
            store(arr, _idx(base, dst_lane, stride),
                  op.combine(K.Reg(t1), K.Reg(t2), dtype)),
        ))

    if leading_sync:
        stmts.append(K.Sync())
        syncs += 1

    p = prev_pow2(n)
    rem = n - p
    if rem:
        stmts.append(K.Comment(
            f"pre-fold {rem} tail elements onto the head (n={n} -> {p})"))
        stmts.append(combine_at(lane, K.Bin("+", lane, K.const_int(p)),
                                K.Bin("<", lane, K.const_int(rem))))
        steps += 1
        if not elide_warp_sync or max(rem, p // 2) > warp_size:
            stmts.append(K.Sync())
            syncs += 1

    s = p // 2
    while s >= 1:
        stmts.append(combine_at(lane, K.Bin("+", lane, K.const_int(s)),
                                K.Bin("<", lane, K.const_int(s))))
        steps += 1
        if s > 1 and (not elide_warp_sync or s > warp_size):
            stmts.append(K.Sync())
            syncs += 1
        s //= 2

    if trailing_sync:
        stmts.append(K.Sync())
        syncs += 1

    return LogStepReduction(
        stmts=tuple(stmts),
        result_index=_idx(base, K.const_int(0), stride),
        steps=steps,
        syncs=syncs,
    )
