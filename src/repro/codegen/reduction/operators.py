"""The OpenACC reduction operators: identities and combine rules.

The paper (§3, contributions list) covers "all reduction operator types and
operand data types".  OpenACC 1.0/2.0 defines nine: ``+ * max min & | ^ &&
||``, over the C arithmetic types.  Every operator is associative and
commutative (§3's prerequisite for the divide-and-conquer parallelization),
so partial reductions may be computed in any grouping/order as long as each
element participates exactly once and identities pad the gaps.

Each operator provides:

* ``identity(dtype)`` — the neutral element used to seed thread privates and
  pad inactive lanes;
* ``combine(a, b, dtype)`` — a kernel-IR expression combining two values;
* ``np_combine`` / ``np_reduce`` — NumPy equivalents for host-side folding
  and CPU reference results (the testsuite's verifier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dtypes import DType, is_integer
from repro.errors import AnalysisError
from repro.gpu import kernelir as K

__all__ = ["ReductionOperator", "OPERATORS", "get_operator",
           "define_operator"]


@dataclass(frozen=True)
class ReductionOperator:
    """One OpenACC reduction operator."""

    token: str  # OpenACC spelling in the reduction clause
    name: str  # identifier-safe name (used in kernel/register names)
    integer_only: bool
    _identity: Callable[[DType], object]
    _combine_ir: Callable[[K.Expr, K.Expr, DType], K.Expr]
    _np_combine: Callable  # (a, b) -> combined, dtype-preserving
    #: float grouping-invariance: ``True`` means regrouping the combine
    #: tree cannot change the float result bits (max/min; custom
    #: operators declare it).  Integer operators are always exact.
    float_exact: bool = False

    def __reduce__(self):
        # operators are module-level singletons holding lambdas; pickle
        # by token so lowered programs (which embed operators in their
        # gang-reduction specs) round-trip through the persistent
        # compile cache
        return (get_operator, (self.token,))

    def validate_dtype(self, dtype: DType) -> None:
        if self.integer_only and not is_integer(dtype):
            raise AnalysisError(
                f"reduction operator {self.token!r} requires an integer "
                f"type, got {dtype.ctype!r}"
            )

    def identity(self, dtype: DType):
        """Neutral element as a NumPy scalar of ``dtype``."""
        self.validate_dtype(dtype)
        return dtype.np.type(self._identity(dtype))

    def identity_const(self, dtype: DType) -> K.Const:
        """Neutral element as a kernel-IR constant."""
        return K.Const(self.identity(dtype), dtype)

    def combine(self, a: K.Expr, b: K.Expr, dtype: DType) -> K.Expr:
        """Kernel-IR expression for ``a <op> b`` at ``dtype``."""
        return self._combine_ir(a, b, dtype)

    def np_combine(self, a, b, dtype: DType):
        """Host-side combine, preserving ``dtype`` (C wrap-around included)."""
        with np.errstate(over="ignore"):
            return dtype.np.type(self._np_combine(
                np.asarray(a, dtype=dtype.np), np.asarray(b, dtype=dtype.np)))

    @property
    def exactness(self) -> str:
        """Exactness class of this operator's combine.

        ``"exact"`` — regrouping the combine tree can never change the
        result bits (integer operators, float ``max``/``min``, and any
        :func:`define_operator` operator registered ``float_exact``);
        ``"ordered"`` — float rounding depends on the combination order,
        so only order-preserving transformations are legal.
        """
        return "exact" if (self.integer_only or self.float_exact) \
            else "ordered"

    def is_exact(self, dtype: DType) -> bool:
        """Grouping-invariance of the combine at ``dtype``."""
        return is_integer(dtype) or self.exactness == "exact"

    def np_reduce(self, values: np.ndarray, dtype: DType):
        """Reference sequential reduction of an array (identity-seeded)."""
        acc = self.identity(dtype)
        arr = np.asarray(values, dtype=dtype.np)
        if self.token not in _BUILTIN_TOKENS:
            # user-defined operator: a plain left fold through np_combine
            # (no vectorized shortcut is known for an arbitrary combine)
            for v in arr:
                acc = self.np_combine(acc, v, dtype)
            return acc
        with np.errstate(over="ignore"):
            for chunkwise in (arr,):
                if self.token == "+":
                    acc = dtype.np.type(acc + chunkwise.sum(dtype=dtype.np))
                elif self.token == "*":
                    acc = dtype.np.type(acc * chunkwise.prod(dtype=dtype.np))
                elif self.token == "max":
                    acc = dtype.np.type(np.fmax(acc, chunkwise.max())
                                        if chunkwise.size else acc)
                elif self.token == "min":
                    acc = dtype.np.type(np.fmin(acc, chunkwise.min())
                                        if chunkwise.size else acc)
                elif self.token == "&":
                    acc = dtype.np.type(np.bitwise_and.reduce(chunkwise,
                                                              initial=acc))
                elif self.token == "|":
                    acc = dtype.np.type(np.bitwise_or.reduce(chunkwise,
                                                             initial=acc))
                elif self.token == "^":
                    acc = dtype.np.type(np.bitwise_xor.reduce(chunkwise,
                                                              initial=acc))
                elif self.token == "&&":
                    acc = dtype.np.type(int(bool(acc) and bool(np.all(chunkwise != 0))))
                elif self.token == "||":
                    acc = dtype.np.type(int(bool(acc) or bool(np.any(chunkwise != 0))))
                else:  # pragma: no cover
                    raise AnalysisError(f"unknown operator {self.token!r}")
        return acc


def _int_allones(dtype: DType):
    return -1  # two's-complement all-ones for signed int/long


def _minval(dtype: DType):
    if dtype is DType.INT:
        return np.iinfo(np.int32).min
    if dtype is DType.LONG:
        return np.iinfo(np.int64).min
    return -np.inf


def _maxval(dtype: DType):
    if dtype is DType.INT:
        return np.iinfo(np.int32).max
    if dtype is DType.LONG:
        return np.iinfo(np.int64).max
    return np.inf


def _bin(op: str):
    def mk(a, b, dtype):
        return K.Bin(op, a, b)
    return mk


def _call_max(a, b, dtype):
    return K.Call("fmax" if dtype in (DType.FLOAT, DType.DOUBLE) else "max",
                  (a, b))


def _call_min(a, b, dtype):
    return K.Call("fmin" if dtype in (DType.FLOAT, DType.DOUBLE) else "min",
                  (a, b))


def _logical_and(a, b, dtype):
    return K.Cast(dtype, K.Bin("&&", a, b))


def _logical_or(a, b, dtype):
    return K.Cast(dtype, K.Bin("||", a, b))


def _np_logical_and(a, b):
    return ((a != 0) & (b != 0))


def _np_logical_or(a, b):
    return ((a != 0) | (b != 0))


OPERATORS: dict[str, ReductionOperator] = {
    "+": ReductionOperator("+", "sum", False, lambda d: 0, _bin("+"), np.add),
    "*": ReductionOperator("*", "prod", False, lambda d: 1, _bin("*"),
                           np.multiply),
    "max": ReductionOperator("max", "max", False, _minval, _call_max, np.fmax,
                             float_exact=True),
    "min": ReductionOperator("min", "min", False, _maxval, _call_min, np.fmin,
                             float_exact=True),
    "&": ReductionOperator("&", "band", True, _int_allones, _bin("&"),
                           np.bitwise_and),
    "|": ReductionOperator("|", "bor", True, lambda d: 0, _bin("|"),
                           np.bitwise_or),
    "^": ReductionOperator("^", "bxor", True, lambda d: 0, _bin("^"),
                           np.bitwise_xor),
    "&&": ReductionOperator("&&", "land", False, lambda d: 1, _logical_and,
                            _np_logical_and),
    "||": ReductionOperator("||", "lor", False, lambda d: 0, _logical_or,
                            _np_logical_or),
}

#: spellings of the nine OpenACC 1.0/2.0 operators — ``define_operator``
#: may not shadow these, and ``np_reduce`` only vectorizes over them
_BUILTIN_TOKENS = frozenset(OPERATORS)


def define_operator(token: str, *, name: str | None = None,
                    identity, combine_ir, np_combine,
                    integer_only: bool = False,
                    float_exact: bool = False) -> ReductionOperator:
    """Register a user-defined associative reduction operator.

    ``token`` is the spelling usable in ``reduction(<token>:var)``
    clauses and the :mod:`repro.reduce` API.  ``identity`` is either a
    constant or a ``DType -> value`` callable; ``combine_ir(a, b,
    dtype)`` builds the kernel-IR combine expression; ``np_combine(a,
    b)`` is the dtype-preserving NumPy equivalent used for host folds
    and reference results.  The operator **must** be associative — the
    compiler regroups partials freely (declare ``float_exact=True`` only
    when regrouping cannot change float result bits).

    Registration is idempotent per token: re-defining a token replaces
    the previous definition (pickled programs resolve operators by
    token at load time, so the process must register its custom
    operators before unpickling programs that use them).
    """
    if token in _BUILTIN_TOKENS:
        raise AnalysisError(
            f"cannot redefine built-in reduction operator {token!r}")
    if not token.isidentifier():
        raise AnalysisError(
            f"custom operator token {token!r} must be an identifier "
            "(so reduction clauses can parse it)")
    ident = identity if callable(identity) else (lambda d, _v=identity: _v)
    op = ReductionOperator(token, name or token, integer_only, ident,
                           combine_ir, np_combine, float_exact=float_exact)
    OPERATORS[token] = op
    return op


def get_operator(token: str) -> ReductionOperator:
    """Look up a reduction operator by its OpenACC clause spelling."""
    try:
        return OPERATORS[token]
    except KeyError:
        raise AnalysisError(f"unknown reduction operator {token!r}") from None
