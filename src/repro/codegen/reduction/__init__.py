"""Reduction parallelization strategies (§3 of the paper)."""

from repro.codegen.reduction.operators import ReductionOperator, get_operator, OPERATORS

__all__ = ["ReductionOperator", "get_operator", "OPERATORS"]
