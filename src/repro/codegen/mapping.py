"""Parallelism mapping: OpenACC levels → CUDA thread geometry (§2.2).

Follows the OpenUH convention (paper Table 1 discussion): **gang** maps to
``blockIdx.x``, **worker** to ``threadIdx.y``, **vector** to
``threadIdx.x``.  Iteration scheduling comes in the two flavours §3.1.3
contrasts:

* **window sliding** (OpenUH): the thread set is a window that slides over
  the iteration space with stride = window size (Fig. 3's ``i +=
  blockDim.x``).  Consecutive lanes touch consecutive iterations, so
  vector-level memory access coalesces.
* **blocking**: each thread takes a contiguous chunk of iterations.
  Equivalent work, but consecutive lanes are ``chunk`` apart, defeating
  coalescing — the baseline we ablate against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu import kernelir as K

__all__ = ["LaunchGeometry", "distribution", "Distribution"]

_LEVEL_DIM = {"gang": "bx", "worker": "ty", "vector": "tx"}


@dataclass(frozen=True)
class LaunchGeometry:
    """Resolved launch configuration (compile-time constants)."""

    num_gangs: int
    num_workers: int
    vector_length: int

    @property
    def threads_per_block(self) -> int:
        return self.num_workers * self.vector_length

    @property
    def total_threads(self) -> int:
        return self.num_gangs * self.threads_per_block

    def size_of(self, level: str) -> int:
        return {"gang": self.num_gangs, "worker": self.num_workers,
                "vector": self.vector_length}[level]


@dataclass(frozen=True)
class Distribution:
    """How one loop's iterations map onto threads.

    ``position`` is the participating-thread linear position (an int
    expression over thread builtins); ``total`` is the number of
    participating positions (compile-time).
    """

    levels: tuple[str, ...]
    position: K.Expr
    total: int


def distribution(levels: tuple[str, ...], geom: LaunchGeometry) -> Distribution:
    """Linearize the participating levels, outer to inner.

    For levels ``(gang, worker, vector)`` the position is
    ``(blockIdx.x * blockDim.y + threadIdx.y) * blockDim.x + threadIdx.x``;
    subsets compose the same way over the participating dimensions only
    (e.g. ``(gang, vector)`` → ``blockIdx.x * blockDim.x + threadIdx.x``).
    """
    if not levels:
        raise ValueError("distribution() requires at least one level")
    pos: K.Expr | None = None
    total = 1
    for lv in ("gang", "worker", "vector"):
        if lv not in levels:
            continue
        size = geom.size_of(lv)
        dim = K.Special(_LEVEL_DIM[lv])
        total *= size
        if pos is None:
            pos = dim
        else:
            pos = K.Bin("+", K.Bin("*", pos, K.const_int(size)), dim)
    assert pos is not None
    return Distribution(levels=tuple(levels), position=pos, total=total)
