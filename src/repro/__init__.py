"""repro — reproduction of "Reduction Operations in Parallel Loops for
GPGPUs" (Xu, Tian, Yan, Chandrasekaran, Chapman; PMAM/PPoPP 2014).

A from-scratch Python implementation of the paper's system: an OpenACC-style
directive compiler whose reduction-parallelization strategies (gang/worker/
vector, single- and multi-level) are lowered onto a deterministic SIMT GPU
simulator with an analytic Kepler-class cost model.

Layers (bottom-up):

* :mod:`repro.gpu` — the SIMT simulator substrate (device, memories,
  kernel IR, executor, cost model);
* :mod:`repro.frontend` — C-subset + ``#pragma acc`` parser;
* :mod:`repro.ir` — typed loop-nest IR, reduction-span analysis;
* :mod:`repro.codegen` — parallelism mapping and reduction lowering
  (the paper's core contribution);
* :mod:`repro.acc` — the user-facing ``compile``/``run`` API and the
  compiler profiles (``openuh`` plus two commercial-like baselines);
* :mod:`repro.faults` — seeded fault injection and resilience campaigns
  (opt-in; see ``docs/robustness.md``);
* :mod:`repro.testsuite` — the paper's reduction testsuite (contribution 3);
* :mod:`repro.apps` — the paper's applications (2-D heat equation, matrix
  multiplication, Monte Carlo π);
* :mod:`repro.bench` — harnesses regenerating Table 2 and Figures 11/12.

Quick start::

    from repro import acc
    prog = acc.compile(source_with_pragmas)
    result = prog.run(a=array, n=...)
"""

from repro import acc, faults
from repro.dtypes import DType
from repro.errors import (
    ReproError, CompileError, ParseError, AnalysisError,
    UnsupportedReductionError, SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "acc",
    "faults",
    "DType",
    "ReproError",
    "CompileError",
    "ParseError",
    "AnalysisError",
    "UnsupportedReductionError",
    "SimulationError",
    "__version__",
]
