"""The resilient compile-and-run service layer.

:mod:`repro.serve` turns the single-shot compiler + simulator into a
long-lived service: an asyncio :class:`~repro.serve.scheduler.Scheduler`
multiplexes concurrent compile+run requests over a
:class:`~repro.serve.pool.DevicePool` of simulated devices, with

* bounded per-priority admission queues (backpressure + load shedding),
* per-request deadlines spanning queue wait and execution,
* cross-device retries and optional tail-latency hedging,
* per-device health via rolling-error-rate circuit breakers
  (quarantine → probation probes → re-admission), and
* a content-addressed, crash-safe, on-disk compile cache
  (:class:`~repro.serve.cache.CompileCache`) under the per-process
  launch LRU.

Every scheduling decision emits on the ``obs.timeline`` bus and the
metrics registry; :mod:`repro.serve.loadgen` and
:mod:`repro.serve.soak` drive the service under load and chaos
(``python -m repro loadgen`` / the CI chaos-soak gate).
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import CompileCache, device_fingerprint
from repro.serve.loadgen import build_corpus, run_loadgen
from repro.serve.pool import DevicePool, PooledDevice
from repro.serve.scheduler import (ComputeRequest, RequestResult, Scheduler,
                                   ServeConfig)
from repro.serve.soak import SoakConfig, evaluate_gate, run_soak

__all__ = [
    "CircuitBreaker", "CompileCache", "device_fingerprint",
    "DevicePool", "PooledDevice",
    "ComputeRequest", "RequestResult", "Scheduler", "ServeConfig",
    "build_corpus", "run_loadgen",
    "SoakConfig", "evaluate_gate", "run_soak",
]
