"""The chaos soak harness: sustained mixed load + mid-load fault arming.

The soak drives a :class:`~repro.serve.scheduler.Scheduler` over a
multi-device pool with the loadgen corpus (integer reductions — exact
references), and **arms seeded fault plans on pool devices mid-load**:
spurious launch/transfer failures (transient, absorbed by in-run
retries), read-upset bitflips (outvoted by redundant execution), and
stuck warps (converted to typed watchdog errors, retried on another
device, and — repeated — tripping the victim device's circuit breaker).
Each plan carries a ``max_faults`` budget, so the chaotic device
eventually *heals* and the breaker's probation path re-admits it.

The **gate** (:func:`evaluate_gate`) is the PR's acceptance bar:

1. zero escaped silent corruptions — every ``ok`` answer bit-identical
   to an unfaulted single-device run of the same program and inputs;
2. every non-ok request carries a typed error (shed and expired included);
3. under chaos, the victim breaker trips **and** re-admits;
4. tail latency stays bounded (ok-p99 under the configured ceiling).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.faults import FaultPlan
from repro.obs import timeline as _timeline
from repro.obs.slo import quantile
from repro.serve.cache import CompileCache
from repro.serve.loadgen import build_corpus, run_wave, verify_results
from repro.serve.pool import DevicePool
from repro.serve.scheduler import Scheduler, ServeConfig

__all__ = ["SoakConfig", "run_soak", "evaluate_gate", "reference_results"]

#: the default chaos mix, budgeted so the device heals before the end.
#: Stuck warps dominate deliberately: launch/transfer failures are
#: transient (absorbed by in-run retries) and read upsets are outvoted
#: by redundant execution, so only the watchdog-detected hangs reach the
#: service layer reliably enough to exercise the breaker under a small
#: fault budget.
DEFAULT_CHAOS = dict(p_launch_fail=0.05, p_transfer_fail=0.05,
                     p_gload_flip=0.002, p_stuck_warp=0.85)


@dataclass
class SoakConfig:
    n_requests: int = 200
    n_devices: int = 4
    seed: int = 0
    size: int = 256
    deadline_s: float = 30.0
    stagger_s: float = 0.0
    #: device indices to arm; fraction of submissions after which arming
    #: happens (the "mid-load" requirement)
    chaos_devices: tuple = (1,)
    arm_at_fraction: float = 0.1
    chaos: dict = field(default_factory=lambda: dict(DEFAULT_CHAOS))
    max_faults: int = 6
    #: ok-p99 latency ceiling, as a multiple of the fault-free ok-p50
    tail_ceiling_x: float = 50.0
    #: hardening for served runs: voting corrects bitflips bit-exactly;
    #: degrade stays off so no strategy reassociation can shift results
    runs: int = 3
    max_attempts: int = 3
    queue_depth: int = 64
    hedge_after_s: float | None = 0.5
    #: SLO monitor knobs forwarded to :class:`ServeConfig`
    slo: dict = field(default_factory=dict)
    breaker: dict = field(default_factory=lambda: dict(
        window=6, failure_threshold=0.5, min_samples=3,
        quarantine_s=0.1, max_quarantine_s=0.4, probation_probes=2))


def reference_results(corpus) -> dict:
    """Unfaulted single-device scalars/outputs per request id (the
    bit-identity baseline the soak gate compares against)."""
    from repro import acc

    progs: dict[str, object] = {}
    refs = {}
    for lr in corpus:
        label = lr.case.label
        if label not in progs:
            progs[label] = acc.compile(
                lr.case.source,
                num_gangs=lr.request.num_gangs,
                num_workers=lr.request.num_workers,
                vector_length=lr.request.vector_length)
        res = progs[label].run(**lr.request.arrays, **lr.request.scalars)
        refs[lr.request.id] = {"scalars": dict(res.scalars),
                               "outputs": dict(res.outputs)}
    return refs


def _compare_to_reference(corpus, results, refs) -> list:
    """Escaped-corruption list: ok answers that differ from the baseline."""
    by_id = {lr.request.id: lr for lr in corpus}
    escapes = []
    for res in results:
        if res.status != "ok":
            continue
        ref = refs[res.id]
        for name, want in ref["scalars"].items():
            got = (res.scalars or {}).get(name)
            if got is None or np.asarray(got).tobytes() != \
                    np.asarray(want).tobytes():
                escapes.append({"id": res.id, "what": f"scalar:{name}",
                                "got": repr(got), "want": repr(want)})
        for name, want in ref["outputs"].items():
            got = (res.outputs or {}).get(name)
            if got is None or got.tobytes() != want.tobytes():
                escapes.append({"id": res.id, "what": f"array:{name}"})
        _ = by_id  # (kept for symmetry with verify_results)
    return escapes


def run_soak(cache_dir, config: SoakConfig | None = None) -> dict:
    """Run the chaos soak; returns the report with the gate verdict."""
    cfg = config or SoakConfig()
    corpus = build_corpus(cfg.n_requests, seed=cfg.seed, size=cfg.size,
                          deadline_s=cfg.deadline_s)
    refs = reference_results(corpus)
    if _timeline.trace_active():
        # the reference runs above emitted a few hundred non-request
        # traces; drain them so the exported timeline holds only the
        # soak's request trees (and the ring can't overflow into them)
        tl = _timeline.current()
        if tl is not None:
            tl.drain()
    cache = CompileCache(cache_dir)
    serve_cfg = ServeConfig(
        queue_depth=cfg.queue_depth, default_deadline_s=cfg.deadline_s,
        hedge_after_s=cfg.hedge_after_s, runs=cfg.runs,
        max_attempts=cfg.max_attempts, degrade=False,
        breaker=cfg.breaker, slo=dict(cfg.slo))
    arm_at = max(1, int(cfg.arm_at_fraction * cfg.n_requests))
    plans = {i: FaultPlan(seed=cfg.seed + 1000 + i,
                          max_faults=cfg.max_faults, **cfg.chaos)
             for i in cfg.chaos_devices}

    async def _run():
        pool = DevicePool(cfg.n_devices,
                          breaker_kwargs=dict(cfg.breaker))

        def on_submitted(i):
            if i == arm_at:
                for idx, plan in plans.items():
                    pool.devices[idx].arm_faults(plan)

        async with Scheduler(pool, serve_cfg, cache=cache) as sched:
            results = await run_wave(sched, corpus,
                                     stagger_s=cfg.stagger_s,
                                     on_submitted=on_submitted)
            return results, sched.report(), pool.snapshot()

    results, sched_report, devices = asyncio.run(_run())
    verify = verify_results(corpus, results)
    escapes = _compare_to_reference(corpus, results, refs)
    ok_lat = [r.latency_us for r in results if r.ok]
    report = {
        "config": {"n_requests": cfg.n_requests,
                   "n_devices": cfg.n_devices, "seed": cfg.seed,
                   "chaos_devices": list(cfg.chaos_devices),
                   "armed_after": arm_at, "chaos": dict(cfg.chaos),
                   "max_faults": cfg.max_faults},
        "by_status": sched_report["by_status"],
        "latency": {"ok_p50_us": round(quantile(ok_lat, 0.5), 1),
                    "ok_p99_us": round(quantile(ok_lat, 0.99), 1)},
        "verify": verify,
        "reference_escapes": escapes,
        "devices": devices,
        "compile_cache": cache.stats(),
        "metrics": sched_report["metrics"],
        "slo": sched_report["slo"],
        "traces": sched_report["traces"],
    }
    report["gate"] = evaluate_gate(report, cfg)
    return report


def evaluate_gate(report: dict, cfg: SoakConfig) -> dict:
    """The soak acceptance gate; ``passed`` is the CI exit-status bit."""
    checks = []

    def check(name, passed, detail):
        checks.append({"name": name, "passed": bool(passed),
                       "detail": detail})

    n_escaped = (report["verify"]["escaped_count"]
                 + len(report["reference_escapes"]))
    check("zero-escapes", n_escaped == 0,
          f"{n_escaped} escaped silent corruption(s)")
    untyped = report["verify"]["untyped_failures"]
    check("typed-errors", not untyped,
          f"{len(untyped)} non-ok result(s) without a typed error")
    faults = sum(d["faults_injected"] for d in report["devices"])
    check("chaos-fired", faults > 0,
          f"{faults} fault(s) injected on armed devices")
    victims = [report["devices"][i] for i in cfg.chaos_devices]
    trips = sum(d["breaker"]["trips"] for d in victims)
    readmits = sum(d["breaker"]["readmissions"] for d in victims)
    check("breaker-tripped", trips >= 1,
          f"victim breaker trips: {trips}")
    check("breaker-readmitted", readmits >= 1,
          f"victim breaker re-admissions: {readmits}")
    ok = report["by_status"].get("ok", 0)
    check("progress", ok > 0, f"{ok} request(s) served ok under chaos")
    p50 = report["latency"]["ok_p50_us"] or 1.0
    p99 = report["latency"]["ok_p99_us"]
    ceiling = cfg.tail_ceiling_x * p50
    check("bounded-tail", p99 <= ceiling,
          f"ok p99 {p99:.0f}us vs ceiling {ceiling:.0f}us "
          f"({cfg.tail_ceiling_x}x p50)")
    return {"passed": all(c["passed"] for c in checks), "checks": checks}
