"""Load generator for the serve layer: mixed waves, cold/warm contrast.

The request corpus is drawn from the reduction testsuite
(:mod:`repro.testsuite.cases`) restricted to **integer** operators, so
every request carries an exact NumPy reference — a served answer is
either bit-identical to the reference or it is an escaped corruption,
with no floating-point-association grey zone.  Priorities, positions,
and operators are drawn from a seeded RNG, so a loadgen run is
replayable.

Two measured waves make the persistent compile cache's value visible:

* **cold** — fresh cache directory: every distinct program pays the full
  parse + IR + pass-pipeline compile;
* **warm** — a *new* scheduler and pool (empty per-device memos) over
  the same cache directory, with the in-memory payload index dropped, so
  every compile is served by disk read + verify + unpickle.

The report carries per-wave latency and compile-time percentiles; the
acceptance gate (``warm p50 < cold p50`` on compile time) is asserted by
the soak/CI harness, not here.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.obs import timeline as _timeline
from repro.obs.slo import quantile
from repro.serve.cache import CompileCache
from repro.serve.pool import DevicePool
from repro.serve.scheduler import (ComputeRequest, RequestResult, Scheduler,
                                   ServeConfig)

__all__ = ["build_corpus", "run_wave", "run_loadgen", "verify_results"]

#: the corpus grid: integer-only operators (exact references) across the
#: clause positions the paper's Table 2 exercises
_POSITIONS = ("gang", "worker", "vector", "gang worker", "worker vector")
_OPS = ("+", "max", "&", "|")
_GEOMETRY = {"num_gangs": 2, "num_workers": 2, "vector_length": 32}


class LoadRequest:
    """One corpus entry: the service request plus its exact reference."""

    __slots__ = ("request", "case", "expected")

    def __init__(self, request: ComputeRequest, case, expected):
        self.request = request
        self.case = case
        self.expected = expected  # list of (kind, name, value)


def build_corpus(n_requests: int, *, seed: int = 0, size: int = 256,
                 deadline_s: float = 30.0, run_opts: dict | None = None,
                 interactive_fraction: float = 0.25) -> list[LoadRequest]:
    """``n_requests`` seeded requests over the integer-reduction grid."""
    from repro.testsuite.cases import make_case

    rng = np.random.default_rng(seed)
    cases = {}
    out = []
    for i in range(n_requests):
        pos = _POSITIONS[int(rng.integers(len(_POSITIONS)))]
        op = _OPS[int(rng.integers(len(_OPS)))]
        label = f"{pos}|{op}"
        if label not in cases:
            cases[label] = make_case(pos, op, "int", size=size, seed=seed)
        case = cases[label]
        inputs = case.make_inputs(np.random.default_rng(seed + i))
        expected = case.expected(inputs)
        arrays = {k: v for k, v in inputs.items()
                  if isinstance(v, np.ndarray)}
        scalars = {k: v for k, v in inputs.items()
                   if not isinstance(v, np.ndarray)}
        priority = 0 if rng.random() < interactive_fraction else 1
        out.append(LoadRequest(
            ComputeRequest(
                id=f"req-{i:04d}", source=case.source,
                arrays=arrays, scalars=scalars, priority=priority,
                deadline_s=deadline_s, run_opts=dict(run_opts or {}),
                **_GEOMETRY),
            case, expected))
    return out


def verify_results(corpus: list[LoadRequest],
                   results: list[RequestResult]) -> dict:
    """Bit-exact verdict of one wave against the NumPy references.

    Every ``ok`` result must match its reference exactly; a mismatch is
    an **escaped silent corruption** (the thing the whole robustness
    stack exists to prevent).  Every non-ok result must carry a typed
    error name.
    """
    by_id = {lr.request.id: lr for lr in corpus}
    escaped, untyped, ok = [], [], 0
    for res in results:
        lr = by_id[res.id]
        if res.status != "ok":
            if not res.error:
                untyped.append(res.id)
            continue
        ok += 1
        for kind, name, want in lr.expected:
            if kind == "scalar":
                got = (res.scalars or {}).get(name)
                good = got is not None and np.asarray(got).tobytes() == \
                    np.asarray(want).tobytes()
            else:
                got = (res.outputs or {}).get(name)
                good = (got is not None and got.dtype == want.dtype
                        and got.shape == want.shape
                        and np.array_equal(got, want))
            if not good:
                escaped.append({"id": res.id, "name": name,
                                "got": repr(got), "want": repr(want)})
    return {"ok": ok, "escaped": escaped, "escaped_count": len(escaped),
            "untyped_failures": untyped}


async def run_wave(scheduler: Scheduler, corpus: list[LoadRequest], *,
                   stagger_s: float = 0.0,
                   on_submitted=None) -> list[RequestResult]:
    """Submit the corpus (optionally staggered) and gather every verdict.

    ``on_submitted(i)`` fires after request ``i`` is submitted — the soak
    harness uses it to arm chaos mid-load.
    """
    tasks = []
    for i, lr in enumerate(corpus):
        tasks.append(scheduler.submit_nowait(lr.request))
        if on_submitted is not None:
            on_submitted(i)
        if stagger_s > 0:
            await asyncio.sleep(stagger_s)
    return list(await asyncio.gather(*tasks))


def _wave_stats(results: list[RequestResult]) -> dict:
    ok = [r for r in results if r.ok]
    lat = [r.latency_us for r in ok]
    compile_us = [r.compile_us for r in ok]
    by_status: dict[str, int] = {}
    cache: dict[str, int] = {}
    for r in results:
        by_status[r.status] = by_status.get(r.status, 0) + 1
        if r.cache:
            cache[r.cache] = cache.get(r.cache, 0) + 1
    return {
        "requests": len(results), "by_status": dict(sorted(by_status.items())),
        "cache": dict(sorted(cache.items())),
        "latency_p50_us": round(quantile(lat, 0.50), 1),
        "latency_p99_us": round(quantile(lat, 0.99), 1),
        "compile_p50_us": round(quantile(compile_us, 0.50), 1),
        "compile_p99_us": round(quantile(compile_us, 0.99), 1),
        "hedged": sum(r.hedged for r in results),
        "retried": sum(r.tries > 1 for r in results),
    }


def run_loadgen(cache_dir, *, n_requests: int = 64, n_devices: int = 4,
                seed: int = 0, size: int = 256, deadline_s: float = 30.0,
                stagger_s: float = 0.0, config: ServeConfig | None = None,
                run_opts: dict | None = None, warm_pass: bool = True) -> dict:
    """The cold-then-warm measurement: returns the combined report."""
    cfg = config or ServeConfig(default_deadline_s=deadline_s)
    corpus = build_corpus(n_requests, seed=seed, size=size,
                          deadline_s=deadline_s, run_opts=run_opts)
    cache = CompileCache(cache_dir)
    report: dict = {"n_requests": n_requests, "n_devices": n_devices,
                    "seed": seed, "waves": {}}

    async def _one_wave():
        async with Scheduler(DevicePool(n_devices), cfg,
                             cache=cache) as sched:
            results = await run_wave(sched, corpus, stagger_s=stagger_s)
            return results, sched.report()

    for wave in ("cold",) + (("warm",) if warm_pass else ()):
        if wave == "warm":
            # fresh pool + scheduler (empty per-device memos), and forget
            # the in-memory payloads: the warm path is disk read+verify
            cache.drop_memory()
            if _timeline.trace_active():
                # both waves reuse the same request ids; drain the cold
                # wave's events so each trace id keeps exactly one root
                tl = _timeline.current()
                if tl is not None:
                    tl.drain()
        results, sched_report = asyncio.run(_one_wave())
        stats = _wave_stats(results)
        stats["verify"] = verify_results(corpus, results)
        stats["devices"] = sched_report["devices"]
        stats["slo"] = sched_report["slo"]
        report["waves"][wave] = stats
    report["compile_cache"] = cache.stats()
    if warm_pass:
        cold = report["waves"]["cold"]["compile_p50_us"]
        warm = report["waves"]["warm"]["compile_p50_us"]
        report["warm_speedup_p50"] = round(cold / warm, 2) if warm else None
    return report
