"""The asyncio compile-and-run request scheduler.

One :class:`Scheduler` multiplexes concurrent compile+run requests over
a :class:`~repro.serve.pool.DevicePool`:

* **admission control / backpressure** — each priority class has a
  bounded queue; a request arriving at a full queue is *shed*
  immediately with a typed :class:`~repro.errors.AdmissionShedError`
  verdict instead of growing an unbounded backlog;
* **deadlines** — a request carries a deadline covering queue wait and
  execution; expiry in the queue means it never runs, expiry
  mid-execution abandons the dispatch (the device finishes its doomed
  launch — a simulated GPU cannot preempt — and is then reused) and the
  device is charged a timeout;
* **priority dispatch** — a freed device goes to the waiting request
  with the lowest priority number (FIFO within a class);
* **cross-device retries** — a typed failure on one device re-dispatches
  to a *different* device, up to ``max_tries`` total tries;
* **hedging** — when a dispatch is still running after
  ``hedge_after_s`` and an idle healthy device exists, a duplicate is
  launched there and the first completion wins (tail-latency insurance
  against a slow or about-to-fail device);
* **health** — every outcome feeds the serving device's circuit breaker
  (see :mod:`repro.serve.breaker`); quarantined devices receive
  probation probes via :meth:`~repro.serve.pool.DevicePool.pick`.

Every decision — admit, shed, expire, dispatch, hedge, retry, breaker
transition, cache hit/miss/corruption — emits on the ``obs.timeline``
bus under the ``serve`` category and increments the metrics registry,
so a soak run is fully reconstructible from its telemetry export.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from repro.errors import (
    AdmissionShedError, CircuitOpenError, DeadlineExceededError, ReproError,
    ServiceRetriesExceededError,
)
from repro.obs import timeline as _timeline
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOMonitor, quantile  # noqa: F401 — quantile re-exported
from repro.serve.pool import DevicePool, PooledDevice

__all__ = ["ComputeRequest", "RequestResult", "ServeConfig", "Scheduler",
           "quantile"]


@dataclass
class ComputeRequest:
    """One compile+run request submitted to the service."""

    id: str
    source: str
    compiler: str = "openuh"
    pipeline: str | None = None
    num_gangs: int | None = None
    num_workers: int | None = None
    vector_length: int | None = None
    arrays: dict = field(default_factory=dict)
    scalars: dict = field(default_factory=dict)
    #: lower is more urgent; class 0 is conventionally "interactive"
    priority: int = 1
    #: seconds from submission; ``None`` uses the config default
    deadline_s: float | None = None
    #: per-request overrides of the config's hardening knobs
    #: (``runs``, ``max_attempts``, ``degrade``, ``watchdog_budget``,
    #: ``executor_mode``)
    run_opts: dict = field(default_factory=dict)


@dataclass
class RequestResult:
    """Terminal verdict of one request — every request gets exactly one.

    ``status`` is ``"ok"`` or one of the typed refusals/failures; for
    non-ok results ``error`` names the exception type (the typed-error
    contract: a shed/expired/failed request is always attributable).
    """

    id: str
    status: str              # "ok" | "shed" | "expired" | "error"
    priority: int = 1
    scalars: dict | None = None
    outputs: dict | None = None
    error: str = ""          # exception type name for non-ok statuses
    message: str = ""
    device: str = ""         # device that served the winning dispatch
    devices_tried: list = field(default_factory=list)
    tries: int = 0
    hedged: bool = False
    cache: str = ""          # "hit" | "miss" | "memo" | "uncacheable" | ""
    queue_us: float = 0.0
    compile_us: float = 0.0
    run_us: float = 0.0
    latency_us: float = 0.0
    strategy: str = ""       # lowering strategy that served the answer
    run_attempts: int = 1    # in-run transient-retry attempts
    degradations: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        d = {"id": self.id, "status": self.status,
             "priority": self.priority, "error": self.error,
             "message": self.message, "device": self.device,
             "devices_tried": list(self.devices_tried),
             "tries": self.tries, "hedged": self.hedged,
             "cache": self.cache,
             "queue_us": round(self.queue_us, 1),
             "compile_us": round(self.compile_us, 1),
             "run_us": round(self.run_us, 1),
             "latency_us": round(self.latency_us, 1),
             "strategy": self.strategy,
             "run_attempts": self.run_attempts,
             "degradations": self.degradations}
        if self.scalars is not None:
            d["scalars"] = {k: repr(v) for k, v in self.scalars.items()}
        return d


@dataclass
class ServeConfig:
    """Scheduler policy knobs."""

    queue_depth: int = 64          # bounded queue per priority class
    default_deadline_s: float = 30.0
    hedge_after_s: float | None = None
    max_tries: int = 3             # total cross-device tries per request
    poll_interval_s: float = 0.02  # housekeeping tick (quarantine expiry)
    keep_outputs: bool = True      # carry output arrays on results
    # per-run hardening defaults (per-request run_opts override these)
    runs: int = 1                  # redundant-execution voting replicas
    max_attempts: int = 2          # in-run transient-fault retries
    degrade: bool = False
    watchdog_budget: int | None = 50_000
    executor_mode: str | None = None
    breaker: dict = field(default_factory=dict)
    #: :class:`~repro.obs.slo.SLOConfig` kwargs (objective_ms, target,
    #: window) for the scheduler's SLO monitor
    slo: dict = field(default_factory=dict)
    #: :class:`~repro.obs.trace.TailSampler` kwargs (keep_slowest,
    #: sample_every, keep_statuses) applied when request tracing is on
    trace_sampling: dict = field(default_factory=dict)


class _Dispatch:
    """One execution of a request on one device."""

    __slots__ = ("dev", "future", "abandoned", "kind")

    def __init__(self, dev: PooledDevice, future, kind: str):
        self.dev = dev
        self.future = future
        self.abandoned = False
        self.kind = kind  # "primary" | "hedge" | "retry"


class Scheduler:
    """The asyncio request scheduler over a device pool.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly); submit with :meth:`submit` and await the
    :class:`RequestResult`.
    """

    def __init__(self, pool: DevicePool, config: ServeConfig | None = None,
                 *, cache=None, metrics: MetricsRegistry | None = None):
        self.pool = pool
        self.config = config or ServeConfig()
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if pool.metrics is None:
            pool.metrics = self.metrics
        self._queued: dict[int, int] = {}   # priority -> waiting count
        self._waiters: list = []            # [pri, seq, future, exclude]
        self._wseq = itertools.count()
        self._housekeeper: asyncio.Task | None = None
        self._latencies: dict[str, list] = {}  # status -> latency_us list
        self.results: list[RequestResult] = []
        self.slo = SLOMonitor(SLOConfig(**self.config.slo))
        self._sampler = _trace.TailSampler(**self.config.trace_sampling)
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    async def __aenter__(self) -> "Scheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._housekeeper is None:
            self._housekeeper = asyncio.ensure_future(self._housekeep())

    async def close(self) -> None:
        self._closed = True
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            try:
                await self._housekeeper
            except asyncio.CancelledError:
                pass
            self._housekeeper = None
        self.pool.shutdown()

    async def _housekeep(self) -> None:
        # periodic waiter dispatch: quarantine expiry is time-driven, so
        # a waiter can become servable with no device-release event
        while True:
            await asyncio.sleep(self.config.poll_interval_s)
            self._dispatch_waiters()

    # -- telemetry helpers ----------------------------------------------

    def _decision(self, name: str, **attrs) -> None:
        tl = _timeline.current()
        if tl is not None:
            tl.decision("serve", name, **attrs)

    def _finish(self, res: RequestResult, t0: float) -> RequestResult:
        res.latency_us = (time.perf_counter() - t0) * 1e6
        self._latencies.setdefault(res.status, []).append(res.latency_us)
        self.metrics.counter(f"serve.requests.{res.status}").inc()
        self.metrics.histogram("serve.latency.all_us").observe(
            res.latency_us)
        self.metrics.histogram(
            f"serve.latency.p{res.priority}_us").observe(res.latency_us)
        self.slo.record(res.priority, res.latency_us, ok=res.ok)
        self.results.append(res)
        self._decision("complete", id=res.id, status=res.status,
                       device=res.device, tries=res.tries,
                       latency_us=round(res.latency_us, 1),
                       error=res.error or None)
        return res

    def _queue_span(self, queue_us: float) -> None:
        """Materialize queue wait as a span in the request's trace."""
        if _timeline.trace_active():
            tl = _timeline.current()
            if tl is not None:
                tl.span("serve", "queue", queue_us)

    # -- device acquisition ---------------------------------------------

    def _dispatch_waiters(self) -> None:
        """Hand free devices to waiting requests in priority order."""
        if not self._waiters:
            return
        self._waiters.sort(key=lambda w: (w[0], w[1]))
        remaining = []
        for waiter in self._waiters:
            pri, seq, fut, exclude = waiter
            if fut.done():
                continue
            dev = self.pool.pick(exclude)
            if dev is None:
                remaining.append(waiter)
                continue
            dev.inflight += 1  # reserve before handoff
            fut.set_result(dev)
        self._waiters = remaining

    async def _acquire(self, req: ComputeRequest, exclude: set[int],
                       remaining_s: float) -> PooledDevice:
        dev = self.pool.pick(exclude)
        if dev is not None:
            dev.inflight += 1
            return dev
        if all(d.breaker.state == "open" and not d.breaker.probe_ready()
               for d in self.pool.devices):
            # nothing can serve until a quarantine expires; still wait
            # (bounded by the deadline) rather than failing instantly,
            # but surface the pool state if the deadline hits first
            self._decision("pool-quarantined", id=req.id)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._waiters.append([req.priority, next(self._wseq), fut, exclude])
        try:
            return await asyncio.wait_for(fut, timeout=remaining_s)
        except asyncio.TimeoutError:
            if all(d.breaker.state != "closed" for d in self.pool.devices):
                raise CircuitOpenError(
                    f"request {req.id}: every pool device is quarantined"
                ) from None
            raise DeadlineExceededError(
                f"request {req.id} expired after {remaining_s * 1e3:.0f} ms "
                "waiting for a device") from None

    def _release(self, dispatch: _Dispatch) -> None:
        """Done-callback of every device execution (runs on the loop)."""
        dev = dispatch.dev
        dev.inflight = max(0, dev.inflight - 1)
        exc = (dispatch.future.exception()
               if not dispatch.future.cancelled() else None)
        if dispatch.abandoned:
            # deadline already charged this dispatch as a timeout; the
            # late outcome must not also feed the breaker
            pass
        elif isinstance(exc, (KeyboardInterrupt, SystemExit)):
            pass  # interrupts are not device health signals
        elif exc is not None:
            dev.errors += 1
            dev.breaker.record_failure(type(exc).__name__)
        else:
            dev.served += 1
            dev.breaker.record_success()
        self._dispatch_waiters()

    # -- the device-thread execution body --------------------------------

    def _thread_body(self, req: ComputeRequest, dev: PooledDevice):
        """Compile (through the cache) + run; executes on ``dev``'s thread."""
        from repro import acc

        t0 = time.perf_counter()
        cache_status = ""
        if self.cache is not None and isinstance(req.compiler, str):
            key = self.cache.key_for(
                req.source, compiler=req.compiler, pipeline=req.pipeline,
                device=dev.props, num_gangs=req.num_gangs,
                num_workers=req.num_workers,
                vector_length=req.vector_length)
            holder = {}

            def build():
                prog, status = self.cache.compile(
                    req.source, compiler=req.compiler,
                    pipeline=req.pipeline, device=dev.props,
                    num_gangs=req.num_gangs, num_workers=req.num_workers,
                    vector_length=req.vector_length)
                holder["status"] = status
                return prog

            prog = dev.program_for(key, build)
            # "memo": this device already materialized the program
            cache_status = holder.get("status", "memo")
        else:
            prog = dev.program_for(None, lambda: acc.compile(
                req.source, compiler=req.compiler, pipeline=req.pipeline,
                device=dev.props, num_gangs=req.num_gangs,
                num_workers=req.num_workers,
                vector_length=req.vector_length))
            cache_status = "uncacheable"
        t1 = time.perf_counter()

        cfg = self.config
        opts = dict(runs=cfg.runs, max_attempts=cfg.max_attempts,
                    degrade=cfg.degrade,
                    watchdog_budget=cfg.watchdog_budget,
                    executor_mode=cfg.executor_mode)
        opts.update(req.run_opts)
        res = prog.run(faults=dev.injector, **opts,
                       **req.arrays, **req.scalars)
        t2 = time.perf_counter()
        return {"scalars": res.scalars,
                "outputs": res.outputs if cfg.keep_outputs else None,
                "strategy": res.strategy, "attempts": res.attempts,
                "degradations": len(res.degradations),
                "cache": cache_status,
                "compile_us": (t1 - t0) * 1e6,
                "run_us": (t2 - t1) * 1e6}

    def _traced_body(self, req: ComputeRequest, dev: PooledDevice,
                     dispatch: _Dispatch, ids):
        """``_thread_body`` under the request's trace context.

        Executor threads don't inherit contextvars, so the submitting
        task captures its ``(trace_id, parent_span_id)`` and this
        wrapper re-attaches them around the device work — every
        compile/run event lands under a ``dispatch:<dev>`` span of the
        same request tree.  A dispatch abandoned while running (deadline
        expiry, hedge loser) still completes its span, marked
        ``abandoned`` so the tree shows both racers.
        """
        if ids is None:
            return self._thread_body(req, dev)
        with _trace.attach(*ids):
            with _trace.span("serve", f"dispatch:{dev.name}",
                             device=dev.name, mode=dispatch.kind) as sp:
                try:
                    return self._thread_body(req, dev)
                finally:
                    if dispatch.abandoned:
                        sp.attrs["abandoned"] = True

    def _launch(self, req: ComputeRequest, dev: PooledDevice,
                kind: str) -> _Dispatch:
        """Start the request body on an (already reserved) device."""
        loop = asyncio.get_running_loop()
        dispatch = _Dispatch(dev, None, kind)
        if _timeline.trace_active():
            ids = _trace.current_ids()
            fut = loop.run_in_executor(
                dev.executor, self._traced_body, req, dev, dispatch, ids)
        else:
            fut = loop.run_in_executor(
                dev.executor, self._thread_body, req, dev)
        dispatch.future = fut
        fut.add_done_callback(lambda _f: self._release(dispatch))
        self._decision("dispatch", id=req.id, device=dev.name, mode=kind)
        self.metrics.counter(f"serve.dispatch.{kind}").inc()
        return dispatch

    # -- submission ------------------------------------------------------

    def submit_nowait(self, req: ComputeRequest) -> "asyncio.Task":
        """Submit and return the request's task (cancellable)."""
        return asyncio.ensure_future(self.submit(req))

    async def submit(self, req: ComputeRequest) -> RequestResult:
        """Run one request through the service; always returns a result.

        With request tracing active the whole submission runs under a
        ``request:<id>`` root span (the request id names the trace) and
        the completed trace is offered to the tail sampler — kept traces
        stay in the ring, dropped ones are pruned so sustained load
        cannot grow memory.
        """
        if not _timeline.trace_active():
            return await self._submit(req)
        with _trace.span("serve", f"request:{req.id}", trace_id=req.id,
                         priority=req.priority) as sp:
            res = await self._submit(req)
            sp.attrs["status"] = res.status
        self._offer_trace(res)
        return res

    def _offer_trace(self, res: RequestResult) -> None:
        keep, evicted = self._sampler.offer(res.id, res.latency_us,
                                            res.status)
        tl = _timeline.current()
        if tl is not None:
            for tid in evicted:
                tl.prune_trace(tid)
            if not keep:
                self._decision("trace-sampled-out", id=res.id)

    async def _submit(self, req: ComputeRequest) -> RequestResult:
        t0 = time.perf_counter()
        deadline_s = (req.deadline_s if req.deadline_s is not None
                      else self.config.default_deadline_s)
        pri = req.priority

        # admission control: bounded queue per priority class
        if self._queued.get(pri, 0) >= self.config.queue_depth:
            self._decision("shed", id=req.id, priority=pri,
                           queued=self._queued.get(pri, 0))
            self.metrics.counter("serve.shed").inc()
            return self._finish(RequestResult(
                id=req.id, status="shed", priority=pri,
                error=AdmissionShedError.__name__,
                message=f"priority-{pri} queue full "
                        f"({self.config.queue_depth})"), t0)
        self._queued[pri] = self._queued.get(pri, 0) + 1
        self.metrics.gauge(f"serve.queue_depth.p{pri}").set(
            self._queued[pri])
        self._decision("admit", id=req.id, priority=pri,
                       queued=self._queued[pri])
        try:
            return await self._process(req, t0, deadline_s)
        finally:
            self.metrics.gauge(f"serve.queue_depth.p{pri}").set(
                self._queued.get(pri, 0))

    def _dequeue(self, pri: int) -> None:
        self._queued[pri] = max(0, self._queued.get(pri, 0) - 1)

    async def _process(self, req: ComputeRequest, t0: float,
                       deadline_s: float) -> RequestResult:
        tried: list[str] = []
        exclude: set[int] = set()
        hedged = False
        dequeued = False
        last_exc: BaseException | None = None
        queue_us = 0.0
        tries = 0

        def remaining() -> float:
            return deadline_s - (time.perf_counter() - t0)

        while tries < self.config.max_tries:
            rem = remaining()
            if rem <= 0:
                break  # -> expired
            try:
                dev = await self._acquire(req, exclude, rem)
            except DeadlineExceededError as exc:
                if not dequeued:
                    self._dequeue(req.priority)
                    self._queue_span((time.perf_counter() - t0) * 1e6)
                self._decision("expired", id=req.id, where="queue")
                self.metrics.counter("serve.expired").inc()
                return self._finish(RequestResult(
                    id=req.id, status="expired", priority=req.priority,
                    error=type(exc).__name__, message=str(exc),
                    devices_tried=tried, tries=tries,
                    queue_us=(time.perf_counter() - t0) * 1e6), t0)
            except CircuitOpenError as exc:
                if not dequeued:
                    self._dequeue(req.priority)
                self.metrics.counter("serve.circuit_open").inc()
                return self._finish(RequestResult(
                    id=req.id, status="error", priority=req.priority,
                    error=type(exc).__name__, message=str(exc),
                    devices_tried=tried, tries=tries), t0)
            if not dequeued:
                dequeued = True
                queue_us = (time.perf_counter() - t0) * 1e6
                self._dequeue(req.priority)
                self._queue_span(queue_us)
            tries += 1
            tried.append(dev.name)
            exclude.add(dev.index)
            dispatch = self._launch(req, dev,
                                    "retry" if tries > 1 else "primary")
            dispatches = [dispatch]

            outcome = await self._await_dispatches(
                req, dispatches, remaining, exclude)
            hedged = hedged or len(dispatches) > 1
            for d in dispatches[1:]:
                tried.append(d.dev.name)
            if outcome == "expired":
                self._decision("expired", id=req.id, where="execution",
                               devices=[d.dev.name for d in dispatches])
                self.metrics.counter("serve.expired").inc()
                return self._finish(RequestResult(
                    id=req.id, status="expired", priority=req.priority,
                    error=DeadlineExceededError.__name__,
                    message=f"request {req.id} expired mid-execution "
                            f"after {deadline_s * 1e3:.0f} ms",
                    devices_tried=tried, tries=tries, hedged=hedged,
                    queue_us=queue_us), t0)
            if isinstance(outcome, dict):
                winner = outcome.pop("_winner")
                return self._finish(RequestResult(
                    id=req.id, status="ok", priority=req.priority,
                    scalars=outcome["scalars"], outputs=outcome["outputs"],
                    device=winner, devices_tried=tried, tries=tries,
                    hedged=hedged, cache=outcome["cache"],
                    queue_us=queue_us, compile_us=outcome["compile_us"],
                    run_us=outcome["run_us"],
                    strategy=outcome["strategy"],
                    run_attempts=outcome["attempts"],
                    degradations=outcome["degradations"]), t0)
            # every dispatch of this try failed: outcome is the last error
            last_exc = outcome
            if tries < self.config.max_tries and remaining() > 0:
                self._decision("retry", id=req.id,
                               error=type(last_exc).__name__,
                               next_try=tries + 1)
                self.metrics.counter("serve.retries").inc()
        if not dequeued:
            self._dequeue(req.priority)
        if last_exc is None:
            self._decision("expired", id=req.id, where="queue")
            self.metrics.counter("serve.expired").inc()
            return self._finish(RequestResult(
                id=req.id, status="expired", priority=req.priority,
                error=DeadlineExceededError.__name__,
                message=f"request {req.id} expired "
                        f"after {deadline_s * 1e3:.0f} ms",
                devices_tried=tried, tries=tries, queue_us=queue_us), t0)
        err = ServiceRetriesExceededError(
            f"request {req.id} failed on {len(tried)} device(s): "
            f"{type(last_exc).__name__}: {last_exc}", cause=last_exc)
        self.metrics.counter("serve.errors").inc()
        return self._finish(RequestResult(
            id=req.id, status="error", priority=req.priority,
            error=type(last_exc).__name__, message=str(err),
            devices_tried=tried, tries=tries, hedged=hedged,
            queue_us=queue_us), t0)

    async def _await_dispatches(self, req: ComputeRequest,
                                dispatches: list, remaining,
                                exclude: set[int]):
        """Wait for the try's dispatches (launching a hedge if configured).

        Returns the winning payload dict (with ``_winner`` device name),
        the last exception when every dispatch failed, or ``"expired"``.
        """
        hedge_after = self.config.hedge_after_s
        while True:
            rem = remaining()
            if rem <= 0:
                for d in dispatches:
                    if not d.future.done():
                        d.abandoned = True
                        d.dev.timeouts += 1
                        d.dev.breaker.record_failure("timeout")
                return "expired"
            pending = {d.future for d in dispatches if not d.future.done()}
            timeout = rem
            may_hedge = (hedge_after is not None and len(dispatches) == 1)
            if may_hedge:
                timeout = min(rem, hedge_after)
            done, _ = await asyncio.wait(
                pending, timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED)
            if not done and may_hedge:
                hedge_dev = self.pool.idle_healthy(exclude)
                if hedge_dev is not None:
                    hedge_dev.inflight += 1
                    exclude.add(hedge_dev.index)
                    self._decision("hedge", id=req.id,
                                   device=hedge_dev.name)
                    self.metrics.counter("serve.hedges").inc()
                    dispatches.append(
                        self._launch(req, hedge_dev, "hedge"))
                else:
                    # no hedge capacity: wait out the primary
                    hedge_after = None
                continue
            if not done:
                continue  # timeout == rem handled at loop top
            # inspect completions: first success wins
            for d in dispatches:
                if not d.future.done():
                    continue
                exc = d.future.exception()
                if exc is None:
                    payload = d.future.result()
                    payload["_winner"] = d.dev.name
                    for other in dispatches:
                        if other is not d and not other.future.done():
                            other.abandoned = True
                    return payload
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    # never swallow an interrupt into a retry loop
                    raise exc
            if all(d.future.done() for d in dispatches):
                last = None
                for d in dispatches:
                    e = d.future.exception()
                    if e is not None:
                        last = e
                if last is not None and not isinstance(last, ReproError):
                    raise last  # unexpected bug: surface, do not retry
                return last

    # -- reporting -------------------------------------------------------

    def latency_summary(self) -> dict:
        ok = self._latencies.get("ok", [])
        allv = [v for vs in self._latencies.values() for v in vs]
        return {
            "ok_p50_us": round(quantile(ok, 0.50), 1),
            "ok_p99_us": round(quantile(ok, 0.99), 1),
            "all_p50_us": round(quantile(allv, 0.50), 1),
            "all_p99_us": round(quantile(allv, 0.99), 1),
            "count": len(allv),
        }

    def report(self) -> dict:
        from repro.gpu.launch import compile_cache_info

        by_status: dict[str, int] = {}
        for r in self.results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        return {
            "requests": len(self.results),
            "by_status": dict(sorted(by_status.items())),
            "latency": self.latency_summary(),
            "devices": self.pool.snapshot(),
            "compile_cache": (self.cache.stats()
                              if self.cache is not None else None),
            "launch_cache": compile_cache_info(),
            "metrics": self.metrics.to_dict(),
            "slo": self.slo.snapshot(),
            "traces": self._sampler.stats(),
        }
