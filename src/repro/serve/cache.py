"""Content-addressed, crash-safe, on-disk compile cache.

The launch LRU (:mod:`repro.gpu.launch`) memoizes compiled *closures*
per process; this cache persists the expensive front half of compilation
— parse, IR build, analysis, the whole pass pipeline — across processes.
The stored artifact is the pickled :class:`~repro.codegen.lowering.
LoweredProgram` (plus the pipeline name, autotune decisions, and the
trace-codegen pass's generated NumPy source per eligible kernel), from
which a :class:`~repro.acc.compiler.Program` is reconstructed in well
under a millisecond; only the cheap per-kernel closure compilation is
redone, and that is served by the launch LRU anyway.  Carrying the
trace source means a cache-served Program never re-runs trace codegen
— the trace executor ``exec``\\ s the cached source directly.

Key = SHA-256 over every compilation input: source text, compiler
profile, the *resolved* pass-pipeline fingerprint, explicit option
overrides, launch geometry, array dtypes, and the device fingerprint
(every :class:`~repro.gpu.device.DeviceProperties` field — a cost-model
constant changes modeled behaviour, so it changes the key).

Entry format (one file per key, ``objects/<k[:2]>/<key>.rcc``)::

    REPROCC1 <sha256-of-payload> <payload-length>\\n
    <pickle payload bytes>

Durability contract:

* **atomic writes** — payload lands in a unique tmp file first, is
  fsynced, then :func:`os.replace`\\ d into place, so a crash mid-write
  can never leave a half-written entry under the final name, and two
  processes racing the same key both win (last replace sticks; both
  files were complete);
* **corruption detection** — every read re-verifies magic, length, and
  checksum and test-unpickles; a truncated/flipped/garbage entry is
  quarantined and reported as a miss, so the caller falls back to
  recompilation instead of crashing or, worse, silently serving a wrong
  program;
* **quarantine discipline** — a corrupt entry is removed from its
  canonical name by *renaming* it to a unique quarantine name (atomic),
  never by unlinking the canonical path: between detection and the
  rename a concurrent process may have already recompiled and
  atomically replaced the entry with a healthy one, and a blind
  ``unlink`` would delete that repair.  The renamed file is re-verified
  — if the rename actually grabbed a healthy entry (the race happened),
  it is atomically restored; entries are content-addressed, so any
  verified payload for a key is equivalent and restoring an "older"
  healthy one is correct.  Either way the corrupt bytes are never
  readable under the canonical name again.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import tempfile
import threading
from dataclasses import fields
from pathlib import Path

from repro.errors import AnalysisError, CacheCorruptionError
from repro.gpu.device import DeviceProperties, K20C
from repro.obs import timeline as _timeline

__all__ = ["CompileCache", "device_fingerprint", "PAYLOAD_VERSION"]

_MAGIC = b"REPROCC1"
#: bump when the payload schema changes — old entries then read as
#: version mismatches (a miss), never as wrong programs.
#: v2: added ``trace_src`` (the trace-codegen pass artifact), so a
#: cache-served Program skips trace codegen entirely.
#: v3: reduction specs carry kind/index/stage/cascade_fused fields and
#: LoweredProgram carries stage kernels + per-stage reads; autotune
#: records gained ``cascade_fusion`` decisions.  v2 entries (pre
#: multi-stage schema) must read as misses, not as programs that lost
#: their fusion decisions.
PAYLOAD_VERSION = 3

#: unique-suffix counter for quarantine renames within one process
_QSEQ = itertools.count()


def device_fingerprint(device: DeviceProperties) -> str:
    """Canonical string of every *behavioural* device field (limits and
    cost model).  The cosmetic ``name`` is excluded: pool devices are
    clones named ``"K20C #0"``, ``"K20C #1"``, … and must share cache
    entries — a label cannot change what a compile produces."""
    return ";".join(f"{f.name}={getattr(device, f.name)!r}"
                    for f in fields(device) if f.name != "name")


class CompileCache:
    """Persistent compile cache rooted at a directory.

    Thread-safe: lookups/stores take a lock only around the in-memory
    index; disk I/O is naturally safe under the atomic-write scheme.
    ``max_entries`` (optional) prunes the oldest entries on store so a
    long-lived service cannot grow the directory without bound.
    """

    def __init__(self, root: str | Path, *, max_entries: int | None = None):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # in-memory payload index: key -> unpickled payload dict (the
        # lowered artifact is immutable, so sharing it across Programs
        # reconstructed for different requests is safe)
        self._mem: dict[str, dict] = {}
        self.hits = 0          # served from memory or disk
        self.disk_hits = 0     # of which: read+verified from disk
        self.misses = 0
        self.stores = 0
        self.corrupt = 0       # entries quarantined by verification
        self.evictions = 0     # pruned by max_entries

    # -- keying ----------------------------------------------------------

    def key_for(self, source: str, *, compiler="openuh", pipeline=None,
                device: DeviceProperties = K20C,
                num_gangs: int | None = None, num_workers: int | None = None,
                vector_length: int | None = None,
                array_dtypes: dict | None = None,
                options: dict | None = None) -> str:
        """Content address of one compilation (SHA-256 hex digest)."""
        from repro.acc.profiles import get_profile
        from repro.passes import resolve_pipeline

        profile = get_profile(compiler)
        spec = resolve_pipeline(pipeline, profile)
        material = json.dumps({
            "v": PAYLOAD_VERSION,
            "source": source,
            "compiler": profile.name,
            "pipeline": [spec.name, list(spec.passes)],
            "options": sorted((k, repr(v))
                              for k, v in (options or {}).items()),
            "geometry": [num_gangs, num_workers, vector_length],
            "array_dtypes": sorted((array_dtypes or {}).items()),
            "device": device_fingerprint(device),
        }, sort_keys=True)
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.rcc"

    # -- read ------------------------------------------------------------

    @staticmethod
    def _verify_blob(blob: bytes, name: str) -> dict:
        """Parse+verify one entry blob; raises on any defect."""
        nl = blob.index(b"\n")
        header = blob[:nl].split(b" ")
        if len(header) != 3 or header[0] != _MAGIC:
            raise CacheCorruptionError(f"bad header in {name}")
        digest, length = header[1].decode(), int(header[2])
        payload = blob[nl + 1:]
        if len(payload) != length:
            raise CacheCorruptionError(
                f"truncated entry {name}: "
                f"{len(payload)} of {length} bytes")
        if hashlib.sha256(payload).hexdigest() != digest:
            raise CacheCorruptionError(
                f"checksum mismatch in {name}")
        doc = pickle.loads(payload)
        if not isinstance(doc, dict) or doc.get("v") != PAYLOAD_VERSION:
            raise CacheCorruptionError(
                f"payload version mismatch in {name}")
        return doc

    # AnalysisError/KeyError: unpickling a payload that references a
    # user-defined reduction operator token not registered in this
    # process (operators pickle by token and resolve at load time)
    _VERIFY_ERRORS = (CacheCorruptionError, AnalysisError, ValueError,
                      EOFError, pickle.UnpicklingError, AttributeError,
                      ImportError, IndexError, KeyError, MemoryError)

    def _quarantine(self, path: Path) -> None:
        """Take a corrupt entry off its canonical name — atomically.

        ``os.rename`` (not ``unlink``) so that if another process
        recompiled and atomically replaced the entry *after we read the
        corrupt bytes*, we cannot delete its repair: whatever file is at
        the canonical name moves to a unique quarantine name in one
        atomic step, and is then re-verified.  Healthy (we raced a
        repair) -> restore it with another atomic replace; corrupt ->
        delete the quarantine file.  A reader never sees a half state:
        the canonical name always holds either a complete entry or
        nothing.
        """
        qpath = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_QSEQ)}.qtn")
        try:
            os.rename(path, qpath)
        except OSError:
            return  # someone else already quarantined/replaced it
        try:
            doc = self._verify_blob(qpath.read_bytes(), qpath.name)
        except (OSError, *self._VERIFY_ERRORS):
            doc = None
        if doc is not None:
            # the race happened: we grabbed a valid repair — put it back
            # (content-addressed, so any verified payload is equivalent)
            try:
                os.replace(qpath, path)
            except OSError:
                pass
            return
        try:
            qpath.unlink()
        except OSError:
            pass

    def _read_verified(self, key: str) -> dict | None:
        """Read+verify one entry; quarantine and return None on any defect."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            return self._verify_blob(blob, path.name)
        except self._VERIFY_ERRORS:
            # detect -> quarantine -> recompile; never crash the service
            self.corrupt += 1
            self._quarantine(path)
            tl = _timeline.current()
            if tl is not None:
                tl.counter("serve", "compile_cache", event="corrupt",
                           key=key[:12])
            return None

    def get(self, key: str, device: DeviceProperties):
        """Reconstruct the cached Program for ``key``, or ``None``.

        Every call builds a *fresh* :class:`Program` (compiled-kernel
        closures carry mutable lazy state, so they must not be shared
        across device worker threads); the heavy payload unpickle is
        memoized in memory.
        """
        with self._lock:
            doc = self._mem.get(key)
        from_disk = False
        if doc is None:
            doc = self._read_verified(key)
            from_disk = doc is not None
            if from_disk:
                with self._lock:
                    self._mem[key] = doc
        if doc is None:
            self.misses += 1
            return None
        self.hits += 1
        self.disk_hits += from_disk
        tl = _timeline.current()
        if tl is not None:
            tl.counter("serve", "compile_cache",
                       event="hit", source="disk" if from_disk else "memory",
                       key=key[:12])
        return self._reconstruct(doc, device)

    @staticmethod
    def _reconstruct(doc: dict, device: DeviceProperties):
        from repro.acc.compiler import Program
        from repro.acc.profiles import get_profile

        return Program(doc["lowered"], get_profile(doc["profile"]), device,
                       pipeline=doc["pipeline"], autotune=doc["autotune"],
                       trace_src=doc.get("trace_src"))

    # -- write -----------------------------------------------------------

    def put(self, key: str, prog) -> Path:
        """Persist one compiled program atomically; returns the entry path."""
        doc = {"v": PAYLOAD_VERSION, "lowered": prog.lowered,
               "profile": prog.profile.name, "pipeline": prog.pipeline,
               "autotune": prog.autotune,
               "trace_src": dict(getattr(prog, "trace_src", None) or {})}
        payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
        header = b" ".join((
            _MAGIC, hashlib.sha256(payload).hexdigest().encode(),
            str(len(payload)).encode())) + b"\n"
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(header)
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)  # atomic: readers see old or new, whole
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self._mem[key] = doc
        self.stores += 1
        tl = _timeline.current()
        if tl is not None:
            tl.counter("serve", "compile_cache", event="store",
                       key=key[:12], bytes=len(payload))
        if self.max_entries is not None:
            self._prune()
        return path

    def _prune(self) -> None:
        entries = sorted(self.objects.glob("*/*.rcc"),
                         key=lambda p: p.stat().st_mtime)
        while len(entries) > self.max_entries:
            victim = entries.pop(0)
            key = victim.stem
            try:
                victim.unlink()
            except OSError:
                continue
            with self._lock:
                self._mem.pop(key, None)
            self.evictions += 1
            tl = _timeline.current()
            if tl is not None:
                tl.counter("serve", "compile_cache", event="evict",
                           key=key[:12])

    # -- the compile facade ----------------------------------------------

    def compile(self, source: str, *, compiler="openuh", pipeline=None,
                device: DeviceProperties = K20C,
                num_gangs: int | None = None, num_workers: int | None = None,
                vector_length: int | None = None,
                array_dtypes: dict | None = None,
                **option_overrides):
        """``acc.compile`` through the cache.

        Returns ``(program, status)`` where status is ``"hit"``,
        ``"miss"`` (compiled and stored), or ``"uncacheable"`` (a custom
        in-memory profile object has no stable identity to key on).
        """
        from repro import acc

        if not isinstance(compiler, str):
            prog = acc.compile(source, compiler=compiler, pipeline=pipeline,
                               device=device, num_gangs=num_gangs,
                               num_workers=num_workers,
                               vector_length=vector_length,
                               array_dtypes=array_dtypes,
                               **option_overrides)
            return prog, "uncacheable"
        key = self.key_for(source, compiler=compiler, pipeline=pipeline,
                           device=device, num_gangs=num_gangs,
                           num_workers=num_workers,
                           vector_length=vector_length,
                           array_dtypes=array_dtypes,
                           options=option_overrides)
        prog = self.get(key, device)
        if prog is not None:
            return prog, "hit"
        prog = acc.compile(source, compiler=compiler, pipeline=pipeline,
                           device=device, num_gangs=num_gangs,
                           num_workers=num_workers,
                           vector_length=vector_length,
                           array_dtypes=array_dtypes, **option_overrides)
        self.put(key, prog)
        return prog, "miss"

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "corrupt": self.corrupt, "evictions": self.evictions,
                "entries": len(list(self.objects.glob("*/*.rcc"))),
                "root": str(self.root)}

    def clear(self) -> None:
        """Drop every entry (disk + memory) and zero the counters."""
        for p in self.objects.glob("*/*.rcc"):
            try:
                p.unlink()
            except OSError:
                pass
        with self._lock:
            self._mem.clear()
        self.hits = self.disk_hits = self.misses = 0
        self.stores = self.corrupt = self.evictions = 0

    def drop_memory(self) -> None:
        """Forget the in-memory payload index (keep disk entries) — used
        by the load generator to measure the true disk-warm path."""
        with self._lock:
            self._mem.clear()
