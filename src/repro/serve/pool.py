"""The simulated device pool: workers, health, and chaos arming.

Each :class:`PooledDevice` owns

* a :class:`~repro.gpu.device.DeviceProperties` instance (its hardware
  identity — all devices default to K20C clones, distinguishable by
  name),
* a single-thread executor — requests on one device serialize, requests
  on different devices overlap, mirroring one command queue per GPU,
* a :class:`~repro.serve.breaker.CircuitBreaker` fed by every request
  outcome,
* an optional armed :class:`~repro.faults.FaultInjector` (the chaos
  hook: the soak harness arms seeded fault plans against pool devices
  mid-load), and
* a per-device Program memo, so a cached compile artifact is
  materialized into executable closures at most once per device (and the
  mutable compiled-kernel state is never shared across worker threads).

The pool itself is a picker: :meth:`pick` returns a *free* healthy
device (a device runs one request at a time — queueing belongs to the
scheduler, where priorities and deadlines can act on it, not to a
device's FIFO thread queue), honouring breaker quarantines and an
``exclude`` set (retries and hedges must land on a *different* device).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.gpu.device import DeviceProperties, K20C
from repro.obs import timeline as _timeline
from repro.serve.breaker import CircuitBreaker

__all__ = ["PooledDevice", "DevicePool"]


class PooledDevice:
    def __init__(self, index: int, props: DeviceProperties,
                 breaker: CircuitBreaker):
        self.index = index
        self.name = f"dev{index}"
        self.props = props
        self.breaker = breaker
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-{self.name}")
        self.inflight = 0          # dispatched, not yet completed
        self.served = 0            # successful requests
        self.errors = 0            # typed failures
        self.timeouts = 0          # deadline expiries charged to this device
        self.injector = None       # armed chaos injector (or None)
        self._lock = threading.Lock()
        self._programs: dict[str, object] = {}  # cache key -> Program

    # -- program memo ----------------------------------------------------

    def program_for(self, key: str | None, build):
        """Device-local Program memo: ``build()`` runs on first use.

        ``key=None`` (uncacheable compile) always rebuilds.
        """
        if key is None:
            return build()
        prog = self._programs.get(key)
        if prog is None:
            prog = build()
            self._programs[key] = prog
        return prog

    # -- chaos -----------------------------------------------------------

    def arm_faults(self, plan_or_injector) -> None:
        """Arm (or disarm with ``None``) fault injection on this device."""
        if plan_or_injector is None:
            self.injector = None
        elif hasattr(plan_or_injector, "on_launch"):
            self.injector = plan_or_injector
        else:
            self.injector = plan_or_injector.injector()
        tl = _timeline.current()
        if tl is not None:
            tl.decision("serve", "chaos-arm", device=self.name,
                        armed=self.injector is not None)

    def snapshot(self) -> dict:
        return {"device": self.name, "inflight": self.inflight,
                "served": self.served, "errors": self.errors,
                "timeouts": self.timeouts,
                "faults_injected": (len(self.injector.records)
                                    if self.injector is not None else 0),
                "breaker": self.breaker.snapshot()}

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


class DevicePool:
    def __init__(self, n_devices: int = 4, *,
                 device: DeviceProperties = K20C,
                 breaker_kwargs: dict | None = None, metrics=None):
        if n_devices < 1:
            raise ValueError("pool needs at least one device")
        self.metrics = metrics
        self.devices: list[PooledDevice] = []
        for i in range(n_devices):
            props = device.with_overrides(name=f"{device.name} #{i}")
            breaker = CircuitBreaker(
                **(breaker_kwargs or {}),
                on_transition=self._transition_cb(i))
            self.devices.append(PooledDevice(i, props, breaker))

    def _transition_cb(self, index: int):
        def cb(old: str, new: str, reason: str) -> None:
            dev = self.devices[index]
            tl = _timeline.current()
            if tl is not None:
                tl.decision("serve", "breaker", device=dev.name,
                            old=old, new=new, reason=reason)
            if self.metrics is not None:
                self.metrics.gauge(
                    f"serve.breaker.{dev.name}.state").set(
                        {"closed": 0, "half_open": 1, "open": 2}[new])
                if new == "open":
                    self.metrics.counter("serve.breaker.trips").inc()
                elif old == "half_open" and new == "closed":
                    self.metrics.counter("serve.breaker.readmissions").inc()
        return cb

    def __len__(self) -> int:
        return len(self.devices)

    def pick(self, exclude: set[int] | None = None) -> PooledDevice | None:
        """The device to serve the next request, or ``None``.

        Only *free* devices (nothing in flight) are considered — a
        simulated device serializes its work, so handing it a second
        request would hide that request in a FIFO thread queue where
        priorities, deadlines, and breaker decisions cannot reach it.
        Probe-first policy: a quarantined device whose quarantine has
        elapsed gets the request as a probation probe (otherwise, under
        steady load over healthy devices, it would never earn its way
        back in); failing that, the first free closed-breaker device.
        ``exclude`` keeps retries and hedges off devices that already
        failed (or are already running) this request.
        """
        free = [d for d in self.devices
                if d.inflight == 0
                and not (exclude and d.index in exclude)]
        for dev in free:
            if (dev.breaker.state != CircuitBreaker.CLOSED
                    and dev.breaker.probe_ready() and dev.breaker.allow()):
                return dev
        for dev in free:
            if dev.breaker.state == CircuitBreaker.CLOSED:
                return dev
        return None

    def idle_healthy(self, exclude: set[int] | None = None):
        """A healthy device with nothing in flight (hedging targets)."""
        for dev in self.devices:
            if exclude and dev.index in exclude:
                continue
            if dev.inflight == 0 and dev.breaker.state == "closed":
                return dev
        return None

    def snapshot(self) -> list[dict]:
        return [d.snapshot() for d in self.devices]

    def shutdown(self) -> None:
        for d in self.devices:
            d.shutdown()
