"""Per-device circuit breaker: rolling error rate → quarantine → probation.

State machine (the classic three states, tuned for a device pool):

* ``closed`` — healthy; every outcome lands in a rolling window of the
  last ``window`` requests.  When the window holds at least
  ``min_samples`` outcomes and the failure fraction reaches
  ``failure_threshold``, the breaker **trips** to ``open``.
* ``open`` — quarantined; :meth:`allow` refuses work until
  ``quarantine_s`` has elapsed, then the breaker moves to ``half_open``.
* ``half_open`` — probation; up to ``probation_probes`` requests are
  admitted as probes.  If every probe succeeds, the breaker **re-admits**
  the device (``closed``, window wiped); any probe failure re-trips it,
  doubling the quarantine up to ``max_quarantine_s``.

The clock is injectable so the state machine is unit-testable without
sleeping; transitions invoke ``on_transition(old, new, reason)`` so the
pool can mirror them onto the telemetry bus and the metrics registry.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, window: int = 16, failure_threshold: float = 0.5,
                 min_samples: int = 4, quarantine_s: float = 0.25,
                 max_quarantine_s: float = 4.0, probation_probes: int = 2,
                 clock=time.monotonic, on_transition=None):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = max(1, min_samples)
        self.base_quarantine_s = quarantine_s
        self.max_quarantine_s = max_quarantine_s
        self.probation_probes = max(1, probation_probes)
        self._clock = clock
        self._on_transition = on_transition
        self.state = self.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._reopen_at = 0.0
        self._quarantine_s = quarantine_s
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0       # closed/half_open -> open transitions
        self.readmissions = 0  # half_open -> closed transitions

    # -- introspection ---------------------------------------------------

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def snapshot(self) -> dict:
        return {"state": self.state, "failure_rate": round(
                    self.failure_rate, 4),
                "samples": len(self._outcomes), "trips": self.trips,
                "readmissions": self.readmissions,
                "quarantine_s": self._quarantine_s}

    # -- transitions -----------------------------------------------------

    def _transition(self, new: str, reason: str) -> None:
        old, self.state = self.state, new
        if self._on_transition is not None and old != new:
            self._on_transition(old, new, reason)

    def _trip(self, reason: str) -> None:
        self.trips += 1
        self._reopen_at = self._clock() + self._quarantine_s
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._transition(self.OPEN, reason)
        # each re-trip doubles the next quarantine (capped): a device
        # that keeps failing its probation backs off harder
        self._quarantine_s = min(self._quarantine_s * 2,
                                 self.max_quarantine_s)

    # -- the admission query --------------------------------------------

    def probe_ready(self) -> bool:
        """Would :meth:`allow` admit a probation probe right now?

        Side-effect-free — the pool uses it to *prioritize* quarantined
        devices for probes without consuming a probe slot on devices it
        does not pick.
        """
        if self.state == self.OPEN:
            return self._clock() >= self._reopen_at
        if self.state == self.HALF_OPEN:
            return self._probes_in_flight < self.probation_probes
        return False

    def allow(self) -> bool:
        """May this device accept a request right now?

        In ``open`` state the call itself advances to ``half_open`` once
        the quarantine expires; in ``half_open`` it admits (and counts)
        at most ``probation_probes`` concurrent probes.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() < self._reopen_at:
                return False
            self._transition(self.HALF_OPEN, "quarantine-elapsed")
        # half-open: bounded probation probes
        if self._probes_in_flight < self.probation_probes:
            self._probes_in_flight += 1
            return True
        return False

    # -- outcome reporting ----------------------------------------------

    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.probation_probes:
                self._outcomes.clear()
                self._quarantine_s = self.base_quarantine_s
                self._probes_in_flight = 0
                self._probe_successes = 0
                self.readmissions += 1
                self._transition(self.CLOSED, "probation-passed")
            return
        self._outcomes.append(False)

    def record_failure(self, reason: str = "error") -> None:
        if self.state == self.HALF_OPEN:
            # a probe failed: straight back to quarantine
            self._trip(f"probe-failed:{reason}")
            return
        if self.state == self.OPEN:
            # late failure from a request admitted before the trip
            return
        self._outcomes.append(True)
        if (len(self._outcomes) >= self.min_samples
                and self.failure_rate >= self.failure_threshold):
            self._trip(f"error-rate:{reason}")
