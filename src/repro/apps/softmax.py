"""Numerically-stable softmax — the cascaded-reduction flagship.

Softmax is the canonical reduce→map→reduce→map cascade: a ``max``
reduction (for stability), a subtract-exp map, a ``+`` reduction, and a
divide map.  Lowered naively that is three region kernels plus a finish
kernel and a host round-trip per reduction; the ``cascade-fusion`` pass
(see :mod:`repro.passes.cascade` and docs/reduction-strategies.md) folds
each finish kernel into its consumer stage, so the whole cascade runs in
three kernels with no intermediate host reads — bit-identical to the
unfused pipeline, because the fused prologue replays the finish
kernel's exact combine tree.

``softmax(...)`` runs the fragment through ``acc.compile``;
``softmax_result`` additionally reports kernel counts and modeled time
so benchmarks (``repro.bench.smoke``'s ``cascade_fusion`` gate) and the
differential-pin suite can assert both the fusion win and the
bit-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import acc

__all__ = ["SoftmaxResult", "softmax", "softmax_result", "SOFTMAX_SRC"]

SOFTMAX_SRC = """
float x[n];
float y[n];
float m = 0.0f;
float s = 0.0f;
#pragma acc parallel copyin(x) copyout(y)
{
#pragma acc loop gang worker vector reduction(max:m)
for (i = 0; i < n; i++) if (x[i] > m) m = x[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) y[i] = expf(x[i] - m);
#pragma acc loop gang worker vector reduction(+:s)
for (i = 0; i < n; i++) s = s + y[i];
#pragma acc loop gang worker vector
for (i = 0; i < n; i++) y[i] = y[i] / s;
}
"""


@dataclass
class SoftmaxResult:
    """Softmax output plus the cascade's compilation/timing telemetry."""

    y: np.ndarray
    max_value: float
    denom: float
    num_kernels: int
    kernel_names: tuple[str, ...]
    kernel_ms: float
    total_ms: float


def _compile(n_hint: int | None = None, *, compiler: str = "openuh",
             num_gangs: int = 16, num_workers: int = 1,
             vector_length: int = 64, pipeline=None, **options):
    return acc.compile(SOFTMAX_SRC, compiler=compiler, pipeline=pipeline,
                       num_gangs=num_gangs, num_workers=num_workers,
                       vector_length=vector_length, **options)


def softmax_result(x: np.ndarray, *, executor_mode: str | None = None,
                   **compile_kwargs) -> SoftmaxResult:
    """Stable softmax of ``x`` with full telemetry."""
    x = np.ascontiguousarray(x, dtype=np.float32).reshape(-1)
    prog = _compile(x.size, **compile_kwargs)
    res = prog.run(x=x, y=np.zeros_like(x), m=np.float32(-np.inf),
                   s=np.float32(0.0), executor_mode=executor_mode)
    names = tuple(k.name for k in prog.lowered.kernels)
    return SoftmaxResult(
        y=res.outputs["y"], max_value=float(res.scalars["m"]),
        denom=float(res.scalars["s"]), num_kernels=len(names),
        kernel_names=names, kernel_ms=res.kernel_ms,
        total_ms=res.modeled_ms)


def softmax(x: np.ndarray, **compile_kwargs) -> np.ndarray:
    """Numerically-stable softmax of ``x`` on the simulated device."""
    return softmax_result(x, **compile_kwargs).y
