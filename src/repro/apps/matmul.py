"""Naive matrix multiplication with the k loop as a vector reduction.

The paper's second application (§4, Fig. 12(b), code in Fig. 13(b)):
*"Most developers usually only parallelize the outer two loops and let the
third loop execute sequentially ... However we can also parallelize the
third loop because essentially it just includes the 'sum' reduction
operations."*  The i loop maps to gangs, the j loop to workers, and the k
loop is a vector ``+`` reduction — one small block-level reduction per
output element, which is why per-reduction overheads (barrier counts, §3.1)
dominate here rather than raw bandwidth.

The ``vendor-b`` profile fails this program (its defective ``+`` fast path;
the paper's Fig. 12(b) omits the PGI bar for exactly this reason), and
``vendor-a`` pays a barrier after every log-step iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import acc

__all__ = ["MatmulResult", "matmul", "MATMUL_SRC"]

MATMUL_SRC = """
float A[n2];
float B[n2];
float C[n2];
#pragma acc parallel copyin(A, B) copyout(C)
{
  #pragma acc loop gang
  for (i = 0; i < n; i++) {
    #pragma acc loop worker
    for (j = 0; j < n; j++) {
      float c = 0.0f;
      #pragma acc loop vector reduction(+:c)
      for (k = 0; k < n; k++)
        c += A[i*n+k] * B[k*n+j];
      C[i*n+j] = c;
    }
  }
}
"""


@dataclass
class MatmulResult:
    """Product matrix plus modeled timing."""

    C: np.ndarray
    kernel_ms: float
    total_ms: float
    correct: bool  # verified against the NumPy reference


def matmul(A: np.ndarray, B: np.ndarray, *, compiler: str = "openuh",
           num_gangs: int = 192, num_workers: int = 8,
           vector_length: int = 128, rtol: float = 1e-4) -> MatmulResult:
    """C = A @ B on the simulated device; verifies against NumPy."""
    A = np.ascontiguousarray(A, dtype=np.float32)
    B = np.ascontiguousarray(B, dtype=np.float32)
    if A.ndim != 2 or A.shape != B.shape or A.shape[0] != A.shape[1]:
        raise ValueError("matmul expects two square matrices of equal size")
    n = A.shape[0]
    prog = acc.compile(MATMUL_SRC, compiler=compiler, num_gangs=num_gangs,
                       num_workers=num_workers, vector_length=vector_length)
    res = prog.run(A=A.reshape(-1), B=B.reshape(-1),
                   C=np.zeros(n * n, dtype=np.float32), n=n)
    C = res.outputs["C"].reshape(n, n)
    expect = (A.astype(np.float64) @ B.astype(np.float64)).astype(np.float32)
    correct = bool(np.allclose(C, expect, rtol=rtol, atol=1e-3))
    return MatmulResult(C=C, kernel_ms=res.kernel_ms,
                        total_ms=res.modeled_ms, correct=correct)
