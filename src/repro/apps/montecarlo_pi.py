"""Monte Carlo π with a gang·vector ``+`` reduction.

The paper's third application (§4, Fig. 12(c), code in Fig. 13(c)): sample
points in the unit square, count those inside the unit circle (a ``+``
reduction guarded by an ``if``), and estimate π = 4·m/n.  Because compilers
of the day did not support ``rand()`` inside compute regions, the paper
pre-generates x/y on the host and transfers them — so the experiment scales
with *data size* and the modeled time includes the PCIe transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import acc

__all__ = ["PiResult", "estimate_pi", "PI_SRC"]

PI_SRC = """
float x[n];
float y[n];
int m = 0;
#pragma acc parallel copyin(x, y)
#pragma acc loop gang vector reduction(+:m)
for (i = 0; i < n; i++) {
  if (x[i]*x[i] + y[i]*y[i] < 1.0f)
    m += 1;
}
"""


@dataclass
class PiResult:
    """π estimate plus modeled timing."""

    pi: float
    inside: int
    samples: int
    kernel_ms: float
    total_ms: float

    @property
    def error(self) -> float:
        return abs(self.pi - np.pi)


def estimate_pi(n: int = 1 << 20, *, seed: int = 2014,
                compiler: str = "openuh", num_gangs: int = 192,
                vector_length: int = 128) -> PiResult:
    """Estimate π from ``n`` samples on the simulated device."""
    rng = np.random.default_rng(seed)
    x = (rng.random(n, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)
    y = (rng.random(n, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)
    prog = acc.compile(PI_SRC, compiler=compiler, num_gangs=num_gangs,
                       num_workers=1, vector_length=vector_length)
    res = prog.run(x=x, y=y)
    m = int(res.scalars["m"])
    return PiResult(pi=4.0 * m / n, inside=m, samples=n,
                    kernel_ms=res.kernel_ms, total_ms=res.modeled_ms)
