"""The paper's evaluation applications (§4).

* :mod:`~repro.apps.heat2d` — 2-D heat equation with a ``max``-reduction
  convergence test (Fig. 12(a)/13(a));
* :mod:`~repro.apps.matmul` — naive matrix multiplication with the inner
  k loop parallelized as a vector ``+`` reduction (Fig. 12(b)/13(b));
* :mod:`~repro.apps.montecarlo_pi` — Monte Carlo π with a gang·vector ``+``
  reduction over pre-generated samples (Fig. 12(c)/13(c));
* :mod:`~repro.apps.softmax` — numerically-stable softmax, the cascaded
  max→map→``+``→map flagship for the cascade-fusion pass (extension).
"""

from repro.apps.heat2d import HeatResult, solve_heat
from repro.apps.matmul import MatmulResult, matmul
from repro.apps.montecarlo_pi import PiResult, estimate_pi
from repro.apps.softmax import SoftmaxResult, softmax, softmax_result

__all__ = ["HeatResult", "solve_heat", "MatmulResult", "matmul",
           "PiResult", "estimate_pi", "SoftmaxResult", "softmax",
           "softmax_result"]
