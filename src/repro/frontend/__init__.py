"""Mini OpenACC frontend: a C-subset parser with ``#pragma acc`` directives.

The subset covers everything the paper's figures use (Fig. 4, 9, 10, 13):
typed scalar/array declarations, ``for``/``while``/``if`` statements, the
usual expression grammar with assignment operators, intrinsic calls, and
multi-dimensional or flattened array subscripts, with OpenACC ``parallel``/
``kernels``/``loop`` directives and their clauses attached to the statements
they precede.
"""

from repro.frontend.lexer import tokenize, Token
from repro.frontend.pragmas import parse_pragma, AccLoopInfo, AccRegionInfo
from repro.frontend.cparser import parse_region

__all__ = [
    "tokenize",
    "Token",
    "parse_pragma",
    "AccLoopInfo",
    "AccRegionInfo",
    "parse_region",
]
