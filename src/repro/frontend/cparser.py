"""Recursive-descent parser for the C subset with OpenACC regions.

The input is a source fragment shaped like the paper's figures: optional
host declarations, then one ``#pragma acc parallel``/``kernels`` region whose
body is a (possibly nested, possibly ``loop``-annotated) set of statements.

The parser produces the C AST of :mod:`repro.frontend.ast_nodes`;
``for`` loops are canonicalized to ``(var, start, end_exclusive, step)``
during parsing so the IR builder sees one loop shape.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.lexer import Token, tokenize
from repro.frontend.pragmas import (AccAtomicInfo, AccLoopInfo,
                                    AccRegionInfo, parse_pragma)

__all__ = ["parse_region", "parse_statements"]

_TYPES = ("int", "long", "float", "double", "unsigned")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.i = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def next(self) -> Token:
        t = self.peek()
        if t.kind != "EOF":
            self.i += 1
        return t

    def at(self, kind: str, text: str | None = None) -> bool:
        t = self.peek()
        return t.kind == kind and (text is None or t.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.next()
        if t.kind != kind or (text is not None and t.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {t.text!r}",
                             line=t.line, col=t.col)
        return t

    def error(self, msg: str) -> ParseError:
        t = self.peek()
        return ParseError(msg + f" (near {t.text!r})", line=t.line, col=t.col)

    # -- top level -----------------------------------------------------------

    def parse_region(self) -> A.CRegion:
        preamble: list[A.CStmt] = []
        while True:
            if self.at("EOF"):
                raise self.error("no '#pragma acc parallel/kernels' region "
                                 "found in source")
            if self.at("PRAGMA"):
                info = parse_pragma(self.peek().text)
                if isinstance(info, AccRegionInfo):
                    self.next()
                    body = self._region_body(info)
                    self._check_trailing()
                    return A.CRegion(info=info, body=body,
                                     preamble=tuple(preamble))
                if isinstance(info, AccLoopInfo):
                    raise self.error("'#pragma acc loop' before any "
                                     "parallel/kernels region")
                self.next()  # non-acc pragma: skip
                continue
            preamble.append(self.parse_statement())

    def _region_body(self, info: AccRegionInfo) -> tuple[A.CStmt, ...]:
        """The structured block following the compute directive."""
        stmt = self.parse_statement(combined_loop=info.combined_loop)
        if isinstance(stmt, A.CBlock):
            return stmt.stmts
        return (stmt,)

    def _check_trailing(self) -> None:
        if not self.at("EOF"):
            t = self.peek()
            raise ParseError(
                "unexpected tokens after the compute region (exactly one "
                f"region per source fragment): {t.text!r}",
                line=t.line, col=t.col)

    # -- statements ----------------------------------------------------------

    def parse_statement(self, loop_info: AccLoopInfo | None = None,
                        combined_loop: AccLoopInfo | None = None) -> A.CStmt:
        t = self.peek()

        if t.kind == "PRAGMA":
            info = parse_pragma(t.text)
            if isinstance(info, AccLoopInfo):
                self.next()
                nxt = self.peek()
                if not (nxt.kind == "ID" and nxt.text == "for"):
                    raise ParseError(
                        "'#pragma acc loop' must be followed by a for loop",
                        line=nxt.line, col=nxt.col)
                return self.parse_statement(loop_info=info)
            if isinstance(info, AccRegionInfo):
                raise ParseError("nested compute regions are not supported",
                                 line=t.line, col=t.col)
            if isinstance(info, AccAtomicInfo):
                self.next()
                stmt = self.parse_statement()
                if not isinstance(stmt, A.CAssign):
                    raise ParseError(
                        "'#pragma acc atomic' must be followed by an "
                        "update statement", line=t.line, col=t.col)
                from dataclasses import replace as _replace
                return _replace(stmt, atomic=True)
            self.next()  # ignore non-acc pragma
            return self.parse_statement(loop_info=loop_info,
                                        combined_loop=combined_loop)

        if t.kind == "PUNCT" and t.text == "{":
            self.next()
            stmts: list[A.CStmt] = []
            first = True
            while not self.at("PUNCT", "}"):
                if self.at("EOF"):
                    raise self.error("unterminated block")
                stmts.append(self.parse_statement(
                    combined_loop=combined_loop if first else None))
                first = False
            self.next()
            return A.CBlock(tuple(stmts))

        if t.kind == "ID" and t.text == "for":
            return self._parse_for(loop_info or combined_loop)

        if t.kind == "ID" and t.text == "if":
            return self._parse_if()

        if t.kind == "ID" and t.text == "while":
            return self._parse_while()

        if t.kind == "ID" and t.text in _TYPES:
            return self._parse_decl()

        if t.kind == "PUNCT" and t.text == ";":
            self.next()
            return A.CBlock(())

        return self._parse_assign()

    def _parse_decl(self) -> A.CDecl:
        line = self.peek().line
        ctype = self.next().text
        if ctype == "unsigned" and self.at("ID", "int"):
            self.next()  # 'unsigned int' -> modeled as int
            ctype = "int"
        name = self.expect("ID").text
        dims: list[A.CExpr] = []
        while self.at("PUNCT", "["):
            self.next()
            dims.append(self.parse_expr())
            self.expect("PUNCT", "]")
        init = None
        if self.at("OP", "="):
            self.next()
            init = self.parse_expr()
            if dims:
                raise ParseError("array initializers are not supported",
                                 line=line)
        self.expect("PUNCT", ";")
        return A.CDecl(ctype=ctype, name=name, dims=tuple(dims), init=init,
                       line=line)

    _ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/",
                   "%=": "%", "&=": "&", "|=": "|", "^=": "^",
                   "<<=": "<<", ">>=": ">>"}

    def _parse_assign(self) -> A.CAssign:
        line = self.peek().line
        target = self._parse_postfix(self._parse_primary())
        if not isinstance(target, (A.CIdent, A.CIndex)):
            raise ParseError("assignment target must be a variable or array "
                             "element", line=line)
        t = self.next()
        if t.kind == "OP" and t.text in self._ASSIGN_OPS:
            value = self.parse_expr()
            self.expect("PUNCT", ";")
            return A.CAssign(target=target, op=self._ASSIGN_OPS[t.text],
                             value=value, line=line)
        if t.kind == "OP" and t.text in ("++", "--"):
            self.expect("PUNCT", ";")
            one = A.CIntLit(1)
            return A.CAssign(target=target, op="+" if t.text == "++" else "-",
                             value=one, line=line)
        raise ParseError(f"expected an assignment operator, got {t.text!r}",
                         line=t.line, col=t.col)

    def _parse_if(self) -> A.CIf:
        line = self.expect("ID", "if").line
        self.expect("PUNCT", "(")
        cond = self.parse_expr()
        self.expect("PUNCT", ")")
        then = self._stmt_as_tuple()
        orelse: tuple[A.CStmt, ...] = ()
        if self.at("ID", "else"):
            self.next()
            orelse = self._stmt_as_tuple()
        return A.CIf(cond=cond, then=then, orelse=orelse, line=line)

    def _parse_while(self) -> A.CWhile:
        line = self.expect("ID", "while").line
        self.expect("PUNCT", "(")
        cond = self.parse_expr()
        self.expect("PUNCT", ")")
        return A.CWhile(cond=cond, body=self._stmt_as_tuple(), line=line)

    def _stmt_as_tuple(self) -> tuple[A.CStmt, ...]:
        s = self.parse_statement()
        return s.stmts if isinstance(s, A.CBlock) else (s,)

    def _parse_for(self, pragma: AccLoopInfo | None) -> A.CFor:
        line = self.expect("ID", "for").line
        self.expect("PUNCT", "(")
        decl_type = None
        if self.at("ID") and self.peek().text in _TYPES:
            decl_type = self.next().text
        var = self.expect("ID").text
        self.expect("OP", "=")
        start = self.parse_expr()
        self.expect("PUNCT", ";")

        cv = self.expect("ID").text
        if cv != var:
            raise ParseError(
                f"loop condition must test the loop variable {var!r}, "
                f"got {cv!r}", line=line)
        rel = self.next()
        if rel.kind != "OP" or rel.text not in ("<", "<="):
            raise ParseError(
                "only ascending loops with '<' or '<=' conditions are "
                f"supported, got {rel.text!r}", line=rel.line, col=rel.col)
        bound = self.parse_expr()
        end = bound if rel.text == "<" else A.CBinary("+", bound, A.CIntLit(1))
        self.expect("PUNCT", ";")

        iv = self.peek()
        step: A.CExpr
        if iv.kind == "OP" and iv.text == "++":  # ++i
            self.next()
            if self.expect("ID").text != var:
                raise ParseError("increment must update the loop variable",
                                 line=iv.line)
            step = A.CIntLit(1)
        else:
            if self.expect("ID").text != var:
                raise ParseError("increment must update the loop variable",
                                 line=iv.line)
            op = self.next()
            if op.kind == "OP" and op.text == "++":
                step = A.CIntLit(1)
            elif op.kind == "OP" and op.text == "+=":
                step = self.parse_expr()
            else:
                raise ParseError(
                    "only 'i++', '++i' and 'i += step' loop increments are "
                    f"supported, got {op.text!r}", line=op.line, col=op.col)
        self.expect("PUNCT", ")")
        body = self._stmt_as_tuple()
        return A.CFor(var=var, decl_type=decl_type, start=start, end=end,
                      step=step, body=body, pragma=pragma, line=line)

    # -- expressions (precedence climbing) ------------------------------------

    def parse_expr(self) -> A.CExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> A.CExpr:
        cond = self._parse_binary(0)
        if self.at("OP", "?"):
            self.next()
            a = self.parse_expr()
            self.expect("OP", ":")
            b = self._parse_ternary()
            return A.CCond(cond, a, b)
        return cond

    _PREC: list[tuple[str, ...]] = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="), ("<<", ">>"),
        ("+", "-"), ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> A.CExpr:
        if level >= len(self._PREC):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = self._PREC[level]
        while self.at("OP") and self.peek().text in ops:
            op = self.next().text
            right = self._parse_binary(level + 1)
            left = A.CBinary(op, left, right)
        return left

    def _parse_unary(self) -> A.CExpr:
        t = self.peek()
        if t.kind == "OP" and t.text in ("-", "!", "~", "+"):
            self.next()
            operand = self._parse_unary()
            if t.text == "+":
                return operand
            return A.CUnary(t.text, operand)
        # cast: '(' type ')' unary
        if t.kind == "PUNCT" and t.text == "(" \
                and self.peek(1).kind == "ID" and self.peek(1).text in _TYPES \
                and self.peek(2).kind == "PUNCT" and self.peek(2).text == ")":
            self.next()
            ctype = self.next().text
            self.next()
            return A.CCast(ctype, self._parse_unary())
        return self._parse_postfix(self._parse_primary())

    def _parse_postfix(self, e: A.CExpr) -> A.CExpr:
        while True:
            if self.at("PUNCT", "["):
                self.next()
                idx = self.parse_expr()
                self.expect("PUNCT", "]")
                e = A.CIndex(e, idx)
            elif self.at("PUNCT", "(") and isinstance(e, A.CIdent):
                self.next()
                args: list[A.CExpr] = []
                if not self.at("PUNCT", ")"):
                    args.append(self.parse_expr())
                    while self.at("PUNCT", ","):
                        self.next()
                        args.append(self.parse_expr())
                self.expect("PUNCT", ")")
                e = A.CCall(e.name, tuple(args))
            else:
                return e

    def _parse_primary(self) -> A.CExpr:
        t = self.next()
        if t.kind == "INT":
            text = t.text.rstrip("uUlL")
            value = int(text, 16) if text.lower().startswith("0x") \
                else int(text)
            return A.CIntLit(value)
        if t.kind == "FLOAT":
            is_double = not t.text.lower().endswith("f")
            return A.CFloatLit(float(t.text.rstrip("fFlL")), is_double)
        if t.kind == "ID":
            return A.CIdent(t.text)
        if t.kind == "PUNCT" and t.text == "(":
            e = self.parse_expr()
            self.expect("PUNCT", ")")
            return e
        raise ParseError(f"unexpected token {t.text!r} in expression",
                         line=t.line, col=t.col)


def parse_region(source: str) -> A.CRegion:
    """Parse a source fragment containing one OpenACC compute region."""
    return _Parser(tokenize(source)).parse_region()


def parse_statements(source: str) -> tuple[A.CStmt, ...]:
    """Parse a bare statement list (no region) — used by frontend tests."""
    p = _Parser(tokenize(source))
    out: list[A.CStmt] = []
    while not p.at("EOF"):
        out.append(p.parse_statement())
    return tuple(out)
