"""Tokenizer for the C subset.

Produces a flat token stream.  ``#pragma`` lines (with ``\\`` continuations
merged) are emitted as single ``PRAGMA`` tokens carrying the directive text;
the C parser hands their payload to :mod:`repro.frontend.pragmas`.

Comments (``//`` and ``/* */``) are stripped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "tokenize"]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # ID, INT, FLOAT, OP, PUNCT, PRAGMA, EOF
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


# longest-match-first operator table
_OPERATORS = [
    "<<=", ">>=",
    "&&", "||", "<=", ">=", "==", "!=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!", "~", "?", ":",
]
_PUNCT = ["(", ")", "{", "}", "[", "]", ";", ","]

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(
    r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+|\d+)[fFlLuU]*"
)
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+[uUlL]*")


def _strip_comments(src: str) -> str:
    """Remove comments, preserving line structure for error reporting."""
    out: list[str] = []
    i, n = 0, len(src)
    while i < n:
        c = src[i]
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            if j < 0:
                raise ParseError("unterminated /* comment",
                                 line=src.count("\n", 0, i) + 1)
            out.append("\n" * src.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokenize(src: str) -> list[Token]:
    """Tokenize source text; raises :class:`ParseError` on bad input."""
    src = _strip_comments(src)
    tokens: list[Token] = []
    lines = src.split("\n")
    lineno = 0
    while lineno < len(lines):
        line = lines[lineno]
        stripped = line.lstrip()
        if stripped.startswith("#"):
            # preprocessor line: merge continuations
            start_line = lineno + 1
            text = stripped
            while text.rstrip().endswith("\\") and lineno + 1 < len(lines):
                text = text.rstrip()[:-1] + " " + lines[lineno + 1].strip()
                lineno += 1
            body = text[1:].strip()
            if body.startswith("pragma"):
                tokens.append(Token("PRAGMA", body[len("pragma"):].strip(),
                                    start_line, 1))
            # other preprocessor lines (#include, #define) are ignored:
            # constants come in through the compile() consts mapping
            lineno += 1
            continue
        _tokenize_line(line, lineno + 1, tokens)
        lineno += 1
    tokens.append(Token("EOF", "", len(lines), 1))
    return tokens


def _tokenize_line(line: str, lineno: int, out: list[Token]) -> None:
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c in " \t\r":
            i += 1
            continue
        m = _HEX_RE.match(line, i)
        if m:
            out.append(Token("INT", m.group(), lineno, i + 1))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and line[i + 1].isdigit()):
            m = _NUM_RE.match(line, i)
            if not m:
                raise ParseError(f"bad numeric literal near {line[i:i+8]!r}",
                                 line=lineno, col=i + 1)
            text = m.group()
            kind = "FLOAT" if ("." in text or "e" in text.lower()
                               and not text.lower().startswith("0x")) else "INT"
            out.append(Token(kind, text, lineno, i + 1))
            i = m.end()
            continue
        m = _ID_RE.match(line, i)
        if m:
            out.append(Token("ID", m.group(), lineno, i + 1))
            i = m.end()
            continue
        for op in _OPERATORS:
            if line.startswith(op, i):
                out.append(Token("OP", op, lineno, i + 1))
                i += len(op)
                break
        else:
            if c in _PUNCT:
                out.append(Token("PUNCT", c, lineno, i + 1))
                i += 1
            else:
                raise ParseError(f"unexpected character {c!r}",
                                 line=lineno, col=i + 1)
