"""C-level AST for the frontend subset.

These nodes mirror the source closely; the IR builder
(:mod:`repro.ir.builder`) normalizes them (loop canonicalization, flat index
computation, type propagation) into the loop-nest IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CExpr", "CIntLit", "CFloatLit", "CIdent", "CIndex", "CBinary", "CUnary",
    "CCall", "CCast", "CCond",
    "CStmt", "CDecl", "CAssign", "CFor", "CWhile", "CIf", "CBlock",
    "CRegion",
]


# -- expressions -------------------------------------------------------------

class CExpr:
    __slots__ = ()


@dataclass(frozen=True)
class CIntLit(CExpr):
    value: int


@dataclass(frozen=True)
class CFloatLit(CExpr):
    value: float
    is_double: bool  # 1.0 vs 1.0f


@dataclass(frozen=True)
class CIdent(CExpr):
    name: str


@dataclass(frozen=True)
class CIndex(CExpr):
    """``base[index]`` — chained for multi-dimensional access."""

    base: CExpr
    index: CExpr


@dataclass(frozen=True)
class CBinary(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class CUnary(CExpr):
    op: str  # '-', '!', '~', '+'
    operand: CExpr


@dataclass(frozen=True)
class CCall(CExpr):
    name: str
    args: tuple[CExpr, ...]


@dataclass(frozen=True)
class CCast(CExpr):
    ctype: str
    operand: CExpr


@dataclass(frozen=True)
class CCond(CExpr):
    """Ternary ``c ? a : b``."""

    cond: CExpr
    then: CExpr
    orelse: CExpr


# -- statements --------------------------------------------------------------

class CStmt:
    __slots__ = ()


@dataclass(frozen=True)
class CDecl(CStmt):
    """``int x;`` / ``int x = e;`` / ``float a[NK][NJ];``"""

    ctype: str
    name: str
    dims: tuple[CExpr, ...] = ()
    init: CExpr | None = None
    line: int = 0


@dataclass(frozen=True)
class CAssign(CStmt):
    """``target op= value;`` where op is '', '+', '-', '*', '/', '%',
    '&', '|', '^', '<<', '>>' ('' means plain assignment).

    ``atomic`` marks a ``#pragma acc atomic update`` on the statement.
    """

    target: CExpr  # CIdent or CIndex
    op: str
    value: CExpr
    line: int = 0
    atomic: bool = False


@dataclass(frozen=True)
class CFor(CStmt):
    """Canonicalized counted loop: ``for (var = start; var < end; var += step)``.

    ``pragma`` carries the attached ``#pragma acc loop`` info, if any.
    """

    var: str
    decl_type: str | None  # 'int' for `for (int i = ...)`, else None
    start: CExpr
    end: CExpr  # exclusive bound
    step: CExpr
    body: tuple[CStmt, ...]
    pragma: object | None = None  # AccLoopInfo
    line: int = 0


@dataclass(frozen=True)
class CWhile(CStmt):
    cond: CExpr
    body: tuple[CStmt, ...]
    line: int = 0


@dataclass(frozen=True)
class CIf(CStmt):
    cond: CExpr
    then: tuple[CStmt, ...]
    orelse: tuple[CStmt, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class CBlock(CStmt):
    stmts: tuple[CStmt, ...] = ()


@dataclass(frozen=True)
class CRegion:
    """A parsed OpenACC compute region: directive + body statements."""

    info: object  # AccRegionInfo
    body: tuple[CStmt, ...]
    preamble: tuple[CStmt, ...] = ()  # host declarations before the region
