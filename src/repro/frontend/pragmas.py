"""OpenACC directive parser.

Parses the payload of ``#pragma acc ...`` lines (already merged across
``\\`` continuations by the lexer) into structured clause objects.

Supported directives and clauses (the set the paper's programs exercise,
plus the obvious neighbours):

* ``parallel`` / ``kernels`` — ``copy/copyin/copyout/create/present(list)``,
  ``num_gangs(n)``, ``num_workers(n)``, ``vector_length(n)``, ``if(cond)``
  (parsed, unsupported), ``reduction(op:vars)`` (rejected here: the paper
  places reductions on loops).
* ``loop`` — ``gang``, ``worker``, ``vector``, ``seq``, ``independent``,
  ``collapse(n)``, ``private(list)``, ``reduction(op:var,...)``.

Directive text is parsed with a dedicated micro-tokenizer because clause
syntax is not C (e.g. ``reduction(+:sum)``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import DirectiveError

__all__ = ["AccLoopInfo", "AccRegionInfo", "AccAtomicInfo", "DataClause",
           "parse_pragma"]

#: reduction-operator spellings accepted in a reduction clause
REDUCTION_OPS = ("+", "*", "max", "min", "&", "|", "^", "&&", "||")

#: value-index pair reductions: ``reduction(argmax:val,idx)`` names the
#: value variable first, then the index variable
ARG_REDUCTION_KINDS = ("argmax", "argmin")

LEVELS = ("gang", "worker", "vector")


def _known_reduction_op(op: str) -> bool:
    """Built-in operator spelling, or a registered custom operator."""
    if op in REDUCTION_OPS:
        return True
    if not op.isidentifier():
        return False
    from repro.codegen.reduction.operators import OPERATORS
    return op in OPERATORS


@dataclass(frozen=True)
class DataClause:
    """One item of a data clause: ``copyin(input)`` → (copyin, input)."""

    kind: str  # copy, copyin, copyout, create, present
    name: str
    ranges: tuple[tuple[str, str], ...] = ()  # optional [start:len] strings


@dataclass(frozen=True)
class AccLoopInfo:
    """Parsed ``#pragma acc loop`` directive."""

    levels: tuple[str, ...] = ()  # subset of gang/worker/vector, source order
    seq: bool = False
    independent: bool = False
    collapse: int = 1
    reductions: tuple[tuple[str, str], ...] = ()  # (operator, variable)
    #: value-index pair reductions: (kind, value_var, index_var)
    arg_reductions: tuple[tuple[str, str, str], ...] = ()
    private: tuple[str, ...] = ()

    @property
    def is_parallel(self) -> bool:
        return bool(self.levels) and not self.seq


@dataclass(frozen=True)
class AccAtomicInfo:
    """Parsed ``#pragma acc atomic [update]`` directive.

    Applies to the immediately following update statement; the compiler
    lowers it to a device read-modify-write instead of a plain store, so
    colliding updates from different threads combine instead of racing.
    """

    kind: str = "update"


@dataclass(frozen=True)
class AccRegionInfo:
    """Parsed ``#pragma acc parallel`` / ``kernels`` directive."""

    kind: str  # "parallel" or "kernels"
    data: tuple[DataClause, ...] = ()
    num_gangs: int | None = None
    num_workers: int | None = None
    vector_length: int | None = None
    combined_loop: "AccLoopInfo | None" = None  # `parallel loop ...` form


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<id>[A-Za-z_][A-Za-z0-9_]*)|(?P<num>\d+)"
    r"|(?P<op>&&|\|\||[-+*/&|^:,()\[\]])|(?P<bad>\S))"
)


def _micro_tokens(text: str) -> list[str]:
    out = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            break
        if m.group("bad"):
            raise DirectiveError(
                f"unexpected character {m.group('bad')!r} in directive: {text!r}")
        out.append(m.group("id") or m.group("num") or m.group("op"))
        pos = m.end()
    return out


class _Cursor:
    def __init__(self, toks: list[str], text: str):
        self.toks = toks
        self.i = 0
        self.text = text

    def peek(self) -> str | None:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def peek2(self) -> str | None:
        """The token after the next one (two-token lookahead)."""
        return self.toks[self.i + 1] if self.i + 1 < len(self.toks) else None

    def next(self) -> str:
        t = self.peek()
        if t is None:
            raise DirectiveError(f"unexpected end of directive: {self.text!r}")
        self.i += 1
        return t

    def expect(self, tok: str) -> None:
        t = self.next()
        if t != tok:
            raise DirectiveError(
                f"expected {tok!r}, got {t!r} in directive: {self.text!r}")

    def done(self) -> bool:
        return self.i >= len(self.toks)


def _parse_name_list(cur: _Cursor) -> list[tuple[str, tuple]]:
    """Parse ``(name[, name]...)`` with optional ``[a:b]`` subarray ranges."""
    cur.expect("(")
    items: list[tuple[str, tuple]] = []
    while True:
        name = cur.next()
        if not name.isidentifier():
            raise DirectiveError(
                f"expected a variable name, got {name!r} in: {cur.text!r}")
        ranges = []
        while cur.peek() == "[":
            cur.next()
            lo = ""
            while cur.peek() not in (":", "]"):
                lo += cur.next()
            hi = ""
            if cur.peek() == ":":
                cur.next()
                while cur.peek() != "]":
                    hi += cur.next()
            cur.expect("]")
            ranges.append((lo, hi))
        items.append((name, tuple(ranges)))
        t = cur.next()
        if t == ")":
            return items
        if t != ",":
            raise DirectiveError(
                f"expected ',' or ')', got {t!r} in: {cur.text!r}")


def _parse_reduction(cur: _Cursor):
    """Parse ``(op:var[,var]... [, op:var...])``.

    One clause may carry several ``op:vars`` segments (tuple reductions,
    FLoops-style), built-in or registered custom operator spellings, and
    ``argmax:val,idx`` / ``argmin:val,idx`` value-index pairs.  Returns
    ``(reductions, arg_reductions)`` where ``reductions`` is a list of
    ``(op, var)`` and ``arg_reductions`` of ``(kind, value_var,
    index_var)``.
    """
    cur.expect("(")
    reductions: list[tuple[str, str]] = []
    arg_reductions: list[tuple[str, str, str]] = []
    while True:
        # operator can be multi-token only for && / || which are single
        # micro-tokens
        op = cur.next()
        if op not in ARG_REDUCTION_KINDS and not _known_reduction_op(op):
            raise DirectiveError(
                f"unknown reduction operator {op!r} "
                f"(expected one of {', '.join(REDUCTION_OPS)}, "
                f"{'/'.join(ARG_REDUCTION_KINDS)}, or a registered "
                "custom operator)")
        cur.expect(":")
        if op in ARG_REDUCTION_KINDS:
            # exactly two variables: the value, then the index
            val = cur.next()
            if not val.isidentifier():
                raise DirectiveError(f"bad reduction variable {val!r}")
            cur.expect(",")
            idx = cur.next()
            if not idx.isidentifier():
                raise DirectiveError(f"bad reduction variable {idx!r}")
            arg_reductions.append((op, val, idx))
            t = cur.next()
            if t == ")":
                return reductions, arg_reductions
            if t != ",":
                raise DirectiveError(f"expected ',' or ')', got {t!r}")
            continue
        while True:
            var = cur.next()
            if not var.isidentifier():
                raise DirectiveError(f"bad reduction variable {var!r}")
            reductions.append((op, var))
            t = cur.next()
            if t == ")":
                return reductions, arg_reductions
            if t != ",":
                raise DirectiveError(f"expected ',' or ')', got {t!r}")
            # after a comma: a ':' two tokens ahead means a new
            # `op:vars` segment begins; otherwise more vars for this op
            if cur.peek2() == ":":
                break


def _parse_int_arg(cur: _Cursor, clause: str) -> int:
    cur.expect("(")
    v = cur.next()
    if not v.isdigit():
        raise DirectiveError(f"{clause} expects an integer literal, got {v!r}")
    cur.expect(")")
    return int(v)


_DATA_KINDS = ("copy", "copyin", "copyout", "create", "present",
               "pcopy", "pcopyin", "pcopyout", "pcreate")


def parse_pragma(text: str):
    """Parse the payload of a ``#pragma`` line.

    Returns an :class:`AccRegionInfo` or :class:`AccLoopInfo`, or ``None``
    for non-``acc`` pragmas (which are ignored, as real compilers do).
    """
    toks = _micro_tokens(text)
    if not toks or toks[0] != "acc":
        return None
    cur = _Cursor(toks, text)
    cur.next()  # 'acc'
    directive = cur.next()
    if directive in ("parallel", "kernels"):
        return _parse_region(cur, directive)
    if directive == "loop":
        return _parse_loop(cur)
    if directive == "atomic":
        kind = cur.next() if not cur.done() else "update"
        if kind != "update":
            raise DirectiveError(
                f"unsupported atomic clause {kind!r} (only 'update')")
        return AccAtomicInfo()
    raise DirectiveError(f"unsupported OpenACC directive {directive!r} "
                         f"(supported: parallel, kernels, loop, atomic)")


_PREFIXED = {"pcopy": "copy", "pcopyin": "copyin", "pcopyout": "copyout",
             "pcreate": "create"}


def _parse_region(cur: _Cursor, kind: str) -> AccRegionInfo:
    data: list[DataClause] = []
    num_gangs = num_workers = vector_length = None
    combined = False
    # loop-directive accumulator (used by the combined `parallel loop` form)
    levels: list[str] = []
    seq = independent = False
    collapse = 1
    reductions: list[tuple[str, str]] = []
    arg_reductions: list[tuple[str, str, str]] = []
    private: list[str] = []
    while not cur.done():
        clause = cur.next()
        if clause == "loop":
            combined = True
        elif clause in _DATA_KINDS:
            kindname = _PREFIXED.get(clause, clause)
            for name, ranges in _parse_name_list(cur):
                data.append(DataClause(kindname, name, ranges))
        elif clause == "num_gangs":
            num_gangs = _parse_int_arg(cur, clause)
        elif clause == "num_workers":
            num_workers = _parse_int_arg(cur, clause)
        elif clause == "vector_length":
            vector_length = _parse_int_arg(cur, clause)
        elif combined and clause in LEVELS:
            if clause in levels:
                raise DirectiveError(f"duplicate {clause!r} on loop directive")
            levels.append(clause)
        elif combined and clause == "seq":
            seq = True
        elif combined and clause == "independent":
            independent = True
        elif combined and clause == "collapse":
            collapse = _parse_int_arg(cur, clause)
        elif combined and clause == "reduction":
            reds, args = _parse_reduction(cur)
            reductions.extend(reds)
            arg_reductions.extend(args)
        elif combined and clause == "private":
            private.extend(name for name, _ in _parse_name_list(cur))
        elif clause == "reduction":
            raise DirectiveError(
                "reduction clause on the compute construct is not supported; "
                "place it on the loop directive (as the paper does)")
        else:
            raise DirectiveError(
                f"unsupported clause {clause!r} on {kind!r} construct")
    combined_loop = None
    if combined:
        order = [LEVELS.index(l) for l in levels]
        if order != sorted(order):
            raise DirectiveError(
                f"loop levels must be ordered gang, worker, vector; got "
                f"{' '.join(levels)}")
        combined_loop = AccLoopInfo(
            levels=tuple(levels), seq=seq, independent=independent,
            collapse=collapse, reductions=tuple(reductions),
            arg_reductions=tuple(arg_reductions), private=tuple(private))
    return AccRegionInfo(kind=kind, data=tuple(data), num_gangs=num_gangs,
                         num_workers=num_workers, vector_length=vector_length,
                         combined_loop=combined_loop)


def _parse_loop(cur: _Cursor) -> AccLoopInfo:
    levels: list[str] = []
    seq = independent = False
    collapse = 1
    reductions: list[tuple[str, str]] = []
    arg_reductions: list[tuple[str, str, str]] = []
    private: list[str] = []
    while not cur.done():
        clause = cur.next()
        if clause in LEVELS:
            if clause in levels:
                raise DirectiveError(f"duplicate {clause!r} on loop directive")
            levels.append(clause)
        elif clause == "seq":
            seq = True
        elif clause == "independent":
            independent = True
        elif clause == "collapse":
            collapse = _parse_int_arg(cur, clause)
            if collapse < 1:
                raise DirectiveError("collapse argument must be >= 1")
        elif clause == "reduction":
            reds, args = _parse_reduction(cur)
            reductions.extend(reds)
            arg_reductions.extend(args)
        elif clause == "private":
            private.extend(name for name, _ in _parse_name_list(cur))
        else:
            raise DirectiveError(f"unsupported clause {clause!r} on loop "
                                 "directive")
    if seq and levels:
        raise DirectiveError(
            f"loop cannot be both seq and {'/'.join(levels)}")
    # enforce the OpenACC level ordering gang > worker > vector on one loop
    order = [LEVELS.index(l) for l in levels]
    if order != sorted(order):
        raise DirectiveError(
            f"loop levels must be ordered gang, worker, vector; got "
            f"{' '.join(levels)}")
    return AccLoopInfo(levels=tuple(levels), seq=seq, independent=independent,
                       collapse=collapse, reductions=tuple(reductions),
                       arg_reductions=tuple(arg_reductions),
                       private=tuple(private))
