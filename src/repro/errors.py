"""Exception hierarchy for the repro package.

Every layer of the stack (frontend, IR, codegen, runtime, simulator) raises
subclasses of :class:`ReproError` so callers can catch a single base type.
Compile-time failures (including the modeled ``CE`` entries of the paper's
Table 2) raise :class:`CompileError`; simulator-detected hardware-semantics
violations (e.g. ``__syncthreads`` under divergent control flow) raise
:class:`SimulationError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(ReproError):
    """A program could not be compiled (parse, analysis, or lowering failure)."""


class ParseError(CompileError):
    """Syntax error in the C-subset source or an OpenACC directive."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", col {col}" if col is not None else "")
        super().__init__(message + loc)


class DirectiveError(CompileError):
    """An OpenACC directive is malformed or used in an invalid position."""


class AnalysisError(CompileError):
    """Semantic analysis rejected the program (types, reduction placement)."""


class UnsupportedReductionError(CompileError):
    """A compiler profile declares this reduction shape unsupported.

    This models the ``CE`` (compile-time error) cells of the paper's Table 2
    for the commercial baseline profiles.
    """


class LoweringError(CompileError):
    """Internal codegen failure: IR shape the lowering cannot handle."""


class IRVerificationError(CompileError):
    """The kernel-IR verifier rejected a kernel between pipeline passes.

    Raised by :func:`repro.gpu.kernelir.verify_kernel` when a lowering or
    an optimization pass produced structurally broken IR (undefined
    registers, undeclared buffers, a barrier inside a per-thread masked
    loop...).  Surfacing this between passes pins the *offending pass*
    instead of a downstream simulator crash.
    """


class SimulationError(ReproError):
    """Base class for errors detected while executing kernels on the simulator."""


class WatchdogTimeoutError(SimulationError):
    """A kernel launch exceeded its per-launch loop-step budget.

    The executor's watchdog counts loop-iteration steps (the only way a
    kernel can run unboundedly in this IR) and converts infinite or
    runaway loops into this typed error instead of hanging the caller.
    """

    def __init__(self, message: str, *, kernel: str | None = None,
                 steps: int | None = None, budget: int | None = None):
        self.kernel = kernel
        self.steps = steps
        self.budget = budget
        super().__init__(message)


class TransientFaultError(ReproError):
    """A fault classified *transient*: retrying the operation may succeed.

    Raised by the fault-injection layer (spurious launch/transfer
    failures) and treated as retryable by ``Program.run``'s
    capped-backoff retry loop.
    """


class KernelLaunchError(TransientFaultError):
    """A kernel launch failed spuriously (injected transient fault)."""


class TransferFaultError(TransientFaultError):
    """A host↔device transfer failed in flight (injected transient fault)."""


class SilentCorruptionError(ReproError):
    """Redundant execution or result validation detected divergent results.

    A bit-flip in data produces no exception on its own; this error is how
    the detection machinery (majority voting, ``validate=`` hooks) turns a
    silent corruption into a detectable event.
    """


class DegradedExecutionError(ReproError):
    """A result was served by a fallback strategy or corrected by voting.

    Normally *carried*, not raised: ``RunResult.degradations`` holds one
    instance per degradation event so callers can inspect how the answer
    was produced.  It is only raised when every strategy in the fallback
    chain fails.
    """

    def __init__(self, message: str, *, strategy: str | None = None,
                 cause: BaseException | None = None):
        self.strategy = strategy
        self.cause = cause
        super().__init__(message)


class BarrierDivergenceError(SimulationError):
    """``__syncthreads()`` executed under divergent control flow.

    On real hardware this is undefined behaviour (usually a hang); the
    simulator turns it into a hard error so tests catch broken lowerings.
    """


class OutOfBoundsError(SimulationError):
    """A global- or shared-memory access fell outside its buffer."""


class ResourceError(SimulationError):
    """A launch exceeds device limits (threads per block, shared memory...)."""


class RuntimeDataError(ReproError):
    """Host/device data-environment misuse (missing array, shape mismatch...)."""


class ServiceError(ReproError):
    """Base class for compile-and-run service-layer failures.

    Raised by :mod:`repro.serve` — the asyncio request scheduler in front
    of the device pool.  Every request the service refuses or abandons
    surfaces one of these typed subclasses; a request never just
    disappears.
    """


class AdmissionShedError(ServiceError):
    """Admission control refused the request: its priority queue is full.

    Backpressure made explicit — the caller should slow down or retry
    later; nothing was executed.
    """


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed (in queue or mid-execution).

    Queue-expired requests never ran; execution-expired requests were
    abandoned (their device finishes the doomed launch and is then
    reused, mirroring a real GPU that cannot preempt a running kernel).
    """


class CircuitOpenError(ServiceError):
    """No healthy device was available: every pool breaker is open.

    Each device's circuit breaker trips on a rolling error/timeout rate
    and quarantines the device until a probation probe re-admits it; this
    error means the whole pool is quarantined.
    """


class ServiceRetriesExceededError(ServiceError):
    """Every cross-device try of a request failed.

    Carries ``cause`` — the last per-device failure — so callers see why
    the final try died.
    """

    def __init__(self, message: str, *, cause: BaseException | None = None):
        self.cause = cause
        super().__init__(message)


class CacheCorruptionError(ServiceError):
    """A persistent compile-cache entry failed its integrity check.

    Normally *handled*, not raised: the cache detects the corruption
    (bad magic, checksum mismatch, truncation, unpicklable payload),
    quarantines the entry, and falls back to recompilation.  It is only
    raised by strict-mode lookups in tests.
    """
