"""Scalar type system shared by the frontend, IR, codegen and simulator.

The C subset supported by the frontend exposes four arithmetic types (plus
``bool`` internally for predicates).  They map onto fixed-width NumPy dtypes
the same way ``nvcc`` maps them on a 64-bit LP64 host, which is what the
paper's evaluation platform used:

=========  ============  =============
C type     repro DType   NumPy dtype
=========  ============  =============
int        INT           numpy.int32
long       LONG          numpy.int64
float      FLOAT         numpy.float32
double     DOUBLE        numpy.float64
=========  ============  =============
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "DType",
    "ctype_to_dtype",
    "promote",
    "is_integer",
    "is_float",
]


class DType(enum.Enum):
    """A scalar machine type usable in kernels and reductions."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    BOOL = "bool"

    @property
    def np(self) -> np.dtype:
        """The NumPy dtype that backs registers/buffers of this type."""
        return _NP[self]

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes (as on the simulated device)."""
        return _NP[self].itemsize

    @property
    def ctype(self) -> str:
        """C spelling of the type (``int``, ``long``, ``float``, ``double``)."""
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DType.{self.name}"


_NP: dict[DType, np.dtype] = {
    DType.INT: np.dtype(np.int32),
    DType.LONG: np.dtype(np.int64),
    DType.FLOAT: np.dtype(np.float32),
    DType.DOUBLE: np.dtype(np.float64),
    DType.BOOL: np.dtype(np.bool_),
}

_FROM_NP: dict[np.dtype, DType] = {v: k for k, v in _NP.items()}

_CTYPES: dict[str, DType] = {
    "int": DType.INT,
    "unsigned": DType.INT,  # modeled as int; the paper's testsuite uses signed
    "long": DType.LONG,
    "float": DType.FLOAT,
    "double": DType.DOUBLE,
    "bool": DType.BOOL,
    "_Bool": DType.BOOL,
}


def ctype_to_dtype(name: str) -> DType:
    """Map a C type spelling to a :class:`DType`.

    Raises ``KeyError`` for unknown spellings; the parser turns that into a
    :class:`~repro.errors.ParseError`.
    """
    return _CTYPES[name]


def from_numpy(dt: np.dtype) -> DType:
    """Map a NumPy dtype back to a :class:`DType` (exact match required)."""
    return _FROM_NP[np.dtype(dt)]


# C-style "usual arithmetic conversions", restricted to our four types.
_RANK = {DType.BOOL: 0, DType.INT: 1, DType.LONG: 2, DType.FLOAT: 3, DType.DOUBLE: 4}


def promote(a: DType, b: DType) -> DType:
    """Binary-operation result type under C's usual arithmetic conversions.

    ``long`` op ``float`` yields ``float`` (as in C, where the long converts
    to the floating type), never ``double`` — this intentionally differs from
    NumPy's value-preserving promotion.
    """
    hi = a if _RANK[a] >= _RANK[b] else b
    if hi is DType.BOOL:
        return DType.INT  # bool arithmetic promotes to int, as in C
    return hi


def is_integer(dt: DType) -> bool:
    """True for ``int``/``long`` (bitwise/logical reduction operand types)."""
    return dt in (DType.INT, DType.LONG)


def is_float(dt: DType) -> bool:
    """True for ``float``/``double``."""
    return dt in (DType.FLOAT, DType.DOUBLE)
