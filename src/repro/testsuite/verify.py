"""Run one testsuite case under a compiler profile and verify it.

Mirrors the paper's methodology (§4): run the reduction on the (simulated)
accelerator, compute the same reduction on the CPU, compare.  A mismatch is
a FAIL ("implementation issue"); a :class:`~repro.errors.CompileError` is a
CE; both map onto Table 2's cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import acc
from repro.errors import CompileError
from repro.testsuite.cases import ReductionCase

__all__ = ["CaseResult", "run_case"]

#: status values (Table 2 vocabulary)
PASS, FAIL, CE = "pass", "F", "CE"


@dataclass
class CaseResult:
    """Outcome of one (case, compiler) run."""

    case: ReductionCase
    compiler: str
    status: str  # "pass" | "F" | "CE"
    modeled_ms: float | None = None
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == PASS

    def cell(self) -> str:
        """Table-2-style cell: time in ms, or F/CE."""
        if self.status == PASS:
            return f"{self.modeled_ms:.2f}"
        return self.status


def _matches(expected, got, ctype: str) -> bool:
    if ctype in ("float", "double"):
        rtol = 1e-5 if ctype == "float" else 1e-9
        return np.allclose(got, expected, rtol=rtol, atol=0)
    return np.array_equal(got, expected)


def run_case(case: ReductionCase, compiler: str = "openuh", *,
             num_gangs: int | None = None, num_workers: int | None = None,
             vector_length: int | None = None, seed: int = 42,
             profiler=None, executor_mode: str | None = None,
             block_batch: int | None = None, attribution: bool = False,
             **compile_overrides) -> CaseResult:
    """Compile and run one case; verify against the CPU reference.

    ``profiler`` (a :class:`repro.obs.Profiler`) accumulates the case's
    compile phases, transfers, and kernel launches — the testsuite sweep
    passes one profiler through every case to build a whole-run profile.
    ``executor_mode`` / ``block_batch`` select the simulator's executor
    path (see :meth:`repro.gpu.executor.CompiledKernel.run`); results are
    identical either way, only wall-clock differs.  ``attribution=True``
    fills per-statement tables on every launch's stats (visible through
    the profiler's kernel records).
    """
    name = compiler if isinstance(compiler, str) else compiler.name
    try:
        prog = acc.compile(case.source, compiler=compiler,
                           num_gangs=num_gangs, num_workers=num_workers,
                           vector_length=vector_length, profiler=profiler,
                           **compile_overrides)
    except CompileError as exc:
        return CaseResult(case, name, CE, detail=str(exc))

    rng = np.random.default_rng(seed)
    inputs = case.make_inputs(rng)
    result = prog.run(profiler=profiler, executor_mode=executor_mode,
                      block_batch=block_batch, attribution=attribution,
                      **inputs)

    for kind, varname, expected in case.expected(inputs):
        got = (result.scalars[varname] if kind == "scalar"
               else result.outputs[varname])
        if not _matches(expected, got, case.ctype):
            detail = (f"{varname}: expected "
                      f"{np.asarray(expected).ravel()[:4]}..., got "
                      f"{np.asarray(got).ravel()[:4]}...")
            return CaseResult(case, name, FAIL,
                              modeled_ms=result.kernel_ms, detail=detail)
    return CaseResult(case, name, PASS, modeled_ms=result.kernel_ms)
