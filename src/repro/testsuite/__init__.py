"""The reduction testsuite (the paper's third contribution).

§4: *"Since there are no existing benchmarks that could cover all the
reduction cases, we have designed and implemented a testsuite to validate
all possible cases of reduction including different reduction data types and
reduction operations.  The testsuite will check if a given reduction
implementation passed or failed by verifying the OpenACC result with the CPU
result."*

:mod:`~repro.testsuite.cases` generates the OpenACC source for every
reduction position of Table 2 (in the exact shapes of Fig. 4/9/10), with
the paper's loop-size convention (the reducing level gets the big iteration
count, the other levels get 2 and 32); :mod:`~repro.testsuite.verify` runs
one case under a compiler profile and compares against the NumPy reference;
:mod:`~repro.testsuite.runner` sweeps the grid and renders Table 2.
"""

from repro.testsuite.cases import (
    ReductionCase, POSITIONS, make_case, generate_cases,
)
from repro.testsuite.verify import CaseResult, run_case
from repro.testsuite.runner import TestsuiteReport, run_testsuite

__all__ = [
    "ReductionCase", "POSITIONS", "make_case", "generate_cases",
    "CaseResult", "run_case", "TestsuiteReport", "run_testsuite",
]
