"""Reduction-testsuite case generator.

Each case is an OpenACC source fragment in the exact shape of the paper's
figures, plus deterministic input data and a NumPy reference.  Positions
(the first column of Table 2):

=============================  ======================================
position                       source shape
=============================  ======================================
``gang``                       Fig. 4(c): clause on the gang loop
``worker``                     Fig. 4(b): clause on the worker loop
``vector``                     Fig. 4(a): clause on the vector loop
``gang worker``                clause on gang, accumulation in worker
``worker vector``              Fig. 9: clause on worker, accumulation
                               in vector (span auto-detected)
``gang worker vector``         clause on gang, accumulation in vector
``same line gang worker vector``  Fig. 10: one loop, all three levels
=============================  ======================================

Loop sizes follow §4's convention: the reducing level(s) carry the big
iteration count, the parallel-only levels get 2 and 32 (scaled down by
default — the simulator is interpreted Python; see EXPERIMENTS.md).

Initial values are deliberately non-neutral (``sum = 3``, ``j_sum = k + 1``)
because the paper calls out initial-value handling (§3.1.1) as a correctness
subtlety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dtypes import DType, ctype_to_dtype, is_float
from repro.codegen.reduction.operators import get_operator

__all__ = ["ReductionCase", "POSITIONS", "make_case", "generate_cases",
           "TABLE2_OPS", "TABLE2_CTYPES"]

POSITIONS = (
    "gang",
    "worker",
    "vector",
    "gang worker",
    "worker vector",
    "gang worker vector",
    "same line gang worker vector",
)

TABLE2_OPS = ("+", "*")
TABLE2_CTYPES = ("int", "float", "double")

#: non-neutral scalar initial values per operator
_INITS = {"+": 3, "*": 2, "max": 1, "min": 5, "&": -1, "|": 1, "^": 1,
          "&&": 1, "||": 0}


def _accum(op: str, var: str, operand: str, dtype: DType) -> str:
    """The C accumulation statement for an operator."""
    if op in ("+", "*", "&", "|", "^"):
        return f"{var} {op}= {operand};"
    if op in ("max", "min"):
        fn = ("fmax" if op == "max" else "fmin") if is_float(dtype) \
            else op
        return f"{var} = {fn}({var}, {operand});"
    if op in ("&&", "||"):
        return f"{var} = {var} {op} {operand};"
    raise ValueError(op)


def _gen_data(op: str, shape, dtype: DType, rng: np.random.Generator):
    """Operator-appropriate input data (products stay finite, etc.)."""
    n = int(np.prod(shape))
    if op == "*":
        vals = np.ones(n, dtype=dtype.np)
        k = min(20, max(1, n // 128))
        idx = rng.choice(n, size=k, replace=False)
        vals[idx] = 2
    elif op == "||":
        vals = (rng.random(n) < 0.01).astype(dtype.np)
    elif op == "&&":
        vals = rng.integers(1, 4, size=n).astype(dtype.np)
    elif op == "&":
        vals = (rng.integers(0, 8, size=n) | 0xF0).astype(dtype.np)
    else:
        vals = rng.integers(0, 8, size=n).astype(dtype.np)
    return vals.reshape(shape)


@dataclass(frozen=True)
class ReductionCase:
    """One testsuite case: source + inputs + reference."""

    position: str
    op: str
    ctype: str
    size: int
    source: str
    dims: dict
    make_inputs: Callable[[np.random.Generator], dict]
    #: expected(inputs) -> list of ("scalar"|"array", name, expected_value)
    expected: Callable[[dict], list]

    @property
    def label(self) -> str:
        return f"{self.position} [{self.op}] {self.ctype}"

    @property
    def dtype(self) -> DType:
        return ctype_to_dtype(self.ctype)


def make_case(position: str, op: str, ctype: str, size: int = 2048,
              seed: int = 0) -> ReductionCase:
    """Build one testsuite case (deterministic for a given seed)."""
    dtype = ctype_to_dtype(ctype)
    red = get_operator(op)
    red.validate_dtype(dtype)
    init = _INITS[op]
    builder = _BUILDERS[position]
    return builder(position, op, ctype, dtype, red, init, size, seed)


#: bench-scale default sizes per position.  The single-level positions pay
#: per-iteration simulator cost on few active blocks, so they stay moderate;
#: the multi-level positions spread iterations over many threads and can be
#: much larger (which is also where blocking-vs-window coalescing shows).
BENCH_SIZES = {
    "gang": 32768,
    "worker": 32768,
    "vector": 32768,
    "gang worker": 32768,
    "worker vector": 1 << 20,
    "gang worker vector": 1 << 20,
    "same line gang worker vector": 1 << 22,
}


#: the full operator and type coverage the paper claims (§1 contributions:
#: "all reduction operator types and operand data types"); bitwise
#: operators are integer-only, so those grid cells are skipped
ALL_OPS = ("+", "*", "max", "min", "&", "|", "^", "&&", "||")
ALL_CTYPES = ("int", "long", "float", "double")


def generate_cases(positions=POSITIONS, ops=TABLE2_OPS,
                   ctypes=TABLE2_CTYPES, size: int = 2048,
                   sizes: dict | None = None,
                   seed: int = 0,
                   skip_invalid: bool = True) -> list[ReductionCase]:
    """The case grid (Table 2 defaults: 7 positions × {+,*} × 3 dtypes).

    ``sizes`` optionally overrides ``size`` per position (see
    :data:`BENCH_SIZES`).  With ``skip_invalid`` (default), type-invalid
    combinations (bitwise operators on floating types) are silently
    dropped, so ``ops=ALL_OPS, ctypes=ALL_CTYPES`` yields the paper's full
    coverage claim as a runnable grid.
    """
    from repro.errors import AnalysisError

    out = []
    for pos in positions:
        sz = (sizes or {}).get(pos, size)
        for op in ops:
            for ct in ctypes:
                try:
                    out.append(make_case(pos, op, ct, size=sz, seed=seed))
                except AnalysisError:
                    if not skip_invalid:
                        raise
    return out


# ---------------------------------------------------------------------------
# per-position builders
# ---------------------------------------------------------------------------

def _combine_axis(red, dtype, init_scalar, arr, axis=None):
    """Reference: fold ``arr`` (flattened over ``axis``) onto ``init``."""
    return red.np_combine(init_scalar, red.np_reduce(np.asarray(arr).ravel(),
                                                     dtype), dtype)


def _case_gang(position, op, ctype, dtype, red, init, size, seed):
    NK, NJ, NI = size, 2, 32
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} temp[NK][NJ][NI];
    {ctype} sum = {init};
    #pragma acc parallel copyin(input) create(temp)
    {{
      #pragma acc loop gang reduction({op}:sum)
      for(k=0; k<NK; k++){{
        #pragma acc loop worker
        for(j=0; j<NJ; j++){{
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            temp[k][j][i] = input[k][j][i];
        }}
        {_accum(op, "sum", "temp[k][0][0]", dtype)}
      }}
    }}
    """

    def make_inputs(rng):
        inp = _gen_data(op, (NK, NJ, NI), dtype, rng)
        return {"input": inp, "temp": np.zeros_like(inp)}

    def expected(inputs):
        val = _combine_axis(red, dtype, dtype.np.type(init),
                            inputs["input"][:, 0, 0])
        return [("scalar", "sum", val)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _case_worker(position, op, ctype, dtype, red, init, size, seed):
    NK, NJ, NI = 2, size, 32
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copy(temp)
    {{
      #pragma acc loop gang
      for(k=0; k<NK; k++){{
        {ctype} j_sum = k + 1;
        #pragma acc loop worker reduction({op}:j_sum)
        for(j=0; j<NJ; j++){{
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            temp[k][j][i] = input[k][j][i];
          {_accum(op, "j_sum", "temp[k][j][0]", dtype)}
        }}
        temp[k][0][0] = j_sum;
      }}
    }}
    """

    def make_inputs(rng):
        inp = _gen_data(op, (NK, NJ, NI), dtype, rng)
        return {"input": inp, "temp": np.zeros_like(inp)}

    def expected(inputs):
        inp = inputs["input"]
        out = inp.copy()
        for k in range(NK):
            out[k, 0, 0] = _combine_axis(red, dtype, dtype.np.type(k + 1),
                                         inp[k, :, 0])
        return [("array", "temp", out)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _case_vector(position, op, ctype, dtype, red, init, size, seed):
    NK, NJ, NI = 2, 32, size
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copyout(temp)
    {{
      #pragma acc loop gang
      for(k=0; k<NK; k++){{
        #pragma acc loop worker
        for(j=0; j<NJ; j++){{
          {ctype} i_sum = j + 1;
          #pragma acc loop vector reduction({op}:i_sum)
          for(i=0; i<NI; i++)
            {_accum(op, "i_sum", "input[k][j][i]", dtype)}
          temp[k][j][0] = i_sum;
        }}
      }}
    }}
    """

    def make_inputs(rng):
        inp = _gen_data(op, (NK, NJ, NI), dtype, rng)
        return {"input": inp, "temp": np.zeros_like(inp)}

    def expected(inputs):
        inp = inputs["input"]
        out = np.zeros_like(inp)
        for k in range(NK):
            for j in range(NJ):
                out[k, j, 0] = _combine_axis(red, dtype,
                                             dtype.np.type(j + 1),
                                             inp[k, j, :])
        return [("array", "temp", out)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _split_size(size: int, outer_cap: int) -> tuple[int, int]:
    outer = min(outer_cap, size)
    inner = max(1, size // outer)
    return outer, inner


def _case_gang_worker(position, op, ctype, dtype, red, init, size, seed):
    NK, NJ = _split_size(size, 32)
    NI = 32
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} temp[NK][NJ][NI];
    {ctype} sum = {init};
    #pragma acc parallel copyin(input) create(temp)
    {{
      #pragma acc loop gang reduction({op}:sum)
      for(k=0; k<NK; k++){{
        #pragma acc loop worker
        for(j=0; j<NJ; j++){{
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            temp[k][j][i] = input[k][j][i];
          {_accum(op, "sum", "temp[k][j][0]", dtype)}
        }}
      }}
    }}
    """

    def make_inputs(rng):
        inp = _gen_data(op, (NK, NJ, NI), dtype, rng)
        return {"input": inp, "temp": np.zeros_like(inp)}

    def expected(inputs):
        val = _combine_axis(red, dtype, dtype.np.type(init),
                            inputs["input"][:, :, 0])
        return [("scalar", "sum", val)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _case_worker_vector(position, op, ctype, dtype, red, init, size, seed):
    NK, NJ = 2, 32
    NI = max(1, size // NJ)
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} out[NK];
    #pragma acc parallel copyin(input) copyout(out)
    {{
      #pragma acc loop gang
      for(k=0; k<NK; k++){{
        {ctype} j_sum = k + 1;
        #pragma acc loop worker reduction({op}:j_sum)
        for(j=0; j<NJ; j++){{
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            {_accum(op, "j_sum", "input[k][j][i]", dtype)}
        }}
        out[k] = j_sum;
      }}
    }}
    """

    def make_inputs(rng):
        inp = _gen_data(op, (NK, NJ, NI), dtype, rng)
        return {"input": inp, "out": np.zeros(NK, dtype=dtype.np)}

    def expected(inputs):
        inp = inputs["input"]
        out = np.array([_combine_axis(red, dtype, dtype.np.type(k + 1),
                                      inp[k]) for k in range(NK)],
                       dtype=dtype.np)
        return [("array", "out", out)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _case_gang_worker_vector(position, op, ctype, dtype, red, init, size,
                             seed):
    NK, NJ = 8, 8
    NI = max(1, size // (NK * NJ))
    src = f"""
    {ctype} input[NK][NJ][NI];
    {ctype} sum = {init};
    #pragma acc parallel copyin(input)
    {{
      #pragma acc loop gang reduction({op}:sum)
      for(k=0; k<NK; k++){{
        #pragma acc loop worker
        for(j=0; j<NJ; j++){{
          #pragma acc loop vector
          for(i=0; i<NI; i++)
            {_accum(op, "sum", "input[k][j][i]", dtype)}
        }}
      }}
    }}
    """

    def make_inputs(rng):
        return {"input": _gen_data(op, (NK, NJ, NI), dtype, rng)}

    def expected(inputs):
        val = _combine_axis(red, dtype, dtype.np.type(init),
                            inputs["input"])
        return [("scalar", "sum", val)]

    return ReductionCase(position, op, ctype, size, src,
                         dict(NK=NK, NJ=NJ, NI=NI), make_inputs, expected)


def _case_same_line(position, op, ctype, dtype, red, init, size, seed):
    n = size
    src = f"""
    {ctype} a[n];
    {ctype} sum = {init};
    #pragma acc parallel copyin(a)
    #pragma acc loop gang worker vector reduction({op}:sum)
    for(i=0; i<n; i++)
      {_accum(op, "sum", "a[i]", dtype)}
    """

    def make_inputs(rng):
        return {"a": _gen_data(op, (n,), dtype, rng)}

    def expected(inputs):
        val = _combine_axis(red, dtype, dtype.np.type(init), inputs["a"])
        return [("scalar", "sum", val)]

    return ReductionCase(position, op, ctype, size, src, dict(n=n),
                         make_inputs, expected)


_BUILDERS = {
    "gang": _case_gang,
    "worker": _case_worker,
    "vector": _case_vector,
    "gang worker": _case_gang_worker,
    "worker vector": _case_worker_vector,
    "gang worker vector": _case_gang_worker_vector,
    "same line gang worker vector": _case_same_line,
}
