"""Testsuite sweep: the Table 2 generator.

Runs the full case grid under each compiler profile and renders the results
in the shape of the paper's Table 2 (rows = reduction position × operator,
column groups = data type, columns = compilers; cells = modeled ms, ``F``
for a wrong result, ``CE`` for a compile error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.testsuite.cases import (
    ALL_CTYPES, ALL_OPS, POSITIONS, TABLE2_CTYPES, TABLE2_OPS,
    generate_cases,
)
from repro.testsuite.verify import CaseResult, run_case

__all__ = ["TestsuiteReport", "run_testsuite"]

DEFAULT_COMPILERS = ("openuh", "vendor-b", "vendor-a")  # paper column order


@dataclass
class TestsuiteReport:
    """All (case, compiler) results plus Table 2 rendering."""

    results: list[CaseResult] = field(default_factory=list)
    compilers: tuple[str, ...] = DEFAULT_COMPILERS

    def get(self, position: str, op: str, ctype: str,
            compiler: str) -> CaseResult:
        for r in self.results:
            if (r.case.position == position and r.case.op == op
                    and r.case.ctype == ctype and r.compiler == compiler):
                return r
        raise KeyError((position, op, ctype, compiler))

    def pass_count(self, compiler: str) -> int:
        return sum(1 for r in self.results
                   if r.compiler == compiler and r.passed)

    def total(self, compiler: str) -> int:
        return sum(1 for r in self.results if r.compiler == compiler)

    def to_table(self) -> str:
        """Render in the shape of the paper's Table 2."""
        comps = list(self.compilers)
        ctypes = [c for c in ALL_CTYPES
                  if any(r.case.ctype == c for r in self.results)]
        ops = [o for o in ALL_OPS
               if any(r.case.op == o for r in self.results)]
        positions = [p for p in POSITIONS
                     if any(r.case.position == p for r in self.results)]
        colw = 10
        lines = []
        header1 = f"{'Position':<30}{'Op':<4}"
        header2 = " " * 34
        for ct in ctypes:
            header1 += f"{ct.capitalize():^{colw * len(comps)}}"
            for comp in comps:
                header2 += f"{comp:^{colw}}"
        lines.append(header1)
        lines.append(header2)
        lines.append("-" * len(header2))
        for pos in positions:
            for op in ops:
                row = f"{pos:<30}{op:<4}"
                for ct in ctypes:
                    for comp in comps:
                        try:
                            cell = self.get(pos, op, ct, comp).cell()
                        except KeyError:
                            cell = "-"
                        row += f"{cell:^{colw}}"
                lines.append(row)
        lines.append("-" * len(header2))
        summary = ", ".join(
            f"{comp}: {self.pass_count(comp)}/{self.total(comp)} passed"
            for comp in comps)
        lines.append(summary)
        return "\n".join(lines)


def run_testsuite(compilers=DEFAULT_COMPILERS, positions=POSITIONS,
                  ops=TABLE2_OPS, ctypes=TABLE2_CTYPES, size: int = 2048,
                  sizes: dict | None = None,
                  num_gangs: int | None = None,
                  num_workers: int | None = None,
                  vector_length: int | None = None,
                  progress=None, profiler=None,
                  metrics=None, executor_mode: str | None = None,
                  block_batch: int | None = None,
                  attribution: bool = False) -> TestsuiteReport:
    """Run the grid; ``progress`` (if given) is called per finished case.

    ``profiler`` (a :class:`repro.obs.Profiler`) accumulates kernel
    records and spans across every case; ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`, defaulting to the profiler's when
    one is attached) tallies per-compiler case outcomes under
    ``testsuite.*`` names.
    """
    if metrics is None and profiler is not None:
        metrics = profiler.metrics
    report = TestsuiteReport(compilers=tuple(compilers))
    cases = generate_cases(positions=positions, ops=ops, ctypes=ctypes,
                           size=size, sizes=sizes)
    for case in cases:
        for comp in compilers:
            r = run_case(case, comp, num_gangs=num_gangs,
                         num_workers=num_workers,
                         vector_length=vector_length, profiler=profiler,
                         executor_mode=executor_mode,
                         block_batch=block_batch, attribution=attribution)
            report.results.append(r)
            if metrics is not None:
                metrics.counter("testsuite.cases").inc()
                metrics.counter(
                    f"testsuite.{r.status}.{r.compiler}").inc()
                if r.modeled_ms is not None:
                    metrics.histogram(
                        f"testsuite.kernel_ms.{r.compiler}").observe(
                            r.modeled_ms)
            if progress:
                progress(r)
    return report
