"""The pass-manager compilation pipeline.

``acc.compile`` drives a :class:`PassManager` over a mutable
:class:`CompileState`; passes are registered by name in
:mod:`repro.passes.frontend` (parse → … → lower),
:mod:`repro.passes.autotune` (cost-model strategy selection) and
:mod:`repro.passes.kernelopt` (kernel-IR rewrites + sid stamping).
See :mod:`repro.passes.manager` for pipeline resolution
(``pipeline=`` argument > ``REPRO_PASSES`` > compiler profile).
"""

from repro.passes.manager import (
    OPTIONAL_PASSES,
    PASS_REGISTRY,
    PIPELINES,
    CompileState,
    Pass,
    PassManager,
    PassRecord,
    PipelineSpec,
    register_pass,
    resolve_pipeline,
)

__all__ = [
    "OPTIONAL_PASSES",
    "PASS_REGISTRY",
    "PIPELINES",
    "CompileState",
    "Pass",
    "PassManager",
    "PassRecord",
    "PipelineSpec",
    "register_pass",
    "resolve_pipeline",
]
