"""Frontend and lowering passes (the pre-pass-manager compile phases).

Each pass wraps exactly the work the old ``acc.compile`` phase did, so the
``minimal`` pipeline is behaviour-identical to the historical compiler:
parse → build-ir → auto-parallelize → resolve-geometry → analyze → lower.
The lowering pass runs with ``stamp=False`` — sid stamping is the
pipeline's final ``stamp-sids`` pass (:mod:`repro.passes.kernelopt`), so
optimization passes never see (or have to maintain) stale statement ids.
"""

from __future__ import annotations

from repro.errors import UnsupportedReductionError
from repro.passes.manager import CompileState, register_pass

__all__ = []


@register_pass("parse", "frontend", "parse the C-subset OpenACC source")
def run_parse(state: CompileState):
    from repro.frontend.cparser import parse_region
    state.cregion = parse_region(state.source)
    return None


@register_pass("build-ir", "frontend", "build the loop-nest region IR")
def run_build_ir(state: CompileState):
    from repro.ir.builder import build_region
    state.region = build_region(state.cregion,
                                array_dtypes=state.array_dtypes)
    return f"{state.region.kind} region"


@register_pass("auto-parallelize", "frontend",
               "schedule `kernels` regions (§2.1 leaves it to the compiler)")
def run_auto_parallelize(state: CompileState):
    if state.region.kind != "kernels":
        return "not a kernels region (no-op)"
    from repro.ir.autopar import auto_parallelize
    state.region = auto_parallelize(state.region)
    return "assigned loop levels"


@register_pass("resolve-geometry", "frontend",
               "resolve the launch geometry (directives, overrides, device)")
def run_resolve_geometry(state: CompileState):
    from repro.acc.launchconfig import resolve_geometry
    r = state.region
    state.geometry = resolve_geometry(
        r.num_gangs, r.num_workers, r.vector_length,
        state.num_gangs, state.num_workers, state.vector_length,
        state.device)
    g = state.geometry
    return (f"{g.num_gangs} gangs x {g.num_workers} workers x "
            f"{g.vector_length} vector")


@register_pass("analyze", "frontend",
               "reduction-span analysis + profile supported-shape check")
def run_analyze(state: CompileState):
    from repro.ir.analysis import analyze_region
    geom = state.geometry
    state.plan = analyze_region(state.region,
                                num_workers=geom.num_workers,
                                vector_length=geom.vector_length,
                                infer_span=state.profile.infers_span)
    for info in state.plan.all_reductions:
        reason = state.profile.unsupported(info.span, info.same_line,
                                           info.op.token, info.dtype)
        if reason:
            raise UnsupportedReductionError(
                f"{state.profile.name}: {reason} (variable {info.var!r})")
    n = len(state.plan.all_reductions)
    return f"{n} reduction(s)"


@register_pass("lower", "lower",
               "lower the region plan to kernels (sids stamped later)")
def run_lower(state: CompileState):
    from repro.codegen.lowering import lower_region
    state.lowered = lower_region(state.plan, state.geometry, state.options,
                                 selector=state.selector, stamp=False)
    names = [k.name for k in state.lowered.kernels]
    return f"{len(names)} kernel(s): {', '.join(names)}"
