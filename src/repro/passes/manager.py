"""The pass manager: compilation as a sequence of named, toggleable passes.

``acc.compile`` used to hard-wire its phases; the pass manager makes the
pipeline explicit data instead.  A :class:`PipelineSpec` names an ordered
list of registered passes; :class:`PassManager` runs them over a mutable
:class:`CompileState`, records per-pass wall time (and, on request,
before/after IR listings for ``--dump-ir`` / ``repro explain``), emits one
profiler phase span per pass, and runs the kernel-IR verifier after every
pass that produces or rewrites kernels — so a broken rewrite is pinned to
the pass that made it, not to a downstream simulator crash.

Pipeline resolution (strongest wins):

1. an explicit ``pipeline=`` argument to :func:`resolve_pipeline` /
   ``acc.compile``;
2. the ``REPRO_PASSES`` environment variable (a pipeline name, or a comma
   list of optional optimization passes to enable on top of the minimal
   pipeline — e.g. ``REPRO_PASSES=fuse-finish,eliminate-barriers``);
3. the compiler profile's ``pipeline`` field (``optimized`` for the
   OpenUH-like profile; the defect-modelling vendor profiles pin
   ``minimal`` because optimizing deliberately wrong code would be
   unfaithful to the baselines they reproduce).

The ``minimal`` pipeline is frontend + lowering + sid stamping only and is
pinned bit-identical in results to the pre-pass-manager compiler; the
``optimized`` pipeline adds the cost-model autotuner and the kernel-IR
optimization stage (see :mod:`repro.passes.kernelopt`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.gpu.kernelir import dump as dump_kernel, verify_kernel
from repro.obs import timeline as _timeline

__all__ = ["Pass", "PassRecord", "CompileState", "PipelineSpec",
           "PassManager", "PIPELINES", "PASS_REGISTRY", "OPTIONAL_PASSES",
           "register_pass", "resolve_pipeline"]


@dataclass(frozen=True)
class Pass:
    """One registered compilation pass.

    ``kind`` drives the manager's bookkeeping:

    * ``"frontend"`` — builds/refines the loop-nest IR (no kernels yet);
    * ``"lower"``    — produces ``state.lowered`` (kernels, unstamped);
    * ``"kernelopt"``— rewrites kernels in ``state.lowered``;
    * ``"finalize"`` — the sid-stamping pass (verifier expects dense sids
      afterwards).

    ``fn(state)`` mutates the state and returns a short human-readable
    note (or ``None``).
    """

    name: str
    kind: str
    fn: object
    description: str = ""


@dataclass
class PassRecord:
    """What one pass did: timing, note, optional before/after listings."""

    name: str
    kind: str
    wall_ms: float
    note: str = ""
    before: dict[str, str] | None = None  # listing name -> text
    after: dict[str, str] | None = None

    @property
    def changed(self) -> bool:
        return self.before is not None and self.before != self.after


@dataclass
class CompileState:
    """The mutable state threaded through the pipeline."""

    source: str
    profile: object  # CompilerProfile (kept loose to avoid an import cycle)
    device: object  # DeviceProperties
    options: object  # LoweringOptions
    array_dtypes: dict | None = None
    # launch-geometry overrides from the compile() call
    num_gangs: int | None = None
    num_workers: int | None = None
    vector_length: int | None = None
    #: LoweringOptions field names the caller overrode explicitly —
    #: the autotuner must not second-guess these
    pinned_options: frozenset = frozenset()
    # produced by the frontend passes
    cregion: object | None = None
    region: object | None = None
    geometry: object | None = None
    plan: object | None = None
    # produced by autotune (consumed by the lowering pass)
    selector: object | None = None
    autotune: dict = field(default_factory=dict)
    # produced by the lowering + kernel-opt passes
    lowered: object | None = None
    #: produced by the trace-codegen pass: kernel name -> generated
    #: NumPy source for the trace executor (eligible kernels only)
    trace_src: dict = field(default_factory=dict)
    # bookkeeping
    pipeline: str = ""
    records: list[PassRecord] = field(default_factory=list)


@dataclass(frozen=True)
class PipelineSpec:
    """An ordered list of registered pass names."""

    name: str
    passes: tuple[str, ...]

    def options_key(self) -> tuple:
        """Hashable fingerprint for compile/launch caches."""
        return (self.name, self.passes)


PASS_REGISTRY: dict[str, Pass] = {}


def register_pass(name: str, kind: str, description: str = ""):
    """Decorator registering ``fn`` as pipeline pass ``name``."""
    def deco(fn):
        PASS_REGISTRY[name] = Pass(name=name, kind=kind, fn=fn,
                                   description=description)
        return fn
    return deco


_FRONTEND = ("parse", "build-ir", "auto-parallelize", "resolve-geometry",
             "analyze")

#: optimization passes a ``REPRO_PASSES`` comma list may toggle, in the
#: canonical order the optimized pipeline runs them
OPTIONAL_PASSES = ("autotune", "cascade-fusion", "fuse-finish",
                   "fold-constants", "eliminate-barriers")

PIPELINES: dict[str, PipelineSpec] = {
    "minimal": PipelineSpec(
        "minimal", _FRONTEND + ("lower", "stamp-sids", "trace-codegen")),
    "optimized": PipelineSpec(
        "optimized",
        _FRONTEND + ("autotune", "lower", "cascade-fusion", "fuse-finish",
                     "fold-constants", "eliminate-barriers", "stamp-sids",
                     "trace-codegen")),
}


def resolve_pipeline(pipeline=None, profile=None) -> PipelineSpec:
    """Resolve the pipeline to run: argument > ``REPRO_PASSES`` > profile.

    ``pipeline`` may be a :class:`PipelineSpec`, a pipeline name, or a
    comma list of :data:`OPTIONAL_PASSES` names to enable on top of the
    minimal pipeline (``""`` means minimal).
    """
    if isinstance(pipeline, PipelineSpec):
        return pipeline
    name = pipeline
    if name is None:
        name = os.environ.get("REPRO_PASSES")
    if name is None:
        name = getattr(profile, "pipeline", None) or "optimized"
    if name in PIPELINES:
        return PIPELINES[name]
    chosen = [p.strip() for p in name.split(",") if p.strip()]
    unknown = sorted(set(chosen) - set(OPTIONAL_PASSES))
    if unknown:
        raise ValueError(
            f"unknown pipeline/pass name(s) {unknown}; expected a pipeline "
            f"({', '.join(sorted(PIPELINES))}) or a comma list of "
            f"{', '.join(OPTIONAL_PASSES)}")
    passes = tuple(p for p in PIPELINES["optimized"].passes
                   if p not in OPTIONAL_PASSES or p in chosen)
    return PipelineSpec(f"custom:{'+'.join(chosen) or 'none'}", passes)


def _listing(state: CompileState) -> dict[str, str]:
    """The current IR, rendered: kernels once lowered, else the region."""
    if state.lowered is not None:
        return {k.name: dump_kernel(k) for k in state.lowered.kernels}
    if state.plan is not None:
        from repro.ir.pprint import format_plan
        return {"plan": format_plan(state.plan)}
    if state.region is not None:
        from repro.ir.pprint import format_region
        return {"region": format_region(state.region)}
    return {}


class PassManager:
    """Runs a :class:`PipelineSpec` over a :class:`CompileState`."""

    def __init__(self, spec: PipelineSpec, *, capture_ir: bool = False):
        self.spec = spec
        self.capture_ir = capture_ir
        missing = [n for n in spec.passes if n not in PASS_REGISTRY]
        if missing:  # pragma: no cover - registry is populated on import
            raise ValueError(f"unregistered pass(es): {missing}")

    def run(self, state: CompileState, profiler=None) -> CompileState:
        if _timeline.trace_active():
            # request tracing: group the per-pass spans under one
            # pipeline span in the current trace
            from repro.obs import trace as _reqtrace
            with _reqtrace.span("passes", f"pipeline:{self.spec.name}"):
                return self._run(state, profiler)
        return self._run(state, profiler)

    def _run(self, state: CompileState, profiler=None) -> CompileState:
        state.pipeline = self.spec.name
        for name in self.spec.passes:
            p = PASS_REGISTRY[name]
            before = _listing(state) if self.capture_ir else None
            span = (profiler.phase(name) if profiler is not None else None)
            t0 = time.perf_counter()
            if span is not None:
                with span:
                    note = p.fn(state)
            else:
                note = p.fn(state)
            wall_ms = (time.perf_counter() - t0) * 1000.0
            if p.kind in ("lower", "kernelopt", "finalize") \
                    and state.lowered is not None:
                for kernel in state.lowered.kernels:
                    verify_kernel(kernel, expect_sids=(p.kind == "finalize"))
            state.records.append(PassRecord(
                name=name, kind=p.kind, wall_ms=wall_ms, note=note or "",
                before=before,
                after=_listing(state) if self.capture_ir else None))
            tl = _timeline.current()
            if tl is not None:
                tl.span("passes", f"pass:{name}", wall_ms * 1000.0,
                        pass_kind=p.kind, pipeline=self.spec.name,
                        note=note or "")
        return state


# importing the pass modules populates PASS_REGISTRY
from repro.passes import frontend as _frontend  # noqa: E402,F401
from repro.passes import autotune as _autotune  # noqa: E402,F401
from repro.passes import cascade as _cascade  # noqa: E402,F401
from repro.passes import kernelopt as _kernelopt  # noqa: E402,F401
from repro.passes import tracegen as _tracegen  # noqa: E402,F401
