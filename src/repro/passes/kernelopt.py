"""Kernel-IR optimization passes.

Four rewrites over :mod:`repro.gpu.kernelir`, each pinned bit-identical in
*results* to the unoptimized pipeline (the differential testsuite grid
compares every case under ``minimal`` vs ``optimized`` on both executors):

``fuse-finish``
    RedFuser-style finish-kernel fusion: fold the gang-reduction finish
    kernel back into the main kernel as a last-block epilogue.  The
    epilogue emulates the finish kernel's exact combine tree over
    *virtual lanes* — thread ``t`` plays finish-thread ``t``, ``t+ntid``,
    ``t+2·ntid``, … — so the floating-point combination order (and hence
    every result bit) is identical to the separate launch, for any block
    geometry.  Within each tree step the written lanes (``< s``) and the
    cross-lane reads (``[s, 2s)``) are disjoint, so re-partitioning lanes
    onto threads cannot reorder any combine.  Saves one kernel launch and
    the finish kernel's whole time per reduction.
``fold-constants``
    Integer identity/constant folding (``x+0``, ``x*1``, ``x*0``,
    const⊕const with C wraparound) plus two value-preserving cleanups:
    dead-temp elimination (pure ``Assign`` to a register never read) and
    dead-overwrite elimination (an ``Assign`` whose value is overwritten
    in the same block before any read).  Loads are never removed — their
    memory-counter side effects are modeled cost.
``eliminate-barriers``
    Redundant ``__syncthreads`` removal: every barrier in a single-warp
    block (``ntid ≤ 32``), barriers with no shared/global memory access
    since the previous barrier, and trailing barriers with no memory
    access after them.  In the simulator barriers only cost time and
    check divergence, and the lowering emits only block-uniform barriers,
    so removal never changes results; the rules mirror what is legal on
    warp-synchronous hardware.
``stamp-sids``
    The finalize pass: stamp dense pre-order statement ids on every
    kernel.  Running it last (instead of inside the lowering) is what
    lets the rewrites above splice statements freely while attribution
    and the launch cache still see dense, stable ids.
"""

from __future__ import annotations

import dataclasses

from repro.dtypes import DType
from repro.gpu import kernelir as K
from repro.obs import timeline as _timeline
from repro.codegen.reduction.treeutil import prev_pow2
from repro.passes.manager import CompileState, register_pass

__all__ = ["eliminate_barriers", "fold_kernel", "fuse_finish_kernels"]


def _map_kernels(lowered, fn):
    """Rebuild a LoweredProgram with ``fn`` applied to every kernel."""
    specs = [dataclasses.replace(
        g,
        finish_kernel=fn(g.finish_kernel) if g.finish_kernel is not None
        else None,
        init_kernel=fn(g.init_kernel) if g.init_kernel is not None
        else None)
        for g in lowered.gang_reductions]
    return dataclasses.replace(
        lowered,
        main_kernel=fn(lowered.main_kernel),
        stage_kernels=tuple(fn(k) for k in lowered.stage_kernels),
        gang_reductions=specs)


# --------------------------------------------------------------------------
# stamp-sids (the finalize pass)
# --------------------------------------------------------------------------

@register_pass("stamp-sids", "finalize",
               "stamp dense pre-order statement ids on every kernel")
def run_stamp_sids(state: CompileState):
    state.lowered = _map_kernels(state.lowered, K.stamp_sids)
    n = len(state.lowered.kernels)
    return f"stamped {n} kernel(s)"


# --------------------------------------------------------------------------
# eliminate-barriers
# --------------------------------------------------------------------------

def _touches_memory(s: K.Stmt) -> bool:
    if isinstance(s, (K.GLoad, K.GStore, K.SLoad, K.SStore, K.AtomicUpdate)):
        return True
    if isinstance(s, K.If):
        return any(_touches_memory(c) for c in s.then + s.orelse)
    if isinstance(s, (K.While, K.UniformWhile)):
        return any(_touches_memory(c) for c in s.body)
    return False


def eliminate_barriers(kernel: K.Kernel, ntid: int) -> tuple[K.Kernel, int]:
    """Remove redundant ``__syncthreads`` from one kernel.

    ``ntid`` is the block size the kernel launches with.  Returns the
    rewritten kernel and the number of barriers removed.
    """
    removed = 0

    if ntid <= 32:
        # the whole block is one warp: every barrier is redundant
        def drop(s):
            nonlocal removed
            if isinstance(s, K.Sync):
                removed += 1
                return None
            return s
        return dataclasses.replace(
            kernel, body=K.transform_block(kernel.body, drop)), removed

    def clean(stmts: tuple[K.Stmt, ...], top: bool) -> tuple[K.Stmt, ...]:
        nonlocal removed
        out: list[K.Stmt] = []
        # True = some memory access happened since the last barrier (or
        # since block entry, which we must treat conservatively)
        mem_since_sync = True
        for s in stmts:
            if isinstance(s, K.If):
                s = dataclasses.replace(s, then=clean(s.then, False),
                                        orelse=clean(s.orelse, False))
            elif isinstance(s, (K.While, K.UniformWhile)):
                s = dataclasses.replace(s, body=clean(s.body, False))
            if isinstance(s, K.Sync):
                if not mem_since_sync:
                    removed += 1
                    continue
                mem_since_sync = False
            elif _touches_memory(s):
                mem_since_sync = True
            out.append(s)
        if top:
            # trailing barriers order nothing: no memory access follows
            i = len(out) - 1
            while i >= 0:
                s = out[i]
                if isinstance(s, K.Sync):
                    del out[i]
                    removed += 1
                elif _touches_memory(s):
                    break
                i -= 1
        return tuple(out)

    return dataclasses.replace(kernel, body=clean(kernel.body, True)), removed


@register_pass("eliminate-barriers", "kernelopt",
               "remove redundant __syncthreads (single-warp blocks, "
               "back-to-back and trailing barriers)")
def run_eliminate_barriers(state: CompileState):
    lowered = state.lowered
    ntid_main = lowered.geometry.threads_per_block
    fbs = lowered.options.finish_block_size
    total = 0

    def rewrite(kernel):
        nonlocal total
        # region-stage kernels launch with the main geometry; only the
        # reduction init/finish helpers use the finish block size
        ntid = fbs if kernel.name.startswith("acc_reduction_") else ntid_main
        kernel, n = eliminate_barriers(kernel, ntid)
        total += n
        return kernel

    state.lowered = _map_kernels(lowered, rewrite)
    return f"removed {total} barrier(s)"


# --------------------------------------------------------------------------
# fold-constants (+ dead temps, dead overwrites)
# --------------------------------------------------------------------------

_INT_DTYPES = (DType.INT, DType.LONG)


def _is_int_const(e, value=None) -> bool:
    return (isinstance(e, K.Const) and e.dtype in _INT_DTYPES
            and (value is None or int(e.value) == value))


def _intlike(e: K.Expr) -> bool:
    """Conservatively: does ``e`` evaluate to an integer?

    Specials (thread/block indices and dims) are ints; everything the
    folds must not touch — registers of unknown type, float constants,
    calls — answers ``False``.  Mixed int/float arithmetic promotes in C,
    so ``x + 0`` with float ``x`` is a *float* addition and folding it
    would turn ``-0.0`` into ``+0.0``; these guards restrict the identity
    rewrites to provably-integer contexts (index arithmetic and integer
    reductions).
    """
    if isinstance(e, K.Const):
        return e.dtype in _INT_DTYPES
    if isinstance(e, K.Special):
        return True
    if isinstance(e, K.Cast):
        return e.dtype in _INT_DTYPES
    if isinstance(e, K.Bin):
        return _intlike(e.a) and _intlike(e.b)
    if isinstance(e, K.Un):
        return _intlike(e.a)
    return False


def _fold_expr(e: K.Expr) -> K.Expr:
    if not isinstance(e, K.Bin):
        return e
    a, b = e.a, e.b
    # integer identities (exact; float identities are not bit-safe:
    # -0.0 + 0.0 == +0.0 and NaN*0 != 0 — and mixed int/float promotes,
    # so the surviving operand must itself be integer-typed)
    if e.op == "+":
        if _is_int_const(b, 0) and _intlike(a):
            return a
        if _is_int_const(a, 0) and _intlike(b):
            return b
    if e.op == "*":
        if _is_int_const(b, 1) and _intlike(a):
            return a
        if _is_int_const(a, 1) and _intlike(b):
            return b
        if _is_int_const(b, 0) and _intlike(a):
            return b
        if _is_int_const(a, 0) and _intlike(b):
            return a
    if e.op in ("+", "-", "*") and _is_int_const(a) and _is_int_const(b) \
            and a.dtype is b.dtype:
        import numpy as np
        with np.errstate(over="ignore"):
            av = a.dtype.np.type(a.value)
            bv = b.dtype.np.type(b.value)
            v = {"+": av + bv, "-": av - bv, "*": av * bv}[e.op]
        return K.Const(v, a.dtype)
    return e


def _rebuild_exprs(s: K.Stmt, fn) -> K.Stmt:
    if isinstance(s, K.Assign):
        return dataclasses.replace(s, value=K.map_expr(s.value, fn))
    if isinstance(s, K.GLoad):
        return dataclasses.replace(s, index=K.map_expr(s.index, fn))
    if isinstance(s, K.GStore):
        return dataclasses.replace(s, index=K.map_expr(s.index, fn),
                                   value=K.map_expr(s.value, fn))
    if isinstance(s, K.SLoad):
        return dataclasses.replace(s, index=K.map_expr(s.index, fn))
    if isinstance(s, K.SStore):
        return dataclasses.replace(s, index=K.map_expr(s.index, fn),
                                   value=K.map_expr(s.value, fn))
    if isinstance(s, (K.If, K.While, K.UniformWhile)):
        return dataclasses.replace(s, cond=K.map_expr(s.cond, fn))
    if isinstance(s, K.AtomicUpdate):
        return dataclasses.replace(s, index=K.map_expr(s.index, fn),
                                   value=K.map_expr(s.value, fn))
    return s


def _drop_dead_overwrites(stmts: tuple[K.Stmt, ...], counter) -> tuple:
    """Remove ``Assign(x, e)`` overwritten in the same block before any
    read of ``x`` (catches the firstprivate materialization of reduction
    scalars that the reduction entry immediately resets to the identity).
    """
    out: list[K.Stmt] = []
    for i, s in enumerate(stmts):
        if isinstance(s, K.If):
            s = dataclasses.replace(
                s, then=_drop_dead_overwrites(s.then, counter),
                orelse=_drop_dead_overwrites(s.orelse, counter))
        elif isinstance(s, (K.While, K.UniformWhile)):
            s = dataclasses.replace(
                s, body=_drop_dead_overwrites(s.body, counter))
        if isinstance(s, K.Assign):
            dead = False
            for t in stmts[i + 1:]:
                if s.dst in K.stmt_reads(t, recurse=True):
                    break
                if K.stmt_writes(t) == s.dst:
                    dead = True  # unconditional overwrite, no read between
                    break
                if isinstance(t, (K.If, K.While, K.UniformWhile)):
                    continue  # no read inside; a nested write is guarded
            if dead:
                counter[0] += 1
                continue
        out.append(s)
    return tuple(out)


def fold_kernel(kernel: K.Kernel) -> tuple[K.Kernel, int]:
    """Constant-fold + dead-temp + dead-overwrite one kernel.

    Returns the rewritten kernel and a count of changes applied.
    """
    changes = [0]

    def fold(e):
        f = _fold_expr(e)
        if f is not e:
            changes[0] += 1
        return f

    body = K.transform_block(kernel.body,
                             lambda s: _rebuild_exprs(s, fold))
    body = _drop_dead_overwrites(body, changes)

    # dead-temp elimination to a fixpoint: removing one dead Assign can
    # kill the registers its value read
    while True:
        read: set[str] = set()
        for s, _ in K.walk_stmts(body):
            read |= K.stmt_reads(s)

        removed = [0]

        def dce(s):
            # only pure Assigns: loads carry modeled memory-counter cost
            if isinstance(s, K.Assign) and s.dst not in read:
                removed[0] += 1
                return None
            return s

        body = K.transform_block(body, dce)
        if not removed[0]:
            break
        changes[0] += removed[0]

    return dataclasses.replace(kernel, body=body), changes[0]


@register_pass("fold-constants", "kernelopt",
               "integer constant folding, dead temps, dead overwrites")
def run_fold_constants(state: CompileState):
    total = 0

    def rewrite(kernel):
        nonlocal total
        kernel, n = fold_kernel(kernel)
        total += n
        return kernel

    state.lowered = _map_kernels(state.lowered, rewrite)
    return f"{total} rewrite(s)"


# --------------------------------------------------------------------------
# fuse-finish (RedFuser-style finish-kernel fusion)
# --------------------------------------------------------------------------

def _fused_epilogue(gi: int, g, n: int, fbs: int, ntid: int,
                    arr: str, elide_warp_sync: bool) -> list[K.Stmt]:
    """The last-block epilogue emulating ``g``'s finish kernel.

    Thread ``t`` owns virtual lanes ``t, t+ntid, t+2·ntid, …  < fbs`` and
    replays, lane for lane, exactly what finish-thread ``lane`` would do:
    strided accumulation over the ``n`` partials, then the interleaved
    log-step tree over ``fbs`` staged values.  Identical lane→value
    mapping ⇒ identical combination order ⇒ bit-identical result.
    """
    op, dtype = g.op, g.dtype
    tid = K.Special("tid")
    nlanes = -(-fbs // ntid)  # virtual lanes per thread (ceil)

    def lane(k: int) -> K.Expr:
        return tid if k == 0 else K.Bin("+", tid, K.const_int(k * ntid))

    out: list[K.Stmt] = [
        K.Comment(f"fused finish kernel: reduce the {n} partials of "
                  f"{g.var!r} in the last block"),
    ]
    # per-lane strided accumulation + staging (finish kernel's While loop)
    for k in range(nlanes):
        acc, iv, ld = (f"_ff{gi}k{k}_acc", f"_ff{gi}k{k}_i",
                       f"_ff{gi}k{k}_ld")
        seq: tuple[K.Stmt, ...] = (
            K.Assign(acc, op.identity_const(dtype)),
            K.Assign(iv, lane(k)),
            K.While(K.Bin("<", K.Reg(iv), K.const_int(n)), (
                K.GLoad(ld, g.partial_buf, K.Reg(iv)),
                K.Assign(acc, op.combine(K.Reg(acc), K.Reg(ld), dtype)),
                K.Assign(iv, K.Bin("+", K.Reg(iv), K.const_int(fbs))),
            )),
            K.SStore(arr, lane(k), K.Reg(acc)),
        )
        if (k + 1) * ntid > fbs:  # this lane does not exist on all threads
            out.append(K.If(K.Bin("<", lane(k), K.const_int(fbs)), seq))
        else:
            out.extend(seq)

    t1, t2 = f"_ff{gi}_a", f"_ff{gi}_b"

    def combine_at(dst: K.Expr, src: K.Expr, active: K.Expr) -> K.Stmt:
        return K.If(active, (
            K.SLoad(t1, arr, dst),
            K.SLoad(t2, arr, src),
            K.SStore(arr, dst, op.combine(K.Reg(t1), K.Reg(t2), dtype)),
        ))

    out.append(K.Sync())  # order the staging stores before the tree

    p = prev_pow2(fbs)
    rem = fbs - p
    if rem:
        for k in range(nlanes):
            out.append(combine_at(lane(k),
                                  K.Bin("+", lane(k), K.const_int(p)),
                                  K.Bin("<", lane(k), K.const_int(rem))))
        if not elide_warp_sync or max(rem, p // 2) > 32:
            out.append(K.Sync())
    s = p // 2
    while s >= 1:
        for k in range(nlanes):
            if k * ntid >= s:
                break  # no thread owns an active lane at this k
            out.append(combine_at(lane(k),
                                  K.Bin("+", lane(k), K.const_int(s)),
                                  K.Bin("<", lane(k), K.const_int(s))))
        # a sync after step s orders the writes of lanes < s before the
        # next step's cross-lane reads; lanes < s live on threads < s, so
        # for s <= 32 those threads are one warp and the barrier is
        # elidable exactly as in the separate finish kernel (§3.1.2)
        if s > 1 and (not elide_warp_sync or s > 32):
            out.append(K.Sync())
        s //= 2

    out.append(K.If(K.Bin("==", tid, K.const_int(0)), (
        K.SLoad(f"_ff{gi}_res", arr, K.const_int(0)),
        K.GStore(g.result_buf, K.const_int(0), K.Reg(f"_ff{gi}_res")),
    )))
    return out


def fuse_finish_kernels(lowered, device) -> tuple[object, list[str]]:
    """Fuse every eligible finish kernel into the main kernel.

    Eligible: a buffer-style gang reduction (has a finish kernel) whose
    staged tree fits the device's shared-memory budget alongside the main
    kernel's existing arrays.  Returns the rewritten program and the list
    of fused reduction variables.
    """
    geom = lowered.geometry
    opts = lowered.options
    main = lowered.main_kernel
    sizes = {sb.name: sb.size for sb in lowered.scratch}

    body = list(main.body)
    shared = list(main.shared)
    buffers = set(main.buffers)
    specs = []
    fused: list[str] = []

    def skip(g, reason: str, **kw) -> None:
        tl = _timeline.current()
        if tl is not None:
            tl.decision("passes", f"fuse-finish:{g.var}", fused=False,
                        reason=reason, **kw)

    for gi, g in enumerate(lowered.gang_reductions):
        n = sizes.get(g.partial_buf)
        if g.finish_kernel is None or n is None:
            specs.append(g)
            continue
        if g.is_pair:
            # the epilogue replays a scalar combine tree; a pair's
            # conditional value-index combine has no logstep replay
            skip(g, "pair-reduction")
            specs.append(g)
            continue
        if g.stage != 0:
            # the partials only exist after the producing stage runs,
            # which is after the main kernel — nothing to fuse into here
            # (the cascade-fusion pass owns cross-stage folding)
            skip(g, "non-main-stage", stage=g.stage)
            specs.append(g)
            continue
        fbs = opts.finish_block_size
        arr = f"_sfin_{g.dtype.value}"
        new_shared = list(shared)
        if all(sa.name != arr for sa in new_shared):
            # overlays with the dead block-reduction buffers ("red"
            # group): the epilogue runs after their last use
            new_shared.append(K.SharedArraySpec(arr, g.dtype, fbs,
                                                overlay="red"))
        probe = dataclasses.replace(main, shared=tuple(new_shared))
        if probe.shared_bytes > device.shared_mem_per_block:
            skip(g, "shared-overflow", needed_bytes=probe.shared_bytes,
                 budget_bytes=device.shared_mem_per_block)
            specs.append(g)
            continue
        shared = new_shared
        body.append(K.If(
            K.Bin("==", K.Special("bx"), K.const_int(geom.num_gangs - 1)),
            tuple(_fused_epilogue(gi, g, n, fbs,
                                  geom.threads_per_block, arr,
                                  opts.elide_warp_sync))))
        buffers.add(g.result_buf)
        specs.append(dataclasses.replace(g, finish_kernel=None))
        fused.append(g.var)

    if not fused:
        return lowered, fused
    note = main.note
    note += ("; " if note else "") + \
        f"fused finish kernel(s): {', '.join(fused)}"
    new_main = dataclasses.replace(
        main, body=tuple(body), shared=tuple(shared),
        buffers=tuple(sorted(buffers)), note=note)
    return dataclasses.replace(lowered, main_kernel=new_main,
                               gang_reductions=specs), fused


@register_pass("fuse-finish", "kernelopt",
               "fold gang-reduction finish kernels into the main kernel "
               "as a last-block epilogue (RedFuser-style)")
def run_fuse_finish(state: CompileState):
    state.lowered, fused = fuse_finish_kernels(state.lowered, state.device)
    if not fused:
        return "no fusable finish kernels"
    return f"fused: {', '.join(fused)}"
