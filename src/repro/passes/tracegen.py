"""The trace-codegen pass: ahead-of-time NumPy source for eligible kernels.

The trace executor (:mod:`repro.gpu.executor_trace`) compiles a kernel
into a closed-over Python function of whole-array NumPy operations.  That
codegen is pure — it depends only on the (sid-stamped) kernel IR and the
device — so it belongs in the pass pipeline, not at first launch: running
it here means the generated source is carried on the
:class:`~repro.acc.compiler.Program`, survives the serve compile cache as
an artifact, and shows up in ``--dump-ir`` pass records like any other
compilation product.

The pass runs after ``stamp-sids`` (the emitted source references
statement sids for attribution batching) and only touches kernels whose
static :func:`~repro.gpu.executor_trace.analyze_trace_safety` proof says
they are trace-eligible; ineligible kernels are left alone and demote to
the batched executor at launch.  A codegen failure on an eligible kernel
is downgraded to a skip (the launch path falls back to lazy emission or
batched execution) so one bad kernel cannot poison an otherwise valid
compile.
"""

from __future__ import annotations

from repro.passes.manager import register_pass

__all__ = ["trace_codegen"]


@register_pass("trace-codegen", "finalize",
               "generate trace-executor NumPy source for eligible kernels")
def trace_codegen(state) -> str:
    from repro.gpu.executor_trace import (analyze_trace_safety,
                                          emit_trace_source)

    if state.lowered is None:  # pragma: no cover - pipeline order bug
        return "no lowered kernels"
    emitted, skipped = [], []
    for kernel in state.lowered.kernels:
        verdict = analyze_trace_safety(kernel)
        if not verdict.eligible:
            skipped.append(f"{kernel.name} ({verdict.reason})")
            continue
        try:
            state.trace_src[kernel.name] = emit_trace_source(
                kernel, state.device)
            emitted.append(kernel.name)
        except Exception as exc:  # pragma: no cover - defensive
            skipped.append(f"{kernel.name} (codegen failed: {exc})")
    parts = []
    if emitted:
        parts.append(f"emitted {len(emitted)}: {', '.join(emitted)}")
    if skipped:
        parts.append(f"skipped {len(skipped)}: {'; '.join(skipped)}")
    return "; ".join(parts) or "nothing to do"
