"""Cascade-fusion: fold a producer stage's finish kernel into its consumer.

A cascaded region (softmax's max → map → sum → map) lowers to one kernel
per stage with a finish-kernel + host-fold handoff between stages: the
producer stage writes gang partials, the finish kernel combines them, the
host reads the result and passes it to the next stage as a parameter.
This pass removes the handoff for reduce→consume pairs: the *consumer*
stage kernel gets a prologue in which every block redundantly replays the
finish kernel's exact combine tree over the partial buffer (the PR-5
shared-overlay virtual-lane technique, reused verbatim), broadcasts the
total through shared memory, and folds it into the reduction variable's
register — with the host-initial value on the left, exactly the order of
the host fold it replaces.  Exact tree replay means the fusion is
bit-identical for *every* operator, ordered or grouping-exact; the
in-pass verifier checks the structural invariants that guarantee it.

Saves one kernel launch plus one host↔device result read per fused
cascade.  Decisions (fused or skipped, with the reason and the cost-model
prices under ``cascade_fusion="auto"``) land on the telemetry timeline
and in the compile state's autotune records, so they show up in the
strategy fingerprint and the serve-cache payload.  A caller-pinned
``cascade_fusion="always"``/``"never"`` override is never second-guessed.
"""

from __future__ import annotations

import dataclasses

from repro.errors import IRVerificationError
from repro.gpu import kernelir as K
from repro.gpu.costmodel import estimate_reduction_strategies
from repro.obs import timeline as _timeline
from repro.passes.kernelopt import _fused_epilogue
from repro.passes.manager import CompileState, register_pass

__all__ = ["cascade_prologue", "consumer_stages", "verify_cascade"]


def consumer_stages(lowered, g) -> list[int]:
    """Stages after ``g.stage`` whose statements read ``g``'s variable."""
    reads = lowered.stage_reads
    return [si for si in range(g.stage + 1, len(reads))
            if g.var in reads[si]]


def cascade_prologue(gi: int, g, n: int, fbs: int, ntid: int,
                     arr: str) -> list[K.Stmt]:
    """The consumer-stage prologue replacing ``g``'s finish kernel.

    Every block replays the finish combine tree (``_fused_epilogue``'s
    virtual-lane emulation — identical lane→value mapping, identical
    combination order, bit-identical total), thread 0 stores the raw
    total to the result buffer for the host's deferred fold, and every
    thread folds it into the reduction register with the host-initial
    parameter value on the left — the same order as the host-side
    ``np_combine(host_init, device_total)`` it replaces.
    """
    out: list[K.Stmt] = [K.Comment(
        f"cascade-fused finish of {g.var!r}: every block replays the "
        f"combine tree over the {n} partials")]
    # elide_warp_sync=False: unlike the last-block epilogue, the replay's
    # total is read back by *all* threads, so every tree step must be
    # barrier-ordered regardless of warp width
    out += _fused_epilogue(gi, g, n, fbs, ntid, arr, False)
    tot = f"_cf{gi}_tot"
    out.append(K.Sync())
    out.append(K.SLoad(tot, arr, K.const_int(0)))
    out.append(K.Assign(g.var, g.op.combine(K.Reg(g.var), K.Reg(tot),
                                            g.dtype)))
    return out


def verify_cascade(kernel: K.Kernel, g, gi: int) -> None:
    """Structural invariants that make the fusion exactness-preserving.

    Raises :class:`IRVerificationError` unless the fused kernel has (1)
    exactly one store to ``g``'s result buffer, (2) a barrier between
    the replay tree and the all-threads broadcast load, and (3) a fold
    of the broadcast total into ``g.var`` with the register (the
    host-initial parameter value) as the *left* operand — the host-fold
    combine order that both exact and ordered operators require for
    bit-identity.
    """
    def bad(msg: str) -> IRVerificationError:
        return IRVerificationError(
            f"{kernel.name}: cascade-fused {g.var!r} ({g.exactness}) "
            f"{msg}")

    stores = [s for s, _ in K.walk_stmts(kernel.body)
              if isinstance(s, K.GStore) and s.buf == g.result_buf]
    if len(stores) != 1:
        raise bad(f"has {len(stores)} stores to result buffer "
                  f"{g.result_buf!r}, expected exactly 1")

    tot = f"_cf{gi}_tot"
    flat = [s for s, _ in K.walk_stmts(kernel.body)]
    loads = [i for i, s in enumerate(flat)
             if isinstance(s, K.SLoad) and s.dst == tot]
    if len(loads) != 1:
        raise bad("is missing the broadcast load of the replayed total")
    li = loads[0]
    if not any(isinstance(s, K.Sync) for s in flat[:li]):
        raise bad("has no barrier ordering the replay tree before the "
                  "broadcast load")

    folds = [s for s in flat[li + 1:]
             if isinstance(s, K.Assign) and s.dst == g.var]
    if not folds:
        raise bad("never folds the total into the reduction register")
    fold = folds[0]
    v = fold.value
    ok = (isinstance(v, K.Bin)
          and isinstance(v.a, K.Reg) and v.a.name == g.var
          and isinstance(v.b, K.Reg) and v.b.name == tot) or \
         (isinstance(v, K.Call)
          and len(v.args) == 2
          and isinstance(v.args[0], K.Reg) and v.args[0].name == g.var
          and isinstance(v.args[1], K.Reg) and v.args[1].name == tot)
    if not ok:
        raise bad("folds with the wrong operand order (the host-initial "
                  "value must be the left operand)")


def _materialization_end(body: tuple[K.Stmt, ...]) -> int:
    """Index just past the leading firstprivate materialization run."""
    i = 0
    while i < len(body) and isinstance(body[i], K.Assign) \
            and isinstance(body[i].value, K.Param):
        i += 1
    return i


@register_pass("cascade-fusion", "kernelopt",
               "fold a producer stage's finish kernel into its consumer "
               "stage as a per-block replay prologue (cascaded reductions)")
def run_cascade_fusion(state: CompileState):
    lowered = state.lowered
    if lowered.num_stages < 2:
        return "single-stage region: nothing to cascade"
    mode = lowered.options.cascade_fusion
    geom = lowered.geometry
    fbs = lowered.options.finish_block_size
    sizes = {sb.name: sb.size for sb in lowered.scratch}
    stage_kerns = [lowered.main_kernel, *lowered.stage_kernels]
    specs = list(lowered.gang_reductions)
    fused_vars: list[str] = []
    tl = _timeline.current()

    def decide(g, fused: bool, reason: str, **kw) -> None:
        if tl is not None:
            tl.decision("passes", f"cascade-fusion:{g.var}", fused=fused,
                        reason=reason, stage=g.stage, **kw)
        state.autotune.setdefault(g.var, {})["cascade_fusion"] = {
            "choice": "fused" if fused else "unfused",
            "reason": reason, **kw}

    for gi, g in enumerate(specs):
        if g.finish_kernel is None or g.partial_buf not in sizes:
            continue
        if g.is_pair:
            decide(g, False, "pair-reduction")
            continue
        if mode == "never":
            decide(g, False, "pinned-never")
            continue
        consumers = consumer_stages(lowered, g)
        if len(consumers) != 1:
            decide(g, False, "no-consumer-stage" if not consumers
                   else "multiple-consumer-stages", consumers=consumers)
            continue
        si = consumers[0]
        kern = stage_kerns[si]
        n = sizes[g.partial_buf]
        arr = f"_sfin_{g.dtype.value}"
        new_shared = list(kern.shared)
        if all(sa.name != arr for sa in new_shared):
            # overlays with the consumer's block-reduction buffers
            # ("red" group): the prologue is dead before their first use
            new_shared.append(K.SharedArraySpec(arr, g.dtype, fbs,
                                                overlay="red"))
        probe = dataclasses.replace(kern, shared=tuple(new_shared))
        if probe.shared_bytes > state.device.shared_mem_per_block:
            decide(g, False, "shared-overflow",
                   needed_bytes=probe.shared_bytes,
                   budget_bytes=state.device.shared_mem_per_block)
            continue
        est = None
        if mode == "auto":
            est = estimate_reduction_strategies(
                state.device, geom, dtype=g.dtype, partials=n,
                finish_block_size=fbs,
                elide_warp_sync=lowered.options.elide_warp_sync,
                cascade=True)["cascade_fusion"]
            if est["fused"] >= est["unfused"]:
                decide(g, False, "cost-model", fused_us=est["fused"],
                       unfused_us=est["unfused"])
                continue

        body = list(kern.body)
        at = _materialization_end(body)
        body[at:at] = cascade_prologue(gi, g, n, fbs,
                                       geom.threads_per_block, arr)
        note = kern.note + ("; " if kern.note else "") + \
            f"cascade-fused finish of {g.var} (from stage {g.stage})"
        new_kern = dataclasses.replace(
            kern, body=tuple(body), shared=tuple(new_shared),
            buffers=tuple(sorted(set(kern.buffers)
                                 | {g.partial_buf, g.result_buf})),
            note=note)
        verify_cascade(new_kern, g, gi)
        stage_kerns[si] = new_kern
        specs[gi] = dataclasses.replace(g, finish_kernel=None,
                                        cascade_fused=True)
        fused_vars.append(g.var)
        if est is not None:
            decide(g, True, "cost-model", fused_us=est["fused"],
                   unfused_us=est["unfused"], consumer_stage=si)
        else:
            decide(g, True, "pinned-always", consumer_stage=si)

    if fused_vars:
        state.lowered = dataclasses.replace(
            lowered, main_kernel=stage_kerns[0],
            stage_kernels=tuple(stage_kerns[1:]), gang_reductions=specs)
        return f"fused: {', '.join(fused_vars)}"
    return "no cascades fused"
