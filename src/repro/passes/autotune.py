"""The cost-model autotune pass: pick reduction strategies per kernel.

Runs before the lowering and queries :func:`repro.gpu.costmodel.
estimate_reduction_strategies` to choose, per reduction variable,

* the vector/worker-level scheme — ``logstep`` (the paper's shared-memory
  interleaved tree, Fig. 7) vs ``shuffle`` (the Kepler ``__shfl_down``
  warp tree extension), and
* the gang handoff — ``buffer`` (partials + finish kernel, Fig. 5(c)) vs
  ``atomic`` (block reduce + one device atomic RMW per gang).

The pass only retunes reductions whose result is *bit-identical* under any
combination grouping: integer operators, and ``max``/``min`` on floats.
Float ``+``/``*`` change their rounding when the combination tree changes
shape, and the reproduction pins results bit-identical between the
``minimal`` and ``optimized`` pipelines — so those keep the profile's
defaults (the paper's own configuration).  Legality gates: ``shuffle``
needs power-of-two widths (the lowering's own fallback rule) and no
modeled layout-mismatch defect; ``atomic`` needs a gang-involved span and
an atomic-capable operator.

Decisions land in ``state.autotune`` (shown by ``repro explain`` and
recorded in the profiler's kernel records) and drive the lowering through
a :class:`repro.codegen.lowering.PlannedStrategy` selector.
"""

from __future__ import annotations

from repro.dtypes import is_integer
from repro.obs import timeline as _timeline
from repro.passes.manager import CompileState, register_pass

__all__ = []

#: float operators whose combine is exact regardless of grouping
_EXACT_FLOAT_OPS = {"max", "min"}


def _is_exact(info) -> bool:
    return is_integer(info.dtype) or info.op.token in _EXACT_FLOAT_OPS


@register_pass("autotune", "frontend",
               "cost-model selection of reduction strategies "
               "(shuffle vs log-step, buffer vs atomic)")
def run_autotune(state: CompileState):
    from repro.codegen.lowering import _ATOMIC_CAPABLE, PlannedStrategy
    from repro.codegen.reduction.treeutil import is_pow2
    from repro.gpu.costmodel import estimate_reduction_strategies

    geom = state.geometry
    opts = state.options
    choices: dict[tuple[str, str], str] = {}
    tuned = 0

    for info in state.plan.all_reductions:
        span = set(info.span)
        if not _is_exact(info):
            state.autotune[info.var] = {
                "skipped": "inexact combine (float rounding depends on "
                           "grouping); profile defaults kept"}
            continue

        vector_candidates: tuple[str, ...] = ()
        block_reduced = bool(span & {"vector", "worker"}) or info.same_line
        if ("vector_strategy" not in state.pinned_options
                and block_reduced
                and is_pow2(geom.vector_length)
                and is_pow2(geom.threads_per_block)
                and not opts.bug_sum_layout_mismatch):
            vector_candidates = ("logstep", "shuffle")

        gang_candidates: tuple[str, ...] = ()
        if ("gang_partial_style" not in state.pinned_options
                and "gang" in span and info.op.token in _ATOMIC_CAPABLE):
            gang_candidates = ("buffer", "atomic")

        if not vector_candidates and not gang_candidates:
            continue

        if span == {"gang"}:
            partials = geom.num_gangs
        elif span == {"gang", "worker"}:
            partials = geom.num_gangs * geom.num_workers
        else:
            partials = geom.num_gangs * geom.threads_per_block

        estimates = estimate_reduction_strategies(
            state.device, geom, dtype=info.dtype, partials=partials,
            vector_candidates=vector_candidates,
            gang_candidates=gang_candidates,
            finish_block_size=opts.finish_block_size,
            elide_warp_sync=opts.elide_warp_sync)

        record: dict[str, object] = {}
        for fld, est in estimates.items():
            best = min(sorted(est), key=lambda c: est[c])
            default = getattr(opts, fld)
            if best != default:
                choices[(fld, info.var)] = best
            record[fld] = {
                "choice": best,
                "default": default,
                "estimates_us": {c: round(us, 3)
                                 for c, us in sorted(est.items())},
            }
        state.autotune[info.var] = record
        tuned += 1

    if choices:
        state.selector = PlannedStrategy(choices)
    overrides = len(choices)
    tl = _timeline.current()
    if tl is not None:
        for var, rec in state.autotune.items():
            if "skipped" in rec:
                tl.decision("passes", f"autotune:{var}",
                            skipped=rec["skipped"])
                continue
            tl.decision("passes", f"autotune:{var}", **{
                fld: {"choice": dec["choice"], "default": dec["default"],
                      "estimates_us": dec["estimates_us"]}
                for fld, dec in rec.items()})
    return (f"tuned {tuned} reduction(s), "
            f"{overrides} override(s) of the profile defaults")
